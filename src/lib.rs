#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

//! Umbrella crate for the TWiCe (ISCA 2019) reproduction.
//!
//! Re-exports the workspace crates under short, stable paths so that
//! examples and downstream users can depend on a single crate:
//!
//! * [`common`] — IDs, time, DDR timings, topology, the defense trait.
//! * [`dram`] — the DDR4 device simulator and row-hammer fault model.
//! * [`memctrl`] — the memory-controller simulator.
//! * [`core`] — the TWiCe defense itself (tables, bound, cost model).
//! * [`mitigations`] — PARA, PRoHIT, CBT, CRA, oracle, and null baselines.
//! * [`workloads`] — every trace generator used in the evaluation.
//! * [`sim`] — the full-system simulator and per-table/figure experiments.
//!
//! # Quickstart
//!
//! ```
//! use twice_repro::core::{TwiceEngine, TwiceParams};
//! use twice_repro::common::{BankId, RowId, RowHammerDefense, Time, Span};
//!
//! let params = TwiceParams::paper_default();
//! let mut twice = TwiceEngine::new(params.clone(), 1);
//!
//! // Hammer one row: TWiCe issues an Adjacent Row Refresh at thRH.
//! let mut now = Time::ZERO;
//! let mut arr_seen = false;
//! for _ in 0..params.th_rh {
//!     let resp = twice.on_activate(BankId(0), RowId(42), now);
//!     arr_seen |= resp.arr.is_some();
//!     now += params.timings.t_rc;
//! }
//! assert!(arr_seen);
//! ```

/// The most commonly used items, importable in one line.
///
/// ```
/// use twice_repro::prelude::*;
///
/// let params = TwiceParams::paper_default();
/// let mut engine = TwiceEngine::new(params, 16);
/// let response = engine.on_activate(BankId(0), RowId(1), Time::ZERO);
/// assert!(response.is_none());
/// ```
pub mod prelude {
    pub use twice::{CapacityBound, DetectionLog, TableOrganization, TwiceEngine, TwiceParams};
    pub use twice_common::{
        BankId, ChannelId, ColId, DdrTimings, DefenseResponse, Detection, RankId, RowHammerDefense,
        RowId, Span, Time, Topology,
    };
    pub use twice_mitigations::{make_defense, DefenseKind};
    pub use twice_sim::config::SimConfig;
    pub use twice_sim::runner::{run, WorkloadKind};
    pub use twice_sim::system::System;
    pub use twice_workloads::{AccessSource, TraceItem};
}

pub use twice as core;
pub use twice_common as common;
pub use twice_dram as dram;
pub use twice_memctrl as memctrl;
pub use twice_mitigations as mitigations;
pub use twice_sim as sim;
pub use twice_workloads as workloads;
