//! Property-based tests of the §4.3 proof obligations.
//!
//! The paper's guarantee rests on three claims, here checked over random
//! activation streams (seeded in-tree `SplitMix64`; the proptest crate is
//! unavailable offline) that respect the physical per-PI activation
//! budget (`maxact` ACTs between prunes — enforced by DDR timing in the
//! real system):
//!
//! 1. **No false negatives** (Eq. 1 + 2): any row that accumulates
//!    `2·thRH` activations within a window is ARR'd before that point.
//! 2. **Bounded state** (§4.4): table occupancy never exceeds the
//!    analytic capacity bound, and `TableFull` never fires.
//! 3. **Organization equivalence** (§6): fa-TWiCe, pa-TWiCe, and the
//!    split table make identical decisions on identical streams.

use twice_repro::common::rng::SplitMix64;
use twice_repro::common::{BankId, RowHammerDefense, RowId, Time};
use twice_repro::core::{CapacityBound, TableOrganization, TwiceEngine, TwiceParams};

/// One step of an abstract activation stream.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Activate the row with this index (small row space to force reuse).
    Act(u8),
    /// Activate the globally hot row.
    ActHot,
}

fn steps(seed: u64) -> Vec<Step> {
    let mut rng = SplitMix64::new(seed);
    let n = rng.next_below(6_000) as usize;
    (0..n)
        .map(|_| {
            if rng.next_below(5) < 3 {
                Step::Act(rng.next_u64() as u8)
            } else {
                Step::ActHot
            }
        })
        .collect()
}

/// Drives an engine with the stream, pruning every `maxact` ACTs as the
/// auto-refresh machinery would, and returns per-row ARR counts plus a
/// shadow exact count of ACTs since each row's last ARR/window reset.
fn drive(engine: &mut TwiceEngine, stream: &[Step]) -> (std::collections::HashMap<u32, u64>, bool) {
    let params = engine.params().clone();
    let max_act = params.max_act();
    let max_life = params.max_life();
    let th_rh = params.th_rh;
    let mut arrs: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    let mut since_arr: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    let mut violated = false;
    let mut acts_this_pi = 0;
    let mut pis = 0u64;
    for step in stream {
        let row = match step {
            Step::Act(r) => RowId(u32::from(*r)),
            Step::ActHot => RowId(7),
        };
        let response = engine.on_activate(BankId(0), row, Time::ZERO);
        let count = since_arr.entry(row.0).or_insert(0);
        *count += 1;
        // Claim 1: the exact per-window count may never reach 2*thRH
        // without an ARR in between.
        if *count >= 2 * th_rh {
            violated = true;
        }
        if response.arr == Some(row) {
            *arrs.entry(row.0).or_insert(0) += 1;
            *count = 0;
        }
        acts_this_pi += 1;
        if acts_this_pi >= max_act {
            acts_this_pi = 0;
            engine.on_auto_refresh(BankId(0), Time::ZERO);
            pis += 1;
            if pis.is_multiple_of(max_life) {
                // Window boundary: every row has been auto-refreshed.
                since_arr.clear();
            }
        }
    }
    (arrs, violated)
}

const CASES: u64 = 64;

#[test]
fn no_row_accumulates_two_th_rh_without_an_arr() {
    for seed in 0..CASES {
        let params = TwiceParams::fast_test();
        let mut engine = TwiceEngine::new(params, 1);
        let (_, violated) = drive(&mut engine, &steps(seed));
        assert!(!violated, "a row exceeded 2*thRH unrefreshed (seed {seed})");
    }
}

#[test]
fn occupancy_never_exceeds_the_capacity_bound() {
    for seed in 0..CASES {
        let params = TwiceParams::fast_test();
        let bound = CapacityBound::for_params(&params);
        let mut engine = TwiceEngine::new(params, 1);
        drive(&mut engine, &steps(seed ^ 0xAAAA));
        assert!(engine.max_occupancy_any() <= bound.total());
        assert_eq!(engine.stats().table_full_events, 0);
    }
}

#[test]
fn organizations_are_decision_equivalent() {
    for seed in 0..CASES {
        let stream = steps(seed ^ 0xBBBB);
        let params = TwiceParams::fast_test();
        let mut engines: Vec<TwiceEngine> = [
            TableOrganization::FullyAssociative,
            TableOrganization::PseudoAssociative,
            TableOrganization::Split,
        ]
        .into_iter()
        .map(|o| TwiceEngine::with_organization(params.clone(), 1, o))
        .collect();
        let mut results = Vec::new();
        for engine in &mut engines {
            results.push(drive(engine, &stream).0);
        }
        assert_eq!(results[0], results[1], "fa vs pa diverged (seed {seed})");
        assert_eq!(results[0], results[2], "fa vs split diverged (seed {seed})");
        let arrs: Vec<u64> = engines.iter().map(|e| e.stats().arrs).collect();
        assert!(arrs.iter().all(|&a| a == arrs[0]));
    }
}

#[test]
fn hot_row_is_always_arred_at_th_rh_when_hammered_solidly() {
    // Deterministic corner: an uninterrupted hammer is detected at
    // exactly thRH no matter how many trailing ACTs follow.
    let mut rng = SplitMix64::new(0xC0FFEE);
    for _ in 0..32 {
        let extra = rng.next_below(200);
        let params = TwiceParams::fast_test();
        let th_rh = params.th_rh;
        let mut engine = TwiceEngine::new(params.clone(), 1);
        let mut detections = 0u64;
        let total = th_rh + extra;
        let mut acts_this_pi = 0;
        for i in 0..total {
            let r = engine.on_activate(BankId(0), RowId(3), Time::ZERO);
            if r.detection.is_some() {
                detections += 1;
                assert!((i + 1) % th_rh == 0, "detected off-threshold at {}", i + 1);
            }
            acts_this_pi += 1;
            if acts_this_pi >= params.max_act() {
                acts_this_pi = 0;
                engine.on_auto_refresh(BankId(0), Time::ZERO);
            }
        }
        assert_eq!(detections, total / th_rh);
    }
}

/// The Eq. 1 bound itself, exhaustively for the fast parameters: an
/// always-pruned row can carry at most `thPI·maxlife − maxlife` ACTs
/// per window — strictly below `thRH`.
#[test]
fn untracked_count_bound_is_strict() {
    let params = TwiceParams::fast_test();
    let th_pi = params.th_pi();
    let max_life = params.max_life();
    // The most ACTs a row can make per PI while being pruned every PI.
    let per_pi = th_pi - 1;
    assert!(per_pi * max_life < params.th_rh);
}
