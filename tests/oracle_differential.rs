//! Differential protection oracle: TWiCe vs an exact per-row
//! neighbor-activation counter.
//!
//! The engine under test is the real [`TwiceEngine`]; the oracle is a
//! brute-force ground truth nothing like the implementation: one counter
//! per row holding the neighbor activations accumulated since the row
//! was last refreshed (by the rotating auto-refresh, by an ARR on an
//! adjacent aggressor, or by its own activation rewriting its cells).
//! §4.3's guarantee says no victim may reach `N_th` such activations in
//! one of its refresh windows — if the engine ever lets a counter cross
//! the threshold, the defense is broken regardless of what its internal
//! table believes.
//!
//! Three trace classes, ≥100 randomized traces each:
//!
//! * **uniform** — aggressors drawn uniformly; exercises pruning churn.
//! * **decoy** — one hot aggressor hidden in cold decoy rows; exercises
//!   the tracked path (the hot row must be caught at `thRH`).
//! * **straddle** — bursts of `thRH − 1` ACTs separated by idle spans of
//!   up to a full `tREFW` of refresh slots; exercises the untracked
//!   budget the proof bounds with `thPI · maxlife`.

use twice_repro::common::rng::SplitMix64;
use twice_repro::common::{BankId, DefenseResponse, RowHammerDefense, RowId, Time};
use twice_repro::core::{TwiceEngine, TwiceParams};

/// Rows in play. Matches `maxlife` of the fast parameter set so the
/// rotating refresh covers every row exactly once per `tREFW`.
const ROWS: usize = 64;
/// Randomized traces per pattern class.
const TRACES_PER_CLASS: u64 = 100;
/// ACT slots per trace (idle slots included).
const TRACE_LEN: usize = 4_000;

/// The exact ground-truth counter: `disturb[r]` is the number of ACTs
/// on row `r`'s neighbors since `r` was last refreshed.
struct Oracle {
    disturb: Vec<u64>,
    n_th: u64,
    refresh_ptr: usize,
}

impl Oracle {
    fn new(n_th: u64) -> Oracle {
        Oracle {
            disturb: vec![0; ROWS],
            n_th,
            refresh_ptr: 0,
        }
    }

    /// One ACT on `a`: both neighbors accumulate disturbance; the
    /// aggressor's own cells are restored by its activation.
    fn on_act(&mut self, a: usize) {
        if a > 0 {
            self.disturb[a - 1] += 1;
        }
        if a + 1 < ROWS {
            self.disturb[a + 1] += 1;
        }
        self.disturb[a] = 0;
    }

    /// Applies the engine's response: an ARR (and any explicit refresh
    /// rows) refreshes the *neighbors* of the named aggressor.
    fn absorb(&mut self, resp: &DefenseResponse) {
        for &row in resp.arr.iter().chain(resp.refresh_rows.iter()) {
            let r = row.index();
            if r > 0 {
                self.disturb[r - 1] = 0;
            }
            if r + 1 < ROWS {
                self.disturb[r + 1] = 0;
            }
        }
    }

    /// One auto-refresh slot: the rotation refreshes the next row.
    fn auto_refresh(&mut self) {
        self.disturb[self.refresh_ptr] = 0;
        self.refresh_ptr = (self.refresh_ptr + 1) % ROWS;
    }

    /// The §4.3 guarantee: no row's window counter reaches `N_th`.
    fn check(&self, class: &str, seed: u64, step: usize) {
        for (r, &d) in self.disturb.iter().enumerate() {
            assert!(
                d < self.n_th,
                "{class} seed {seed}: row {r} reached {d} >= N_th {} \
                 activations-in-window without an ARR at step {step}",
                self.n_th
            );
        }
    }
}

/// Drives one trace: `next` yields the aggressor for each slot, or
/// `None` to idle through the rest of the current refresh interval.
fn drive(class: &str, seed: u64, mut next: impl FnMut(&mut SplitMix64) -> Option<usize>) {
    let params = TwiceParams::fast_test();
    let max_act = params.max_act();
    let n_th = params.n_th;
    let mut engine = TwiceEngine::new(params, 1);
    let mut oracle = Oracle::new(n_th);
    let mut rng = SplitMix64::new(seed ^ 0x0D1F_F00D);
    let mut acts_this_pi = 0u64;
    for step in 0..TRACE_LEN {
        if acts_this_pi >= max_act {
            let resp = engine.on_auto_refresh(BankId(0), Time::ZERO);
            oracle.absorb(&resp);
            oracle.auto_refresh();
            acts_this_pi = 0;
        }
        match next(&mut rng) {
            Some(a) => {
                assert!((1..ROWS - 1).contains(&a), "aggressor {a} out of band");
                acts_this_pi += 1;
                let resp = engine.on_activate(BankId(0), RowId(a as u32), Time::ZERO);
                oracle.on_act(a);
                oracle.absorb(&resp);
            }
            // Idle: burn the rest of this pruning interval.
            None => acts_this_pi = max_act,
        }
        oracle.check(class, seed, step);
    }
}

#[test]
fn uniform_traces_never_cross_n_th() {
    for seed in 0..TRACES_PER_CLASS {
        drive("uniform", seed, |rng| {
            Some(1 + rng.next_below((ROWS - 2) as u64) as usize)
        });
    }
}

#[test]
fn decoy_row_traces_never_cross_n_th() {
    for seed in 0..TRACES_PER_CLASS {
        let mut picker = SplitMix64::new(seed.wrapping_mul(0x9E37));
        let hot = 1 + picker.next_below((ROWS - 2) as u64) as usize;
        drive("decoy", seed, move |rng| {
            if rng.chance(0.5) {
                Some(hot)
            } else {
                Some(1 + rng.next_below((ROWS - 2) as u64) as usize)
            }
        });
    }
}

#[test]
fn trefw_straddling_traces_never_cross_n_th() {
    let th_rh = TwiceParams::fast_test().th_rh;
    for seed in 0..TRACES_PER_CLASS {
        let mut picker = SplitMix64::new(seed.wrapping_mul(0x51D7));
        let agg = 1 + picker.next_below((ROWS - 2) as u64) as usize;
        // Hammer to the brink of thRH, then idle across refresh slots —
        // possibly a full tREFW, so the tracking entry is pruned — and
        // resume. The victim's window counter straddles the engine's
        // pruning intervals.
        let mut burst = th_rh - 1;
        let mut idle = 0u64;
        drive("straddle", seed, move |rng| {
            if idle > 0 {
                idle -= 1;
                return None;
            }
            if burst == 0 {
                burst = th_rh - 1;
                idle = 1 + rng.next_below(ROWS as u64 + 1);
                return None;
            }
            burst -= 1;
            Some(agg)
        });
    }
}
