//! Cross-crate resilience tests (DESIGN.md "Fault model & graceful
//! degradation"): the bounded nack-retry path converges on every
//! fault-free stream and surfaces `RetryExhausted` — instead of hanging
//! — when a fault makes the RCD nack forever.

use twice_repro::common::fault::{FaultKind, FaultPlan};
use twice_repro::core::TableOrganization;
use twice_repro::memctrl::resilience::ControllerError;
use twice_repro::mitigations::DefenseKind;
use twice_repro::sim::config::SimConfig;
use twice_repro::sim::runner::{build_trace, WorkloadKind};
use twice_repro::sim::system::System;

/// The acceptance test for the resilient nack path: a permanent
/// spurious-nack fault (every command nacked, forever) must terminate
/// with a structured `RetryExhausted` error, not an infinite
/// nack-resend loop.
#[test]
fn permanent_spurious_nack_surfaces_retry_exhausted() {
    let mut cfg = SimConfig::fast_test();
    cfg.fault_plan = FaultPlan::with_seed(1).rate(FaultKind::SpuriousNack, 1.0);
    let mut sys = System::new(
        &cfg,
        DefenseKind::Twice(TableOrganization::FullyAssociative),
    );
    let trace = build_trace(&cfg, &WorkloadKind::S3, 1_000);
    let err = sys
        .run(trace)
        .expect_err("a permanent nack cannot converge");
    let ControllerError::RetryExhausted {
        attempts, waited, ..
    } = err;
    assert!(
        attempts >= cfg.retry.max_attempts || waited > cfg.retry.watchdog,
        "the error must carry the exhausted budget: {attempts} attempts, {waited} waited"
    );
}

/// Property: under fault-free streams the retry loop always converges
/// within budget — every request is served even on workloads that keep
/// the RCD busy with real (ARR-in-progress) nacks.
#[test]
fn fault_free_nack_retry_always_converges() {
    for seed in 0..8 {
        for workload in [WorkloadKind::S3, WorkloadKind::S1] {
            let mut cfg = SimConfig::fast_test();
            cfg.seed = 0xBEEF ^ seed;
            let mut sys = System::new(
                &cfg,
                DefenseKind::Twice(TableOrganization::FullyAssociative),
            );
            let trace = build_trace(&cfg, &workload, 20_000);
            sys.run(trace)
                .expect("fault-free streams must converge within the retry budget");
            let served: u64 = sys.controllers().iter().map(|c| c.served()).sum();
            assert_eq!(served, 20_000, "seed {seed}, {workload:?}");
        }
    }
}

/// The S3 hammer provokes real protocol nacks (commands arriving while
/// an ARR occupies the rank) — and the stats split them from injected
/// ones, so a clean run reports zero on the injected side.
#[test]
fn protocol_nacks_are_distinguished_from_injected_ones() {
    let cfg = SimConfig::fast_test();
    let mut sys = System::new(
        &cfg,
        DefenseKind::Twice(TableOrganization::FullyAssociative),
    );
    sys.run(build_trace(&cfg, &WorkloadKind::S3, 60_000))
        .expect("fault-free run");
    let protocol: u64 = sys
        .controllers()
        .iter()
        .flat_map(|c| c.rank_stats())
        .map(|s| s.nacks)
        .sum();
    let injected: u64 = sys
        .controllers()
        .iter()
        .flat_map(|c| c.rank_stats())
        .map(|s| s.injected_nacks)
        .sum();
    assert!(
        protocol > 0,
        "the hammer must provoke ARR-in-progress nacks"
    );
    assert_eq!(injected, 0, "no chaos plan, no injected nacks");
}

/// Transient injected nacks (well below permanence) are absorbed by the
/// backoff schedule: the run completes, and the injected nacks are
/// visible in the stats rather than inflating the protocol count.
#[test]
fn transient_injected_nacks_are_absorbed() {
    let mut cfg = SimConfig::fast_test();
    cfg.fault_plan = FaultPlan::with_seed(3).rate(FaultKind::SpuriousNack, 0.01);
    let mut sys = System::new(
        &cfg,
        DefenseKind::Twice(TableOrganization::FullyAssociative),
    );
    sys.run(build_trace(&cfg, &WorkloadKind::S1, 10_000))
        .expect("1% spurious nacks must be absorbed by the retry budget");
    let injected: u64 = sys
        .controllers()
        .iter()
        .flat_map(|c| c.rank_stats())
        .map(|s| s.injected_nacks)
        .sum();
    assert!(injected > 0, "the plan must actually fire");
}
