//! Cross-crate protection tests (DESIGN.md experiment V1).
//!
//! Attacks run through the entire pipeline — trace → controller → RCD →
//! DDR4 bank FSMs → disturbance fault model — and the defense either
//! prevents every bit flip or the test fails.

use twice_repro::common::RowId;
use twice_repro::core::TableOrganization;
use twice_repro::mitigations::DefenseKind;
use twice_repro::sim::config::SimConfig;
use twice_repro::sim::runner::{double_sided, run, WorkloadKind};
use twice_repro::sim::system::System;
use twice_repro::sim::verify::confront;
use twice_repro::workloads::attack::HammerShape;

const REQUESTS: u64 = 60_000;

fn cfg() -> SimConfig {
    SimConfig::fast_test()
}

#[test]
fn every_twice_organization_defeats_the_classic_hammer() {
    for org in [
        TableOrganization::FullyAssociative,
        TableOrganization::PseudoAssociative,
        TableOrganization::Split,
    ] {
        let out = confront(&cfg(), WorkloadKind::S3, DefenseKind::Twice(org), REQUESTS);
        assert!(out.unprotected.bit_flips > 0, "{org:?}: attack inert");
        assert_eq!(out.defended.bit_flips, 0, "{org:?}: flips leaked");
        assert!(out.defended.detections > 0, "{org:?}: silent defense");
    }
}

#[test]
fn twice_defeats_double_sided_hammering() {
    let out = confront(
        &cfg(),
        double_sided(100),
        DefenseKind::Twice(TableOrganization::Split),
        REQUESTS,
    );
    assert!(out.defense_holds());
}

#[test]
fn twice_defeats_many_sided_hammering() {
    // Four rotating aggressors, spaced apart so they do not restore
    // each other's victims (activating a row clears its own
    // disturbance). Splitting the ACT budget 4 ways needs a lower
    // disturbance threshold to flip within the compressed refresh
    // window: per-window budget is ~1422 ACTs, so each aggressor gets
    // ~355 — above N_th = 256, and thRH = 64 keeps the N_th/4 margin.
    let mut cfg = cfg();
    cfg.params.th_rh = 64;
    cfg.params.n_th = 256;
    cfg.fault_n_th = 256;
    let aggressors: Vec<RowId> = (0..4).map(|i| RowId(200 + i * 10)).collect();
    let attack = WorkloadKind::Attack(HammerShape::ManySided { aggressors });
    let out = confront(
        &cfg,
        attack,
        DefenseKind::Twice(TableOrganization::FullyAssociative),
        REQUESTS * 4,
    );
    assert!(
        out.unprotected.bit_flips > 0,
        "many-sided attack must flip undefended"
    );
    assert_eq!(out.defended.bit_flips, 0);
}

#[test]
fn oracle_and_twice_agree_on_protection() {
    let twice = confront(
        &cfg(),
        WorkloadKind::S3,
        DefenseKind::Twice(TableOrganization::FullyAssociative),
        REQUESTS,
    );
    let oracle = confront(&cfg(), WorkloadKind::S3, DefenseKind::Oracle, REQUESTS);
    assert!(twice.defense_holds() && oracle.defense_holds());
    // TWiCe may detect at most slightly more often than the oracle
    // (entries pruned and re-inserted restart their counts, never the
    // other way round — no false negatives).
    assert!(twice.defended.detections >= oracle.defended.detections);
}

#[test]
fn counter_baselines_also_protect_against_s3() {
    for kind in [
        DefenseKind::Cbt { counters: 64 },
        DefenseKind::Cra { cache_entries: 512 },
    ] {
        let out = confront(&cfg(), WorkloadKind::S3, kind, REQUESTS);
        assert!(out.defense_holds(), "{kind} failed to protect");
        assert!(out.defended.detections > 0, "{kind} must detect");
    }
    // CBT's group refreshes cost far more per detection than TWiCe's
    // two-row ARRs (the Figure 7b shape).
    let cbt = confront(
        &cfg(),
        WorkloadKind::S3,
        DefenseKind::Cbt { counters: 64 },
        REQUESTS,
    );
    let twice = confront(
        &cfg(),
        WorkloadKind::S3,
        DefenseKind::Twice(TableOrganization::FullyAssociative),
        REQUESTS,
    );
    let cbt_cost = cbt.defended.additional_acts as f64 / cbt.defended.detections.max(1) as f64;
    let twice_cost =
        twice.defended.additional_acts as f64 / twice.defended.detections.max(1) as f64;
    assert!(
        cbt_cost > twice_cost,
        "per-detection cost: CBT {cbt_cost} vs TWiCe {twice_cost}"
    );
}

#[test]
fn remapped_aggressor_defeats_mc_side_defense_but_not_arr() {
    let mut cfg = cfg();
    cfg.faults_per_bank = 32;
    let probe = System::new(&cfg, DefenseKind::None);
    let remap = probe.controllers()[0].rcd().ranks()[0].remap_table(0);
    let aggressor = (0..cfg.topology.rows_per_bank)
        .map(RowId)
        .find(|&r| remap.is_remapped(r))
        .expect("faults guarantee a remapped row");
    let attack = WorkloadKind::Attack(HammerShape::SingleSided { aggressor });

    // MC-side CRA counts perfectly but refreshes logical neighbors.
    let cra = run(
        &cfg,
        attack.clone(),
        DefenseKind::Cra { cache_entries: 512 },
        REQUESTS,
    );
    assert!(
        cra.bit_flips > 0,
        "logical-neighbor refreshes must miss the physical victims"
    );
    // TWiCe's ARR resolves adjacency inside the device.
    let twice = run(
        &cfg,
        attack,
        DefenseKind::Twice(TableOrganization::FullyAssociative),
        REQUESTS,
    );
    assert_eq!(twice.bit_flips, 0);
}

#[test]
fn trr_catches_single_aggressors_but_rotation_slips_past_it() {
    // Extension experiment (paper 8: vendor TRR is unspecified; the
    // post-TRRespass understanding is a small in-DRAM tracker). A
    // single-sided hammer is caught, but rotating more aggressors than
    // the tracker holds starves every counter — while TWiCe, whose table
    // provably covers every possible aggressor, still protects.
    let mut cfg = cfg();
    cfg.params.th_rh = 64;
    cfg.params.n_th = 256;
    cfg.fault_n_th = 256;
    let trr = DefenseKind::Trr { entries: 2 };

    // Single aggressor: TRR works.
    let single = confront(&cfg, WorkloadKind::S3, trr, REQUESTS);
    assert!(
        single.defense_holds(),
        "TRR must stop a single-sided hammer"
    );

    // Four spread aggressors vs a 2-entry tracker: TRR loses...
    let aggressors: Vec<RowId> = (0..4).map(|i| RowId(200 + i * 10)).collect();
    let attack = WorkloadKind::Attack(HammerShape::ManySided { aggressors });
    let evaded = confront(&cfg, attack.clone(), trr, REQUESTS * 4);
    assert!(
        evaded.unprotected.bit_flips > 0 && evaded.defended.bit_flips > 0,
        "rotation must defeat the bounded tracker (flips: {} / {})",
        evaded.unprotected.bit_flips,
        evaded.defended.bit_flips
    );

    // ...and TWiCe does not.
    let twice = confront(
        &cfg,
        attack,
        DefenseKind::Twice(TableOrganization::FullyAssociative),
        REQUESTS * 4,
    );
    assert!(twice.defense_holds());
}

#[test]
fn graphene_follow_up_also_protects_including_rotation() {
    // Extension: Graphene (MICRO'20) sizes an exact Misra–Gries table
    // for the whole window, so — unlike vendor TRR — rotating aggressors
    // cannot evade it, and its guarantee matches TWiCe's.
    let single = confront(&cfg(), WorkloadKind::S3, DefenseKind::Graphene, REQUESTS);
    assert!(single.defense_holds(), "Graphene must stop S3");

    let mut cfg = cfg();
    cfg.params.th_rh = 64;
    cfg.params.n_th = 256;
    cfg.fault_n_th = 256;
    let aggressors: Vec<RowId> = (0..4).map(|i| RowId(200 + i * 10)).collect();
    let attack = WorkloadKind::Attack(HammerShape::ManySided { aggressors });
    let rotated = confront(&cfg, attack, DefenseKind::Graphene, REQUESTS * 4);
    assert!(
        rotated.defense_holds(),
        "rotation must not evade a window-sized Misra-Gries table (flips {}/{})",
        rotated.unprotected.bit_flips,
        rotated.defended.bit_flips
    );
}

#[test]
fn half_double_coupling_defeats_radius_1_arr_but_not_radius_2() {
    // Extension experiment E4 (post-paper attack class): with distance-2
    // coupling (Half-Double), the rows two away from the aggressor also
    // accumulate disturbance. The paper's ARR refreshes only distance-1
    // victims, so the far victims flip even under TWiCe; widening the
    // ARR blast radius to 2 ("TWiCe+") closes the gap.
    let mut cfg = cfg();
    cfg.params.th_rh = 64; // aggressive detection so ARRs fire often
    cfg.params.n_th = 256;
    cfg.fault_n_th = 256;
    cfg.far_coupling = Some(2); // strong coupling: every 2nd ACT reaches distance 2

    let twice = DefenseKind::Twice(TableOrganization::FullyAssociative);
    let radius1 = run(&cfg, WorkloadKind::S3, twice, REQUESTS * 2);
    assert!(
        radius1.bit_flips > 0,
        "distance-2 victims must flip past the paper's radius-1 ARR"
    );
    assert!(radius1.detections > 0, "TWiCe still detects the aggressor");

    let mut widened = cfg.clone();
    widened.arr_radius = 2;
    let radius2 = run(&widened, WorkloadKind::S3, twice, REQUESTS * 2);
    assert_eq!(
        radius2.bit_flips, 0,
        "a radius-2 ARR must refresh the far victims too"
    );
    // The widened ARR costs up to 4 victim refreshes per detection.
    assert!(radius2.additional_acts <= radius2.detections * 4);
}

#[test]
fn auto_refresh_alone_cannot_stop_a_hammer() {
    // Sanity for the whole premise: periodic auto-refresh runs in the
    // simulator, yet the attack still flips bits without a defense.
    let m = run(&cfg(), WorkloadKind::S3, DefenseKind::None, REQUESTS);
    assert!(m.bit_flips > 0);
}

#[test]
fn probabilistic_para_reduces_but_does_not_guarantee() {
    // With a generous p, PARA usually protects; the point here is only
    // that it never *detects* — the paper's qualitative distinction.
    let m = run(
        &cfg(),
        WorkloadKind::S3,
        DefenseKind::Para { p: 0.05 },
        REQUESTS,
    );
    assert_eq!(m.detections, 0, "PARA must be attack-oblivious");
}
