//! Integration tests for the §5.2 ARR/nack protocol between the memory
//! controller and the RCD.

use twice_repro::common::{
    BankId, DefenseResponse, Detection, RowHammerDefense, RowId, Span, Time,
};
use twice_repro::dram::cmd::DramCommand;
use twice_repro::dram::device::{DramRank, RankConfig};
use twice_repro::dram::rcd::{NackReason, Rcd, RcdOutcome};

/// A defense that flags a fixed row as an aggressor on its first ACT.
struct FlagOnce {
    row: RowId,
    fired: bool,
}

impl RowHammerDefense for FlagOnce {
    fn name(&self) -> &str {
        "flag-once"
    }
    fn on_activate(&mut self, bank: BankId, row: RowId, now: Time) -> DefenseResponse {
        if row == self.row && !self.fired {
            self.fired = true;
            DefenseResponse {
                detection: Some(Detection {
                    bank,
                    row,
                    at: now,
                    act_count: 1,
                }),
                ..DefenseResponse::arr(row)
            }
        } else {
            DefenseResponse::none()
        }
    }
}

fn rcd_with_flag(row: RowId) -> Rcd {
    let rank = DramRank::new(RankConfig::for_test(4, 256).with_n_th(1_000_000));
    Rcd::new(vec![rank], Box::new(FlagOnce { row, fired: false }), 0)
}

fn t(ns: u64) -> Time {
    Time::ZERO + Span::from_ns(ns)
}

#[test]
fn timing_rejected_pre_still_converts_to_arr_on_resend() {
    // The regression that once lost ARRs: a PRE that violates tRAS is
    // rejected by the device; the MC resends it later and the conversion
    // must still happen.
    let mut rcd = rcd_with_flag(RowId(9));
    rcd.issue(
        0,
        DramCommand::Activate {
            bank: 0,
            row: RowId(9),
        },
        t(0),
    )
    .unwrap();
    // tRAS = 31 ns: this PRE is illegal and must error without consuming
    // the pending ARR.
    assert!(rcd
        .issue(0, DramCommand::Precharge { bank: 0 }, t(10))
        .is_err());
    let out = rcd
        .issue(0, DramCommand::Precharge { bank: 0 }, t(31))
        .unwrap();
    assert_eq!(out, RcdOutcome::ArrPerformed { victims: 2 });
    assert_eq!(rcd.ranks()[0].stats().arrs, 1);
}

#[test]
fn nacked_commands_succeed_when_resent_at_retry_time() {
    let mut rcd = rcd_with_flag(RowId(9));
    rcd.issue(
        0,
        DramCommand::Activate {
            bank: 0,
            row: RowId(9),
        },
        t(0),
    )
    .unwrap();
    rcd.issue(0, DramCommand::Precharge { bank: 0 }, t(31))
        .unwrap(); // becomes ARR, busy 104 ns
                   // An ACT to a different bank is nacked during the ARR (tFAW safety).
    let out = rcd
        .issue(
            0,
            DramCommand::Activate {
                bank: 2,
                row: RowId(1),
            },
            t(50),
        )
        .unwrap();
    let RcdOutcome::Nack { retry_at, reason } = out else {
        panic!("expected a nack, got {out:?}");
    };
    assert_eq!(retry_at, t(135));
    assert_eq!(reason, NackReason::ArrInProgress);
    assert_eq!(
        rcd.issue(
            0,
            DramCommand::Activate {
                bank: 2,
                row: RowId(1)
            },
            retry_at
        )
        .unwrap(),
        RcdOutcome::Accepted
    );
    assert_eq!(rcd.nacks(), 1);
}

#[test]
fn non_act_commands_to_other_banks_proceed_during_arr() {
    // Only ACTs are blocked rank-wide (tFAW accounting); column traffic
    // to already-open rows of other banks flows.
    let mut rcd = rcd_with_flag(RowId(9));
    rcd.issue(
        0,
        DramCommand::Activate {
            bank: 1,
            row: RowId(4),
        },
        t(0),
    )
    .unwrap();
    // Banks 0 and 1 share a bank group: tRRD_L (6 ns) applies.
    rcd.issue(
        0,
        DramCommand::Activate {
            bank: 0,
            row: RowId(9),
        },
        t(6),
    )
    .unwrap();
    rcd.issue(0, DramCommand::Precharge { bank: 0 }, t(37))
        .unwrap(); // ARR on bank 0 until t(141)
    let out = rcd
        .issue(
            0,
            DramCommand::Read {
                bank: 1,
                col: twice_repro::common::ColId(0),
            },
            t(45),
        )
        .unwrap();
    assert_eq!(out, RcdOutcome::Accepted);
}

#[test]
fn arr_victims_are_resolved_through_the_remap_table() {
    let rank = DramRank::new(
        RankConfig::for_test(1, 256)
            .with_n_th(1_000_000)
            .with_faults(16),
    );
    // Find a remapped row before moving the rank into the RCD.
    let remapped = (0..256)
        .map(RowId)
        .find(|&r| rank.remap_table(0).is_remapped(r))
        .expect("16 faults in 256 rows");
    let expected: Vec<RowId> = rank.physical_neighbors(0, remapped).into_iter().collect();
    let mut rcd = Rcd::new(
        vec![rank],
        Box::new(FlagOnce {
            row: remapped,
            fired: false,
        }),
        0,
    );
    rcd.issue(
        0,
        DramCommand::Activate {
            bank: 0,
            row: remapped,
        },
        t(0),
    )
    .unwrap();
    let out = rcd
        .issue(0, DramCommand::Precharge { bank: 0 }, t(31))
        .unwrap();
    assert_eq!(
        out,
        RcdOutcome::ArrPerformed {
            victims: expected.len() as u32
        }
    );
    // The physical victims were restored (disturbance cleared).
    for v in expected {
        assert_eq!(rcd.ranks()[0].disturbance_of(0, v), 0);
    }
}

#[test]
fn detections_surface_through_the_rcd() {
    let mut rcd = rcd_with_flag(RowId(42));
    rcd.issue(
        0,
        DramCommand::Activate {
            bank: 3,
            row: RowId(42),
        },
        t(0),
    )
    .unwrap();
    assert_eq!(rcd.detections().len(), 1);
    let d = rcd.detections()[0];
    assert_eq!(d.row, RowId(42));
    assert_eq!(d.bank, BankId(3));
}

#[test]
fn forced_refresh_catchup_keeps_fault_model_current() {
    let mut rcd = rcd_with_flag(RowId(0));
    // Disturb row 0 via its neighbor.
    rcd.issue(
        0,
        DramCommand::Activate {
            bank: 0,
            row: RowId(1),
        },
        t(0),
    )
    .unwrap();
    assert_eq!(rcd.ranks()[0].disturbance_of(0, RowId(0)), 1);
    // The cursor's first rowset covers row 0 (256 rows, 8192 sets -> one
    // row per REF).
    rcd.force_refresh(0, 0, t(100));
    assert_eq!(rcd.ranks()[0].disturbance_of(0, RowId(0)), 0);
    assert_eq!(rcd.ranks()[0].stats().refreshes, 1);
}
