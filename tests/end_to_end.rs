//! Full-pipeline integration tests: workload generators → controllers →
//! RCD → DRAM, with physics sanity checks.

use twice_repro::core::TableOrganization;
use twice_repro::mitigations::DefenseKind;
use twice_repro::sim::config::SimConfig;
use twice_repro::sim::runner::{run, WorkloadKind};
use twice_repro::sim::system::System;
use twice_repro::workloads::synth::S1Random;
use twice_repro::workloads::AccessSource;

fn cfg() -> SimConfig {
    SimConfig::fast_test()
}

#[test]
fn every_workload_runs_under_every_defense_lineup_member() {
    let workloads = [
        WorkloadKind::SpecRate("lbm"),
        WorkloadKind::MixBlend,
        WorkloadKind::Fft,
        WorkloadKind::Radix,
        WorkloadKind::Mica,
        WorkloadKind::PageRank,
        WorkloadKind::S1,
    ];
    for w in workloads {
        for d in DefenseKind::figure7_lineup() {
            let label = format!("{w} under {d}");
            let m = run(&cfg(), w.clone(), d, 2_000);
            assert_eq!(m.requests, 2_000, "{label}");
            assert!(m.normal_acts > 0, "{label}");
            assert_eq!(m.bit_flips, 0, "{label}: benign workloads must not flip");
        }
    }
}

#[test]
fn act_rate_never_beats_ddr_timing() {
    // tRC bounds per-bank ACT rate; with B banks the system-wide mean
    // ACT interval must be at least tRC/B (it is far larger in practice
    // because of tFAW and the command bus).
    let cfg = cfg();
    let m = run(&cfg, WorkloadKind::S1, DefenseKind::None, 20_000);
    let banks = u64::from(cfg.topology.total_banks());
    assert!(
        m.mean_act_interval().as_ps() * banks >= cfg.params.timings.t_rc.as_ps(),
        "mean interval {} violates tRC/{banks}",
        m.mean_act_interval()
    );
}

#[test]
fn refreshes_cover_the_window_schedule() {
    let cfg = cfg();
    let mut sys = System::new(&cfg, DefenseKind::None);
    let trace = S1Random::new(&cfg.topology, 1).take_requests(30_000);
    sys.run(trace).expect("fault-free run");
    let ctrl = &sys.controllers()[0];
    let refs: u64 = ctrl.rank_stats().map(|s| s.refreshes).sum();
    let banks = u64::from(cfg.topology.banks_per_channel());
    let expected = ctrl.now().as_ps() / cfg.params.timings.t_refi.as_ps() * banks;
    assert!(
        refs + banks >= expected && refs <= expected + banks,
        "refs {refs} vs expected ~{expected}"
    );
}

#[test]
fn energy_accounting_is_consistent() {
    let cfg = cfg();
    let m = run(&cfg, WorkloadKind::S1, DefenseKind::None, 5_000);
    // Energy must be at least the activation energy of all ACTs.
    let model = twice_repro::dram::energy::DramEnergyModel::ddr4();
    assert!(m.energy_pj >= m.normal_acts * model.act_pre_pj);
}

#[test]
fn detections_carry_accurate_coordinates() {
    let cfg = cfg();
    let mut sys = System::new(
        &cfg,
        DefenseKind::Twice(TableOrganization::FullyAssociative),
    );
    let topo = cfg.topology.clone();
    let s3 = twice_repro::workloads::synth::S3SingleRowHammer::new(&topo, cfg.seed);
    let target = s3.target();
    sys.run(s3.take_requests(20_000)).expect("fault-free run");
    let detections = sys.controllers()[0].detections();
    assert!(!detections.is_empty());
    for d in detections {
        assert_eq!(d.row, target, "detection must name the aggressor");
        assert_eq!(d.act_count, cfg.params.th_rh);
    }
}

#[test]
fn twice_is_invisible_to_throughput_on_benign_traffic() {
    // Same trace, with and without TWiCe: served counts and ACT counts
    // must match exactly (no ARRs fire), and the simulated end time must
    // be identical — the paper's "no performance overhead" claim.
    let cfg = cfg();
    let a = run(&cfg, WorkloadKind::MixBlend, DefenseKind::None, 10_000);
    let b = run(
        &cfg,
        WorkloadKind::MixBlend,
        DefenseKind::Twice(TableOrganization::Split),
        10_000,
    );
    assert_eq!(a.normal_acts, b.normal_acts);
    assert_eq!(b.additional_acts, 0);
    assert_eq!(a.sim_time, b.sim_time, "TWiCe must not slow benign traffic");
}

#[test]
fn multi_channel_systems_route_and_protect() {
    let mut cfg = SimConfig::fast_test();
    cfg.topology.channels = 2;
    let m = run(
        &cfg,
        WorkloadKind::S1,
        DefenseKind::Twice(TableOrganization::FullyAssociative),
        20_000,
    );
    assert_eq!(m.requests, 20_000);
    assert_eq!(m.bit_flips, 0);
}

#[test]
fn twice_protects_under_all_bank_refresh_mode_too() {
    // TWiCe's pruning rides the refresh hooks; the REFab scheduling mode
    // must preserve the guarantee and the zero-benign-overhead property.
    let mut cfg = SimConfig::fast_test();
    cfg.refresh_mode = twice_repro::memctrl::RefreshMode::AllBank;
    let attacked = run(
        &cfg,
        WorkloadKind::S3,
        DefenseKind::Twice(TableOrganization::FullyAssociative),
        60_000,
    );
    assert_eq!(attacked.bit_flips, 0);
    assert!(attacked.detections > 0);
    let benign = run(
        &cfg,
        WorkloadKind::S1,
        DefenseKind::Twice(TableOrganization::FullyAssociative),
        20_000,
    );
    assert_eq!(benign.additional_acts, 0);
}

#[test]
fn spared_rows_do_not_disturb_benign_traffic() {
    let mut cfg = SimConfig::fast_test();
    cfg.faults_per_bank = 16;
    let m = run(
        &cfg,
        WorkloadKind::S1,
        DefenseKind::Twice(TableOrganization::FullyAssociative),
        20_000,
    );
    assert_eq!(m.bit_flips, 0);
    assert_eq!(m.additional_acts, 0);
}
