//! Regenerates every *computational* table of the paper in one shot:
//! Table 2 (parameters), Table 3 (timing/energy model), Table 4 (system
//! configuration), the §4.4 capacity bound, the §6.2 storage arithmetic,
//! and the §5.2 ARR-overhead claims.
//!
//! The measured tables (Table 1, Figure 7) need simulation time and live
//! in `cargo bench` (see EXPERIMENTS.md); everything here is instant.
//!
//! Run with: `cargo run --example paper_tables`

use twice_repro::core::cost::TwiceCostModel;
use twice_repro::core::TwiceParams;
use twice_repro::sim::config::SimConfig;
use twice_repro::sim::experiments::{ablation, capacity, storage, table2, table3, table4};

fn main() {
    let params = TwiceParams::paper_default();
    let cfg = SimConfig::paper_default();

    println!("{}", table2::table2(&params));
    println!(
        "{}",
        table3::table3(&TwiceCostModel::table3_45nm(), &params.timings)
    );
    println!("{}", table4::table4(&cfg));
    println!("{}", capacity::capacity(&params, 128).table);
    println!("{}", storage::storage(&params).table);
    println!("{}", ablation::arr_overhead(&params).table);
    println!(
        "{}",
        ablation::th_rh_sweep(&params, &[8_192, 16_384, 32_768, 65_536])
    );
    println!("{}", ablation::timing_sweep(&params));
}
