//! Why the ARR command exists: row sparing breaks logical adjacency.
//!
//! DRAM vendors remap faulty rows to spare rows inside the device
//! (§2.2). A defense living in the memory controller only knows
//! *logical* adjacency (`row ± 1`), so when the hammered row happens to
//! be a remapped one, the MC refreshes rows that are **not** the
//! physical victims — and the real victims flip anyway. TWiCe's ARR
//! (§5.2) just names the aggressor; the device resolves physical
//! adjacency internally and refreshes the true victims.
//!
//! This example builds a system with spared rows, finds a remapped row,
//! hammers it, and compares an (idealized, aggressive) MC-side counter
//! defense against RCD-side TWiCe.
//!
//! Run with: `cargo run --release --example remapped_rows`

use twice_repro::common::RowId;
use twice_repro::core::TableOrganization;
use twice_repro::mitigations::DefenseKind;
use twice_repro::sim::config::SimConfig;
use twice_repro::sim::runner::{run, WorkloadKind};
use twice_repro::sim::system::System;
use twice_repro::workloads::attack::HammerShape;

fn main() {
    let mut cfg = SimConfig::fast_test();
    cfg.faults_per_bank = 32; // spared rows per bank

    // Find a row of bank 0 that the vendor remapped to a spare.
    let probe = System::new(&cfg, DefenseKind::None);
    let remap = probe.controllers()[0].rcd().ranks()[0].remap_table(0);
    let aggressor = (0..cfg.topology.rows_per_bank)
        .map(RowId)
        .find(|&r| remap.is_remapped(r))
        .expect("32 faults guarantee a remapped row");
    let physical: Vec<RowId> = remap.physical_neighbors(aggressor).into_iter().collect();
    let logical: Vec<RowId> = remap.logical_neighbors(aggressor).into_iter().collect();
    println!("Aggressor row {aggressor} is remapped to a spare.");
    println!("  logical neighbors (what an MC-side defense refreshes): {logical:?}");
    println!("  physical victims  (what an ARR refreshes)           : {physical:?}");
    assert_ne!(physical, logical);

    let attack = WorkloadKind::Attack(HammerShape::SingleSided { aggressor });
    let requests = 60_000;

    // CRA with TWiCe's own threshold: it counts perfectly and refreshes
    // *logical* neighbors on every threshold crossing...
    let cra = run(
        &cfg,
        attack.clone(),
        DefenseKind::Cra { cache_entries: 512 },
        requests,
    );
    // ...while TWiCe asks the device for an ARR.
    let twice = run(
        &cfg,
        attack.clone(),
        DefenseKind::Twice(TableOrganization::FullyAssociative),
        requests,
    );
    let none = run(&cfg, attack, DefenseKind::None, requests);

    println!(
        "\n{:>14} {:>10} {:>12} {:>10}",
        "defense", "bit flips", "detections", "extra ACTs"
    );
    println!(
        "{:>14} {:>10} {:>12} {:>10}",
        "none", none.bit_flips, none.detections, none.additional_acts
    );
    println!(
        "{:>14} {:>10} {:>12} {:>10}",
        "CRA (MC-side)", cra.bit_flips, cra.detections, cra.additional_acts
    );
    println!(
        "{:>14} {:>10} {:>12} {:>10}",
        "TWiCe (ARR)", twice.bit_flips, twice.detections, twice.additional_acts
    );

    assert!(none.bit_flips > 0, "the attack must work undefended");
    assert!(
        cra.bit_flips > 0,
        "MC-side refreshes of logical neighbors must miss the real victims"
    );
    assert_eq!(twice.bit_flips, 0, "ARR resolves physical adjacency");
    println!(
        "\nThe MC-side scheme detected the attack {} times yet still lost data;",
        cra.detections
    );
    println!("only the in-device ARR protected the physically adjacent victims.");
}
