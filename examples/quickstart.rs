//! Quickstart: protect one DRAM bank with TWiCe.
//!
//! Builds a TWiCe engine with the paper's Table 2 parameters, streams a
//! row-hammer pattern at it, and shows the three things TWiCe gives you:
//! bounded state, explicit attack detection, and an Adjacent Row Refresh
//! before the row-hammer threshold can be reached.
//!
//! Run with: `cargo run --release --example quickstart`

use twice_repro::common::{BankId, RowHammerDefense, RowId, Time};
use twice_repro::core::{CapacityBound, TwiceEngine, TwiceParams};

fn main() {
    let params = TwiceParams::paper_default();
    let bound = CapacityBound::for_params(&params);
    println!("TWiCe parameters (Table 2):");
    println!("  thRH    = {:>6}   (detection threshold)", params.th_rh);
    println!("  thPI    = {:>6}   (pruning threshold)", params.th_pi());
    println!("  maxact  = {:>6}   (max ACTs per tREFI)", params.max_act());
    println!(
        "  maxlife = {:>6}   (PIs per refresh window)",
        params.max_life()
    );
    println!(
        "  table   = {:>6} entries/bank  (vs {} rows: {}x smaller)",
        bound.total(),
        params.rows_per_bank,
        params.rows_per_bank as usize / bound.total()
    );

    let mut twice = TwiceEngine::new(params.clone(), 1);
    let bank = BankId(0);
    let aggressor = RowId(0x5A5A);
    let mut now = Time::ZERO;
    let t_rc = params.timings.t_rc;

    // Hammer as fast as DDR4 timing allows; prune at every tREFI as the
    // auto-refresh machinery would.
    let mut acts: u64 = 0;
    let prune_every = params.max_act();
    loop {
        let response = twice.on_activate(bank, aggressor, now);
        acts += 1;
        now += t_rc;
        if acts.is_multiple_of(prune_every) {
            twice.on_auto_refresh(bank, now);
        }
        if let Some(detection) = response.detection {
            println!("\nAttack detected!");
            println!("  row        : {:#x}", detection.row);
            println!("  after      : {} activations", detection.act_count);
            println!("  at         : {} (simulated)", detection.at);
            println!(
                "  response   : ARR for row {:#x} -> physical neighbors refreshed",
                response.arr.expect("detection always carries an ARR")
            );
            break;
        }
    }
    assert_eq!(acts, params.th_rh, "detection fires exactly at thRH");
    println!(
        "\nOverhead: 2 extra ACTs per {} = {:.4}% (the paper's 0.006%)",
        params.th_rh,
        200.0 / params.th_rh as f64
    );
    println!(
        "Table occupancy never exceeded {} of {} entries.",
        twice.max_occupancy(bank),
        bound.total()
    );
}
