//! An end-to-end row-hammer attack against a full simulated memory
//! system — undefended, then under TWiCe.
//!
//! The whole pipeline is real: attack trace → memory controller
//! (PAR-BS, minimalist-open) → RCD → DDR4 bank state machines with
//! timing enforcement → disturbance fault model. On the unprotected
//! system the victim's bits flip; with TWiCe in the RCD the aggressor is
//! detected, its PRE becomes an ARR, and nothing flips.
//!
//! Uses the scaled test system (compressed refresh window, low `N_th`)
//! so the attack completes in seconds; the physics is identical.
//!
//! Run with: `cargo run --release --example rowhammer_attack`

use twice_repro::core::{DetectionLog, TableOrganization};
use twice_repro::mitigations::DefenseKind;
use twice_repro::sim::config::SimConfig;
use twice_repro::sim::runner::{build_trace, double_sided, run, WorkloadKind};
use twice_repro::sim::system::System;

fn main() {
    let cfg = SimConfig::fast_test();
    println!(
        "System: {} channel(s), {} banks/rank, {} rows/bank, N_th = {}",
        cfg.topology.channels,
        cfg.topology.banks_per_rank,
        cfg.topology.rows_per_bank,
        cfg.fault_n_th
    );
    let requests = 60_000;

    for (label, attack) in [
        ("single-sided hammer (S3)", WorkloadKind::S3),
        ("double-sided hammer around row 100", double_sided(100)),
    ] {
        println!("\n=== {label} ({requests} requests) ===");
        let unprotected = run(&cfg, attack.clone(), DefenseKind::None, requests);
        println!(
            "  unprotected : {:>6} ACTs, {} bit flip(s)  <-- silent data corruption",
            unprotected.normal_acts, unprotected.bit_flips
        );
        for org in [
            TableOrganization::FullyAssociative,
            TableOrganization::PseudoAssociative,
            TableOrganization::Split,
        ] {
            let defended = run(&cfg, attack.clone(), DefenseKind::Twice(org), requests);
            println!(
                "  TWiCe({:5}) : {:>6} ACTs, {} bit flip(s), {} detection(s), {} ARR-victim refreshes, {} nacks",
                org.label(),
                defended.normal_acts,
                defended.bit_flips,
                defended.detections,
                defended.additional_acts,
                defended.nacks,
            );
            assert!(unprotected.bit_flips > 0, "attack must work undefended");
            assert_eq!(defended.bit_flips, 0, "TWiCe must prevent every flip");
        }
    }
    println!("\nTWiCe prevented every bit flip while adding <0.8% extra ACTs.");

    // Forensics: counter-based detection names the aggressor, so the
    // system can act on it (paper 3.4).
    let mut sys = System::new(&cfg, DefenseKind::Twice(TableOrganization::Split));
    sys.run(build_trace(&cfg, &WorkloadKind::S3, requests))
        .expect("fault-free run");
    let mut log = DetectionLog::new();
    for ctrl in sys.controllers() {
        log.extend(ctrl.detections());
    }
    println!(
        "\nIncident report:\n{}",
        log.report(cfg.params.timings.t_refw)
    );
}
