//! Figure 7 in miniature: compare every defense on benign and
//! adversarial traffic.
//!
//! Sweeps the paper's lineup (PARA-0.001/0.002, CBT-256, TWiCe) plus
//! PRoHIT, CRA, and the per-row oracle across a benign mix, random
//! traffic (S1), and the single-row hammer (S3), printing the Figure 7
//! metric — additional ACTs relative to normal ACTs — along with
//! detections and bit flips.
//!
//! Run with: `cargo run --release --example defense_comparison`

use twice_repro::core::TableOrganization;
use twice_repro::mitigations::DefenseKind;
use twice_repro::sim::config::SimConfig;
use twice_repro::sim::report::{percent, Table};
use twice_repro::sim::runner::{run, WorkloadKind};

fn main() {
    let cfg = SimConfig::fast_test();
    let defenses = [
        DefenseKind::Para { p: 0.001 },
        DefenseKind::Para { p: 0.002 },
        DefenseKind::Prohit { p: 0.001 },
        DefenseKind::Cbt { counters: 256 },
        DefenseKind::Cra { cache_entries: 512 },
        DefenseKind::Twice(TableOrganization::Split),
        DefenseKind::Oracle,
    ];
    let workloads = [
        ("mix-blend", WorkloadKind::MixBlend, 30_000u64),
        ("S1 random", WorkloadKind::S1, 30_000),
        ("S3 hammer", WorkloadKind::S3, 60_000),
    ];

    let mut table = Table::new(
        "Additional-ACT ratio (Figure 7 metric), detections, flips",
        &[
            "defense",
            "workload",
            "additional ACTs",
            "detections",
            "bit flips",
        ],
    );
    for &kind in &defenses {
        for (label, workload, requests) in &workloads {
            let m = run(&cfg, workload.clone(), kind, *requests);
            table.row(&[
                kind.to_string(),
                (*label).to_string(),
                percent(m.additional_act_ratio()),
                m.detections.to_string(),
                m.bit_flips.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!("Reading guide:");
    println!("  - PARA-p costs ~p everywhere and never detects.");
    println!("  - CRA's counter-cache misses explode on low-locality traffic.");
    println!("  - CBT refreshes whole row groups when a counter trips.");
    println!("  - TWiCe adds nothing on benign traffic and 2 ACTs per thRH on attacks,");
    println!("    with an explicit detection each time -- same decisions as the oracle.");
}
