//! Snapshot/restore round-trip properties for every baseline defense.
//!
//! For each [`DefenseKind`]: drive the defense with a deterministic
//! mixed workload, snapshot mid-run, restore the blob into a freshly
//! built instance, and require (a) identical state digests immediately
//! after the restore and (b) bit-identical responses and digests over a
//! continued lockstep run. Any hidden state that escapes the snapshot
//! surfaces as a hard failure here.

use twice::{TableOrganization, TwiceParams};
use twice_common::rng::SplitMix64;
use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, StateDigest};
use twice_common::{BankId, RowHammerDefense, RowId, Time};
use twice_mitigations::{make_defense, DefenseKind};

fn every_kind() -> Vec<DefenseKind> {
    vec![
        DefenseKind::None,
        DefenseKind::Twice(TableOrganization::FullyAssociative),
        DefenseKind::Twice(TableOrganization::PseudoAssociative),
        DefenseKind::Twice(TableOrganization::Split),
        DefenseKind::Para { p: 0.01 },
        DefenseKind::Prohit { p: 0.01 },
        DefenseKind::Cbt { counters: 16 },
        DefenseKind::Cra { cache_entries: 16 },
        DefenseKind::Oracle,
        DefenseKind::Trr { entries: 4 },
        DefenseKind::Graphene,
    ]
}

fn digest(d: &dyn RowHammerDefense) -> u64 {
    let mut acc = StateDigest::new();
    d.digest_state(&mut acc);
    acc.finish()
}

fn save(d: &dyn RowHammerDefense) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    d.save_state(&mut w);
    w.finish()
}

fn restore(d: &mut dyn RowHammerDefense, bytes: &[u8]) -> Result<(), SnapshotError> {
    let mut r = SnapshotReader::new(bytes)?;
    d.load_state(&mut r)
}

/// One deterministic step of a mixed hot/background workload with
/// periodic auto-refreshes.
fn step(d: &mut dyn RowHammerDefense, rng: &mut SplitMix64, i: u64) -> (Vec<RowId>, bool) {
    let bank = BankId((rng.next_below(2)) as u32);
    let row = if i.is_multiple_of(3) {
        RowId(77)
    } else {
        RowId(rng.next_below(512) as u32)
    };
    let now = Time::from_ps(i * 45_000);
    let resp = d.on_activate(bank, row, now);
    if i % 64 == 63 {
        d.on_auto_refresh(bank, now);
    }
    (resp.refresh_rows, resp.detection.is_some())
}

#[test]
fn snapshot_round_trip_preserves_behavior_for_every_defense() {
    let params = TwiceParams::fast_test();
    for kind in every_kind() {
        let mut original = make_defense(kind, &params, 2, 9);
        let mut rng = SplitMix64::new(0xD1CE);
        for i in 0..4_000u64 {
            step(original.as_mut(), &mut rng, i);
        }

        let blob = save(original.as_ref());
        let mut restored = make_defense(kind, &params, 2, 9);
        restore(restored.as_mut(), &blob).unwrap_or_else(|e| panic!("{kind}: restore failed: {e}"));
        assert_eq!(
            digest(original.as_ref()),
            digest(restored.as_ref()),
            "{kind}: digest must match right after restore"
        );

        // Lockstep continuation: both copies must stay bit-identical.
        let mut rng_a = rng.clone();
        let mut rng_b = rng;
        for i in 4_000..6_000u64 {
            let a = step(original.as_mut(), &mut rng_a, i);
            let b = step(restored.as_mut(), &mut rng_b, i);
            assert_eq!(a, b, "{kind}: divergence at step {i}");
        }
        assert_eq!(
            digest(original.as_ref()),
            digest(restored.as_ref()),
            "{kind}: digest must match after continued run"
        );
    }
}

#[test]
fn restore_into_wrong_bank_count_is_rejected() {
    let params = TwiceParams::fast_test();
    for kind in every_kind() {
        if matches!(kind, DefenseKind::None | DefenseKind::Para { .. }) {
            continue; // bank-oblivious defenses carry no geometry
        }
        let donor = make_defense(kind, &params, 2, 9);
        let blob = save(donor.as_ref());
        let mut narrow = make_defense(kind, &params, 1, 9);
        let err = restore(narrow.as_mut(), &blob);
        assert!(
            matches!(err, Err(SnapshotError::StateMismatch(_))),
            "{kind}: expected StateMismatch, got {err:?}"
        );
    }
}

#[test]
fn corrupted_blob_is_rejected_for_every_defense() {
    let params = TwiceParams::fast_test();
    for kind in every_kind() {
        let mut d = make_defense(kind, &params, 2, 9);
        let mut rng = SplitMix64::new(3);
        for i in 0..500u64 {
            step(d.as_mut(), &mut rng, i);
        }
        let mut blob = save(d.as_ref());
        if blob.len() <= 14 {
            continue; // header + checksum only: nothing to corrupt
        }
        let mid = blob.len() / 2;
        blob[mid] ^= 0x10;
        let err = SnapshotReader::new(&blob).err();
        assert!(
            matches!(err, Some(SnapshotError::ChecksumMismatch { .. })),
            "{kind}: flipped byte must fail the checksum, got {err:?}"
        );
    }
}
