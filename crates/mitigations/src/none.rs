//! The unprotected baseline.

use twice_common::{BankId, DefenseResponse, RowHammerDefense, RowId, Time};

/// A defense that never acts — the vulnerable baseline used to confirm
/// that the fault model actually flips bits without protection.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProtection;

impl NoProtection {
    /// Creates the null defense.
    pub fn new() -> NoProtection {
        NoProtection
    }
}

impl RowHammerDefense for NoProtection {
    fn name(&self) -> &str {
        "none"
    }

    fn on_activate(&mut self, _: BankId, _: RowId, _: Time) -> DefenseResponse {
        DefenseResponse::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_acts() {
        let mut d = NoProtection::new();
        for i in 0..100_000u32 {
            assert!(d.on_activate(BankId(0), RowId(i % 3), Time::ZERO).is_none());
        }
    }
}
