//! TRR: an in-DRAM Target Row Refresh model.
//!
//! DDR4/LPDDR4 expose a *target row refresh* mode whose aggressor
//! identification is vendor-secret (§8 of the TWiCe paper: "there is no
//! detail on how to count the number of ACTs to each row … TWiCe fills
//! this gap"). What vendors shipped is known, post-TRRespass, to
//! resemble a **small heavy-hitter tracker**: a handful of in-DRAM
//! entries following a Misra–Gries-style frequent-item sketch, with the
//! tracked rows' neighbors refreshed once a count reaches the MAC
//! (maximum activation count).
//!
//! That design detects any *single* dominant aggressor, but a
//! **many-sided** attack that rotates more aggressors than the tracker
//! has entries keeps every per-row share below the sketch's detection
//! floor — exactly how real TRR was defeated. This model exists to make
//! that gap measurable against TWiCe (see the `trr_gap` tests): TWiCe's
//! table is sized so that *every* possible aggressor is tracked, so
//! rotation does not help the attacker.
//!
//! Being in-DRAM, TRR resolves physical adjacency itself; it uses the
//! ARR response channel like TWiCe does.

use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, StateDigest};
use twice_common::{
    BankId, DefensePressure, DefenseResponse, Detection, RowHammerDefense, RowId, Time,
};

/// One tracker entry.
#[derive(Debug, Clone, Copy)]
struct Slot {
    row: RowId,
    count: u64,
}

/// The TRR defense model.
#[derive(Debug, Clone)]
pub struct Trr {
    entries: usize,
    mac: u64,
    refs_per_window: u64,
    banks: Vec<TrrBank>,
    /// TRR refreshes fired (pressure introspection).
    fired: u64,
    name: String,
}

#[derive(Debug, Clone, Default)]
struct TrrBank {
    slots: Vec<Slot>,
    refs_seen: u64,
}

impl Trr {
    /// Creates a TRR model with `entries` tracker slots per bank and a
    /// maximum activation count of `mac`, resetting every
    /// `refs_per_window` auto-refreshes.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(entries: usize, mac: u64, num_banks: u32, refs_per_window: u64) -> Trr {
        assert!(entries > 0, "tracker needs entries");
        assert!(mac > 0, "MAC must be non-zero");
        assert!(num_banks > 0, "need at least one bank");
        assert!(refs_per_window > 0, "refs_per_window must be non-zero");
        Trr {
            name: format!("TRR-{entries}"),
            entries,
            mac,
            refs_per_window,
            banks: vec![TrrBank::default(); num_banks as usize],
            fired: 0,
        }
    }

    /// Rows currently tracked in `bank` (for tests).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn tracked(&self, bank: BankId) -> Vec<RowId> {
        self.banks[bank.index()]
            .slots
            .iter()
            .map(|s| s.row)
            .collect()
    }
}

impl RowHammerDefense for Trr {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_activate(&mut self, bank: BankId, row: RowId, now: Time) -> DefenseResponse {
        let mac = self.mac;
        let capacity = self.entries;
        let b = &mut self.banks[bank.index()];
        // Misra-Gries update.
        if let Some(slot) = b.slots.iter_mut().find(|s| s.row == row) {
            slot.count += 1;
            if slot.count >= mac {
                let aggressor = slot.row;
                slot.count = 0;
                self.fired += 1;
                return DefenseResponse {
                    detection: Some(Detection {
                        bank,
                        row: aggressor,
                        at: now,
                        act_count: mac,
                    }),
                    ..DefenseResponse::arr(aggressor)
                };
            }
        } else if b.slots.len() < capacity {
            b.slots.push(Slot { row, count: 1 });
        } else {
            // Decrement-all: untracked activations bleed every counter.
            for slot in &mut b.slots {
                slot.count = slot.count.saturating_sub(1);
            }
            b.slots.retain(|s| s.count > 0);
        }
        DefenseResponse::none()
    }

    fn on_auto_refresh(&mut self, bank: BankId, _now: Time) -> DefenseResponse {
        let b = &mut self.banks[bank.index()];
        b.refs_seen += 1;
        if b.refs_seen.is_multiple_of(self.refs_per_window) {
            b.slots.clear();
        }
        DefenseResponse::none()
    }

    fn reset(&mut self) {
        for b in &mut self.banks {
            *b = TrrBank::default();
        }
        self.fired = 0;
    }

    fn pressure(&self) -> DefensePressure {
        let hottest = self
            .banks
            .iter()
            .flat_map(|b| b.slots.iter().map(|s| s.count))
            .max()
            .unwrap_or(0);
        DefensePressure::from_counter(hottest, self.mac, self.fired)
    }

    fn table_occupancy(&self, bank: BankId) -> Option<usize> {
        Some(self.banks[bank.index()].slots.len())
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.fired);
        w.put_usize(self.banks.len());
        // Slot order is the tracker's insertion order; saved verbatim.
        for b in &self.banks {
            w.put_u64(b.refs_seen);
            w.put_usize(b.slots.len());
            for slot in &b.slots {
                w.put_u32(slot.row.0);
                w.put_u64(slot.count);
            }
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.fired = r.take_u64()?;
        let banks = r.take_usize()?;
        if banks != self.banks.len() {
            return Err(SnapshotError::StateMismatch(format!(
                "TRR has {} banks, snapshot has {banks}",
                self.banks.len()
            )));
        }
        for b in &mut self.banks {
            b.refs_seen = r.take_u64()?;
            let n = r.take_usize()?;
            b.slots.clear();
            for _ in 0..n {
                let row = RowId(r.take_u32()?);
                let count = r.take_u64()?;
                b.slots.push(Slot { row, count });
            }
        }
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_u64(self.fired);
        for b in &self.banks {
            d.write_u64(b.refs_seen);
            d.write_usize(b.slots.len());
            for slot in &b.slots {
                d.write_u32(slot.row.0);
                d.write_u64(slot.count);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_aggressor_is_caught_at_mac() {
        let mut trr = Trr::new(4, 100, 1, 1000);
        let mut arrs = 0;
        for _ in 0..1000 {
            if trr
                .on_activate(BankId(0), RowId(7), Time::ZERO)
                .arr
                .is_some()
            {
                arrs += 1;
            }
        }
        assert_eq!(arrs, 10, "ARR every MAC activations");
    }

    #[test]
    fn tracker_is_bounded() {
        let mut trr = Trr::new(4, 100, 1, 1000);
        for i in 0..100 {
            trr.on_activate(BankId(0), RowId(i), Time::ZERO);
        }
        assert!(trr.tracked(BankId(0)).len() <= 4);
    }

    #[test]
    fn rotation_beyond_tracker_size_evades_detection() {
        // 8 aggressors vs 4 slots: decrement-all keeps every count near
        // zero, so no aggressor ever reaches the MAC.
        let mut trr = Trr::new(4, 100, 1, 1_000_000);
        let mut arrs = 0;
        for i in 0..80_000u32 {
            let row = RowId(10 * (i % 8));
            if trr.on_activate(BankId(0), row, Time::ZERO).arr.is_some() {
                arrs += 1;
            }
        }
        assert_eq!(arrs, 0, "many-sided rotation must slip past TRR");
    }

    #[test]
    fn rotation_within_tracker_size_is_still_caught() {
        let mut trr = Trr::new(4, 100, 1, 1_000_000);
        let mut arrs = 0;
        for i in 0..4_000u32 {
            let row = RowId(10 * (i % 3));
            if trr.on_activate(BankId(0), row, Time::ZERO).arr.is_some() {
                arrs += 1;
            }
        }
        assert!(arrs > 0, "3 aggressors fit in 4 slots");
    }

    #[test]
    fn window_reset_clears_the_tracker() {
        let mut trr = Trr::new(4, 100, 1, 8);
        trr.on_activate(BankId(0), RowId(1), Time::ZERO);
        for _ in 0..8 {
            trr.on_auto_refresh(BankId(0), Time::ZERO);
        }
        assert!(trr.tracked(BankId(0)).is_empty());
    }
}
