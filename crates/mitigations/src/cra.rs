//! CRA: Counter-based Row Activation ([Kim, Nair & Qureshi, CAL'15],
//! as described in §3.3 of the TWiCe paper).
//!
//! CRA keeps one activation counter **per DRAM row**, stored in a
//! reserved region of DRAM itself, with a small counter *cache* in the
//! memory controller. A cached counter costs nothing to bump; a miss
//! requires fetching the counter from DRAM (and writing back the evicted
//! one), which the TWiCe paper charges as extra DRAM activations — "in
//! random access workloads, the number of ACTs is nearly doubled"
//! (§3.4). We charge one metadata activation per miss.
//!
//! Like all counter schemes it detects attacks deterministically: a row
//! crossing the threshold gets its (logical) neighbors refreshed.

use std::collections::{HashMap, VecDeque};
use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, StateDigest};
use twice_common::{BankId, DefenseResponse, Detection, RowHammerDefense, RowId, Time};

#[derive(Debug, Clone, Default)]
struct CraBank {
    /// Authoritative per-row counters (the in-DRAM region).
    counters: HashMap<u32, u64>,
    /// Cache: row → last-touch stamp.
    cache: HashMap<u32, u64>,
    /// Lazy LRU queue of (row, stamp).
    lru: VecDeque<(u32, u64)>,
    stamp: u64,
    refs_seen: u64,
}

/// The CRA defense.
#[derive(Debug, Clone)]
pub struct Cra {
    th: u64,
    cache_capacity: usize,
    refs_per_window: u64,
    banks: Vec<CraBank>,
    name: String,
}

impl Cra {
    /// Creates CRA with `cache_capacity` cached counters per bank and
    /// refresh threshold `th`, resetting counters every
    /// `refs_per_window` auto-refreshes.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(cache_capacity: usize, th: u64, num_banks: u32, refs_per_window: u64) -> Cra {
        assert!(cache_capacity > 0, "cache must have entries");
        assert!(th > 0, "threshold must be non-zero");
        assert!(num_banks > 0, "need at least one bank");
        assert!(refs_per_window > 0, "refs_per_window must be non-zero");
        Cra {
            name: format!("CRA-{cache_capacity}"),
            th,
            cache_capacity,
            refs_per_window,
            banks: vec![CraBank::default(); num_banks as usize],
        }
    }

    /// Whether `row`'s counter is currently cached in `bank` (for tests).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn is_cached(&self, bank: BankId, row: RowId) -> bool {
        self.banks[bank.index()].cache.contains_key(&row.0)
    }
}

impl CraBank {
    /// Touches `row` in the cache; returns `true` on a hit.
    fn touch(&mut self, row: u32, capacity: usize) -> bool {
        self.stamp += 1;
        let stamp = self.stamp;
        let hit = self.cache.insert(row, stamp).is_some();
        self.lru.push_back((row, stamp));
        if !hit && self.cache.len() > capacity {
            // Evict the true LRU entry (skipping stale queue nodes).
            while let Some((r, s)) = self.lru.pop_front() {
                if self.cache.get(&r) == Some(&s) {
                    self.cache.remove(&r);
                    break;
                }
            }
        }
        // Bound the lazy queue.
        if self.lru.len() > capacity * 4 {
            let cache = &self.cache;
            self.lru.retain(|(r, s)| cache.get(r) == Some(s));
        }
        hit
    }
}

impl RowHammerDefense for Cra {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_activate(&mut self, bank: BankId, row: RowId, now: Time) -> DefenseResponse {
        let capacity = self.cache_capacity;
        let th = self.th;
        let b = &mut self.banks[bank.index()];
        let hit = b.touch(row.0, capacity);
        let count = b.counters.entry(row.0).or_insert(0);
        *count += 1;
        let crossed = *count >= th;
        if crossed {
            *count = 0;
        }
        let metadata_acts = u32::from(!hit);
        if crossed {
            let victims: Vec<RowId> = [row.below(), row.above()].into_iter().flatten().collect();
            return DefenseResponse {
                refresh_rows: victims,
                metadata_acts,
                detection: Some(Detection {
                    bank,
                    row,
                    at: now,
                    act_count: th,
                }),
                ..DefenseResponse::default()
            };
        }
        if metadata_acts > 0 {
            return DefenseResponse {
                metadata_acts,
                ..DefenseResponse::default()
            };
        }
        DefenseResponse::none()
    }

    fn on_auto_refresh(&mut self, bank: BankId, _now: Time) -> DefenseResponse {
        let b = &mut self.banks[bank.index()];
        b.refs_seen += 1;
        if b.refs_seen.is_multiple_of(self.refs_per_window) {
            b.counters.clear();
        }
        DefenseResponse::none()
    }

    fn reset(&mut self) {
        for b in &mut self.banks {
            *b = CraBank::default();
        }
    }

    fn table_occupancy(&self, bank: BankId) -> Option<usize> {
        Some(self.banks[bank.index()].cache.len())
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.banks.len());
        for b in &self.banks {
            w.put_u64(b.stamp);
            w.put_u64(b.refs_seen);
            let mut counters: Vec<(u32, u64)> = b.counters.iter().map(|(&r, &c)| (r, c)).collect();
            counters.sort_unstable();
            w.put_usize(counters.len());
            for (row, count) in counters {
                w.put_u32(row);
                w.put_u64(count);
            }
            let mut cache: Vec<(u32, u64)> = b.cache.iter().map(|(&r, &s)| (r, s)).collect();
            cache.sort_unstable();
            w.put_usize(cache.len());
            for (row, stamp) in cache {
                w.put_u32(row);
                w.put_u64(stamp);
            }
            // The lazy queue holds stale entries whose position governs
            // future evictions, so it is saved verbatim.
            w.put_usize(b.lru.len());
            for &(row, stamp) in &b.lru {
                w.put_u32(row);
                w.put_u64(stamp);
            }
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let banks = r.take_usize()?;
        if banks != self.banks.len() {
            return Err(SnapshotError::StateMismatch(format!(
                "CRA has {} banks, snapshot has {banks}",
                self.banks.len()
            )));
        }
        for b in &mut self.banks {
            b.stamp = r.take_u64()?;
            b.refs_seen = r.take_u64()?;
            b.counters.clear();
            let n = r.take_usize()?;
            for _ in 0..n {
                let row = r.take_u32()?;
                let count = r.take_u64()?;
                b.counters.insert(row, count);
            }
            b.cache.clear();
            let n = r.take_usize()?;
            for _ in 0..n {
                let row = r.take_u32()?;
                let stamp = r.take_u64()?;
                b.cache.insert(row, stamp);
            }
            b.lru.clear();
            let n = r.take_usize()?;
            for _ in 0..n {
                let row = r.take_u32()?;
                let stamp = r.take_u64()?;
                b.lru.push_back((row, stamp));
            }
        }
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        for b in &self.banks {
            d.write_u64(b.stamp);
            d.write_u64(b.refs_seen);
            let mut counters: Vec<(u32, u64)> = b.counters.iter().map(|(&r, &c)| (r, c)).collect();
            counters.sort_unstable();
            d.write_usize(counters.len());
            for (row, count) in counters {
                d.write_u32(row);
                d.write_u64(count);
            }
            let mut cache: Vec<(u32, u64)> = b.cache.iter().map(|(&r, &s)| (r, s)).collect();
            cache.sort_unstable();
            d.write_usize(cache.len());
            for (row, stamp) in cache {
                d.write_u32(row);
                d.write_u64(stamp);
            }
            d.write_usize(b.lru.len());
            for &(row, stamp) in &b.lru {
                d.write_u32(row);
                d.write_u64(stamp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_are_free_misses_cost_a_metadata_act() {
        let mut c = Cra::new(4, 1000, 1, 100);
        let first = c.on_activate(BankId(0), RowId(1), Time::ZERO);
        assert_eq!(first.metadata_acts, 1, "cold miss");
        let second = c.on_activate(BankId(0), RowId(1), Time::ZERO);
        assert_eq!(second.metadata_acts, 0, "hit");
    }

    #[test]
    fn lru_evicts_the_least_recent_row() {
        let mut c = Cra::new(2, 1000, 1, 100);
        c.on_activate(BankId(0), RowId(1), Time::ZERO);
        c.on_activate(BankId(0), RowId(2), Time::ZERO);
        c.on_activate(BankId(0), RowId(1), Time::ZERO); // 1 is now MRU
        c.on_activate(BankId(0), RowId(3), Time::ZERO); // evicts 2
        assert!(c.is_cached(BankId(0), RowId(1)));
        assert!(!c.is_cached(BankId(0), RowId(2)));
        assert!(c.is_cached(BankId(0), RowId(3)));
    }

    #[test]
    fn random_traffic_nearly_doubles_acts() {
        // §3.4: with a cache far smaller than the footprint, almost every
        // ACT misses and fetches its counter.
        let mut c = Cra::new(64, 1_000_000, 1, 1_000_000);
        let mut x = twice_common::rng::SplitMix64::new(5);
        let n = 50_000u64;
        let mut extra = 0u64;
        for _ in 0..n {
            let row = RowId(x.next_below(100_000) as u32);
            extra += u64::from(c.on_activate(BankId(0), row, Time::ZERO).metadata_acts);
        }
        let ratio = extra as f64 / n as f64;
        assert!(ratio > 0.95, "miss ratio {ratio}, expected ~1.0");
    }

    #[test]
    fn threshold_crossing_refreshes_neighbors_and_detects() {
        let mut c = Cra::new(4, 10, 1, 100);
        let mut r = DefenseResponse::none();
        for _ in 0..10 {
            r = c.on_activate(BankId(0), RowId(5), Time::ZERO);
        }
        assert_eq!(r.refresh_rows, vec![RowId(4), RowId(6)]);
        assert!(r.detection.is_some());
        // Counter reset after the refresh.
        let r = c.on_activate(BankId(0), RowId(5), Time::ZERO);
        assert!(r.refresh_rows.is_empty());
    }

    #[test]
    fn counters_reset_each_window() {
        let mut c = Cra::new(4, 10, 1, 8);
        for _ in 0..9 {
            c.on_activate(BankId(0), RowId(5), Time::ZERO);
        }
        // 9 acts of 10; a window reset forgives them.
        for _ in 0..8 {
            c.on_auto_refresh(BankId(0), Time::ZERO);
        }
        let r = c.on_activate(BankId(0), RowId(5), Time::ZERO);
        assert!(r.refresh_rows.is_empty(), "window reset must clear counts");
    }

    #[test]
    fn cache_occupancy_is_bounded() {
        let mut c = Cra::new(8, 1000, 1, 100);
        for i in 0..1000u32 {
            c.on_activate(BankId(0), RowId(i), Time::ZERO);
        }
        assert!(c.table_occupancy(BankId(0)).unwrap() <= 8 + 1);
    }
}
