//! Graphene: exact heavy-hitter tracking via Misra–Gries
//! ([Park et al., MICRO 2020] — the direct follow-up to TWiCe).
//!
//! Where TWiCe bounds its table by *pruning* time-window counters,
//! Graphene applies the Misra–Gries frequent-item theorem: a table of
//! `k` counters with decrement-on-full **underestimates** any row's true
//! count by at most `W / (k + 1)` over a window of `W` activations.
//! Sizing `k` so that `W / (k + 1) + threshold ≤ N_th/2` gives the same
//! deterministic no-false-negative guarantee as TWiCe with a different
//! area/accuracy trade-off — and, unlike the small vendor-TRR tracker
//! ([`crate::trr`]), it cannot be evaded by rotating aggressors.
//!
//! Implemented here as a per-bank Misra–Gries table with a spillover
//! counter; a tracked row whose (under)count reaches the activation
//! threshold triggers an ARR and resets, and the table resets every
//! refresh window like TWiCe's accounting.

use std::collections::HashMap;
use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, StateDigest};
use twice_common::{
    BankId, DefensePressure, DefenseResponse, Detection, RowHammerDefense, RowId, Time,
};

/// The Graphene defense.
#[derive(Debug, Clone)]
pub struct Graphene {
    /// Activation threshold triggering an ARR (TWiCe's `thRH` analog).
    threshold: u64,
    /// Counter-table entries per bank (`k`).
    entries: usize,
    refs_per_window: u64,
    banks: Vec<GrapheneBank>,
    /// Detections fired (pressure introspection).
    fired: u64,
    name: String,
}

#[derive(Debug, Clone, Default)]
struct GrapheneBank {
    /// row -> estimated count (Misra–Gries summary).
    counts: HashMap<u32, u64>,
    /// The global decrement applied when the table is full ("spillover").
    spillover: u64,
    refs_seen: u64,
}

impl Graphene {
    /// Creates Graphene with `entries` counters per bank and activation
    /// threshold `threshold`, resetting every `refs_per_window`
    /// auto-refreshes.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(entries: usize, threshold: u64, num_banks: u32, refs_per_window: u64) -> Graphene {
        assert!(entries > 0, "need at least one counter");
        assert!(threshold > 0, "threshold must be non-zero");
        assert!(num_banks > 0, "need at least one bank");
        assert!(refs_per_window > 0, "refs_per_window must be non-zero");
        Graphene {
            name: format!("Graphene-{entries}"),
            threshold,
            entries,
            refs_per_window,
            banks: vec![GrapheneBank::default(); num_banks as usize],
            fired: 0,
        }
    }

    /// Sizes the table for the §4-style guarantee: over a window of at
    /// most `window_acts` activations, Misra–Gries underestimates by at
    /// most `window_acts / (k+1)`; choosing
    /// `k = window_acts / threshold` keeps the error within one
    /// threshold, so detection fires before `2·threshold` true
    /// activations — the same `N_th/4` margin TWiCe uses.
    pub fn sized_for(
        window_acts: u64,
        threshold: u64,
        num_banks: u32,
        refs_per_window: u64,
    ) -> Graphene {
        let entries = (window_acts / threshold.max(1)).max(1) as usize;
        Graphene::new(entries, threshold, num_banks, refs_per_window)
    }

    /// Counter-table entries per bank.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Current tracked-row count for `bank` (for tests).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn occupancy(&self, bank: BankId) -> usize {
        self.banks[bank.index()].counts.len()
    }
}

impl RowHammerDefense for Graphene {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_activate(&mut self, bank: BankId, row: RowId, now: Time) -> DefenseResponse {
        let threshold = self.threshold;
        let capacity = self.entries;
        let b = &mut self.banks[bank.index()];
        let count = if let Some(c) = b.counts.get_mut(&row.0) {
            *c += 1;
            *c
        } else if b.counts.len() < capacity {
            // Misra–Gries insert: a new row starts at spillover + 1 (its
            // true count is at most that, given the decrements applied).
            let c = b.spillover + 1;
            b.counts.insert(row.0, c);
            c
        } else {
            // Table full: the classic decrement-all step, implemented as
            // an O(1) spillover increment with lazy eviction.
            b.spillover += 1;
            let floor = b.spillover;
            b.counts.retain(|_, c| *c > floor);
            return DefenseResponse::none();
        };
        if count >= threshold {
            b.counts.remove(&row.0);
            self.fired += 1;
            return DefenseResponse {
                detection: Some(Detection {
                    bank,
                    row,
                    at: now,
                    act_count: count,
                }),
                ..DefenseResponse::arr(row)
            };
        }
        DefenseResponse::none()
    }

    fn on_auto_refresh(&mut self, bank: BankId, _now: Time) -> DefenseResponse {
        let b = &mut self.banks[bank.index()];
        b.refs_seen += 1;
        if b.refs_seen.is_multiple_of(self.refs_per_window) {
            b.counts.clear();
            b.spillover = 0;
        }
        DefenseResponse::none()
    }

    fn reset(&mut self) {
        for b in &mut self.banks {
            *b = GrapheneBank::default();
        }
        self.fired = 0;
    }

    fn pressure(&self) -> DefensePressure {
        let hottest = self
            .banks
            .iter()
            .flat_map(|b| b.counts.values().copied())
            .max()
            .unwrap_or(0);
        DefensePressure::from_counter(hottest, self.threshold, self.fired)
    }

    fn table_occupancy(&self, bank: BankId) -> Option<usize> {
        Some(self.banks[bank.index()].counts.len())
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.fired);
        w.put_usize(self.banks.len());
        for b in &self.banks {
            w.put_u64(b.spillover);
            w.put_u64(b.refs_seen);
            let mut counts: Vec<(u32, u64)> = b.counts.iter().map(|(&r, &c)| (r, c)).collect();
            counts.sort_unstable();
            w.put_usize(counts.len());
            for (row, count) in counts {
                w.put_u32(row);
                w.put_u64(count);
            }
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.fired = r.take_u64()?;
        let banks = r.take_usize()?;
        if banks != self.banks.len() {
            return Err(SnapshotError::StateMismatch(format!(
                "Graphene has {} banks, snapshot has {banks}",
                self.banks.len()
            )));
        }
        for b in &mut self.banks {
            b.spillover = r.take_u64()?;
            b.refs_seen = r.take_u64()?;
            b.counts.clear();
            let n = r.take_usize()?;
            for _ in 0..n {
                let row = r.take_u32()?;
                let count = r.take_u64()?;
                b.counts.insert(row, count);
            }
        }
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_u64(self.fired);
        for b in &self.banks {
            d.write_u64(b.spillover);
            d.write_u64(b.refs_seen);
            let mut counts: Vec<(u32, u64)> = b.counts.iter().map(|(&r, &c)| (r, c)).collect();
            counts.sort_unstable();
            d.write_usize(counts.len());
            for (row, count) in counts {
                d.write_u32(row);
                d.write_u64(count);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_hammer_is_detected_at_threshold() {
        let mut g = Graphene::new(64, 100, 1, 10_000);
        let mut arrs = 0;
        for _ in 0..1_000 {
            if g.on_activate(BankId(0), RowId(7), Time::ZERO).arr.is_some() {
                arrs += 1;
            }
        }
        assert_eq!(arrs, 10);
    }

    #[test]
    fn rotation_cannot_evade_a_correctly_sized_table() {
        // 16 rotating aggressors against a table sized for the window:
        // unlike the small TRR tracker, every aggressor is caught.
        let window_acts = 32_000u64;
        let threshold = 1_000u64;
        let mut g = Graphene::sized_for(window_acts, threshold, 1, 1_000_000);
        assert_eq!(g.entries(), 32);
        let mut detected = std::collections::HashSet::new();
        for i in 0..window_acts {
            let row = RowId((i % 16) as u32 * 10);
            if let Some(d) = g.on_activate(BankId(0), row, Time::ZERO).detection {
                detected.insert(d.row);
            }
        }
        assert_eq!(detected.len(), 16, "every rotating aggressor detected");
    }

    #[test]
    fn table_occupancy_is_bounded() {
        let mut g = Graphene::new(8, 1_000, 1, 10_000);
        for i in 0..10_000u32 {
            g.on_activate(BankId(0), RowId(i), Time::ZERO);
        }
        assert!(g.occupancy(BankId(0)) <= 8);
    }

    #[test]
    fn underestimate_is_bounded_by_window_over_k_plus_one() {
        // The Misra-Gries theorem, checked empirically: after W acts on a
        // k-entry table, a row with true count T is tracked with count
        // >= T - W/(k+1) (here: it must still be detected).
        let k = 31usize;
        let threshold = 500u64;
        let mut g = Graphene::new(k, threshold, 1, 1_000_000);
        let w = 8_000u64;
        let mut rng = twice_common::rng::SplitMix64::new(5);
        let mut hot_detected = false;
        for i in 0..w {
            // Hot row gets 1/8 of traffic (1000 acts: > threshold +
            // W/(k+1) = 500 + 250); noise spreads over many rows.
            let row = if i % 8 == 0 {
                RowId(1)
            } else {
                RowId(rng.next_below(4_000) as u32 + 10)
            };
            hot_detected |= g
                .on_activate(BankId(0), row, Time::ZERO)
                .detection
                .map(|d| d.row == RowId(1))
                .unwrap_or(false);
        }
        assert!(hot_detected, "the heavy hitter must not slip through");
    }

    #[test]
    fn window_reset_clears_state() {
        let mut g = Graphene::new(8, 1_000, 1, 4);
        g.on_activate(BankId(0), RowId(1), Time::ZERO);
        for _ in 0..4 {
            g.on_auto_refresh(BankId(0), Time::ZERO);
        }
        assert_eq!(g.occupancy(BankId(0)), 0);
    }

    #[test]
    fn banks_are_independent() {
        let mut g = Graphene::new(8, 1_000, 2, 100);
        g.on_activate(BankId(0), RowId(1), Time::ZERO);
        assert_eq!(g.occupancy(BankId(0)), 1);
        assert_eq!(g.occupancy(BankId(1)), 0);
    }
}
