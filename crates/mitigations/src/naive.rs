//! The exact per-row-counter oracle.
//!
//! One unbounded counter per row per bank — the "naïve counter-based
//! solution" of §3.3 whose cost TWiCe exists to avoid. It is *exactly*
//! as protective as TWiCe is claimed to be (refresh neighbors at `thRH`,
//! reset each window), so tests use it as the golden model: TWiCe must
//! never detect later than the oracle by more than the pruning slack the
//! §4.3 proof allows.
//!
//! Unlike the MC-side baselines, the oracle requests an **ARR** so the
//! device resolves physical adjacency — it is an idealized defense.

use std::collections::HashMap;
use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, StateDigest};
use twice_common::{
    BankId, DefensePressure, DefenseResponse, Detection, RowHammerDefense, RowId, Time,
};

/// The exact per-row counting oracle.
#[derive(Debug, Clone)]
pub struct PerRowOracle {
    th_rh: u64,
    refs_per_window: u64,
    banks: Vec<OracleBank>,
    /// Detections fired (pressure introspection).
    fired: u64,
}

#[derive(Debug, Clone, Default)]
struct OracleBank {
    counts: HashMap<u32, u64>,
    refs_seen: u64,
}

impl PerRowOracle {
    /// Creates an oracle with detection threshold `th_rh`, resetting
    /// counters every `refs_per_window` auto-refreshes.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(th_rh: u64, num_banks: u32, refs_per_window: u64) -> PerRowOracle {
        assert!(th_rh > 0, "threshold must be non-zero");
        assert!(num_banks > 0, "need at least one bank");
        assert!(refs_per_window > 0, "refs_per_window must be non-zero");
        PerRowOracle {
            th_rh,
            refs_per_window,
            banks: vec![OracleBank::default(); num_banks as usize],
            fired: 0,
        }
    }

    /// The exact count for `row` in the current window.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn count_of(&self, bank: BankId, row: RowId) -> u64 {
        self.banks[bank.index()]
            .counts
            .get(&row.0)
            .copied()
            .unwrap_or(0)
    }
}

impl RowHammerDefense for PerRowOracle {
    fn name(&self) -> &str {
        "oracle"
    }

    fn on_activate(&mut self, bank: BankId, row: RowId, now: Time) -> DefenseResponse {
        let b = &mut self.banks[bank.index()];
        let count = b.counts.entry(row.0).or_insert(0);
        *count += 1;
        if *count >= self.th_rh {
            let act_count = *count;
            b.counts.remove(&row.0);
            self.fired += 1;
            return DefenseResponse {
                detection: Some(Detection {
                    bank,
                    row,
                    at: now,
                    act_count,
                }),
                ..DefenseResponse::arr(row)
            };
        }
        DefenseResponse::none()
    }

    fn on_auto_refresh(&mut self, bank: BankId, _now: Time) -> DefenseResponse {
        let b = &mut self.banks[bank.index()];
        b.refs_seen += 1;
        if b.refs_seen.is_multiple_of(self.refs_per_window) {
            b.counts.clear();
        }
        DefenseResponse::none()
    }

    fn reset(&mut self) {
        for b in &mut self.banks {
            *b = OracleBank::default();
        }
        self.fired = 0;
    }

    fn pressure(&self) -> DefensePressure {
        let hottest = self
            .banks
            .iter()
            .flat_map(|b| b.counts.values().copied())
            .max()
            .unwrap_or(0);
        DefensePressure::from_counter(hottest, self.th_rh, self.fired)
    }

    fn table_occupancy(&self, bank: BankId) -> Option<usize> {
        Some(self.banks[bank.index()].counts.len())
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.fired);
        w.put_usize(self.banks.len());
        for b in &self.banks {
            w.put_u64(b.refs_seen);
            let mut counts: Vec<(u32, u64)> = b.counts.iter().map(|(&r, &c)| (r, c)).collect();
            counts.sort_unstable();
            w.put_usize(counts.len());
            for (row, count) in counts {
                w.put_u32(row);
                w.put_u64(count);
            }
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.fired = r.take_u64()?;
        let banks = r.take_usize()?;
        if banks != self.banks.len() {
            return Err(SnapshotError::StateMismatch(format!(
                "oracle has {} banks, snapshot has {banks}",
                self.banks.len()
            )));
        }
        for b in &mut self.banks {
            b.refs_seen = r.take_u64()?;
            b.counts.clear();
            let n = r.take_usize()?;
            for _ in 0..n {
                let row = r.take_u32()?;
                let count = r.take_u64()?;
                b.counts.insert(row, count);
            }
        }
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_u64(self.fired);
        for b in &self.banks {
            d.write_u64(b.refs_seen);
            let mut counts: Vec<(u32, u64)> = b.counts.iter().map(|(&r, &c)| (r, c)).collect();
            counts.sort_unstable();
            d.write_usize(counts.len());
            for (row, count) in counts {
                d.write_u32(row);
                d.write_u64(count);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_exactly_at_threshold() {
        let mut o = PerRowOracle::new(10, 1, 100);
        for i in 1..10 {
            let r = o.on_activate(BankId(0), RowId(5), Time::ZERO);
            assert!(r.is_none(), "act {i}");
        }
        let r = o.on_activate(BankId(0), RowId(5), Time::ZERO);
        assert_eq!(r.arr, Some(RowId(5)));
        assert_eq!(r.detection.unwrap().act_count, 10);
        assert_eq!(o.count_of(BankId(0), RowId(5)), 0, "retired after ARR");
    }

    #[test]
    fn window_reset_forgives_counts() {
        let mut o = PerRowOracle::new(10, 1, 4);
        for _ in 0..9 {
            o.on_activate(BankId(0), RowId(5), Time::ZERO);
        }
        for _ in 0..4 {
            o.on_auto_refresh(BankId(0), Time::ZERO);
        }
        assert_eq!(o.count_of(BankId(0), RowId(5)), 0);
    }

    #[test]
    fn tracks_every_row_exactly() {
        let mut o = PerRowOracle::new(1000, 1, 100);
        for i in 0..100u32 {
            for _ in 0..=i {
                o.on_activate(BankId(0), RowId(i), Time::ZERO);
            }
        }
        for i in 0..100u32 {
            assert_eq!(o.count_of(BankId(0), RowId(i)), u64::from(i) + 1);
        }
        assert_eq!(o.table_occupancy(BankId(0)), Some(100));
    }
}
