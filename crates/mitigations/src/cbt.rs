//! CBT: the Counter-Based Tree defense ([Seyedzadeh et al., CAL'17 /
//! ISCA'18], as described in §3.3 of the TWiCe paper).
//!
//! A bounded pool of counters is organized as a non-uniform binary tree
//! over row-index ranges. Initially a single counter covers the whole
//! bank; when a counter's count crosses its level's *sub-threshold* (and
//! a spare counter exists), it splits into two children covering half
//! the range each, **both initialized to the parent's count** — the
//! double-counting the TWiCe paper calls out. When a counter reaches the
//! row-hammer threshold, *every row it covers* is refreshed (the "flurry
//! of refreshes" on adversarial patterns), its count resets, and the
//! tree resets wholesale every refresh window.
//!
//! The evaluation configuration (CBT-256) uses 256 counters, a 32K
//! threshold, and 11 tree levels; the deepest counters then cover
//! `131072 / 2^10 = 128` rows, which is why a single-row hammer costs
//! CBT 128 refreshed rows per 32K ACTs (0.39%, Figure 7b). The CBT
//! papers leave the sub-threshold schedule a tunable; we use a linear
//! ramp `sub_th(level) = thRH · level / (levels + 1)`, which avoids
//! split cascades (children start below the next level's threshold).

use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, StateDigest};
use twice_common::{
    BankId, DefensePressure, DefenseResponse, Detection, RowHammerDefense, RowId, Time,
};

/// One tree counter covering rows `lo..hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Node {
    lo: u32,
    hi: u32,
    level: u32,
    count: u64,
}

#[derive(Debug, Clone)]
struct BankTree {
    /// Leaves, sorted by `lo`; they partition `0..rows`.
    leaves: Vec<Node>,
    refs_seen: u64,
}

/// The CBT defense.
#[derive(Debug, Clone)]
pub struct Cbt {
    th_rh: u64,
    max_counters: usize,
    max_level: u32,
    rows_per_bank: u32,
    refs_per_window: u64,
    banks: Vec<BankTree>,
    /// Group refreshes fired (pressure introspection).
    fired: u64,
    name: String,
}

impl Cbt {
    /// Creates CBT with `max_counters` counters per bank, threshold
    /// `th_rh`, and `max_level` tree levels, for `num_banks` banks of
    /// `rows_per_bank` rows, resetting every `refs_per_window`
    /// auto-refreshes.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(
        max_counters: usize,
        th_rh: u64,
        max_level: u32,
        num_banks: u32,
        rows_per_bank: u32,
        refs_per_window: u64,
    ) -> Cbt {
        assert!(max_counters > 0, "need at least one counter");
        assert!(th_rh > 0, "threshold must be non-zero");
        assert!(max_level > 0, "need at least one level");
        assert!(num_banks > 0 && rows_per_bank > 0, "empty geometry");
        assert!(refs_per_window > 0, "refs_per_window must be non-zero");
        let root = Node {
            lo: 0,
            hi: rows_per_bank,
            level: 1,
            count: 0,
        };
        Cbt {
            name: format!("CBT-{max_counters}"),
            th_rh,
            max_counters,
            max_level,
            rows_per_bank,
            refs_per_window,
            banks: vec![
                BankTree {
                    leaves: vec![root],
                    refs_seen: 0,
                };
                num_banks as usize
            ],
            fired: 0,
        }
    }

    /// The Figure 7 configuration: 256 counters, threshold 32K, 11 levels.
    pub fn cbt_256(num_banks: u32, rows_per_bank: u32, refs_per_window: u64) -> Cbt {
        Cbt::new(256, 32_768, 11, num_banks, rows_per_bank, refs_per_window)
    }

    /// Number of counters currently allocated in `bank`'s tree.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn counters_used(&self, bank: BankId) -> usize {
        self.banks[bank.index()].leaves.len()
    }

    /// The row-range width of the leaf covering `row` (for tests).
    ///
    /// # Panics
    ///
    /// Panics if `bank` or `row` is out of range.
    pub fn leaf_width(&self, bank: BankId, row: RowId) -> u32 {
        let tree = &self.banks[bank.index()];
        let i = find_leaf(&tree.leaves, row.0);
        tree.leaves[i].hi - tree.leaves[i].lo
    }
}

/// The split threshold at `level`: a linear ramp toward `th_rh` that
/// keeps freshly split children below their own level's threshold.
fn sub_threshold(th_rh: u64, max_level: u32, level: u32) -> u64 {
    th_rh * u64::from(level) / u64::from(max_level + 1)
}

fn find_leaf(leaves: &[Node], row: u32) -> usize {
    // Leaves are sorted by lo and partition the row space.
    match leaves.binary_search_by(|n| {
        if row < n.lo {
            std::cmp::Ordering::Greater
        } else if row >= n.hi {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Equal
        }
    }) {
        Ok(i) => i,
        Err(_) => unreachable!("leaves must partition the row space"),
    }
}

impl RowHammerDefense for Cbt {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_activate(&mut self, bank: BankId, row: RowId, now: Time) -> DefenseResponse {
        assert!(row.0 < self.rows_per_bank, "row out of range");
        let max_counters = self.max_counters;
        let max_level = self.max_level;
        let th_rh = self.th_rh;
        let tree = &mut self.banks[bank.index()];

        let mut i = find_leaf(&tree.leaves, row.0);
        tree.leaves[i].count += 1;

        // Split while the covering leaf is over its sub-threshold and
        // resources allow (each split consumes one spare counter).
        loop {
            let leaf = tree.leaves[i];
            let splittable = leaf.level < max_level
                && leaf.hi - leaf.lo >= 2
                && tree.leaves.len() < max_counters
                && leaf.count >= sub_threshold(th_rh, max_level, leaf.level)
                && leaf.count < th_rh;
            if !splittable {
                break;
            }
            let mid = leaf.lo + (leaf.hi - leaf.lo) / 2;
            let left = Node {
                lo: leaf.lo,
                hi: mid,
                level: leaf.level + 1,
                count: leaf.count,
            };
            let right = Node {
                lo: mid,
                hi: leaf.hi,
                level: leaf.level + 1,
                count: leaf.count,
            };
            tree.leaves[i] = left;
            tree.leaves.insert(i + 1, right);
            if row.0 >= mid {
                i += 1;
            }
        }

        // Group refresh at the row-hammer threshold. The potential
        // victims of ACTs inside the group are the group's rows plus the
        // two rows just outside its boundary.
        if tree.leaves[i].count >= th_rh {
            let leaf = tree.leaves[i];
            tree.leaves[i].count = 0;
            self.fired += 1;
            let lo = leaf.lo.saturating_sub(1);
            let hi = (leaf.hi + 1).min(self.rows_per_bank);
            let rows: Vec<RowId> = (lo..hi).map(RowId).collect();
            return DefenseResponse {
                refresh_rows: rows,
                detection: Some(Detection {
                    bank,
                    row,
                    at: now,
                    act_count: leaf.count,
                }),
                ..DefenseResponse::default()
            };
        }
        DefenseResponse::none()
    }

    fn on_auto_refresh(&mut self, bank: BankId, _now: Time) -> DefenseResponse {
        let rows = self.rows_per_bank;
        let tree = &mut self.banks[bank.index()];
        tree.refs_seen += 1;
        if tree.refs_seen.is_multiple_of(self.refs_per_window) {
            tree.leaves = vec![Node {
                lo: 0,
                hi: rows,
                level: 1,
                count: 0,
            }];
        }
        DefenseResponse::none()
    }

    fn reset(&mut self) {
        let rows = self.rows_per_bank;
        for tree in &mut self.banks {
            tree.leaves = vec![Node {
                lo: 0,
                hi: rows,
                level: 1,
                count: 0,
            }];
            tree.refs_seen = 0;
        }
        self.fired = 0;
    }

    fn pressure(&self) -> DefensePressure {
        let hottest = self
            .banks
            .iter()
            .flat_map(|tree| tree.leaves.iter().map(|leaf| leaf.count))
            .max()
            .unwrap_or(0);
        DefensePressure::from_counter(hottest, self.th_rh, self.fired)
    }

    fn table_occupancy(&self, bank: BankId) -> Option<usize> {
        Some(self.banks[bank.index()].leaves.len())
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.fired);
        w.put_usize(self.banks.len());
        for tree in &self.banks {
            w.put_u64(tree.refs_seen);
            // Leaves are kept sorted by `lo`, so in-order is canonical.
            w.put_usize(tree.leaves.len());
            for leaf in &tree.leaves {
                w.put_u32(leaf.lo);
                w.put_u32(leaf.hi);
                w.put_u32(leaf.level);
                w.put_u64(leaf.count);
            }
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.fired = r.take_u64()?;
        let banks = r.take_usize()?;
        if banks != self.banks.len() {
            return Err(SnapshotError::StateMismatch(format!(
                "CBT has {} banks, snapshot has {banks}",
                self.banks.len()
            )));
        }
        for tree in &mut self.banks {
            tree.refs_seen = r.take_u64()?;
            let n = r.take_usize()?;
            tree.leaves.clear();
            for _ in 0..n {
                tree.leaves.push(Node {
                    lo: r.take_u32()?,
                    hi: r.take_u32()?,
                    level: r.take_u32()?,
                    count: r.take_u64()?,
                });
            }
            if tree.leaves.is_empty() {
                return Err(SnapshotError::StateMismatch(
                    "CBT bank with no leaves".into(),
                ));
            }
        }
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_u64(self.fired);
        for tree in &self.banks {
            d.write_u64(tree.refs_seen);
            d.write_usize(tree.leaves.len());
            for leaf in &tree.leaves {
                d.write_u32(leaf.lo);
                d.write_u32(leaf.hi);
                d.write_u32(leaf.level);
                d.write_u64(leaf.count);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cbt() -> Cbt {
        // 8 counters, threshold 64, 4 levels, 1 bank of 64 rows.
        Cbt::new(8, 64, 4, 1, 64, 100)
    }

    #[test]
    fn starts_with_one_counter_covering_the_bank() {
        let c = small_cbt();
        assert_eq!(c.counters_used(BankId(0)), 1);
        assert_eq!(c.leaf_width(BankId(0), RowId(0)), 64);
    }

    #[test]
    fn hot_traffic_splits_toward_the_hot_row() {
        let mut c = small_cbt();
        // sub_threshold(level 1) = 64*1/5 = 12.
        for _ in 0..13 {
            c.on_activate(BankId(0), RowId(5), Time::ZERO);
        }
        assert!(c.counters_used(BankId(0)) >= 2, "root must have split");
        assert!(
            c.leaf_width(BankId(0), RowId(5)) < 64,
            "the hot row's leaf must have narrowed"
        );
    }

    #[test]
    fn group_refresh_covers_all_leaf_rows() {
        let mut c = Cbt::new(1, 16, 1, 1, 32, 100); // never splits
        let mut resp = DefenseResponse::none();
        for _ in 0..16 {
            resp = c.on_activate(BankId(0), RowId(3), Time::ZERO);
        }
        // Whole 32-row group; the group spans the full bank here so no
        // boundary victims exist beyond it.
        assert_eq!(resp.refresh_rows.len(), 32, "whole group refreshed");
        assert!(resp.detection.is_some());
        // Count reset: no immediate second refresh.
        let r = c.on_activate(BankId(0), RowId(3), Time::ZERO);
        assert!(r.is_none());
    }

    #[test]
    fn counter_pool_is_bounded() {
        let mut c = small_cbt();
        let mut x = twice_common::rng::SplitMix64::new(1);
        for _ in 0..5_000 {
            let row = RowId(x.next_below(64) as u32);
            c.on_activate(BankId(0), row, Time::ZERO);
        }
        assert!(c.counters_used(BankId(0)) <= 8);
    }

    #[test]
    fn children_inherit_parent_count_double_counting() {
        let mut c = small_cbt();
        for _ in 0..12 {
            c.on_activate(BankId(0), RowId(5), Time::ZERO);
        }
        // After the split both halves carry the parent's 12 counts, so a
        // row in the *other* half needs fewer ACTs to its own threshold.
        assert!(c.counters_used(BankId(0)) >= 2);
        let mut extra = DefenseResponse::none();
        let mut acts_needed = 0;
        for _ in 0..64 {
            acts_needed += 1;
            extra = c.on_activate(BankId(0), RowId(60), Time::ZERO);
            if !extra.refresh_rows.is_empty() {
                break;
            }
        }
        assert!(
            !extra.refresh_rows.is_empty() && acts_needed < 64,
            "inherited count must accelerate the other half's refresh"
        );
    }

    #[test]
    fn window_reset_collapses_the_tree() {
        let mut c = small_cbt(); // refs_per_window = 100
        for _ in 0..20 {
            c.on_activate(BankId(0), RowId(5), Time::ZERO);
        }
        assert!(c.counters_used(BankId(0)) > 1);
        for _ in 0..100 {
            c.on_auto_refresh(BankId(0), Time::ZERO);
        }
        assert_eq!(c.counters_used(BankId(0)), 1);
    }

    #[test]
    fn deepest_leaf_width_matches_paper_geometry() {
        // 131072 rows, 11 levels: leaf width 131072 / 2^10 = 128.
        let mut c = Cbt::cbt_256(1, 131_072, 8192);
        // Hammer one row hard enough to fully split its path.
        for _ in 0..32_767 {
            c.on_activate(BankId(0), RowId(1000), Time::ZERO);
        }
        assert_eq!(c.leaf_width(BankId(0), RowId(1000)), 128);
        // One more ACT crosses 32K: the 128-row group plus its two
        // boundary victims are refreshed (~0.39% per 32K ACTs).
        let r = c.on_activate(BankId(0), RowId(1000), Time::ZERO);
        assert_eq!(r.refresh_rows.len(), 130);
    }

    #[test]
    fn banks_are_independent() {
        let mut c = Cbt::new(8, 64, 4, 2, 64, 100);
        for _ in 0..20 {
            c.on_activate(BankId(0), RowId(5), Time::ZERO);
        }
        assert!(c.counters_used(BankId(0)) > 1);
        assert_eq!(c.counters_used(BankId(1)), 1);
    }
}
