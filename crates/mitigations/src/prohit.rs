//! PRoHIT: probabilistic protection with a history table
//! ([Son et al., DAC'17], as summarized in §3.3 of the TWiCe paper).
//!
//! PRoHIT extends PARA with a small table that remembers recently (and
//! frequently) activated rows, so that the adjacent rows of *hot* rows
//! are refreshed with higher probability than a memoryless coin allows.
//! The published mechanism keeps the table probabilistically: on an ACT,
//! a miss inserts the row with probability `p_insert` (evicting the
//! lowest-priority entry), a hit promotes the entry; on each ACT, with
//! probability `p_refresh`, the top entry is retired and its neighbors
//! are refreshed.
//!
//! Like PARA it is attack-oblivious (no detection) and probabilistic (no
//! deterministic guarantee).

use twice_common::rng::SplitMix64;
use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, StateDigest};
use twice_common::{BankId, DefenseResponse, RowHammerDefense, RowId, Time};

/// The PRoHIT defense.
#[derive(Debug, Clone)]
pub struct Prohit {
    p_insert: f64,
    p_refresh: f64,
    capacity: usize,
    /// History entries `(row, hits-while-resident)`, per bank.
    tables: Vec<Vec<(RowId, u32)>>,
    rng: SplitMix64,
}

impl Prohit {
    /// Creates PRoHIT with the given table size and probabilities for
    /// `num_banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `num_banks` is zero, or a probability is
    /// outside `[0, 1]`.
    pub fn new(
        capacity: usize,
        p_insert: f64,
        p_refresh: f64,
        num_banks: u32,
        seed: u64,
    ) -> Prohit {
        assert!(capacity > 0, "history table must have entries");
        assert!(num_banks > 0, "need at least one bank");
        assert!((0.0..=1.0).contains(&p_insert), "p_insert must be in [0,1]");
        assert!(
            (0.0..=1.0).contains(&p_refresh),
            "p_refresh must be in [0,1]"
        );
        Prohit {
            p_insert,
            p_refresh,
            capacity,
            tables: vec![Vec::with_capacity(capacity); num_banks as usize],
            rng: SplitMix64::new(seed),
        }
    }

    /// The DAC'17 default-flavor configuration: a 16-entry table,
    /// insert probability 0.1, refresh probability `p`.
    pub fn with_defaults(p: f64, num_banks: u32, seed: u64) -> Prohit {
        Prohit::new(16, 0.1, p, num_banks, seed)
    }

    /// Current history occupancy of `bank` (for tests).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn history_len(&self, bank: BankId) -> usize {
        self.tables[bank.index()].len()
    }
}

impl RowHammerDefense for Prohit {
    fn name(&self) -> &str {
        "PRoHIT"
    }

    fn on_activate(&mut self, bank: BankId, row: RowId, _now: Time) -> DefenseResponse {
        let table = &mut self.tables[bank.index()];
        match table.iter_mut().find(|(r, _)| *r == row) {
            Some((_, hits)) => *hits += 1, // promote
            None => {
                if self.rng.chance(self.p_insert) {
                    if table.len() == self.capacity {
                        // Evict the lowest-priority (fewest-hit) entry.
                        let coldest = table
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, (_, hits))| *hits)
                            .map(|(i, _)| i)
                            .expect("table is full, hence non-empty");
                        table.swap_remove(coldest);
                    }
                    table.push((row, 1));
                }
            }
        }
        if !table.is_empty() && self.rng.chance(self.p_refresh) {
            // Retire the highest-priority (most-hit) entry.
            let hottest = table
                .iter()
                .enumerate()
                .max_by_key(|(_, (_, hits))| *hits)
                .map(|(i, _)| i)
                .expect("checked non-empty");
            let (hot, _) = table.swap_remove(hottest);
            let victims: Vec<RowId> = [hot.below(), hot.above()].into_iter().flatten().collect();
            return DefenseResponse {
                refresh_rows: victims,
                ..DefenseResponse::default()
            };
        }
        DefenseResponse::none()
    }

    fn reset(&mut self) {
        self.tables.iter_mut().for_each(Vec::clear);
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.rng.state());
        w.put_usize(self.tables.len());
        // Entry order is behavioral (swap_remove ties break by position),
        // so the tables are saved verbatim, not canonicalized.
        for table in &self.tables {
            w.put_usize(table.len());
            for &(row, hits) in table {
                w.put_u32(row.0);
                w.put_u32(hits);
            }
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.rng.set_state(r.take_u64()?);
        let banks = r.take_usize()?;
        if banks != self.tables.len() {
            return Err(SnapshotError::StateMismatch(format!(
                "PRoHIT has {} banks, snapshot has {banks}",
                self.tables.len()
            )));
        }
        for table in &mut self.tables {
            table.clear();
            let n = r.take_usize()?;
            for _ in 0..n {
                let row = RowId(r.take_u32()?);
                let hits = r.take_u32()?;
                table.push((row, hits));
            }
        }
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_u64(self.rng.state());
        for table in &self.tables {
            d.write_usize(table.len());
            for &(row, hits) in table {
                d.write_u32(row.0);
                d.write_u32(hits);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_rows_are_preferentially_refreshed() {
        let mut p = Prohit::new(8, 1.0, 0.05, 1, 42);
        let mut hot_refreshes = 0u64;
        let mut cold_refreshes = 0u64;
        let mut x = SplitMix64::new(7);
        for i in 0..200_000u64 {
            // Row 100 is hammered; others are background noise.
            let row = if i % 2 == 0 {
                RowId(100)
            } else {
                RowId((x.next_below(1000) + 200) as u32)
            };
            let r = p.on_activate(BankId(0), row, Time::ZERO);
            for v in &r.refresh_rows {
                if *v == RowId(99) || *v == RowId(101) {
                    hot_refreshes += 1;
                } else {
                    cold_refreshes += 1;
                }
            }
        }
        assert!(hot_refreshes > 0, "the hot row must be refreshed");
        assert!(
            hot_refreshes > cold_refreshes,
            "hot {hot_refreshes} vs cold {cold_refreshes}: history must bias toward hot rows"
        );
    }

    #[test]
    fn refresh_rate_tracks_p_refresh() {
        let mut p = Prohit::new(8, 1.0, 0.01, 1, 3);
        let n = 200_000u64;
        let mut triggers = 0u64;
        for i in 0..n {
            let r = p.on_activate(BankId(0), RowId((i % 50) as u32 + 1), Time::ZERO);
            if !r.refresh_rows.is_empty() {
                triggers += 1;
            }
        }
        let rate = triggers as f64 / n as f64;
        assert!((rate - 0.01).abs() < 0.003, "trigger rate {rate}");
    }

    #[test]
    fn table_is_bounded() {
        let mut p = Prohit::new(4, 1.0, 0.0, 1, 5);
        for i in 0..100 {
            p.on_activate(BankId(0), RowId(i), Time::ZERO);
        }
        assert_eq!(p.history_len(BankId(0)), 4);
    }

    #[test]
    fn banks_are_independent() {
        let mut p = Prohit::new(4, 1.0, 0.0, 2, 5);
        p.on_activate(BankId(0), RowId(1), Time::ZERO);
        assert_eq!(p.history_len(BankId(0)), 1);
        assert_eq!(p.history_len(BankId(1)), 0);
    }

    #[test]
    fn reset_clears_history() {
        let mut p = Prohit::new(4, 1.0, 0.0, 1, 5);
        p.on_activate(BankId(0), RowId(1), Time::ZERO);
        p.reset();
        assert_eq!(p.history_len(BankId(0)), 0);
    }

    #[test]
    fn never_detects() {
        let mut p = Prohit::with_defaults(0.5, 1, 1);
        for i in 0..1000 {
            let r = p.on_activate(BankId(0), RowId(i % 3), Time::ZERO);
            assert!(r.detection.is_none());
        }
    }
}
