#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

//! Baseline row-hammer defenses — the comparators of the TWiCe paper.
//!
//! Each implements [`twice_common::RowHammerDefense`], so any of them can
//! drop into the simulator where TWiCe goes:
//!
//! * [`para::Para`] — probabilistic adjacent-row activation
//!   ([Kim et al., ISCA'14], §3.3). Stateless, cheap, but offers only
//!   probabilistic protection and cannot detect attacks.
//! * [`prohit::Prohit`] — PARA extended with a small history table
//!   ([Son et al., DAC'17]).
//! * [`cbt::Cbt`] — the Counter-Based Tree ([Seyedzadeh et al.],
//!   §3.3): a bounded pool of counters arranged as a dynamically-split
//!   binary tree over row ranges; group refreshes on threshold crossing.
//! * [`cra::Cra`] — Counter-based Row Activation ([Kim et al., CAL'15]):
//!   a counter per row stored in DRAM, cached in the MC; cache misses
//!   cost extra DRAM traffic.
//! * [`naive::PerRowOracle`] — an exact, unbounded per-row counter. Not
//!   buildable in hardware; used as the golden model in tests.
//! * [`none::NoProtection`] — the unprotected baseline.
//! * [`graphene::Graphene`] — exact Misra–Gries heavy-hitter tracking
//!   (extension: the MICRO'20 follow-up to TWiCe).
//! * [`trr::Trr`] — an in-DRAM Target Row Refresh model (extension:
//!   the vendor mechanism the paper's §8 says is unspecified; our model
//!   makes its many-sided-attack gap measurable against TWiCe).
//!
//! [`registry`] builds any of them (or TWiCe) from a [`registry::DefenseKind`].

pub mod cbt;
pub mod cra;
pub mod graphene;
pub mod naive;
pub mod none;
pub mod para;
pub mod prohit;
pub mod registry;
pub mod trr;

pub use cbt::Cbt;
pub use cra::Cra;
pub use graphene::Graphene;
pub use naive::PerRowOracle;
pub use none::NoProtection;
pub use para::Para;
pub use prohit::Prohit;
pub use registry::{make_defense, make_defense_chaos, DefenseKind};
pub use trr::Trr;
