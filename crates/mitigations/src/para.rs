//! PARA: Probabilistic Adjacent Row Activation ([Kim et al., ISCA'14]).
//!
//! On every row activation, with a small probability `p`, one adjacent
//! row (chosen uniformly per side) is refreshed. Stateless, so its
//! expected overhead is exactly `p` additional ACTs per ACT — 0.1% for
//! PARA-0.001 and 0.2% for PARA-0.002, the two configurations in
//! Figure 7 — regardless of the access pattern. The protection is
//! probabilistic: there is a non-zero chance a victim is never refreshed
//! (§3.4), and no detection capability exists.
//!
//! PARA is proposed for the memory controller, which (the paper's
//! critique) only knows *logical* adjacency; the refresh targets here are
//! logical `row ± 1`.

use twice_common::rng::SplitMix64;
use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, StateDigest};
use twice_common::{BankId, DefenseResponse, RowHammerDefense, RowId, Time};

/// The PARA defense.
#[derive(Debug, Clone)]
pub struct Para {
    p: f64,
    rng: SplitMix64,
    name: String,
}

impl Para {
    /// Creates PARA with trigger probability `p`, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn new(p: f64, seed: u64) -> Para {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        Para {
            p,
            rng: SplitMix64::new(seed),
            name: format!("PARA-{p}"),
        }
    }

    /// The configured trigger probability.
    #[inline]
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl RowHammerDefense for Para {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_activate(&mut self, _bank: BankId, row: RowId, _now: Time) -> DefenseResponse {
        if !self.rng.chance(self.p) {
            return DefenseResponse::none();
        }
        // Pick one side uniformly; fall back to the other at the edge.
        let candidate = if self.rng.chance(0.5) {
            row.below().or_else(|| row.above())
        } else {
            row.above().or_else(|| row.below())
        };
        match candidate {
            Some(victim) => DefenseResponse {
                refresh_rows: vec![victim],
                ..DefenseResponse::default()
            },
            None => DefenseResponse::none(),
        }
    }

    fn reset(&mut self) {
        // Stateless apart from the RNG; nothing to clear.
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.rng.state());
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.rng.set_state(r.take_u64()?);
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_u64(self.rng.state());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_rate_approximates_p() {
        let mut para = Para::new(0.001, 7);
        let n = 1_000_000u64;
        let mut extra = 0u64;
        for i in 0..n {
            let r = para.on_activate(BankId(0), RowId((i % 100) as u32 + 1), Time::ZERO);
            extra += r.refresh_rows.len() as u64;
        }
        let rate = extra as f64 / n as f64;
        assert!(
            (rate - 0.001).abs() < 0.0003,
            "observed overhead {rate}, expected ~0.001"
        );
    }

    #[test]
    fn refresh_targets_are_logical_neighbors() {
        let mut para = Para::new(1.0, 3);
        for _ in 0..100 {
            let r = para.on_activate(BankId(0), RowId(50), Time::ZERO);
            assert_eq!(r.refresh_rows.len(), 1);
            let v = r.refresh_rows[0];
            assert!(v == RowId(49) || v == RowId(51));
        }
    }

    #[test]
    fn both_sides_get_refreshed_over_time() {
        let mut para = Para::new(1.0, 9);
        let mut below = 0;
        let mut above = 0;
        for _ in 0..1000 {
            let r = para.on_activate(BankId(0), RowId(50), Time::ZERO);
            if r.refresh_rows[0] == RowId(49) {
                below += 1;
            } else {
                above += 1;
            }
        }
        assert!(below > 300 && above > 300, "sides must be balanced");
    }

    #[test]
    fn edge_row_refreshes_the_existing_side() {
        let mut para = Para::new(1.0, 5);
        for _ in 0..50 {
            let r = para.on_activate(BankId(0), RowId(0), Time::ZERO);
            assert_eq!(r.refresh_rows, vec![RowId(1)]);
        }
    }

    #[test]
    fn never_detects() {
        let mut para = Para::new(1.0, 1);
        for _ in 0..1000 {
            let r = para.on_activate(BankId(0), RowId(5), Time::ZERO);
            assert!(r.detection.is_none(), "PARA is attack-oblivious");
        }
    }

    #[test]
    fn name_encodes_probability() {
        assert_eq!(Para::new(0.002, 1).name(), "PARA-0.002");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        Para::new(1.5, 1);
    }
}
