//! A factory over every defense in the workspace (including TWiCe), so
//! experiments can sweep defenses from a declarative list.

use crate::cbt::Cbt;
use crate::cra::Cra;
use crate::graphene::Graphene;
use crate::naive::PerRowOracle;
use crate::none::NoProtection;
use crate::para::Para;
use crate::prohit::Prohit;
use crate::trr::Trr;
use std::fmt;
use twice::{TableOrganization, TwiceEngine, TwiceParams};
use twice_common::fault::FaultPlan;
use twice_common::RowHammerDefense;

/// A defense selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DefenseKind {
    /// No protection.
    None,
    /// TWiCe with the given table organization.
    Twice(TableOrganization),
    /// PARA with trigger probability `p`.
    Para {
        /// Trigger probability.
        p: f64,
    },
    /// PRoHIT with refresh probability `p`.
    Prohit {
        /// Refresh probability.
        p: f64,
    },
    /// CBT with `counters` counters per bank (threshold 32K, 11 levels).
    Cbt {
        /// Counters per bank.
        counters: usize,
    },
    /// CRA with `cache_entries` cached counters per bank.
    Cra {
        /// Counter-cache entries per bank.
        cache_entries: usize,
    },
    /// The exact per-row oracle.
    Oracle,
    /// An in-DRAM TRR model with `entries` tracker slots (extension).
    Trr {
        /// Tracker slots per bank.
        entries: usize,
    },
    /// Graphene (MICRO'20 follow-up): exact Misra–Gries tracking sized
    /// for the refresh window (extension).
    Graphene,
}

impl DefenseKind {
    /// Every CLI defense name [`DefenseKind::parse`] accepts, in parse
    /// order. Error messages list these so a typo comes back with the
    /// full menu.
    pub const NAMES: [&'static str; 13] = [
        "twice",
        "twice-fa",
        "twice-pa",
        "twice-split",
        "para",
        "para2",
        "prohit",
        "cbt",
        "cra",
        "trr",
        "graphene",
        "oracle",
        "none",
    ];

    /// Parses a CLI defense name. This is the single source of truth for
    /// every subcommand (`redteam`, `trace`, `fleet`, `chaos`, ...);
    /// unknown names should be reported with [`DefenseKind::NAMES`] and
    /// exit code 2.
    pub fn parse(name: &str) -> Option<DefenseKind> {
        Some(match name {
            "twice" | "twice-fa" => DefenseKind::Twice(TableOrganization::FullyAssociative),
            "twice-pa" => DefenseKind::Twice(TableOrganization::PseudoAssociative),
            "twice-split" => DefenseKind::Twice(TableOrganization::Split),
            "para" => DefenseKind::Para { p: 0.001 },
            "para2" => DefenseKind::Para { p: 0.002 },
            "prohit" => DefenseKind::Prohit { p: 0.001 },
            "cbt" => DefenseKind::Cbt { counters: 256 },
            "cra" => DefenseKind::Cra { cache_entries: 512 },
            "trr" => DefenseKind::Trr { entries: 16 },
            "graphene" => DefenseKind::Graphene,
            "oracle" => DefenseKind::Oracle,
            "none" => DefenseKind::None,
            _ => return None,
        })
    }

    /// The canonical CLI name for this kind (round-trips through
    /// [`DefenseKind::parse`] for every parseable configuration).
    pub fn cli_name(&self) -> Option<&'static str> {
        for name in DefenseKind::NAMES {
            if name == "twice" {
                continue; // alias of twice-fa
            }
            if DefenseKind::parse(name) == Some(*self) {
                return Some(name);
            }
        }
        None
    }

    /// The distinct defenses the security-regression gate replays the
    /// corpus against: every parseable kind, deduplicated. `none` is
    /// included deliberately — an adversarial trace that does *not* flip
    /// bits on unprotected DRAM is not adversarial.
    pub fn verify_lineup() -> Vec<DefenseKind> {
        let mut out = Vec::new();
        for name in DefenseKind::NAMES {
            let kind = DefenseKind::parse(name).expect("NAMES entries parse");
            if !out.contains(&kind) {
                out.push(kind);
            }
        }
        out
    }

    /// The four defenses of Figure 7, in its display order.
    pub fn figure7_lineup() -> Vec<DefenseKind> {
        vec![
            DefenseKind::Para { p: 0.001 },
            DefenseKind::Para { p: 0.002 },
            DefenseKind::Cbt { counters: 256 },
            DefenseKind::Twice(TableOrganization::FullyAssociative),
        ]
    }

    /// Whether this defense belongs in the RCD (TWiCe, oracle) rather
    /// than the memory controller.
    pub fn is_rcd_resident(&self) -> bool {
        matches!(
            self,
            DefenseKind::Twice(_)
                | DefenseKind::Oracle
                | DefenseKind::None
                | DefenseKind::Trr { .. }
                | DefenseKind::Graphene
        )
    }
}

impl fmt::Display for DefenseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefenseKind::None => write!(f, "none"),
            DefenseKind::Twice(org) => write!(f, "TWiCe({})", org.label()),
            DefenseKind::Para { p } => write!(f, "PARA-{p}"),
            DefenseKind::Prohit { p } => write!(f, "PRoHIT-{p}"),
            DefenseKind::Cbt { counters } => write!(f, "CBT-{counters}"),
            DefenseKind::Cra { cache_entries } => write!(f, "CRA-{cache_entries}"),
            DefenseKind::Oracle => write!(f, "oracle"),
            DefenseKind::Trr { entries } => write!(f, "TRR-{entries}"),
            DefenseKind::Graphene => write!(f, "Graphene"),
        }
    }
}

/// Builds `kind` for a system of `num_banks` banks under `params`.
///
/// `seed` feeds the probabilistic defenses; counter-based defenses use
/// `params` for thresholds and window geometry.
///
/// # Panics
///
/// Panics if `params` fails validation (for the TWiCe variants) or
/// `num_banks` is zero.
pub fn make_defense(
    kind: DefenseKind,
    params: &TwiceParams,
    num_banks: u32,
    seed: u64,
) -> Box<dyn RowHammerDefense> {
    let refs_per_window = params.max_life();
    match kind {
        DefenseKind::None => Box::new(NoProtection::new()),
        DefenseKind::Twice(org) => Box::new(TwiceEngine::with_organization(
            params.clone(),
            num_banks,
            org,
        )),
        DefenseKind::Para { p } => Box::new(Para::new(p, seed)),
        DefenseKind::Prohit { p } => Box::new(Prohit::with_defaults(p, num_banks, seed)),
        DefenseKind::Cbt { counters } => Box::new(Cbt::new(
            counters,
            params.th_rh,
            11,
            num_banks,
            params.rows_per_bank,
            refs_per_window,
        )),
        DefenseKind::Cra { cache_entries } => Box::new(Cra::new(
            cache_entries,
            params.th_rh,
            num_banks,
            refs_per_window,
        )),
        DefenseKind::Oracle => {
            Box::new(PerRowOracle::new(params.th_rh, num_banks, refs_per_window))
        }
        DefenseKind::Trr { entries } => {
            Box::new(Trr::new(entries, params.th_rh, num_banks, refs_per_window))
        }
        DefenseKind::Graphene => Box::new(Graphene::sized_for(
            params.timings.max_acts_per_window(),
            params.th_rh,
            num_banks,
            refs_per_window,
        )),
    }
}

/// Like [`make_defense`], but configures TWiCe's fault hardening: the
/// engine's counter-SRAM injector is armed with `plan` (salted by `seed`)
/// and parity/scrub protection is toggled by `scrubbing`. Non-TWiCe kinds
/// are unaffected — their counters live in the MC, outside this fault
/// model's scope.
pub fn make_defense_chaos(
    kind: DefenseKind,
    params: &TwiceParams,
    num_banks: u32,
    seed: u64,
    plan: &FaultPlan,
    scrubbing: bool,
) -> Box<dyn RowHammerDefense> {
    match kind {
        DefenseKind::Twice(org) => Box::new(
            TwiceEngine::with_organization(params.clone(), num_banks, org)
                .with_scrubbing(scrubbing)
                .with_fault_plan(plan, seed),
        ),
        _ => make_defense(kind, params, num_banks, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twice_common::{BankId, RowId, Time};

    #[test]
    fn factory_builds_every_kind() {
        let params = TwiceParams::fast_test();
        let kinds = [
            DefenseKind::None,
            DefenseKind::Twice(TableOrganization::FullyAssociative),
            DefenseKind::Twice(TableOrganization::PseudoAssociative),
            DefenseKind::Twice(TableOrganization::Split),
            DefenseKind::Para { p: 0.001 },
            DefenseKind::Prohit { p: 0.001 },
            DefenseKind::Cbt { counters: 16 },
            DefenseKind::Cra { cache_entries: 16 },
            DefenseKind::Oracle,
            DefenseKind::Trr { entries: 4 },
            DefenseKind::Graphene,
        ];
        for kind in kinds {
            let mut d = make_defense(kind, &params, 2, 1);
            // Smoke: every defense accepts the full interface.
            d.on_activate(BankId(1), RowId(3), Time::ZERO);
            d.on_auto_refresh(BankId(1), Time::ZERO);
            d.reset();
            assert!(!d.name().is_empty());
        }
    }

    #[test]
    fn every_name_parses_and_round_trips() {
        for name in DefenseKind::NAMES {
            let kind = DefenseKind::parse(name).unwrap_or_else(|| panic!("{name} must parse"));
            let canonical = kind.cli_name().expect("parseable kinds have a name");
            assert_eq!(
                DefenseKind::parse(canonical),
                Some(kind),
                "{name} -> {canonical} must round-trip"
            );
        }
        assert_eq!(DefenseKind::parse("twice"), DefenseKind::parse("twice-fa"));
        assert!(DefenseKind::parse("no-such-defense").is_none());
        assert!(DefenseKind::parse("TWICE").is_none(), "names are exact");
    }

    #[test]
    fn verify_lineup_is_distinct_and_covers_none() {
        let lineup = DefenseKind::verify_lineup();
        assert_eq!(lineup.len(), 12, "13 names minus the twice alias");
        assert!(lineup.contains(&DefenseKind::None));
        for (i, a) in lineup.iter().enumerate() {
            assert!(!lineup[i + 1..].contains(a), "{a} duplicated");
        }
    }

    #[test]
    fn figure7_lineup_matches_paper_labels() {
        let labels: Vec<String> = DefenseKind::figure7_lineup()
            .iter()
            .map(|k| k.to_string())
            .collect();
        assert_eq!(labels, ["PARA-0.001", "PARA-0.002", "CBT-256", "TWiCe(fa)"]);
    }

    #[test]
    fn residency_classification() {
        assert!(DefenseKind::Twice(TableOrganization::Split).is_rcd_resident());
        assert!(DefenseKind::Oracle.is_rcd_resident());
        assert!(!DefenseKind::Para { p: 0.1 }.is_rcd_resident());
        assert!(!DefenseKind::Cbt { counters: 4 }.is_rcd_resident());
    }

    #[test]
    fn counter_defenses_detect_and_probabilistic_do_not() {
        let params = TwiceParams::fast_test();
        // Hammer one row th_rh times; counter-based kinds must detect.
        for kind in [
            DefenseKind::Twice(TableOrganization::FullyAssociative),
            DefenseKind::Cra { cache_entries: 8 },
            DefenseKind::Oracle,
        ] {
            let mut d = make_defense(kind, &params, 1, 1);
            let mut detected = false;
            for _ in 0..params.th_rh {
                detected |= d
                    .on_activate(BankId(0), RowId(3), Time::ZERO)
                    .detection
                    .is_some();
            }
            assert!(detected, "{kind} must detect");
        }
        let mut para = make_defense(DefenseKind::Para { p: 0.01 }, &params, 1, 1);
        for _ in 0..params.th_rh {
            assert!(para
                .on_activate(BankId(0), RowId(3), Time::ZERO)
                .detection
                .is_none());
        }
    }
}
