//! Multi-programmed workloads: SPECrate and the two mixes of §7.2.
//!
//! * **SPECrate** — 16 copies of one application, each in its own
//!   address partition (the paper's per-application bars; Figure 7a
//!   reports their average).
//! * **mix-high** — 16 applications drawn from the nine `spec-high`
//!   (memory-intensive) models.
//! * **mix-blend** — 16 applications drawn uniformly from all 29.
//!
//! Copies are interleaved with weights proportional to MAPKI, modeling
//! each core's memory intensity.

use crate::attack::{HammerAttack, HammerShape};
use crate::spec::{spec_cpu2006, spec_high, AppModel, SpecAppSource};
use crate::trace::WeightedInterleave;
use twice_common::rng::SplitMix64;
use twice_common::{RowId, Topology};

/// Builds a 16-copy SPECrate workload of `model`.
pub fn spec_rate(topo: &Topology, model: &AppModel, seed: u64) -> WeightedInterleave {
    let sources = (0..16u16)
        .map(|i| {
            (
                Box::new(SpecAppSource::new(topo, model.clone(), i, 16, seed)) as Box<_>,
                1,
            )
        })
        .collect();
    WeightedInterleave::new(sources)
}

fn mix_of(topo: &Topology, pool: &[AppModel], seed: u64) -> WeightedInterleave {
    assert!(!pool.is_empty(), "application pool must be non-empty");
    let mut rng = SplitMix64::new(seed);
    let sources = (0..16u16)
        .map(|i| {
            let model = pool[rng.next_below(pool.len() as u64) as usize].clone();
            // Weight by memory intensity, floored so light apps still run.
            let weight = (model.mapki.round() as u32).max(1);
            (
                Box::new(SpecAppSource::new(topo, model, i, 16, seed ^ 0x5eed)) as Box<_>,
                weight,
            )
        })
        .collect();
    WeightedInterleave::new(sources)
}

/// The `mix-high` workload: 16 applications from the `spec-high` set.
pub fn mix_high(topo: &Topology, seed: u64) -> WeightedInterleave {
    mix_of(topo, &spec_high(), seed)
}

/// The `mix-blend` workload: 16 applications from the whole suite.
pub fn mix_blend(topo: &Topology, seed: u64) -> WeightedInterleave {
    mix_of(topo, &spec_cpu2006(), seed)
}

/// A 16-tenant fleet blend: `attackers` of the tenants (capped at 8 so
/// the blend keeps benign traffic) are hammer sources with seeded
/// shapes — single-, double-, many-sided, and decoy patterns rotate
/// per attacker — and the rest are MAPKI-weighted SPEC applications.
///
/// Attackers get weight 10: hammering only pays at high activation
/// rates, so a fleet shard under attack sees a realistic skew without
/// starving its benign tenants.
pub fn tenant_blend(topo: &Topology, seed: u64, attackers: u16) -> WeightedInterleave {
    let n_attack = attackers.min(8);
    let pool = spec_cpu2006();
    let mut rng = SplitMix64::new(seed ^ 0xA77A_C4E5);
    let rows = topo.rows_per_bank;
    assert!(rows >= 16, "tenant_blend needs at least 16 rows per bank");
    let row = move |rng: &mut SplitMix64| RowId(rng.next_below(u64::from(rows - 2)) as u32 + 1);
    let sources = (0..16u16)
        .map(|i| {
            if i < n_attack {
                let bank = rng.next_below(u64::from(topo.banks_per_rank)) as u16;
                let shape = match i % 4 {
                    0 => HammerShape::SingleSided {
                        aggressor: row(&mut rng),
                    },
                    1 => HammerShape::DoubleSided {
                        victim: row(&mut rng),
                    },
                    2 => HammerShape::ManySided {
                        aggressors: (0..6).map(|_| row(&mut rng)).collect(),
                    },
                    _ => HammerShape::Decoy {
                        aggressor: row(&mut rng),
                        decoys: (0..5).map(|_| row(&mut rng)).collect(),
                    },
                };
                (
                    Box::new(HammerAttack::new(topo, bank, shape)) as Box<_>,
                    10u32,
                )
            } else {
                let model = pool[rng.next_below(pool.len() as u64) as usize].clone();
                let weight = (model.mapki.round() as u32).max(1);
                (
                    Box::new(SpecAppSource::new(topo, model, i, 16, seed ^ 0xF1EE7)) as Box<_>,
                    weight,
                )
            }
        })
        .collect();
    WeightedInterleave::new(sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::app;
    use crate::trace::AccessSource;

    #[test]
    fn spec_rate_uses_all_16_sources() {
        let topo = Topology::paper_default();
        let mix = spec_rate(&topo, &app("mcf").unwrap(), 1);
        let sources: std::collections::HashSet<u16> =
            mix.take_requests(1000).map(|(req, _)| req.source).collect();
        assert_eq!(sources.len(), 16);
    }

    #[test]
    fn mixes_produce_traffic_from_many_cores() {
        let topo = Topology::paper_default();
        for mix in [mix_high(&topo, 2), mix_blend(&topo, 3)] {
            let sources: std::collections::HashSet<u16> =
                mix.take_requests(5000).map(|(req, _)| req.source).collect();
            assert!(sources.len() >= 8, "only {} sources active", sources.len());
        }
    }

    #[test]
    fn tenant_blend_mixes_attackers_with_benign_traffic() {
        let topo = Topology::paper_default();
        let blend = tenant_blend(&topo, 9, 4);
        let sources: std::collections::HashSet<u16> = blend
            .take_requests(5000)
            .map(|(req, _)| req.source)
            .collect();
        assert!(sources.len() >= 8, "only {} sources active", sources.len());
    }

    #[test]
    fn tenant_blend_attacker_count_is_capped() {
        let topo = Topology::paper_default();
        // 16 attackers requested; the blend must still build (capped at 8)
        // and keep benign tenants in the rotation.
        let blend = tenant_blend(&topo, 9, 16);
        assert!(blend.take_requests(1000).count() == 1000);
    }

    #[test]
    fn tenant_blend_is_deterministic_in_seed() {
        let topo = Topology::paper_default();
        let a: Vec<_> = tenant_blend(&topo, 11, 3)
            .take_requests(300)
            .map(|(r, _)| r.addr)
            .collect();
        let b: Vec<_> = tenant_blend(&topo, 11, 3)
            .take_requests(300)
            .map(|(r, _)| r.addr)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn mix_is_deterministic_in_seed() {
        let topo = Topology::paper_default();
        let a: Vec<_> = mix_high(&topo, 7)
            .take_requests(200)
            .map(|(r, _)| r.addr)
            .collect();
        let b: Vec<_> = mix_high(&topo, 7)
            .take_requests(200)
            .map(|(r, _)| r.addr)
            .collect();
        assert_eq!(a, b);
    }
}
