//! Multi-programmed workloads: SPECrate and the two mixes of §7.2.
//!
//! * **SPECrate** — 16 copies of one application, each in its own
//!   address partition (the paper's per-application bars; Figure 7a
//!   reports their average).
//! * **mix-high** — 16 applications drawn from the nine `spec-high`
//!   (memory-intensive) models.
//! * **mix-blend** — 16 applications drawn uniformly from all 29.
//!
//! Copies are interleaved with weights proportional to MAPKI, modeling
//! each core's memory intensity.

use crate::spec::{spec_cpu2006, spec_high, AppModel, SpecAppSource};
use crate::trace::WeightedInterleave;
use twice_common::rng::SplitMix64;
use twice_common::Topology;

/// Builds a 16-copy SPECrate workload of `model`.
pub fn spec_rate(topo: &Topology, model: &AppModel, seed: u64) -> WeightedInterleave {
    let sources = (0..16u16)
        .map(|i| {
            (
                Box::new(SpecAppSource::new(topo, model.clone(), i, 16, seed)) as Box<_>,
                1,
            )
        })
        .collect();
    WeightedInterleave::new(sources)
}

fn mix_of(topo: &Topology, pool: &[AppModel], seed: u64) -> WeightedInterleave {
    assert!(!pool.is_empty(), "application pool must be non-empty");
    let mut rng = SplitMix64::new(seed);
    let sources = (0..16u16)
        .map(|i| {
            let model = pool[rng.next_below(pool.len() as u64) as usize].clone();
            // Weight by memory intensity, floored so light apps still run.
            let weight = (model.mapki.round() as u32).max(1);
            (
                Box::new(SpecAppSource::new(topo, model, i, 16, seed ^ 0x5eed)) as Box<_>,
                weight,
            )
        })
        .collect();
    WeightedInterleave::new(sources)
}

/// The `mix-high` workload: 16 applications from the `spec-high` set.
pub fn mix_high(topo: &Topology, seed: u64) -> WeightedInterleave {
    mix_of(topo, &spec_high(), seed)
}

/// The `mix-blend` workload: 16 applications from the whole suite.
pub fn mix_blend(topo: &Topology, seed: u64) -> WeightedInterleave {
    mix_of(topo, &spec_cpu2006(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::app;
    use crate::trace::AccessSource;

    #[test]
    fn spec_rate_uses_all_16_sources() {
        let topo = Topology::paper_default();
        let mix = spec_rate(&topo, &app("mcf").unwrap(), 1);
        let sources: std::collections::HashSet<u16> =
            mix.take_requests(1000).map(|(req, _)| req.source).collect();
        assert_eq!(sources.len(), 16);
    }

    #[test]
    fn mixes_produce_traffic_from_many_cores() {
        let topo = Topology::paper_default();
        for mix in [mix_high(&topo, 2), mix_blend(&topo, 3)] {
            let sources: std::collections::HashSet<u16> =
                mix.take_requests(5000).map(|(req, _)| req.source).collect();
            assert!(sources.len() >= 8, "only {} sources active", sources.len());
        }
    }

    #[test]
    fn mix_is_deterministic_in_seed() {
        let topo = Topology::paper_default();
        let a: Vec<_> = mix_high(&topo, 7)
            .take_requests(200)
            .map(|(r, _)| r.addr)
            .collect();
        let b: Vec<_> = mix_high(&topo, 7)
            .take_requests(200)
            .map(|(r, _)| r.addr)
            .collect();
        assert_eq!(a, b);
    }
}
