//! An FFT-like strided butterfly access pattern (SPLASH-2X FFT).
//!
//! A radix-2 FFT over `n` complex points performs `log2(n)` passes; in
//! pass `p` each butterfly touches elements `i` and `i + 2^p`. In DRAM
//! terms that is a sweep of paired accesses whose stride doubles every
//! pass — small strides stay within a row, large strides ping-pong
//! between distant rows. Multiple worker threads split the index space.

use crate::trace::{item_from_addr, AccessSource, Geometry, TraceItem};
use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, StateDigest};
use twice_common::Topology;
use twice_memctrl::request::AccessKind;

/// The FFT workload generator.
pub struct FftSource {
    geo: Geometry,
    /// Total elements (complex doubles, 16 B each).
    n: u64,
    threads: u16,
    /// Current (pass, butterfly index, half) cursor.
    pass: u32,
    index: u64,
    second_half: bool,
    writeback: bool,
    capacity: u64,
}

impl std::fmt::Debug for FftSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FftSource")
            .field("n", &self.n)
            .field("pass", &self.pass)
            .finish()
    }
}

const ELEM_BYTES: u64 = 16;

impl FftSource {
    /// Creates an FFT over `n` points (rounded down to a power of two)
    /// with `threads` workers on `topo`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `threads` is zero.
    pub fn new(topo: &Topology, n: u64, threads: u16) -> FftSource {
        assert!(n >= 2, "FFT needs at least two points");
        assert!(threads > 0, "need at least one thread");
        let n = 1u64 << (63 - n.leading_zeros());
        FftSource {
            geo: Geometry::new(topo),
            n,
            threads,
            pass: 0,
            index: 0,
            second_half: false,
            writeback: false,
            capacity: topo.capacity_bytes(),
        }
    }

    /// log2(n) passes in total.
    pub fn passes(&self) -> u32 {
        self.n.trailing_zeros()
    }
}

impl AccessSource for FftSource {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u32(self.pass);
        w.put_u64(self.index);
        w.put_bool(self.second_half);
        w.put_bool(self.writeback);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let pass = r.take_u32()?;
        if pass >= self.passes() {
            return Err(SnapshotError::StateMismatch(format!(
                "FFT pass {pass} out of {}",
                self.passes()
            )));
        }
        self.pass = pass;
        self.index = r.take_u64()?;
        self.second_half = r.take_bool()?;
        self.writeback = r.take_bool()?;
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_u32(self.pass);
        d.write_u64(self.index);
        d.write_bool(self.second_half);
        d.write_bool(self.writeback);
    }

    fn next_access(&mut self) -> TraceItem {
        let stride = 1u64 << self.pass;
        // Butterfly `index` in pass `pass` pairs element `base` with
        // `base + stride`, where indices advance skipping the partner
        // half of each 2*stride block.
        let block = self.index / stride;
        let offset = self.index % stride;
        let base = block * stride * 2 + offset;
        let element = if self.second_half {
            base + stride
        } else {
            base
        };
        let addr = (element * ELEM_BYTES) % self.capacity;
        let kind = if self.writeback {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let source = (self.index % u64::from(self.threads)) as u16;
        let out = item_from_addr(&self.geo.mapper, addr, kind, source);

        // Advance the cursor: read both halves, then write both halves.
        if !self.second_half {
            self.second_half = true;
        } else {
            self.second_half = false;
            if !self.writeback {
                self.writeback = true;
            } else {
                self.writeback = false;
                self.index += 1;
                if self.index >= self.n / 2 {
                    self.index = 0;
                    self.pass = (self.pass + 1) % self.passes();
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::AccessSource;

    #[test]
    fn early_passes_have_row_locality_late_passes_do_not() {
        let topo = Topology::paper_default();
        let mut fft = FftSource::new(&topo, 1 << 20, 16);
        // Pass 0: stride 16 B; partner is in the same row.
        let (_, a) = fft.next_access();
        let (_, b) = fft.next_access();
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
        // Skip ahead to a late pass.
        let mut f2 = FftSource::new(&topo, 1 << 20, 16);
        f2.pass = 19;
        let (_, a) = f2.next_access();
        let (_, b) = f2.next_access();
        assert!(
            a.row != b.row || a.bank != b.bank || a.channel != b.channel,
            "large strides must leave the row"
        );
    }

    #[test]
    fn pattern_is_read_read_write_write() {
        let topo = Topology::paper_default();
        let fft = FftSource::new(&topo, 1 << 12, 4);
        let kinds: Vec<_> = fft.take_requests(8).map(|(r, _)| r.kind).collect();
        use AccessKind::*;
        assert_eq!(
            kinds,
            vec![Read, Read, Write, Write, Read, Read, Write, Write]
        );
    }

    #[test]
    fn butterflies_cover_the_whole_array_each_pass() {
        let topo = Topology::paper_default();
        let mut fft = FftSource::new(&topo, 16, 1);
        let mut touched = std::collections::HashSet::new();
        // Pass 0 over n=16: 8 butterflies x 4 accesses (RRWW).
        for _ in 0..32 {
            let (req, _) = fft.next_access();
            touched.insert(req.addr / ELEM_BYTES);
        }
        assert_eq!(touched.len(), 16, "all 16 elements touched in a pass");
    }

    #[test]
    fn n_rounds_down_to_power_of_two() {
        let topo = Topology::paper_default();
        assert_eq!(FftSource::new(&topo, 1000, 1).n, 512);
        assert_eq!(FftSource::new(&topo, 1024, 1).passes(), 10);
    }
}
