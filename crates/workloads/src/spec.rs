//! SPEC CPU2006-like application models.
//!
//! SPEC itself cannot be redistributed; what a row-hammer defense
//! observes is the row-activation sequence, which is characterized by
//! (a) memory intensity (MAPKI — used to build the paper's `mix-high`
//! set), (b) row-buffer locality, and (c) the row-jump pattern. Each of
//! the 29 SPECrate applications used in Figure 7(a) is modeled by those
//! three knobs, with MAPKI classes taken from the published
//! characterizations of the suite (the nine paper-designated "spec-high"
//! applications — mcf, milc, leslie3d, soplex, GemsFDTD, libquantum,
//! lbm, sphinx3, omnetpp — all fall in the memory-intensive class).

use crate::trace::{item, AccessSource, Geometry, TraceItem};
use crate::zipf::Zipf;
use twice_common::rng::SplitMix64;
use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, StateDigest};
use twice_common::{ChannelId, ColId, RankId, RowId, Topology};
use twice_memctrl::request::AccessKind;

/// How an application jumps between rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowPattern {
    /// Sequential sweep (streaming kernels: lbm, libquantum, bwaves…).
    Streaming,
    /// Fixed row stride (structured-grid codes).
    Strided(u32),
    /// Uniform random over the working set (pointer chasing: mcf, astar).
    Random,
    /// Zipf-skewed reuse (irregular but hot-set-heavy: omnetpp, xalancbmk).
    Skewed(f64),
}

/// A SPEC-like application model.
#[derive(Debug, Clone)]
pub struct AppModel {
    /// Application name.
    pub name: &'static str,
    /// Memory accesses per kilo-instruction (intensity class).
    pub mapki: f64,
    /// Probability that the next access stays in the current row.
    pub row_locality: f64,
    /// Working-set size in DRAM rows.
    pub working_set_rows: u32,
    /// Row-jump pattern.
    pub pattern: RowPattern,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
}

/// The 29 SPEC CPU2006 applications used in SPECrate mode (Figure 7a).
pub fn spec_cpu2006() -> Vec<AppModel> {
    use RowPattern::*;
    let m = |name, mapki, row_locality, working_set_rows, pattern, write_fraction| AppModel {
        name,
        mapki,
        row_locality,
        working_set_rows,
        pattern,
        write_fraction,
    };
    vec![
        m("perlbench", 0.6, 0.85, 2_000, Skewed(0.8), 0.3),
        m("bzip2", 2.1, 0.75, 4_000, Strided(3), 0.35),
        m("gcc", 3.4, 0.70, 8_000, Skewed(0.7), 0.3),
        m("bwaves", 9.1, 0.80, 16_000, Streaming, 0.2),
        m("gamess", 0.2, 0.90, 1_000, Strided(2), 0.25),
        m("mcf", 24.7, 0.30, 64_000, Random, 0.25),
        m("milc", 15.5, 0.55, 32_000, Streaming, 0.3),
        m("zeusmp", 4.8, 0.70, 12_000, Strided(7), 0.3),
        m("gromacs", 0.7, 0.85, 2_000, Strided(2), 0.3),
        m("cactusADM", 4.4, 0.65, 10_000, Strided(11), 0.35),
        m("leslie3d", 13.2, 0.60, 24_000, Strided(5), 0.3),
        m("namd", 0.4, 0.88, 1_500, Strided(2), 0.2),
        m("gobmk", 1.0, 0.80, 3_000, Skewed(0.9), 0.3),
        m("dealII", 1.2, 0.78, 3_000, Skewed(0.8), 0.3),
        m("soplex", 12.4, 0.50, 24_000, Random, 0.25),
        m("povray", 0.1, 0.92, 800, Skewed(1.0), 0.2),
        m("calculix", 0.8, 0.82, 2_500, Strided(4), 0.3),
        m("hmmer", 0.6, 0.86, 1_500, Streaming, 0.3),
        m("sjeng", 0.9, 0.75, 3_000, Random, 0.3),
        m("GemsFDTD", 14.1, 0.55, 28_000, Strided(9), 0.35),
        m("libquantum", 20.4, 0.85, 20_000, Streaming, 0.25),
        m("h264ref", 1.6, 0.80, 4_000, Strided(3), 0.3),
        m("tonto", 0.9, 0.82, 2_500, Skewed(0.8), 0.3),
        m("lbm", 18.3, 0.65, 40_000, Streaming, 0.45),
        m("omnetpp", 10.3, 0.40, 32_000, Skewed(0.9), 0.3),
        m("astar", 4.2, 0.55, 12_000, Random, 0.25),
        m("wrf", 5.1, 0.70, 12_000, Strided(6), 0.3),
        m("sphinx3", 11.5, 0.60, 20_000, Skewed(0.7), 0.2),
        m("xalancbmk", 6.0, 0.55, 16_000, Skewed(0.9), 0.25),
    ]
}

/// The nine memory-intensive applications the paper classifies as
/// `spec-high` (§7.2).
pub fn spec_high() -> Vec<AppModel> {
    const NAMES: [&str; 9] = [
        "mcf",
        "milc",
        "leslie3d",
        "soplex",
        "GemsFDTD",
        "libquantum",
        "lbm",
        "sphinx3",
        "omnetpp",
    ];
    spec_cpu2006()
        .into_iter()
        .filter(|a| NAMES.contains(&a.name))
        .collect()
}

/// Looks an application up by name.
pub fn app(name: &str) -> Option<AppModel> {
    spec_cpu2006().into_iter().find(|a| a.name == name)
}

/// A running instance of one application copy.
pub struct SpecAppSource {
    geo: Geometry,
    model: AppModel,
    zipf: Option<Zipf>,
    rng: SplitMix64,
    source: u16,
    /// Base row of this copy's partition (SPECrate copies do not share
    /// address space).
    region_base: u32,
    region_rows: u32,
    channel: u8,
    rank: u8,
    bank: u16,
    row: u32,
    col: u16,
}

impl std::fmt::Debug for SpecAppSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpecAppSource")
            .field("app", &self.model.name)
            .field("source", &self.source)
            .finish()
    }
}

impl SpecAppSource {
    /// Creates copy `copy_index` of `total_copies` running `model` on
    /// `topo`, with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `total_copies` is zero or `copy_index` out of range.
    pub fn new(
        topo: &Topology,
        model: AppModel,
        copy_index: u16,
        total_copies: u16,
        seed: u64,
    ) -> SpecAppSource {
        assert!(total_copies > 0, "need at least one copy");
        assert!(copy_index < total_copies, "copy index out of range");
        let geo = Geometry::new(topo);
        let region_rows = (geo.rows / u32::from(total_copies)).max(1);
        let region_base = u32::from(copy_index) * region_rows;
        let ws = model.working_set_rows.min(region_rows);
        let zipf = match model.pattern {
            RowPattern::Skewed(theta) => Some(Zipf::new(ws as usize, theta)),
            _ => None,
        };
        SpecAppSource {
            rng: SplitMix64::new(seed ^ (u64::from(copy_index) << 32)),
            source: copy_index,
            region_base,
            region_rows,
            channel: (copy_index % u16::from(geo.channels)) as u8,
            rank: 0,
            bank: copy_index % geo.banks,
            row: region_base,
            col: 0,
            zipf,
            geo,
            model,
        }
    }

    fn jump_row(&mut self) {
        let ws = self.model.working_set_rows.min(self.region_rows).max(1);
        let offset = match self.model.pattern {
            RowPattern::Streaming => (self.row - self.region_base + 1) % ws,
            RowPattern::Strided(s) => (self.row - self.region_base + s) % ws,
            RowPattern::Random => self.rng.next_below(u64::from(ws)) as u32,
            RowPattern::Skewed(_) => {
                let z = self.zipf.as_ref().expect("skewed model has a sampler");
                z.sample(&mut self.rng) as u32
            }
        };
        self.row = self.region_base + offset;
        // Spread across banks/ranks/channels as real interleaving does.
        self.bank = (self.bank + 1) % self.geo.banks;
        if self.bank == 0 {
            self.rank = (self.rank + 1) % self.geo.ranks;
            if self.rank == 0 {
                self.channel = (self.channel + 1) % self.geo.channels;
            }
        }
        self.col = 0;
    }
}

impl AccessSource for SpecAppSource {
    fn save_state(&self, w: &mut SnapshotWriter) {
        // The Zipf sampler and region bounds are config-derived; only
        // the RNG and the current coordinate cursor are mutable.
        w.put_u64(self.rng.state());
        w.put_u8(self.channel);
        w.put_u8(self.rank);
        w.put_u32(u32::from(self.bank));
        w.put_u32(self.row);
        w.put_u32(u32::from(self.col));
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        // Snapshot bytes are untrusted (they come off disk): every
        // coordinate is range-checked so a doctored checkpoint yields a
        // typed error here instead of an out-of-range access tripping an
        // assert deep in the controller.
        let rng_state = r.take_u64()?;
        let channel = r.take_u8()?;
        if channel >= self.geo.channels {
            return Err(SnapshotError::StateMismatch(format!(
                "channel {channel} out of range (topology has {})",
                self.geo.channels
            )));
        }
        let rank = r.take_u8()?;
        if rank >= self.geo.ranks {
            return Err(SnapshotError::StateMismatch(format!(
                "rank {rank} out of range (topology has {})",
                self.geo.ranks
            )));
        }
        let bank = r.take_u32()?;
        if bank >= u32::from(self.geo.banks) {
            return Err(SnapshotError::StateMismatch(format!(
                "bank {bank} out of range (topology has {})",
                self.geo.banks
            )));
        }
        let row = r.take_u32()?;
        if row < self.region_base || row >= self.region_base + self.region_rows {
            return Err(SnapshotError::StateMismatch(format!(
                "row {row} outside copy region {}..{}",
                self.region_base,
                self.region_base + self.region_rows
            )));
        }
        let col = r.take_u32()?;
        if col >= u32::from(self.geo.cols) {
            return Err(SnapshotError::StateMismatch(format!(
                "col {col} out of range (topology has {})",
                self.geo.cols
            )));
        }
        self.rng.set_state(rng_state);
        self.channel = channel;
        self.rank = rank;
        self.bank = bank as u16;
        self.row = row;
        self.col = col as u16;
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_u64(self.rng.state());
        d.write_u8(self.channel);
        d.write_u8(self.rank);
        d.write_u16(self.bank);
        d.write_u32(self.row);
        d.write_u16(self.col);
    }

    fn next_access(&mut self) -> TraceItem {
        if !self.rng.chance(self.model.row_locality) {
            self.jump_row();
        } else {
            self.col = (self.col + 1) % self.geo.cols;
        }
        let kind = if self.rng.chance(self.model.write_fraction) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        item(
            &self.geo.mapper,
            ChannelId(self.channel),
            RankId(self.rank),
            self.bank,
            RowId(self.row),
            ColId(self.col),
            kind,
            self.source,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_29_applications() {
        let suite = spec_cpu2006();
        assert_eq!(suite.len(), 29);
        let names: std::collections::HashSet<_> = suite.iter().map(|a| a.name).collect();
        assert_eq!(names.len(), 29, "names must be unique");
    }

    #[test]
    fn spec_high_matches_the_paper_set() {
        let high = spec_high();
        assert_eq!(high.len(), 9);
        assert!(
            high.iter().all(|a| a.mapki >= 10.0),
            "spec-high is memory-intensive"
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(app("mcf").is_some());
        assert!(app("quake").is_none());
    }

    #[test]
    fn accesses_stay_inside_the_copy_region() {
        let topo = Topology::paper_default();
        let mut src = SpecAppSource::new(&topo, app("mcf").unwrap(), 3, 16, 42);
        let region_rows = topo.rows_per_bank / 16;
        for _ in 0..10_000 {
            let (_, a) = src.next_access();
            assert!(a.row.0 >= 3 * region_rows && a.row.0 < 4 * region_rows);
        }
    }

    #[test]
    fn row_locality_is_approximated() {
        let topo = Topology::paper_default();
        let model = app("libquantum").unwrap(); // locality 0.85
        let mut src = SpecAppSource::new(&topo, model, 0, 1, 7);
        let mut stays = 0u32;
        let mut last = src.next_access().1;
        let n = 50_000;
        for _ in 0..n {
            let (_, a) = src.next_access();
            if a.row == last.row && a.bank == last.bank {
                stays += 1;
            }
            last = a;
        }
        let rate = f64::from(stays) / f64::from(n);
        assert!((0.80..=0.90).contains(&rate), "locality {rate}");
    }

    #[test]
    fn streaming_sweeps_rows_in_order() {
        let topo = Topology::paper_default();
        let mut model = app("lbm").unwrap();
        model.row_locality = 0.0; // force a jump every access
        let mut src = SpecAppSource::new(&topo, model, 0, 1, 7);
        let r0 = src.next_access().1.row.0;
        let r1 = src.next_access().1.row.0;
        assert_eq!(r1, r0 + 1, "streaming advances one row at a time");
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn doctored_snapshots_are_rejected_with_typed_errors() {
        use twice_common::snapshot::{SnapshotError, SnapshotWriter};
        let topo = Topology::paper_default();
        // (rng, channel, rank, bank, row, col) with one field poisoned
        // per case; all-valid must load.
        let cases: [(u8, u8, u32, u32, u32, Option<&str>); 6] = [
            (0, 0, 0, 0, 0, None),
            (99, 0, 0, 0, 0, Some("channel")),
            (0, 99, 0, 0, 0, Some("rank")),
            (0, 0, 9_999, 0, 0, Some("bank")),
            (0, 0, 0, u32::MAX, 0, Some("row")),
            (0, 0, 0, 0, 999_999, Some("col")),
        ];
        for (channel, rank, bank, row, col, want) in cases {
            let mut src = SpecAppSource::new(&topo, app("mcf").unwrap(), 0, 1, 42);
            let mut w = SnapshotWriter::new();
            w.put_u64(7);
            w.put_u8(channel);
            w.put_u8(rank);
            w.put_u32(bank);
            w.put_u32(row);
            w.put_u32(col);
            let bytes = w.finish();
            let mut r = twice_common::snapshot::SnapshotReader::new(&bytes).unwrap();
            let got = src.load_state(&mut r);
            match want {
                None => got.unwrap(),
                Some(field) => {
                    let err = got.unwrap_err();
                    let SnapshotError::StateMismatch(msg) = &err else {
                        panic!("expected StateMismatch, got {err:?}");
                    };
                    assert!(msg.contains(field), "{field}: {msg}");
                }
            }
        }
    }

    #[test]
    fn benign_apps_never_hammer_one_row() {
        // No single row should collect a hammering share of activations.
        let topo = Topology::paper_default();
        let mut src = SpecAppSource::new(&topo, app("omnetpp").unwrap(), 0, 1, 9);
        let mut row_acts: std::collections::HashMap<(u16, u32), u32> =
            std::collections::HashMap::new();
        let mut last_row = None;
        for _ in 0..100_000 {
            let (_, a) = src.next_access();
            let key = (a.bank, a.row.0);
            if last_row != Some(key) {
                *row_acts.entry(key).or_insert(0) += 1;
                last_row = Some(key);
            }
        }
        let max = row_acts.values().copied().max().unwrap();
        let total: u32 = row_acts.values().sum();
        assert!(
            f64::from(max) / f64::from(total) < 0.05,
            "hottest row takes {max}/{total} activations"
        );
    }
}
