#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

//! Memory-trace generators for the TWiCe evaluation.
//!
//! The paper drives its simulated system with SPEC CPU2006 (29 SPECrate
//! configurations plus two mixes), four multi-threaded applications
//! (SPLASH-2X FFT and RADIX, MICA, GAP PageRank), and three synthetic
//! patterns (S1 random, S2 CBT-adversarial, S3 single-row hammer). None
//! of those suites can be redistributed, so this crate provides
//! **pattern-faithful generators**: what a row-hammer defense observes is
//! the per-bank row-activation sequence, and each generator reproduces
//! the row-touch distribution and locality structure of its namesake
//! (see DESIGN.md §5 for the substitution argument).
//!
//! * [`spec`] — 29 MAPKI-calibrated application models (SPECrate mode).
//! * [`mix`] — the `mix-high` and `mix-blend` multi-programmed mixes.
//! * [`fft`] / [`radix`] — SPLASH-2X-style strided/scatter kernels.
//! * [`mica`] — skewed key-value GET/SET traffic.
//! * [`pagerank`] — CSR scan + power-law gather traffic.
//! * [`synth`] — S1/S2/S3 from §7.2.
//! * [`record`] — v1 text trace serialization and replay.
//! * [`tracev2`] — the CRC-framed binary trace format with salvage.
//! * [`stats`] — one-pass trace characterization (row reuse, bank
//!   spread, hot-row share).
//! * [`attack`] — a row-hammer attack kit (single/double/many-sided).
//! * [`zipf`] — the Zipf sampler the above share.
//! * [`trace`] — the generator trait and combinators.
//!
//! # Examples
//!
//! ```
//! use twice_workloads::synth::S3SingleRowHammer;
//! use twice_workloads::trace::AccessSource;
//! use twice_common::Topology;
//!
//! let topo = Topology::paper_default();
//! let mut s3 = S3SingleRowHammer::new(&topo, 7);
//! let (_, first) = s3.next_access();
//! let (_, second) = s3.next_access();
//! assert_eq!(first.row, second.row, "S3 hammers a single row");
//! ```

pub mod attack;
pub mod fft;
pub mod genome;
pub mod mica;
pub mod mix;
pub mod pagerank;
pub mod radix;
pub mod record;
pub mod spec;
pub mod stats;
pub mod synth;
pub mod trace;
pub mod tracev2;
pub mod zipf;

pub use trace::{AccessSource, Bounded, TraceItem};
pub use tracev2::{SalvageSummary, SalvagedTrace, TraceHealth, TraceV2Writer};
