//! A row-hammer attack kit.
//!
//! Beyond the paper's S3 (single aggressor), real attacks hammer from
//! both sides of a victim (double-sided, as in the original ISCA'14
//! study and Drammer) or rotate through many aggressors to defeat
//! trackers with small tables (many-sided, the pattern later used
//! against TRR). These generators drive the end-to-end protection
//! experiments (V1 in DESIGN.md): with no defense the fault model must
//! flip the victim; with TWiCe it must not.

use crate::trace::{item, AccessSource, TraceItem};
use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, StateDigest};
use twice_common::{ChannelId, ColId, RankId, RowId, Topology};
use twice_memctrl::addrmap::AddressMapper;
use twice_memctrl::request::AccessKind;

/// Which hammer shape to generate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HammerShape {
    /// One aggressor row (the victim is whatever sits next to it).
    SingleSided {
        /// The hammered row.
        aggressor: RowId,
    },
    /// Two aggressors sandwiching `victim` (rows `victim ± 1`).
    DoubleSided {
        /// The sandwiched victim row.
        victim: RowId,
    },
    /// A rotating set of aggressors.
    ManySided {
        /// The aggressor rows, hammered round-robin.
        aggressors: Vec<RowId>,
    },
    /// One true aggressor interleaved with decoy rows: the decoys draw
    /// no disturbance of their own worth tracking but inflate a small
    /// tracker's working set, flushing the real aggressor out of
    /// capacity-bound tables (the TRR-style evasion TWiCe's sizing
    /// argument §4.3 is meant to survive).
    Decoy {
        /// The row actually being hammered.
        aggressor: RowId,
        /// Cover rows cycled between aggressor activations.
        decoys: Vec<RowId>,
    },
}

impl HammerShape {
    /// The aggressor rows this shape activates.
    pub fn aggressors(&self) -> Vec<RowId> {
        match self {
            HammerShape::SingleSided { aggressor } => vec![*aggressor],
            HammerShape::DoubleSided { victim } => [victim.below(), victim.above()]
                .into_iter()
                .flatten()
                .collect(),
            HammerShape::ManySided { aggressors } => aggressors.clone(),
            // Interleave [a, d1, a, d2, ...] so the true aggressor keeps
            // half the activation rate while every decoy churns the
            // tracker between its activations.
            HammerShape::Decoy { aggressor, decoys } => decoys
                .iter()
                .flat_map(|d| [*aggressor, *d])
                .chain(decoys.is_empty().then_some(*aggressor))
                .collect(),
        }
    }
}

/// A hammer attack on one bank.
#[derive(Debug)]
pub struct HammerAttack {
    mapper: AddressMapper,
    channel: ChannelId,
    rank: RankId,
    bank: u16,
    aggressors: Vec<RowId>,
    cursor: usize,
}

impl HammerAttack {
    /// Creates an attack of `shape` on `(channel 0, rank 0, bank)`.
    ///
    /// # Panics
    ///
    /// Panics if the shape yields no aggressors or an aggressor is
    /// outside the bank.
    pub fn new(topo: &Topology, bank: u16, shape: HammerShape) -> HammerAttack {
        let aggressors = shape.aggressors();
        assert!(!aggressors.is_empty(), "attack needs an aggressor");
        assert!(
            aggressors.iter().all(|r| topo.contains_row(*r)),
            "aggressor out of range"
        );
        HammerAttack {
            mapper: AddressMapper::row_interleaved(topo),
            channel: ChannelId(0),
            rank: RankId(0),
            bank,
            aggressors,
            cursor: 0,
        }
    }

    /// The aggressor rows.
    pub fn aggressors(&self) -> &[RowId] {
        &self.aggressors
    }
}

impl AccessSource for HammerAttack {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.cursor);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let cursor = r.take_usize()?;
        if cursor >= self.aggressors.len() {
            return Err(SnapshotError::StateMismatch(format!(
                "attack cursor {cursor} out of {} aggressors",
                self.aggressors.len()
            )));
        }
        self.cursor = cursor;
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_usize(self.cursor);
    }

    fn next_access(&mut self) -> TraceItem {
        let row = self.aggressors[self.cursor];
        self.cursor = (self.cursor + 1) % self.aggressors.len();
        item(
            &self.mapper,
            self.channel,
            self.rank,
            self.bank,
            row,
            ColId(0),
            AccessKind::Read,
            0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_sided_alternates_around_the_victim() {
        let topo = Topology::paper_default();
        let attack = HammerAttack::new(&topo, 3, HammerShape::DoubleSided { victim: RowId(100) });
        let rows: Vec<u32> = attack.take_requests(6).map(|(_, a)| a.row.0).collect();
        assert_eq!(rows, vec![99, 101, 99, 101, 99, 101]);
    }

    #[test]
    fn single_sided_repeats_one_row() {
        let topo = Topology::paper_default();
        let attack = HammerAttack::new(
            &topo,
            0,
            HammerShape::SingleSided {
                aggressor: RowId(7),
            },
        );
        assert!(attack.take_requests(10).all(|(_, a)| a.row == RowId(7)));
    }

    #[test]
    fn many_sided_rotates() {
        let topo = Topology::paper_default();
        let aggressors: Vec<RowId> = (10..18).map(RowId).collect();
        let attack = HammerAttack::new(
            &topo,
            0,
            HammerShape::ManySided {
                aggressors: aggressors.clone(),
            },
        );
        let rows: Vec<RowId> = attack.take_requests(16).map(|(_, a)| a.row).collect();
        assert_eq!(&rows[..8], &aggressors[..]);
        assert_eq!(&rows[8..], &aggressors[..]);
    }

    #[test]
    fn double_sided_at_edge_has_one_aggressor() {
        let shape = HammerShape::DoubleSided { victim: RowId(0) };
        assert_eq!(shape.aggressors(), vec![RowId(1)]);
    }

    #[test]
    fn decoy_gives_the_aggressor_half_the_activations() {
        let topo = Topology::paper_default();
        let attack = HammerAttack::new(
            &topo,
            0,
            HammerShape::Decoy {
                aggressor: RowId(50),
                decoys: vec![RowId(200), RowId(300), RowId(400)],
            },
        );
        let rows: Vec<u32> = attack.take_requests(12).map(|(_, a)| a.row.0).collect();
        assert_eq!(
            rows,
            vec![50, 200, 50, 300, 50, 400, 50, 200, 50, 300, 50, 400]
        );
    }

    #[test]
    fn decoy_without_decoys_degenerates_to_single_sided() {
        let shape = HammerShape::Decoy {
            aggressor: RowId(5),
            decoys: vec![],
        };
        assert_eq!(shape.aggressors(), vec![RowId(5)]);
    }

    #[test]
    #[should_panic(expected = "aggressor out of range")]
    fn rejects_out_of_range_aggressor() {
        let topo = Topology::single_bank(16);
        HammerAttack::new(
            &topo,
            0,
            HammerShape::SingleSided {
                aggressor: RowId(16),
            },
        );
    }
}
