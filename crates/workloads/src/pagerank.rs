//! A PageRank access pattern (GAP Benchmark Suite).
//!
//! Pull-based PageRank iterates over vertices in CSR order — a
//! sequential scan of the offsets and edge arrays — and for each edge
//! gathers the source vertex's rank: a random-looking read whose target
//! distribution follows the graph's (power-law) degree distribution.
//! The generator synthesizes exactly that: sequential edge-array reads
//! interleaved with Zipf-distributed rank-array gathers, plus a
//! sequential rank write per vertex.

use crate::trace::{item_from_addr, AccessSource, Geometry, TraceItem};
use crate::zipf::Zipf;
use twice_common::rng::SplitMix64;
use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, StateDigest};
use twice_common::Topology;
use twice_memctrl::request::AccessKind;

/// The PageRank workload generator.
pub struct PageRankSource {
    geo: Geometry,
    vertices: u64,
    avg_degree: u64,
    zipf: Zipf,
    rng: SplitMix64,
    vertex: u64,
    edge_in_vertex: u64,
    /// Phase within an edge: 0 = edge-array read, 1 = rank gather.
    phase: u8,
    threads: u16,
    capacity: u64,
    edge_cursor: u64,
}

impl std::fmt::Debug for PageRankSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageRankSource")
            .field("vertices", &self.vertices)
            .field("avg_degree", &self.avg_degree)
            .finish()
    }
}

const EDGE_BYTES: u64 = 8;
const RANK_BYTES: u64 = 8;

impl PageRankSource {
    /// Creates PageRank over a synthetic power-law graph of `vertices`
    /// vertices with average degree `avg_degree` on `topo`.
    ///
    /// # Panics
    ///
    /// Panics if `vertices`, `avg_degree`, or `threads` is zero.
    pub fn new(
        topo: &Topology,
        vertices: u64,
        avg_degree: u64,
        threads: u16,
        seed: u64,
    ) -> PageRankSource {
        assert!(vertices > 0 && avg_degree > 0 && threads > 0, "empty graph");
        PageRankSource {
            geo: Geometry::new(topo),
            vertices,
            avg_degree,
            zipf: Zipf::new(vertices.min(1 << 22) as usize, 0.8),
            rng: SplitMix64::new(seed),
            vertex: 0,
            edge_in_vertex: 0,
            phase: 0,
            threads,
            capacity: topo.capacity_bytes(),
            edge_cursor: 0,
        }
    }

    /// The GAP-style default: 4M vertices, average degree 16.
    pub fn standard(topo: &Topology, seed: u64) -> PageRankSource {
        PageRankSource::new(topo, 1 << 22, 16, 16, seed)
    }
}

impl AccessSource for PageRankSource {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.rng.state());
        w.put_u64(self.vertex);
        w.put_u64(self.edge_in_vertex);
        w.put_u8(self.phase);
        w.put_u64(self.edge_cursor);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.rng.set_state(r.take_u64()?);
        self.vertex = r.take_u64()?;
        self.edge_in_vertex = r.take_u64()?;
        self.phase = r.take_u8()?;
        self.edge_cursor = r.take_u64()?;
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_u64(self.rng.state());
        d.write_u64(self.vertex);
        d.write_u64(self.edge_in_vertex);
        d.write_u8(self.phase);
        d.write_u64(self.edge_cursor);
    }

    fn next_access(&mut self) -> TraceItem {
        let source = (self.vertex % u64::from(self.threads)) as u16;
        // Memory layout: [edge array][rank array].
        let edge_region = self.vertices * self.avg_degree * EDGE_BYTES;
        match self.phase {
            0 => {
                // Sequential edge read.
                let addr = (self.edge_cursor * EDGE_BYTES) % edge_region.min(self.capacity / 2);
                self.phase = 1;
                item_from_addr(&self.geo.mapper, addr, AccessKind::Read, source)
            }
            _ => {
                // Gather the neighbor's rank: power-law distributed.
                let neighbor = self.zipf.sample(&mut self.rng) as u64;
                let rank_base = self.capacity / 2;
                let addr = rank_base + (neighbor * RANK_BYTES) % (self.capacity / 2);
                self.phase = 0;
                self.edge_cursor += 1;
                self.edge_in_vertex += 1;
                if self.edge_in_vertex >= self.avg_degree {
                    self.edge_in_vertex = 0;
                    self.vertex = (self.vertex + 1) % self.vertices;
                }
                item_from_addr(&self.geo.mapper, addr, AccessKind::Read, source)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternates_scan_and_gather() {
        let topo = Topology::paper_default();
        let pr = PageRankSource::new(&topo, 1000, 4, 4, 1);
        let addrs: Vec<u64> = pr.take_requests(20).map(|(r, _)| r.addr).collect();
        // Even positions are sequential edge reads.
        for w in addrs.chunks(2).collect::<Vec<_>>().windows(2) {
            assert_eq!(w[1][0], w[0][0] + EDGE_BYTES, "edge scan is sequential");
        }
        // Odd positions (gathers) land in the upper half of memory.
        let half = topo.capacity_bytes() / 2;
        for pair in addrs.chunks(2) {
            assert!(pair[1] >= half, "gather must target the rank region");
        }
    }

    #[test]
    fn gathers_follow_power_law() {
        let topo = Topology::paper_default();
        let pr = PageRankSource::new(&topo, 100_000, 8, 4, 2);
        let mut counts: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for (i, (req, _)) in pr.take_requests(100_000).enumerate() {
            if i % 2 == 1 {
                *counts.entry(req.addr).or_insert(0) += 1;
            }
        }
        let max = counts.values().copied().max().unwrap();
        let mean = counts.values().map(|&c| f64::from(c)).sum::<f64>() / counts.len() as f64;
        assert!(
            f64::from(max) > mean * 10.0,
            "degree skew: max {max} vs mean {mean:.1}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let topo = Topology::paper_default();
        let a: Vec<_> = PageRankSource::new(&topo, 5000, 8, 4, 7)
            .take_requests(500)
            .map(|(r, _)| r.addr)
            .collect();
        let b: Vec<_> = PageRankSource::new(&topo, 5000, 8, 4, 7)
            .take_requests(500)
            .map(|(r, _)| r.addr)
            .collect();
        assert_eq!(a, b);
    }
}
