//! Trace characterization: the metrics that determine how a trace looks
//! to a row-hammer defense.
//!
//! A defense only sees row activations, so three properties of a trace
//! decide everything: how activations spread across banks, how they
//! concentrate on rows, and how often consecutive accesses stay in an
//! open row (which determines how many accesses become ACTs at all).
//! [`TraceProfile`] computes all three in one pass; generator tests use
//! it to pin each workload's character, and it doubles as a tool for
//! characterizing recorded traces.

use crate::trace::TraceItem;
use std::collections::HashMap;

/// One-pass characterization of a trace.
#[derive(Debug, Clone)]
pub struct TraceProfile {
    accesses: u64,
    row_switches: u64,
    /// Activations per (channel, rank, bank).
    per_bank: HashMap<(u8, u8, u16), u64>,
    /// Activations per (channel, rank, bank, row).
    per_row: HashMap<(u8, u8, u16, u32), u64>,
    writes: u64,
    sources: std::collections::HashSet<u16>,
}

impl TraceProfile {
    /// Profiles `trace`.
    pub fn new(trace: impl IntoIterator<Item = TraceItem>) -> TraceProfile {
        let mut p = TraceProfile {
            accesses: 0,
            row_switches: 0,
            per_bank: HashMap::new(),
            per_row: HashMap::new(),
            writes: 0,
            sources: std::collections::HashSet::new(),
        };
        let mut open: HashMap<(u8, u8, u16), u32> = HashMap::new();
        for (req, a) in trace {
            p.accesses += 1;
            p.sources.insert(req.source);
            if req.kind == twice_memctrl::request::AccessKind::Write {
                p.writes += 1;
            }
            let bank_key = (a.channel.0, a.rank.0, a.bank);
            let is_switch = open.insert(bank_key, a.row.0) != Some(a.row.0);
            if is_switch {
                p.row_switches += 1;
                *p.per_bank.entry(bank_key).or_insert(0) += 1;
                *p.per_row
                    .entry((a.channel.0, a.rank.0, a.bank, a.row.0))
                    .or_insert(0) += 1;
            }
        }
        p
    }

    /// Total accesses profiled.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Row activations an idealized open-page controller would issue
    /// (a row switch per bank = one ACT).
    #[inline]
    pub fn activations(&self) -> u64 {
        self.row_switches
    }

    /// Fraction of accesses that hit the currently open row.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1.0 - self.row_switches as f64 / self.accesses as f64
        }
    }

    /// Fraction of accesses that are writes.
    pub fn write_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.writes as f64 / self.accesses as f64
        }
    }

    /// Number of distinct banks activated.
    #[inline]
    pub fn banks_touched(&self) -> usize {
        self.per_bank.len()
    }

    /// Number of distinct rows activated.
    #[inline]
    pub fn rows_touched(&self) -> usize {
        self.per_row.len()
    }

    /// Number of distinct request sources.
    #[inline]
    pub fn sources(&self) -> usize {
        self.sources.len()
    }

    /// The hottest row's share of all activations — the signature a
    /// row-hammer defense keys on (1.0 = pure S3, ~0 = uniform).
    pub fn hottest_row_share(&self) -> f64 {
        if self.row_switches == 0 {
            return 0.0;
        }
        let max = self.per_row.values().copied().max().unwrap_or(0);
        max as f64 / self.row_switches as f64
    }

    /// Jain's fairness index over per-bank activation counts
    /// (1.0 = perfectly balanced, 1/banks = all in one bank).
    pub fn bank_balance(&self) -> f64 {
        if self.per_bank.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.per_bank.values().map(|&c| c as f64).sum();
        let sum_sq: f64 = self.per_bank.values().map(|&c| (c as f64).powi(2)).sum();
        sum * sum / (self.per_bank.len() as f64 * sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mica::MicaSource;
    use crate::spec::{app, SpecAppSource};
    use crate::synth::{S1Random, S3SingleRowHammer};
    use crate::trace::AccessSource;
    use twice_common::Topology;

    #[test]
    fn s3_has_hottest_row_share_one() {
        let topo = Topology::paper_default();
        let p = TraceProfile::new(S3SingleRowHammer::new(&topo, 1).take_requests(5_000));
        assert_eq!(p.hottest_row_share(), 1.0);
        assert_eq!(p.rows_touched(), 1);
        assert_eq!(p.banks_touched(), 1);
        // Same row every time: one conceptual activation.
        assert!(p.row_hit_rate() > 0.999);
    }

    #[test]
    fn s1_is_balanced_and_cold() {
        let topo = Topology::paper_default();
        let p = TraceProfile::new(S1Random::new(&topo, 2).take_requests(64_000));
        assert!(p.bank_balance() > 0.95, "balance {}", p.bank_balance());
        assert!(p.hottest_row_share() < 0.01);
        assert!(p.row_hit_rate() < 0.01, "random rows rarely repeat");
        assert_eq!(p.banks_touched(), 64);
    }

    #[test]
    fn spec_models_expose_their_declared_locality() {
        let topo = Topology::paper_default();
        let model = app("libquantum").unwrap(); // declared locality 0.85
        let p = TraceProfile::new(SpecAppSource::new(&topo, model, 0, 1, 3).take_requests(50_000));
        assert!(
            (0.80..=0.90).contains(&p.row_hit_rate()),
            "hit rate {}",
            p.row_hit_rate()
        );
    }

    #[test]
    fn mica_skew_shows_in_hot_row_share() {
        let topo = Topology::paper_default();
        let skewed = TraceProfile::new(
            MicaSource::new(&topo, 100_000, 0.99, 1.0, 4, 5).take_requests(40_000),
        );
        let uniform = TraceProfile::new(
            MicaSource::new(&topo, 100_000, 0.0, 1.0, 4, 5).take_requests(40_000),
        );
        assert!(
            skewed.hottest_row_share() > uniform.hottest_row_share() * 3.0,
            "zipf {} vs uniform {}",
            skewed.hottest_row_share(),
            uniform.hottest_row_share()
        );
    }

    #[test]
    fn write_fraction_and_sources_are_counted() {
        let topo = Topology::paper_default();
        let model = app("lbm").unwrap(); // write_fraction 0.45
        let p = TraceProfile::new(SpecAppSource::new(&topo, model, 0, 1, 3).take_requests(40_000));
        assert!((0.40..=0.50).contains(&p.write_fraction()));
        assert_eq!(p.sources(), 1);
    }

    #[test]
    fn empty_trace_profiles_cleanly() {
        let p = TraceProfile::new(Vec::new());
        assert_eq!(p.accesses(), 0);
        assert_eq!(p.row_hit_rate(), 0.0);
        assert_eq!(p.bank_balance(), 0.0);
        assert_eq!(p.hottest_row_share(), 0.0);
    }
}
