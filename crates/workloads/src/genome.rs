//! Hammer-pattern genomes for the red-team evolutionary search.
//!
//! A [`PatternGenome`] is a compact, fully deterministic description of a
//! hammer attack: which rows to hammer, how many decoy rows to interleave
//! (to churn capacity-bound trackers), how long to idle before striking
//! (phase offset), and how to pause periodically so refresh windows slide
//! past mid-attack (tREFW straddling — the scenario TWiCe's §4.3 life
//! accounting exists to survive). The search in `twice_sim::redteam`
//! mutates and crosses these genomes; everything here is a pure function
//! of a [`SplitMix64`] stream, so the same seed always breeds the same
//! lineage byte for byte.

use crate::trace::{item, AccessSource, TraceItem};
use twice_common::rng::SplitMix64;
use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, StateDigest};
use twice_common::{ChannelId, ColId, RankId, RowId, Topology};
use twice_memctrl::addrmap::AddressMapper;
use twice_memctrl::request::AccessKind;

/// Bounds for genome generation and mutation, derived from a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenomeSpace {
    /// Rows per bank; every genome row is below this.
    pub rows: u32,
    /// Banks per rank (the genome attacks channel 0, rank 0).
    pub banks: u16,
    /// Maximum aggressor-set size. 24 deliberately exceeds vendor-TRR
    /// tracker sizes, so many-sided rotation evasion is in the space.
    pub max_aggressors: usize,
    /// Maximum decoy-set size.
    pub max_decoys: usize,
    /// Maximum aggressor ACTs between decoy visits.
    pub max_burst: u8,
    /// Maximum filler accesses before hammering starts.
    pub max_phase: u16,
    /// Maximum attack steps between straddle pauses.
    pub max_pause_every: u16,
    /// Maximum filler accesses per straddle pause.
    pub max_pause_len: u16,
}

impl GenomeSpace {
    /// The search space for `topo` with the default structural caps.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no rows or banks.
    pub fn for_topology(topo: &Topology) -> GenomeSpace {
        assert!(
            topo.rows_per_bank > 0 && topo.banks_per_rank > 0,
            "empty topology"
        );
        GenomeSpace {
            rows: topo.rows_per_bank,
            banks: topo.banks_per_rank,
            max_aggressors: 24,
            max_decoys: 24,
            max_burst: 8,
            max_phase: 2_048,
            max_pause_every: 4_096,
            max_pause_len: 2_048,
        }
    }

    fn random_row(&self, rng: &mut SplitMix64) -> RowId {
        RowId(rng.next_below(u64::from(self.rows)) as u32)
    }
}

/// Typed decode failure for genome bytes (checkpoints, corpus manifests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenomeCodecError {
    /// The byte string is not valid genome encoding.
    Malformed(String),
    /// The decoded genome violates the given space's bounds.
    OutOfSpace(String),
}

impl std::fmt::Display for GenomeCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenomeCodecError::Malformed(m) => write!(f, "malformed genome: {m}"),
            GenomeCodecError::OutOfSpace(m) => write!(f, "genome out of space: {m}"),
        }
    }
}

impl std::error::Error for GenomeCodecError {}

/// Layout version of the genome byte encoding.
const GENOME_CODEC_VERSION: u8 = 1;

/// One hammer-pattern genome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternGenome {
    /// The attacked bank (channel 0, rank 0).
    pub bank: u16,
    /// Rows hammered round-robin (non-empty; duplicates act as weights).
    pub aggressors: Vec<RowId>,
    /// Cover rows interleaved between aggressor bursts; they draw tracker
    /// capacity without accumulating disturbance of their own.
    pub decoys: Vec<RowId>,
    /// Aggressor ACTs per decoy visit (≥ 1; ignored without decoys).
    pub burst: u8,
    /// Filler accesses issued before hammering starts, shifting the
    /// attack's position inside the refresh window.
    pub phase: u16,
    /// Attack steps between straddle pauses (0 = never pause).
    pub pause_every: u16,
    /// Filler accesses per straddle pause (with `pause_every`, lets
    /// auto-refresh slices sweep mid-attack).
    pub pause_len: u16,
}

impl PatternGenome {
    /// A uniformly random genome within `space`.
    pub fn random(space: &GenomeSpace, rng: &mut SplitMix64) -> PatternGenome {
        let n_agg = 1 + rng.next_below(space.max_aggressors as u64) as usize;
        let n_dec = rng.next_below(space.max_decoys as u64 + 1) as usize;
        PatternGenome {
            bank: rng.next_below(u64::from(space.banks)) as u16,
            aggressors: (0..n_agg).map(|_| space.random_row(rng)).collect(),
            decoys: (0..n_dec).map(|_| space.random_row(rng)).collect(),
            burst: 1 + rng.next_below(u64::from(space.max_burst)) as u8,
            phase: rng.next_below(u64::from(space.max_phase) + 1) as u16,
            pause_every: rng.next_below(u64::from(space.max_pause_every) + 1) as u16,
            pause_len: rng.next_below(u64::from(space.max_pause_len) + 1) as u16,
        }
    }

    /// Whether every field is inside `space`'s bounds.
    pub fn in_space(&self, space: &GenomeSpace) -> bool {
        !self.aggressors.is_empty()
            && self.aggressors.len() <= space.max_aggressors
            && self.decoys.len() <= space.max_decoys
            && self.bank < space.banks
            && self.aggressors.iter().all(|r| r.0 < space.rows)
            && self.decoys.iter().all(|r| r.0 < space.rows)
            && self.burst >= 1
            && self.burst <= space.max_burst
            && self.phase <= space.max_phase
            && self.pause_every <= space.max_pause_every
            && self.pause_len <= space.max_pause_len
    }

    /// A mutated copy: 1–3 field tweaks drawn from `rng`.
    pub fn mutate(&self, space: &GenomeSpace, rng: &mut SplitMix64) -> PatternGenome {
        let mut g = self.clone();
        let tweaks = 1 + rng.next_below(3);
        for _ in 0..tweaks {
            match rng.next_below(10) {
                0 => {
                    // Nudge one aggressor, keeping locality (double-sided
                    // patterns emerge from ±2 steps).
                    let i = rng.next_below(g.aggressors.len() as u64) as usize;
                    let delta = 1 + rng.next_below(4) as u32;
                    let row = &mut g.aggressors[i];
                    *row = if rng.chance(0.5) {
                        RowId(row.0.saturating_add(delta) % space.rows)
                    } else {
                        RowId(row.0.saturating_sub(delta))
                    };
                }
                1 => {
                    if g.aggressors.len() < space.max_aggressors {
                        // Grow the rotation: half the time adjacent to an
                        // existing aggressor, half the time anywhere.
                        let row = if rng.chance(0.5) {
                            let i = rng.next_below(g.aggressors.len() as u64) as usize;
                            RowId(g.aggressors[i].0.saturating_add(2) % space.rows)
                        } else {
                            space.random_row(rng)
                        };
                        g.aggressors.push(row);
                    }
                }
                2 => {
                    if g.aggressors.len() > 1 {
                        let i = rng.next_below(g.aggressors.len() as u64) as usize;
                        g.aggressors.remove(i);
                    }
                }
                3 => {
                    if g.decoys.len() < space.max_decoys {
                        g.decoys.push(space.random_row(rng));
                    }
                }
                4 => {
                    if !g.decoys.is_empty() {
                        let i = rng.next_below(g.decoys.len() as u64) as usize;
                        g.decoys.remove(i);
                    }
                }
                5 => {
                    if !g.decoys.is_empty() {
                        let i = rng.next_below(g.decoys.len() as u64) as usize;
                        g.decoys[i] = space.random_row(rng);
                    }
                }
                6 => {
                    g.burst = 1 + rng.next_below(u64::from(space.max_burst)) as u8;
                }
                7 => {
                    g.phase = rng.next_below(u64::from(space.max_phase) + 1) as u16;
                }
                8 => {
                    g.pause_every = rng.next_below(u64::from(space.max_pause_every) + 1) as u16;
                    g.pause_len = rng.next_below(u64::from(space.max_pause_len) + 1) as u16;
                }
                _ => {
                    g.bank = rng.next_below(u64::from(space.banks)) as u16;
                }
            }
        }
        debug_assert!(g.in_space(space));
        g
    }

    /// A child genome: scalar fields coin-flipped from either parent, row
    /// lists spliced (a prefix of one parent's list joined to a suffix of
    /// the other's, clamped to the space's caps).
    pub fn crossover(
        a: &PatternGenome,
        b: &PatternGenome,
        space: &GenomeSpace,
        rng: &mut SplitMix64,
    ) -> PatternGenome {
        fn splice(
            x: &[RowId],
            y: &[RowId],
            cap: usize,
            min: usize,
            rng: &mut SplitMix64,
        ) -> Vec<RowId> {
            let cut_x = rng.next_below(x.len() as u64 + 1) as usize;
            let cut_y = rng.next_below(y.len() as u64 + 1) as usize;
            let mut out: Vec<RowId> = x[..cut_x].iter().chain(&y[cut_y..]).copied().collect();
            out.truncate(cap);
            if out.len() < min {
                out.extend_from_slice(&x[..min - out.len()]);
            }
            out
        }
        let g = PatternGenome {
            bank: if rng.chance(0.5) { a.bank } else { b.bank },
            aggressors: splice(&a.aggressors, &b.aggressors, space.max_aggressors, 1, rng),
            decoys: splice(&a.decoys, &b.decoys, space.max_decoys, 0, rng),
            burst: if rng.chance(0.5) { a.burst } else { b.burst },
            phase: if rng.chance(0.5) { a.phase } else { b.phase },
            pause_every: if rng.chance(0.5) {
                a.pause_every
            } else {
                b.pause_every
            },
            pause_len: if rng.chance(0.5) {
                a.pause_len
            } else {
                b.pause_len
            },
        };
        debug_assert!(g.in_space(space));
        g
    }

    /// The hand-written openers the initial population is seeded with:
    /// the classic shapes every defense was designed against, plus the
    /// evasions the literature says small trackers miss.
    pub fn classics(space: &GenomeSpace) -> Vec<PatternGenome> {
        let mid = space.rows / 2;
        let base = PatternGenome {
            bank: 0,
            aggressors: vec![RowId(mid)],
            decoys: Vec::new(),
            burst: 1,
            phase: 0,
            pause_every: 0,
            pause_len: 0,
        };
        let many = |n: u32, stride: u32| -> Vec<RowId> {
            (0..n.min(space.max_aggressors as u32))
                .map(|i| RowId((mid + i * stride) % space.rows))
                .collect()
        };
        vec![
            // Single-sided.
            base.clone(),
            // Double-sided around the mid victim.
            PatternGenome {
                aggressors: vec![RowId(mid.saturating_sub(1)), RowId((mid + 1) % space.rows)],
                ..base.clone()
            },
            // Many-sided: 8 spread aggressors.
            PatternGenome {
                aggressors: many(8, 64),
                ..base.clone()
            },
            // Many-sided rotation sized past vendor-TRR trackers.
            PatternGenome {
                aggressors: many(24, 32),
                ..base.clone()
            },
            // Decoy flood around one true aggressor.
            PatternGenome {
                decoys: many(16, 128),
                burst: 1,
                ..base.clone()
            },
            // Refresh-straddle: hammer in spurts with idle gaps.
            PatternGenome {
                pause_every: 256.min(space.max_pause_every),
                pause_len: 512.min(space.max_pause_len),
                ..base
            },
        ]
    }

    /// Canonical byte encoding (versioned; round-trips via
    /// [`PatternGenome::decode`]). The property tests pin lineage
    /// determinism on these bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 4 * (self.aggressors.len() + self.decoys.len()));
        out.push(GENOME_CODEC_VERSION);
        out.extend_from_slice(&self.bank.to_le_bytes());
        out.push(self.burst);
        out.extend_from_slice(&self.phase.to_le_bytes());
        out.extend_from_slice(&self.pause_every.to_le_bytes());
        out.extend_from_slice(&self.pause_len.to_le_bytes());
        out.push(self.aggressors.len() as u8);
        out.push(self.decoys.len() as u8);
        for r in self.aggressors.iter().chain(&self.decoys) {
            out.extend_from_slice(&r.0.to_le_bytes());
        }
        out
    }

    /// Decodes [`PatternGenome::encode`] bytes.
    ///
    /// # Errors
    ///
    /// [`GenomeCodecError::Malformed`] on truncation, trailing bytes, a
    /// version mismatch, or an empty aggressor set.
    pub fn decode(bytes: &[u8]) -> Result<PatternGenome, GenomeCodecError> {
        let fail = |m: &str| GenomeCodecError::Malformed(m.into());
        if bytes.len() < 12 {
            return Err(fail("shorter than the fixed header"));
        }
        if bytes[0] != GENOME_CODEC_VERSION {
            return Err(fail(&format!("unknown version {}", bytes[0])));
        }
        let bank = u16::from_le_bytes([bytes[1], bytes[2]]);
        let burst = bytes[3];
        let phase = u16::from_le_bytes([bytes[4], bytes[5]]);
        let pause_every = u16::from_le_bytes([bytes[6], bytes[7]]);
        let pause_len = u16::from_le_bytes([bytes[8], bytes[9]]);
        let n_agg = bytes[10] as usize;
        let n_dec = bytes[11] as usize;
        if n_agg == 0 {
            return Err(fail("no aggressors"));
        }
        if burst == 0 {
            return Err(fail("zero burst"));
        }
        let body = &bytes[12..];
        if body.len() != 4 * (n_agg + n_dec) {
            return Err(fail("row list length mismatch"));
        }
        let rows: Vec<RowId> = body
            .chunks_exact(4)
            .map(|c| RowId(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect();
        Ok(PatternGenome {
            bank,
            aggressors: rows[..n_agg].to_vec(),
            decoys: rows[n_agg..].to_vec(),
            burst,
            phase,
            pause_every,
            pause_len,
        })
    }

    /// Lowercase-hex form of [`PatternGenome::encode`] (journal lines,
    /// corpus manifests).
    pub fn hex(&self) -> String {
        let mut s = String::new();
        for b in self.encode() {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Decodes a [`PatternGenome::hex`] string.
    ///
    /// # Errors
    ///
    /// [`GenomeCodecError::Malformed`] on non-hex input or any
    /// [`PatternGenome::decode`] failure.
    pub fn from_hex(s: &str) -> Result<PatternGenome, GenomeCodecError> {
        if !s.len().is_multiple_of(2) {
            return Err(GenomeCodecError::Malformed("odd hex length".into()));
        }
        let bytes: Result<Vec<u8>, _> = (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16))
            .collect();
        let bytes = bytes.map_err(|e| GenomeCodecError::Malformed(format!("bad hex: {e}")))?;
        PatternGenome::decode(&bytes)
    }

    /// A short human-readable shape summary, e.g.
    /// `bank0 12-sided +4 decoys burst2 phase100 straddle 256/512`.
    pub fn summary(&self) -> String {
        let mut s = format!("bank{} {}-sided", self.bank, self.aggressors.len());
        if !self.decoys.is_empty() {
            s.push_str(&format!(
                " +{} decoys burst{}",
                self.decoys.len(),
                self.burst
            ));
        }
        if self.phase > 0 {
            s.push_str(&format!(" phase{}", self.phase));
        }
        if self.pause_every > 0 && self.pause_len > 0 {
            s.push_str(&format!(
                " straddle {}/{}",
                self.pause_every, self.pause_len
            ));
        }
        s
    }

    /// Builds the deterministic access source expressing this genome on
    /// `topo`.
    ///
    /// # Panics
    ///
    /// Panics if the genome does not fit `topo`'s geometry.
    pub fn source(&self, topo: &Topology) -> GenomeSource {
        GenomeSource::new(topo, self.clone())
    }
}

/// The [`AccessSource`] expressing a [`PatternGenome`].
///
/// Every access is a pure function of the cursor, so the snapshot is a
/// single integer and a restored source replays the exact suffix an
/// uninterrupted run would have produced.
#[derive(Debug)]
pub struct GenomeSource {
    mapper: AddressMapper,
    genome: PatternGenome,
    /// Filler traffic goes to a different bank when one exists, so idle
    /// phases advance DRAM time (letting refresh slices sweep) without
    /// touching the victim bank.
    filler_bank: u16,
    rows: u32,
    cursor: u64,
}

impl GenomeSource {
    /// Creates the source for `genome` on `(channel 0, rank 0)`.
    ///
    /// # Panics
    ///
    /// Panics if the genome's bank or any of its rows are outside `topo`.
    pub fn new(topo: &Topology, genome: PatternGenome) -> GenomeSource {
        assert!(genome.bank < topo.banks_per_rank, "bank out of range");
        assert!(!genome.aggressors.is_empty(), "genome needs an aggressor");
        assert!(
            genome
                .aggressors
                .iter()
                .chain(&genome.decoys)
                .all(|r| topo.contains_row(*r)),
            "genome row out of range"
        );
        GenomeSource {
            mapper: AddressMapper::row_interleaved(topo),
            filler_bank: (genome.bank + 1) % topo.banks_per_rank,
            rows: topo.rows_per_bank,
            genome,
            cursor: 0,
        }
    }

    /// The genome being expressed.
    pub fn genome(&self) -> &PatternGenome {
        &self.genome
    }

    fn filler(&self, t: u64) -> (u16, RowId) {
        // A long-stride rotation over the filler bank: each row is
        // revisited so rarely that filler traffic never hammers anything.
        let row = t.wrapping_mul(97) % u64::from(self.rows);
        (self.filler_bank, RowId(row as u32))
    }

    fn attack_slot(&self, s: u64) -> (u16, RowId) {
        let g = &self.genome;
        let burst = u64::from(g.burst.max(1));
        if g.decoys.is_empty() {
            let i = (s % g.aggressors.len() as u64) as usize;
            return (g.bank, g.aggressors[i]);
        }
        // Repeating unit: `burst` aggressor ACTs then one decoy, with the
        // aggressor rotation continuing across units.
        let unit = burst + 1;
        let u = s / unit;
        let p = s % unit;
        if p < burst {
            let i = ((u * burst + p) % g.aggressors.len() as u64) as usize;
            (g.bank, g.aggressors[i])
        } else {
            let i = (u % g.decoys.len() as u64) as usize;
            (g.bank, g.decoys[i])
        }
    }

    /// The (bank, row) of access `t` — a pure function of the cursor.
    fn slot(&self, t: u64) -> (u16, RowId) {
        let phase = u64::from(self.genome.phase);
        if t < phase {
            return self.filler(t);
        }
        let s = t - phase;
        let pe = u64::from(self.genome.pause_every);
        let pl = u64::from(self.genome.pause_len);
        if pe > 0 && pl > 0 {
            let cycle = pe + pl;
            let in_cycle = s % cycle;
            if in_cycle >= pe {
                return self.filler(t);
            }
            return self.attack_slot((s / cycle) * pe + in_cycle);
        }
        self.attack_slot(s)
    }
}

impl AccessSource for GenomeSource {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.cursor);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.cursor = r.take_u64()?;
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_u64(self.cursor);
    }

    fn next_access(&mut self) -> TraceItem {
        let (bank, row) = self.slot(self.cursor);
        self.cursor += 1;
        item(
            &self.mapper,
            ChannelId(0),
            RankId(0),
            bank,
            row,
            ColId(0),
            AccessKind::Read,
            0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology {
            channels: 1,
            ranks_per_channel: 1,
            banks_per_rank: 2,
            rows_per_bank: 4_096,
            cols_per_row: 128,
            row_bytes: 8_192,
            devices_per_rank: 8,
        }
    }

    fn space() -> GenomeSpace {
        GenomeSpace::for_topology(&topo())
    }

    #[test]
    fn random_genomes_stay_in_space() {
        let sp = space();
        let mut rng = SplitMix64::new(7);
        for _ in 0..500 {
            let g = PatternGenome::random(&sp, &mut rng);
            assert!(g.in_space(&sp), "{g:?}");
        }
    }

    #[test]
    fn mutation_and_crossover_stay_in_space() {
        let sp = space();
        let mut rng = SplitMix64::new(8);
        let mut a = PatternGenome::random(&sp, &mut rng);
        let mut b = PatternGenome::random(&sp, &mut rng);
        for _ in 0..500 {
            let child = PatternGenome::crossover(&a, &b, &sp, &mut rng);
            assert!(child.in_space(&sp), "{child:?}");
            a = b;
            b = child.mutate(&sp, &mut rng);
            assert!(b.in_space(&sp), "{b:?}");
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let sp = space();
        let mut rng = SplitMix64::new(9);
        for _ in 0..100 {
            let g = PatternGenome::random(&sp, &mut rng);
            assert_eq!(PatternGenome::decode(&g.encode()).unwrap(), g);
            assert_eq!(PatternGenome::from_hex(&g.hex()).unwrap(), g);
        }
    }

    #[test]
    fn decode_rejects_hostile_bytes() {
        assert!(PatternGenome::decode(&[]).is_err());
        assert!(PatternGenome::decode(&[9; 12]).is_err(), "bad version");
        let mut ok = PatternGenome::classics(&space())[0].encode();
        ok.push(0xff);
        assert!(PatternGenome::decode(&ok).is_err(), "trailing bytes");
        let mut zero_agg = PatternGenome::classics(&space())[0].encode();
        zero_agg[10] = 0;
        assert!(PatternGenome::decode(&zero_agg).is_err());
        assert!(PatternGenome::from_hex("zz").is_err());
        assert!(PatternGenome::from_hex("abc").is_err(), "odd length");
    }

    #[test]
    fn source_is_a_pure_function_of_the_cursor() {
        let topo = topo();
        let sp = GenomeSpace::for_topology(&topo);
        let mut rng = SplitMix64::new(10);
        let g = PatternGenome::random(&sp, &mut rng);
        let a: Vec<u32> = g
            .source(&topo)
            .take_requests(200)
            .map(|(_, x)| x.row.0)
            .collect();
        let b: Vec<u32> = g
            .source(&topo)
            .take_requests(200)
            .map(|(_, x)| x.row.0)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_resumes_the_exact_suffix() {
        let topo = topo();
        let sp = GenomeSpace::for_topology(&topo);
        let mut rng = SplitMix64::new(11);
        let g = PatternGenome::random(&sp, &mut rng);
        let mut live = g.source(&topo);
        for _ in 0..137 {
            live.next_access();
        }
        let mut w = SnapshotWriter::new();
        live.save_state(&mut w);
        let bytes = w.finish();
        let mut restored = g.source(&topo);
        let mut r = SnapshotReader::new(&bytes).unwrap();
        restored.load_state(&mut r).unwrap();
        for _ in 0..100 {
            let (_, a) = live.next_access();
            let (_, b) = restored.next_access();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn decoys_interleave_and_aggressors_rotate() {
        let topo = topo();
        let g = PatternGenome {
            bank: 0,
            aggressors: vec![RowId(10), RowId(20)],
            decoys: vec![RowId(100), RowId(200)],
            burst: 2,
            phase: 0,
            pause_every: 0,
            pause_len: 0,
        };
        let rows: Vec<u32> = g
            .source(&topo)
            .take_requests(9)
            .map(|(_, a)| a.row.0)
            .collect();
        // burst=2: [a0 a1 d0] [a0 a1 d1] [a0 a1 d0]
        assert_eq!(rows, vec![10, 20, 100, 10, 20, 200, 10, 20, 100]);
    }

    #[test]
    fn phase_and_straddle_route_filler_off_the_victim_bank() {
        let topo = topo();
        let g = PatternGenome {
            bank: 0,
            aggressors: vec![RowId(10)],
            decoys: vec![],
            burst: 1,
            phase: 3,
            pause_every: 2,
            pause_len: 2,
        };
        let banks: Vec<u16> = g
            .source(&topo)
            .take_requests(11)
            .map(|(_, a)| a.bank)
            .collect();
        // 3 filler (bank 1), then cycles of 2 attack (bank 0) + 2 filler.
        assert_eq!(banks, vec![1, 1, 1, 0, 0, 1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn classics_are_valid_and_distinct() {
        let sp = space();
        let classics = PatternGenome::classics(&sp);
        assert!(classics.len() >= 5);
        for g in &classics {
            assert!(g.in_space(&sp), "{g:?}");
        }
        for (i, a) in classics.iter().enumerate() {
            assert!(!classics[i + 1..].contains(a), "duplicate classic");
        }
    }

    #[test]
    fn same_seed_same_lineage() {
        let sp = space();
        let run = |seed: u64| -> Vec<Vec<u8>> {
            let mut rng = SplitMix64::new(seed);
            let mut pop: Vec<PatternGenome> = (0..8)
                .map(|_| PatternGenome::random(&sp, &mut rng))
                .collect();
            let mut lineage = Vec::new();
            for _ in 0..5 {
                let child =
                    PatternGenome::crossover(&pop[0], &pop[1], &sp, &mut rng).mutate(&sp, &mut rng);
                lineage.push(child.encode());
                pop.rotate_left(1);
                pop[7] = child;
            }
            lineage
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
