//! A MICA-like key-value store access pattern ([Lim et al., NSDI'14]).
//!
//! MICA partitions the key space across cores; each GET hashes the key,
//! probes a hash-index bucket, then reads the value. Client traffic is
//! skewed (the standard YCSB-style Zipf 0.99), so a hot set of keys —
//! and therefore a hot set of *buckets and value rows* — dominates. The
//! generator reproduces that structure: per-access (index probe + value
//! access) pairs, Zipf-popular keys, 95/5 GET/SET by default.

use crate::trace::{item_from_addr, AccessSource, Geometry, TraceItem};
use crate::zipf::Zipf;
use twice_common::rng::SplitMix64;
use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, StateDigest};
use twice_common::Topology;
use twice_memctrl::request::AccessKind;

/// The MICA workload generator.
pub struct MicaSource {
    geo: Geometry,
    keys: u64,
    zipf: Zipf,
    rng: SplitMix64,
    get_fraction: f64,
    threads: u16,
    /// Pending value access for the key probed last (index, then value).
    pending_value: Option<(u64, AccessKind, u16)>,
    capacity: u64,
}

impl std::fmt::Debug for MicaSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MicaSource")
            .field("keys", &self.keys)
            .field("get_fraction", &self.get_fraction)
            .finish()
    }
}

const BUCKET_BYTES: u64 = 64;
const VALUE_BYTES: u64 = 256;

impl MicaSource {
    /// Creates a MICA store of `keys` keys with Zipf skew `theta` and
    /// `get_fraction` reads, served by `threads` cores on `topo`.
    ///
    /// # Panics
    ///
    /// Panics if `keys` or `threads` is zero, or `get_fraction` is not in
    /// `[0, 1]`.
    pub fn new(
        topo: &Topology,
        keys: u64,
        theta: f64,
        get_fraction: f64,
        threads: u16,
        seed: u64,
    ) -> MicaSource {
        assert!(keys > 0, "need at least one key");
        assert!(threads > 0, "need at least one thread");
        assert!((0.0..=1.0).contains(&get_fraction), "get_fraction in [0,1]");
        MicaSource {
            geo: Geometry::new(topo),
            keys,
            zipf: Zipf::new(keys.min(1 << 22) as usize, theta),
            rng: SplitMix64::new(seed),
            get_fraction,
            threads,
            pending_value: None,
            capacity: topo.capacity_bytes(),
        }
    }

    /// The standard configuration: 16 M keys, Zipf 0.99, 95% GET.
    pub fn standard(topo: &Topology, seed: u64) -> MicaSource {
        MicaSource::new(topo, 1 << 24, 0.99, 0.95, 16, seed)
    }

    fn hash(key: u64) -> u64 {
        // Fibonacci hashing: spreads hot keys across the index region.
        key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

impl AccessSource for MicaSource {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.rng.state());
        w.put_bool(self.pending_value.is_some());
        if let Some((addr, kind, source)) = self.pending_value {
            w.put_u64(addr);
            w.put_bool(kind == AccessKind::Write);
            w.put_u32(u32::from(source));
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.rng.set_state(r.take_u64()?);
        self.pending_value = if r.take_bool()? {
            let addr = r.take_u64()?;
            let kind = if r.take_bool()? {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let source = r.take_u32()? as u16;
            Some((addr, kind, source))
        } else {
            None
        };
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_u64(self.rng.state());
        d.write_bool(self.pending_value.is_some());
        if let Some((addr, kind, source)) = self.pending_value {
            d.write_u64(addr);
            d.write_bool(kind == AccessKind::Write);
            d.write_u16(source);
        }
    }

    fn next_access(&mut self) -> TraceItem {
        if let Some((addr, kind, source)) = self.pending_value.take() {
            return item_from_addr(&self.geo.mapper, addr, kind, source);
        }
        let key = self.zipf.sample(&mut self.rng) as u64;
        let h = Self::hash(key);
        let source = (h % u64::from(self.threads)) as u16;
        let kind = if self.rng.chance(self.get_fraction) {
            AccessKind::Read
        } else {
            AccessKind::Write
        };
        // Index region: first quarter of memory; value region: the rest.
        let index_region = self.capacity / 4;
        let bucket_addr = (h % (index_region / BUCKET_BYTES)) * BUCKET_BYTES;
        let value_addr =
            index_region + (h % ((self.capacity - index_region) / VALUE_BYTES)) * VALUE_BYTES;
        self.pending_value = Some((value_addr, kind, source));
        // The index probe is always a read.
        item_from_addr(&self.geo.mapper, bucket_addr, AccessKind::Read, source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_then_value_pairing() {
        let topo = Topology::paper_default();
        let mica = MicaSource::new(&topo, 1000, 0.99, 0.0, 4, 1); // all SETs
        let kinds: Vec<_> = mica.take_requests(10).map(|(r, _)| r.kind).collect();
        // Index probe (read), then value write, repeated.
        for pair in kinds.chunks(2) {
            assert_eq!(pair[0], AccessKind::Read);
            assert_eq!(pair[1], AccessKind::Write);
        }
    }

    #[test]
    fn get_set_ratio_approximates_target() {
        let topo = Topology::paper_default();
        let mica = MicaSource::new(&topo, 10_000, 0.99, 0.95, 4, 2);
        let writes = mica
            .take_requests(40_000)
            .filter(|(r, _)| r.kind == AccessKind::Write)
            .count();
        // Half the accesses are value accesses; 5% of those are writes.
        let rate = writes as f64 / 20_000.0;
        assert!((0.03..=0.07).contains(&rate), "SET rate {rate}");
    }

    #[test]
    fn hot_keys_revisit_the_same_rows() {
        let topo = Topology::paper_default();
        let mica = MicaSource::new(&topo, 100_000, 0.99, 1.0, 4, 3);
        let mut row_counts: std::collections::HashMap<(u8, u16, u32), u32> =
            std::collections::HashMap::new();
        for (_, a) in mica.take_requests(50_000) {
            *row_counts
                .entry((a.channel.0, a.bank, a.row.0))
                .or_insert(0) += 1;
        }
        let max = row_counts.values().copied().max().unwrap();
        assert!(max > 50, "skew must concentrate row traffic (max {max})");
    }

    #[test]
    fn traffic_spans_many_banks() {
        let topo = Topology::paper_default();
        let mica = MicaSource::standard(&topo, 4);
        let banks: std::collections::HashSet<(u8, u8, u16)> = mica
            .take_requests(10_000)
            .map(|(_, a)| (a.channel.0, a.rank.0, a.bank))
            .collect();
        assert!(banks.len() > 32, "only {} banks touched", banks.len());
    }
}
