//! Trace recording and replay.
//!
//! Experiments become exactly reproducible (and shareable) when the
//! request stream is a file: [`write_trace`] serializes any generator's
//! output to a simple line format, and [`TraceReader`] replays it as an
//! [`crate::trace::AccessSource`]-compatible iterator.
//!
//! Format: a mandatory `# twice-trace v1` header (validated by
//! [`TraceReader::open`]), then one access per line, `#`-comments
//! allowed —
//!
//! ```text
//! # twice-trace v1
//! R 0x00001a40 3
//! W 0x7fff0000 12
//! ```
//!
//! i.e. `kind addr source`, with the DRAM coordinate re-derived through
//! the standard address mapper so traces stay valid across topology-
//! compatible runs.

use crate::trace::TraceItem;
use std::io::{self, BufRead, Write};
use twice_common::{Time, Topology};
use twice_memctrl::addrmap::AddressMapper;
use twice_memctrl::request::{AccessKind, MemRequest};

/// The header line identifying the format.
pub const HEADER: &str = "# twice-trace v1";

/// Serializes `trace` to `writer`.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_trace<W: Write>(
    mut writer: W,
    trace: impl IntoIterator<Item = TraceItem>,
) -> io::Result<u64> {
    writeln!(writer, "{HEADER}")?;
    let mut n = 0;
    for (req, _) in trace {
        let kind = match req.kind {
            AccessKind::Read => 'R',
            AccessKind::Write => 'W',
        };
        writeln!(writer, "{kind} {:#010x} {}", req.addr, req.source)?;
        n += 1;
    }
    Ok(n)
}

/// A parse/shape error in a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFormatError {
    /// 1-based line number.
    pub line: u64,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for TraceFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceFormatError {}

/// Replays a serialized trace.
#[derive(Debug)]
pub struct TraceReader<R> {
    lines: io::Lines<R>,
    mapper: AddressMapper,
    capacity: u64,
    line_no: u64,
}

impl<R: BufRead> TraceReader<R> {
    /// Opens a trace over `reader` for `topo`, validating the
    /// `# twice-trace v1` header.
    ///
    /// The header is a format contract, not a comment: a file without
    /// it is rejected up front instead of best-effort parsed, and a
    /// future `v2`-and-beyond header is reported as an unsupported
    /// version rather than silently skipped.
    ///
    /// # Errors
    ///
    /// [`TraceFormatError`] if the first line is missing, is not a
    /// `twice-trace` header, or names an unknown version.
    pub fn open(mut reader: R, topo: &Topology) -> Result<TraceReader<R>, TraceFormatError> {
        let mut first = String::new();
        let got = reader.read_line(&mut first).map_err(|e| TraceFormatError {
            line: 1,
            message: format!("io error: {e}"),
        })?;
        let trimmed = first.trim();
        let version = trimmed
            .strip_prefix('#')
            .map(|rest| rest.trim())
            .and_then(|rest| rest.strip_prefix("twice-trace"))
            .map(|rest| rest.trim());
        let version = match version {
            Some(v) => v,
            None => {
                let what = if got == 0 { "empty file" } else { "first line" };
                return Err(TraceFormatError {
                    line: 1,
                    message: format!("missing `{HEADER}` header ({what})"),
                });
            }
        };
        if version != "v1" {
            return Err(TraceFormatError {
                line: 1,
                message: format!("unsupported trace version {version:?} (reader speaks v1)"),
            });
        }
        Ok(TraceReader {
            lines: reader.lines(),
            mapper: AddressMapper::row_interleaved(topo),
            capacity: topo.capacity_bytes(),
            line_no: 1,
        })
    }

    fn parse(&self, line: &str) -> Result<TraceItem, TraceFormatError> {
        let err = |message: String| TraceFormatError {
            line: self.line_no,
            message,
        };
        let mut parts = line.split_whitespace();
        let kind = match parts.next() {
            Some("R") => AccessKind::Read,
            Some("W") => AccessKind::Write,
            other => return Err(err(format!("bad kind {other:?}"))),
        };
        let addr_str = parts.next().ok_or_else(|| err("missing address".into()))?;
        let addr = addr_str
            .strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16))
            .unwrap_or_else(|| addr_str.parse())
            .map_err(|e| err(format!("bad address {addr_str}: {e}")))?;
        let source: u16 = parts
            .next()
            .ok_or_else(|| err("missing source".into()))?
            .parse()
            .map_err(|e| err(format!("bad source: {e}")))?;
        if parts.next().is_some() {
            return Err(err("trailing fields".into()));
        }
        // The mapper decodes modulo the topology, so an oversized address
        // would silently alias onto a real row — a hostile trace could
        // steer activations while looking like it targets nothing. Reject
        // instead of wrapping.
        if addr >= self.capacity {
            return Err(err(format!(
                "address {addr:#x} beyond topology capacity {:#x}",
                self.capacity
            )));
        }
        let access = self.mapper.decode(addr);
        let req = match kind {
            AccessKind::Read => MemRequest::read(addr, source, Time::ZERO),
            AccessKind::Write => MemRequest::write(addr, source, Time::ZERO),
        };
        Ok((req, access))
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<TraceItem, TraceFormatError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.line_no += 1;
            let line = match self.lines.next()? {
                Ok(l) => l,
                Err(e) => {
                    return Some(Err(TraceFormatError {
                        line: self.line_no,
                        message: format!("io error: {e}"),
                    }))
                }
            };
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            return Some(self.parse(trimmed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::S1Random;
    use crate::trace::AccessSource;
    use std::io::BufReader;

    #[test]
    fn round_trip_preserves_every_access() {
        let topo = Topology::paper_default();
        let original: Vec<TraceItem> = S1Random::new(&topo, 9).take_requests(500).collect();
        let mut buf = Vec::new();
        let n = write_trace(&mut buf, original.clone()).unwrap();
        assert_eq!(n, 500);
        let replayed: Vec<TraceItem> = TraceReader::open(BufReader::new(&buf[..]), &topo)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(replayed.len(), original.len());
        for ((r1, a1), (r2, a2)) in original.iter().zip(replayed.iter()) {
            assert_eq!(r1.addr, r2.addr);
            assert_eq!(r1.kind, r2.kind);
            assert_eq!(r1.source, r2.source);
            assert_eq!(a1, a2);
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let topo = Topology::paper_default();
        let text = format!("{HEADER}\n\n# comment\nR 0x40 3\n");
        let items: Vec<_> = TraceReader::open(BufReader::new(text.as_bytes()), &topo)
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].0.addr, 0x40);
        assert_eq!(items[0].0.source, 3);
    }

    #[test]
    fn decimal_addresses_are_accepted() {
        let topo = Topology::paper_default();
        let text = format!("{HEADER}\nW 128 0\n");
        let items: Vec<_> = TraceReader::open(BufReader::new(text.as_bytes()), &topo)
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert_eq!(items[0].0.addr, 128);
        assert_eq!(items[0].0.kind, AccessKind::Write);
    }

    #[test]
    fn malformed_lines_report_their_position() {
        let topo = Topology::paper_default();
        for (line, needle) in [
            ("X 0x40 1", "bad kind"),
            ("R zzz 1", "bad address"),
            ("R 0x40", "missing source"),
            ("R 0x40 1 extra", "trailing"),
        ] {
            let text = format!("{HEADER}\n{line}\n");
            let err = TraceReader::open(BufReader::new(text.as_bytes()), &topo)
                .unwrap()
                .next()
                .unwrap()
                .unwrap_err();
            assert!(err.message.contains(needle), "{line:?} -> {err}");
            assert_eq!(err.line, 2);
        }
    }

    #[test]
    fn oversized_addresses_are_rejected_not_aliased() {
        let topo = Topology::paper_default();
        let beyond = topo.capacity_bytes(); // first invalid byte address
        let text = format!("{HEADER}\nR {beyond:#x} 0\nR 0xffffffffffffffff 0\n");
        let results: Vec<_> = TraceReader::open(BufReader::new(text.as_bytes()), &topo)
            .unwrap()
            .collect();
        assert_eq!(results.len(), 2);
        for r in results {
            let err = r.unwrap_err();
            assert!(err.message.contains("beyond topology capacity"), "{err}");
        }
        // The last valid address still decodes.
        let text = format!("{HEADER}\nR {:#x} 0\n", beyond - 1);
        let items: Vec<_> = TraceReader::open(BufReader::new(text.as_bytes()), &topo)
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn missing_header_is_rejected_on_open() {
        let topo = Topology::paper_default();
        for text in ["", "W 128 0\n", "# a plain comment\nR 0x40 1\n"] {
            let err = TraceReader::open(BufReader::new(text.as_bytes()), &topo).unwrap_err();
            assert!(err.message.contains("missing"), "{text:?} -> {err}");
            assert_eq!(err.line, 1);
        }
    }

    #[test]
    fn unknown_version_is_rejected_on_open() {
        let topo = Topology::paper_default();
        for text in ["# twice-trace v2\nR 0x40 1\n", "# twice-trace v99\n"] {
            let err = TraceReader::open(BufReader::new(text.as_bytes()), &topo).unwrap_err();
            assert!(
                err.message.contains("unsupported trace version"),
                "{text:?} -> {err}"
            );
            assert_eq!(err.line, 1);
        }
    }
}
