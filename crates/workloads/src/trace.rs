//! The generator abstraction shared by every workload.

use twice_common::snapshot::{
    Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, StateDigest,
};
use twice_common::{ChannelId, ColId, RankId, RowId, Time, Topology};
use twice_memctrl::addrmap::{AddressMapper, DecodedAccess};
use twice_memctrl::request::{AccessKind, MemRequest};

/// One trace element: the request plus its decoded DRAM coordinate.
pub type TraceItem = (MemRequest, DecodedAccess);

/// An endless source of memory accesses.
///
/// Generators are infinite; bound them with [`Bounded`] (or
/// [`AccessSource::take_requests`]) to make a finite trace.
pub trait AccessSource {
    /// Produces the next access.
    fn next_access(&mut self) -> TraceItem;

    /// A finite trace of `n` accesses drawn from this source.
    fn take_requests(self, n: u64) -> Bounded<Self>
    where
        Self: Sized,
    {
        Bounded {
            source: self,
            remaining: n,
        }
    }

    /// Serializes the generator's mutable cursor/RNG state (checkpointing
    /// hook). Stateless generators use the no-op default; every stateful
    /// generator must override so a restored source replays the exact
    /// suffix an uninterrupted run would have produced.
    fn save_state(&self, w: &mut SnapshotWriter) {
        let _ = w;
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// source built from the same configuration.
    ///
    /// # Errors
    ///
    /// Decode errors from a truncated or mismatched snapshot.
    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let _ = r;
        Ok(())
    }

    /// Folds the mutable cursor/RNG state into a digest.
    fn digest_state(&self, d: &mut StateDigest) {
        let _ = d;
    }
}

impl AccessSource for Box<dyn AccessSource + Send> {
    fn next_access(&mut self) -> TraceItem {
        (**self).next_access()
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        (**self).save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        (**self).load_state(r)
    }

    fn digest_state(&self, d: &mut StateDigest) {
        (**self).digest_state(d);
    }
}

/// A bounded iterator over an [`AccessSource`].
#[derive(Debug, Clone)]
pub struct Bounded<G> {
    source: G,
    remaining: u64,
}

impl<G: AccessSource> Iterator for Bounded<G> {
    type Item = TraceItem;

    fn next(&mut self) -> Option<TraceItem> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.source.next_access())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (n, Some(n))
    }
}

impl<G: AccessSource> Snapshot for Bounded<G> {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.remaining);
        self.source.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.remaining = r.take_u64()?;
        self.source.load_state(r)
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_u64(self.remaining);
        self.source.digest_state(d);
    }
}

/// Shared helper: builds a [`TraceItem`] from a DRAM coordinate.
///
/// The physical address is reconstructed through `mapper` so that the
/// request stream is self-consistent with the controller's decoder.
#[allow(clippy::too_many_arguments)] // it mirrors the DRAM coordinate tuple
pub(crate) fn item(
    mapper: &AddressMapper,
    channel: ChannelId,
    rank: RankId,
    bank: u16,
    row: RowId,
    col: ColId,
    kind: AccessKind,
    source: u16,
) -> TraceItem {
    let access = DecodedAccess {
        channel,
        rank,
        bank,
        row,
        col,
    };
    let addr = mapper.encode(channel, rank, bank, row, col);
    let req = match kind {
        AccessKind::Read => MemRequest::read(addr, source, Time::ZERO),
        AccessKind::Write => MemRequest::write(addr, source, Time::ZERO),
    };
    (req, access)
}

/// Shared helper: builds a [`TraceItem`] from a raw physical address
/// (for generators that think in linear data space, like FFT/RADIX).
pub(crate) fn item_from_addr(
    mapper: &AddressMapper,
    addr: u64,
    kind: AccessKind,
    source: u16,
) -> TraceItem {
    let access = mapper.decode(addr);
    let req = match kind {
        AccessKind::Read => MemRequest::read(addr, source, Time::ZERO),
        AccessKind::Write => MemRequest::write(addr, source, Time::ZERO),
    };
    (req, access)
}

/// Round-robins accesses from several sources, weighted by each source's
/// share (used for multi-programmed mixes: a core's share models its
/// memory intensity).
pub struct WeightedInterleave {
    sources: Vec<(Box<dyn AccessSource + Send>, u32)>,
    /// Deficit counters for weighted round-robin.
    credit: Vec<i64>,
    cursor: usize,
}

impl std::fmt::Debug for WeightedInterleave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WeightedInterleave")
            .field("sources", &self.sources.len())
            .finish()
    }
}

impl WeightedInterleave {
    /// Combines `sources` with their weights.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or any weight is zero.
    pub fn new(sources: Vec<(Box<dyn AccessSource + Send>, u32)>) -> WeightedInterleave {
        assert!(!sources.is_empty(), "need at least one source");
        assert!(
            sources.iter().all(|(_, w)| *w > 0),
            "weights must be non-zero"
        );
        WeightedInterleave {
            credit: vec![0; sources.len()],
            sources,
            cursor: 0,
        }
    }
}

impl AccessSource for WeightedInterleave {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.sources.len());
        for &c in &self.credit {
            w.put_u64(c as u64);
        }
        w.put_usize(self.cursor);
        for (s, _) in &self.sources {
            s.save_state(w);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let n = r.take_usize()?;
        if n != self.sources.len() {
            return Err(SnapshotError::StateMismatch(format!(
                "interleave has {} sources, snapshot has {n}",
                self.sources.len()
            )));
        }
        for c in &mut self.credit {
            *c = r.take_u64()? as i64;
        }
        let cursor = r.take_usize()?;
        if cursor >= self.sources.len() {
            return Err(SnapshotError::StateMismatch(format!(
                "interleave cursor {cursor} out of {n}"
            )));
        }
        self.cursor = cursor;
        for (s, _) in &mut self.sources {
            s.load_state(r)?;
        }
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        for &c in &self.credit {
            d.write_u64(c as u64);
        }
        d.write_usize(self.cursor);
        for (s, _) in &self.sources {
            s.digest_state(d);
        }
    }

    fn next_access(&mut self) -> TraceItem {
        // Deficit round-robin: replenish credit by weight each lap; emit
        // from sources while they hold credit.
        loop {
            if self.cursor == 0 {
                let any = self.credit.iter().any(|&c| c > 0);
                if !any {
                    for (i, (_, w)) in self.sources.iter().enumerate() {
                        self.credit[i] += i64::from(*w);
                    }
                }
            }
            let i = self.cursor;
            self.cursor = (self.cursor + 1) % self.sources.len();
            if self.credit[i] > 0 {
                self.credit[i] -= 1;
                return self.sources[i].0.next_access();
            }
        }
    }
}

/// Common topology-derived fields the generators share.
#[derive(Debug, Clone)]
pub(crate) struct Geometry {
    pub mapper: AddressMapper,
    pub channels: u8,
    pub ranks: u8,
    pub banks: u16,
    pub rows: u32,
    pub cols: u16,
}

impl Geometry {
    pub fn new(topo: &Topology) -> Geometry {
        Geometry {
            mapper: AddressMapper::row_interleaved(topo),
            channels: topo.channels,
            ranks: topo.ranks_per_channel,
            banks: topo.banks_per_rank,
            rows: topo.rows_per_bank,
            cols: topo.cols_per_row,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twice_common::rng::SplitMix64;

    struct Fixed(u32);
    impl AccessSource for Fixed {
        fn next_access(&mut self) -> TraceItem {
            let topo = Topology::paper_default();
            let mapper = AddressMapper::row_interleaved(&topo);
            item(
                &mapper,
                ChannelId(0),
                RankId(0),
                0,
                RowId(self.0),
                ColId(0),
                AccessKind::Read,
                self.0 as u16,
            )
        }
    }

    #[test]
    fn bounded_yields_exactly_n() {
        let trace: Vec<_> = Fixed(1).take_requests(5).collect();
        assert_eq!(trace.len(), 5);
    }

    #[test]
    fn size_hint_is_exact() {
        let b = Fixed(1).take_requests(7);
        assert_eq!(b.size_hint(), (7, Some(7)));
    }

    #[test]
    fn weighted_interleave_respects_weights() {
        let mix = WeightedInterleave::new(vec![(Box::new(Fixed(1)), 3), (Box::new(Fixed(2)), 1)]);
        let counts = mix.take_requests(4000).fold([0u32; 3], |mut acc, (_, a)| {
            acc[a.row.index()] += 1;
            acc
        });
        let ratio = f64::from(counts[1]) / f64::from(counts[2]);
        assert!((2.5..=3.5).contains(&ratio), "ratio {ratio}, expected ~3");
    }

    #[test]
    #[should_panic(expected = "weights must be non-zero")]
    fn zero_weight_rejected() {
        WeightedInterleave::new(vec![(Box::new(Fixed(1)), 0)]);
    }

    #[test]
    fn item_addresses_decode_back() {
        let topo = Topology::paper_default();
        let mapper = AddressMapper::row_interleaved(&topo);
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            let row = RowId(rng.next_below(131_072) as u32);
            let (req, access) = item(
                &mapper,
                ChannelId(1),
                RankId(1),
                5,
                row,
                ColId(3),
                AccessKind::Write,
                0,
            );
            assert_eq!(mapper.decode(req.addr), access);
        }
    }
}
