//! The synthetic workloads S1, S2, and S3 of §7.2.
//!
//! * **S1** — uniformly random accesses across the whole memory
//!   (adversarial for CRA's counter cache: every access misses).
//! * **S2** — the CBT-adversarial pattern: sweep one half of a bank's
//!   rows until every CBT counter has split, then hammer the *other*
//!   half — which is now covered by a single coarse counter, so each
//!   threshold crossing refreshes a huge row group.
//! * **S3** — the classic row-hammer attack: one row, repeatedly.
//!
//! Phase lengths for S2 are parameters (the paper does not publish
//! them); the defaults put most of each refresh window into the
//! sweep phase, matching the magnitude reported for CBT-256.

use crate::trace::{item, AccessSource, Geometry, TraceItem};
use twice_common::rng::SplitMix64;
use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, StateDigest};
use twice_common::{ChannelId, ColId, RankId, RowId, Topology};
use twice_memctrl::request::AccessKind;

/// S1: uniformly random row accesses.
#[derive(Debug)]
pub struct S1Random {
    geo: Geometry,
    rng: SplitMix64,
}

impl S1Random {
    /// Creates S1 over `topo`.
    pub fn new(topo: &Topology, seed: u64) -> S1Random {
        S1Random {
            geo: Geometry::new(topo),
            rng: SplitMix64::new(seed),
        }
    }
}

impl AccessSource for S1Random {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.rng.state());
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.rng.set_state(r.take_u64()?);
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_u64(self.rng.state());
    }

    fn next_access(&mut self) -> TraceItem {
        let channel = self.rng.next_below(u64::from(self.geo.channels)) as u8;
        let rank = self.rng.next_below(u64::from(self.geo.ranks)) as u8;
        let bank = self.rng.next_below(u64::from(self.geo.banks)) as u16;
        let row = self.rng.next_below(u64::from(self.geo.rows)) as u32;
        let col = self.rng.next_below(u64::from(self.geo.cols)) as u16;
        item(
            &self.geo.mapper,
            ChannelId(channel),
            RankId(rank),
            bank,
            RowId(row),
            ColId(col),
            AccessKind::Read,
            0,
        )
    }
}

/// S2: the CBT-adversarial two-phase pattern on one bank.
#[derive(Debug)]
pub struct S2CbtAdversarial {
    geo: Geometry,
    phase1_len: u64,
    phase2_len: u64,
    cursor: u64,
    sweep_row: u32,
    rng: SplitMix64,
}

impl S2CbtAdversarial {
    /// Creates S2 with explicit phase lengths (accesses per phase).
    ///
    /// # Panics
    ///
    /// Panics if either phase length is zero.
    pub fn new(topo: &Topology, phase1_len: u64, phase2_len: u64, seed: u64) -> S2CbtAdversarial {
        assert!(phase1_len > 0 && phase2_len > 0, "phases must be non-empty");
        S2CbtAdversarial {
            geo: Geometry::new(topo),
            phase1_len,
            phase2_len,
            cursor: 0,
            sweep_row: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// Default phase lengths: the sweep dominates each refresh window
    /// (1.2 M accesses ≈ 54 ms of row misses), leaving the coarse-counter
    /// hammer ~100 K accesses before the tree resets.
    pub fn standard(topo: &Topology, seed: u64) -> S2CbtAdversarial {
        S2CbtAdversarial::new(topo, 1_200_000, 100_000, seed)
    }

    fn in_phase1(&self) -> bool {
        self.cursor % (self.phase1_len + self.phase2_len) < self.phase1_len
    }
}

impl AccessSource for S2CbtAdversarial {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.cursor);
        w.put_u32(self.sweep_row);
        w.put_u64(self.rng.state());
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let cursor = r.take_u64()?;
        let sweep_row = r.take_u32()?;
        // The sweep stays in the lower half of the bank; a doctored
        // checkpoint must not be able to move it out.
        let half = (self.geo.rows / 2).max(1);
        if sweep_row >= half {
            return Err(SnapshotError::StateMismatch(format!(
                "sweep row {sweep_row} outside phase-1 half 0..{half}"
            )));
        }
        self.cursor = cursor;
        self.sweep_row = sweep_row;
        self.rng.set_state(r.take_u64()?);
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_u64(self.cursor);
        d.write_u32(self.sweep_row);
        d.write_u64(self.rng.state());
    }

    fn next_access(&mut self) -> TraceItem {
        let half = self.geo.rows / 2;
        let row = if self.in_phase1() {
            // Sweep the lower half, forcing splits all over it.
            self.sweep_row = (self.sweep_row + 1) % half;
            self.sweep_row
        } else {
            // Uniformly hit the upper half: one coarse counter absorbs
            // everything.
            half + self.rng.next_below(u64::from(half)) as u32
        };
        self.cursor += 1;
        item(
            &self.geo.mapper,
            ChannelId(0),
            RankId(0),
            0,
            RowId(row),
            ColId(0),
            AccessKind::Read,
            0,
        )
    }
}

/// S3: the single-row hammer.
#[derive(Debug)]
pub struct S3SingleRowHammer {
    geo: Geometry,
    row: RowId,
}

impl S3SingleRowHammer {
    /// Creates S3 hammering one fixed row of bank 0.
    pub fn new(topo: &Topology, seed: u64) -> S3SingleRowHammer {
        let mut rng = SplitMix64::new(seed);
        // Away from the bank edges so both neighbors exist.
        let row = 1 + rng.next_below(u64::from(topo.rows_per_bank - 2)) as u32;
        S3SingleRowHammer {
            geo: Geometry::new(topo),
            row: RowId(row),
        }
    }

    /// The hammered row.
    pub fn target(&self) -> RowId {
        self.row
    }
}

impl AccessSource for S3SingleRowHammer {
    fn next_access(&mut self) -> TraceItem {
        item(
            &self.geo.mapper,
            ChannelId(0),
            RankId(0),
            0,
            self.row,
            ColId(0),
            AccessKind::Read,
            0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s1_spreads_uniformly_over_banks() {
        let topo = Topology::paper_default();
        let s1 = S1Random::new(&topo, 1);
        let mut banks: std::collections::HashMap<(u8, u8, u16), u32> =
            std::collections::HashMap::new();
        for (_, a) in s1.take_requests(64_000) {
            *banks.entry((a.channel.0, a.rank.0, a.bank)).or_insert(0) += 1;
        }
        assert_eq!(banks.len(), 64);
        let max = *banks.values().max().unwrap();
        let min = *banks.values().min().unwrap();
        assert!(max < min * 2, "bank skew: {min}..{max}");
    }

    #[test]
    fn s2_sweeps_lower_half_then_hits_upper_half() {
        let topo = Topology::paper_default();
        let s2 = S2CbtAdversarial::new(&topo, 100, 100, 1);
        let rows: Vec<u32> = s2.take_requests(200).map(|(_, a)| a.row.0).collect();
        let half = topo.rows_per_bank / 2;
        assert!(rows[..100].iter().all(|&r| r < half), "phase 1 stays low");
        assert!(rows[100..].iter().all(|&r| r >= half), "phase 2 stays high");
        // Phase 1 is a sweep of distinct rows.
        let distinct: std::collections::HashSet<_> = rows[..100].iter().collect();
        assert_eq!(distinct.len(), 100);
    }

    #[test]
    fn s2_phases_repeat() {
        let topo = Topology::paper_default();
        let s2 = S2CbtAdversarial::new(&topo, 10, 10, 1);
        let rows: Vec<u32> = s2.take_requests(40).map(|(_, a)| a.row.0).collect();
        let half = topo.rows_per_bank / 2;
        assert!(rows[20..30].iter().all(|&r| r < half), "cycle restarts");
    }

    #[test]
    fn s2_rejects_out_of_half_sweep_row_from_snapshot() {
        use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
        let topo = Topology::paper_default();
        let mut s2 = S2CbtAdversarial::new(&topo, 10, 10, 1);
        let mut w = SnapshotWriter::new();
        w.put_u64(0); // cursor
        w.put_u32(topo.rows_per_bank); // sweep row, far outside the half
        w.put_u64(1); // rng
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        let err = s2.load_state(&mut r).unwrap_err();
        assert!(matches!(err, SnapshotError::StateMismatch(_)), "{err:?}");
    }

    #[test]
    fn s3_hits_one_row_forever() {
        let topo = Topology::paper_default();
        let s3 = S3SingleRowHammer::new(&topo, 5);
        let target = s3.target();
        assert!(target.0 > 0 && target.0 < topo.rows_per_bank - 1);
        for (_, a) in s3.take_requests(1000) {
            assert_eq!(a.row, target);
            assert_eq!(a.bank, 0);
        }
    }
}
