//! A RADIX-sort access pattern (SPLASH-2X RADIX).
//!
//! Parallel radix sort alternates two phases per digit: a **sequential
//! scan** of the key array (high row locality) and a **scattered
//! permutation** into destination buckets (each key lands in one of
//! `radix` bucket regions, striding across rows). The scatter phase is
//! the interesting one for row-activation behavior: it touches many
//! rows with low reuse, like a bank-spread streaming write.

use crate::trace::{item_from_addr, AccessSource, Geometry, TraceItem};
use twice_common::rng::SplitMix64;
use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, StateDigest};
use twice_common::Topology;
use twice_memctrl::request::AccessKind;

/// The RADIX workload generator.
pub struct RadixSource {
    geo: Geometry,
    keys: u64,
    radix: u64,
    rng: SplitMix64,
    cursor: u64,
    scatter: bool,
    /// Per-bucket write cursors.
    bucket_fill: Vec<u64>,
    threads: u16,
    capacity: u64,
}

impl std::fmt::Debug for RadixSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RadixSource")
            .field("keys", &self.keys)
            .field("radix", &self.radix)
            .finish()
    }
}

const KEY_BYTES: u64 = 8;

impl RadixSource {
    /// Creates a radix sort over `keys` keys with `radix` buckets and
    /// `threads` workers on `topo`.
    ///
    /// # Panics
    ///
    /// Panics if `keys`, `radix`, or `threads` is zero.
    pub fn new(topo: &Topology, keys: u64, radix: u64, threads: u16, seed: u64) -> RadixSource {
        assert!(keys > 0 && radix > 0 && threads > 0, "empty configuration");
        RadixSource {
            geo: Geometry::new(topo),
            keys,
            radix,
            rng: SplitMix64::new(seed),
            cursor: 0,
            scatter: false,
            bucket_fill: vec![0; radix as usize],
            threads,
            capacity: topo.capacity_bytes(),
        }
    }
}

impl AccessSource for RadixSource {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.rng.state());
        w.put_u64(self.cursor);
        w.put_bool(self.scatter);
        w.put_usize(self.bucket_fill.len());
        for &f in &self.bucket_fill {
            w.put_u64(f);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.rng.set_state(r.take_u64()?);
        self.cursor = r.take_u64()?;
        self.scatter = r.take_bool()?;
        let buckets = r.take_usize()?;
        if buckets != self.bucket_fill.len() {
            return Err(SnapshotError::StateMismatch(format!(
                "radix has {} buckets, snapshot has {buckets}",
                self.bucket_fill.len()
            )));
        }
        for f in &mut self.bucket_fill {
            *f = r.take_u64()?;
        }
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_u64(self.rng.state());
        d.write_u64(self.cursor);
        d.write_bool(self.scatter);
        for &f in &self.bucket_fill {
            d.write_u64(f);
        }
    }

    fn next_access(&mut self) -> TraceItem {
        let source = (self.cursor % u64::from(self.threads)) as u16;
        let out = if !self.scatter {
            // Scan phase: sequential key reads from the source array.
            let addr = (self.cursor * KEY_BYTES) % self.capacity;
            item_from_addr(&self.geo.mapper, addr, AccessKind::Read, source)
        } else {
            // Scatter phase: write the key to its (random digit) bucket.
            let bucket = self.rng.next_below(self.radix);
            let fill = &mut self.bucket_fill[bucket as usize];
            let slot = *fill;
            *fill += 1;
            // Destination array lives after the source array; buckets are
            // contiguous regions of keys/radix slots.
            let dest_base = self.keys * KEY_BYTES;
            let addr = (dest_base + (bucket * (self.keys / self.radix) + slot) * KEY_BYTES)
                % self.capacity;
            item_from_addr(&self.geo.mapper, addr, AccessKind::Write, source)
        };
        self.cursor += 1;
        if self.cursor >= self.keys {
            self.cursor = 0;
            self.scatter = !self.scatter;
            if !self.scatter {
                self.bucket_fill.iter_mut().for_each(|f| *f = 0);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternates_scan_and_scatter_phases() {
        let topo = Topology::paper_default();
        let keys = 1000u64;
        let radix = RadixSource::new(&topo, keys, 256, 16, 1);
        let kinds: Vec<_> = radix.take_requests(2 * keys).map(|(r, _)| r.kind).collect();
        assert!(kinds[..keys as usize]
            .iter()
            .all(|k| *k == AccessKind::Read));
        assert!(kinds[keys as usize..]
            .iter()
            .all(|k| *k == AccessKind::Write));
    }

    #[test]
    fn scan_phase_is_row_local() {
        let topo = Topology::paper_default();
        let radix = RadixSource::new(&topo, 10_000, 256, 16, 1);
        let rows: Vec<_> = radix
            .take_requests(512) // 512 keys * 8B = one row's worth
            .map(|(_, a)| (a.bank, a.row))
            .collect();
        let distinct: std::collections::HashSet<_> = rows.iter().collect();
        assert!(distinct.len() <= 2, "sequential scan must stay row-local");
    }

    #[test]
    fn scatter_phase_spreads_rows() {
        let topo = Topology::paper_default();
        let keys = 1 << 20; // large enough that buckets span many rows
        let mut radix = RadixSource::new(&topo, keys, 256, 16, 1);
        // Skip the scan phase.
        for _ in 0..keys {
            radix.next_access();
        }
        let distinct: std::collections::HashSet<_> = radix
            .take_requests(1024)
            .map(|(_, a)| (a.channel, a.bank, a.row))
            .collect();
        assert!(
            distinct.len() > 100,
            "scatter touched {} rows",
            distinct.len()
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let topo = Topology::paper_default();
        let a: Vec<_> = RadixSource::new(&topo, 500, 16, 4, 9)
            .take_requests(1500)
            .map(|(r, _)| r.addr)
            .collect();
        let b: Vec<_> = RadixSource::new(&topo, 500, 16, 4, 9)
            .take_requests(1500)
            .map(|(r, _)| r.addr)
            .collect();
        assert_eq!(a, b);
    }
}
