//! `twice-trace v2`: a corruption-tolerant binary trace format.
//!
//! The v1 text format ([`crate::record`]) is human-readable but fragile:
//! no checksums, no version enforcement, ~16 bytes per access. v2 keeps
//! the same logical record — `(kind, address, source, arrival)` plus the
//! decoded DRAM coordinate — but encodes it as delta/varint records
//! grouped into CRC-32-sealed frames behind a header that binds the
//! format version and a topology/addrmap digest.
//!
//! # Layout
//!
//! ```text
//! file   := header frame*
//! header := magic "TWT2" (4) | version u16 LE | reserved u16 LE
//!         | topology digest u64 LE | crc32(header[0..16]) u32 LE
//! frame  := resync [F5 1C A7 E2] (4) | payload_len u32 LE
//!         | record_count u32 LE | payload | crc32(len‖count‖payload)
//! ```
//!
//! Each frame's delta context starts from zero, so frames decode
//! independently: losing one frame cannot corrupt its neighbours, and a
//! reader that lands mid-file can resynchronize on the next marker.
//!
//! # Records
//!
//! One flags byte, then only the fields that changed:
//!
//! | bit | meaning                 | payload when set                |
//! |-----|-------------------------|---------------------------------|
//! | 0   | kind is Write           | —                               |
//! | 1   | bank changed            | varint flat bank id             |
//! | 2   | row changed             | zigzag row delta (per bank)     |
//! | 3   | column changed          | zigzag column delta (per bank)  |
//! | 4   | source changed          | varint source                   |
//! | 5   | arrival changed         | zigzag picosecond delta         |
//! | 6   | non-canonical address   | varint `addr - encode(coords)`  |
//! | 7   | reserved                | must be zero                    |
//!
//! The physical address is re-derived through the row-interleaved
//! mapper, with bit 6 carrying any residue (line offsets, beyond-
//! topology bits) so the round trip is byte-exact even for raw
//! generator addresses.
//!
//! # Salvage
//!
//! [`decode_salvage`] never panics and never gives up on the whole file
//! because one frame is bad: a torn or bit-rotted frame is quarantined,
//! the scanner skips to the next resync marker, and the caller gets a
//! [`SalvageSummary`] (frames kept, corrupt regions, bytes quarantined,
//! capped typed errors). Header-level damage is unrecoverable by design
//! — without a trusted topology digest, replaying the payload would be
//! guessing.

use crate::trace::TraceItem;
use std::fmt;
use twice_common::crc32::crc32;
use twice_common::snapshot::StateDigest;
use twice_common::{ChannelId, ColId, RankId, RowId, Time, Topology};
use twice_memctrl::addrmap::{AddressMapper, DecodedAccess};
use twice_memctrl::request::{AccessKind, MemRequest};

/// File magic: the first four bytes of every v2 trace.
pub const MAGIC: [u8; 4] = *b"TWT2";
/// Format version stored in (and enforced from) the header.
pub const VERSION: u16 = 2;
/// Frame resync marker; chosen to be unlikely in varint payloads.
pub const RESYNC: [u8; 4] = [0xF5, 0x1C, 0xA7, 0xE2];
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 20;
/// Upper bound on a frame's payload, enforced before allocation.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 20;
/// Default records per frame.
pub const DEFAULT_FRAME_RECORDS: u32 = 4096;
/// At most this many typed frame errors are retained in a summary.
pub const MAX_REPORTED_ERRORS: usize = 16;

const FLAG_WRITE: u8 = 1 << 0;
const FLAG_BANK: u8 = 1 << 1;
const FLAG_ROW: u8 = 1 << 2;
const FLAG_COL: u8 = 1 << 3;
const FLAG_SOURCE: u8 = 1 << 4;
const FLAG_ARRIVAL: u8 = 1 << 5;
const FLAG_EXTRA: u8 = 1 << 6;
const FLAG_RESERVED: u8 = 1 << 7;

/// Digest binding a trace to its topology and address-mapping scheme.
///
/// Folded over every [`Topology`] field plus the mapper scheme tag, so
/// a trace recorded against one geometry refuses to replay against
/// another (same failure mode as loading a foreign checkpoint).
pub fn topology_digest(topo: &Topology) -> u64 {
    let mut d = StateDigest::new();
    d.write_bytes(b"twice-trace-topology");
    d.write_u8(topo.channels);
    d.write_u8(topo.ranks_per_channel);
    d.write_u16(topo.banks_per_rank);
    d.write_u32(topo.rows_per_bank);
    d.write_u16(topo.cols_per_row);
    d.write_u32(topo.row_bytes);
    d.write_u8(topo.devices_per_rank);
    d.write_bytes(b"row-interleaved");
    d.finish()
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Unrecoverable damage to the fixed file header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceHeaderError {
    /// The file is shorter than the fixed header.
    TooShort {
        /// Bytes a header needs.
        needed: usize,
        /// Bytes present.
        got: usize,
    },
    /// The magic bytes are not `TWT2`.
    BadMagic {
        /// What was found instead.
        found: [u8; 4],
    },
    /// The header names a version this reader does not speak.
    UnsupportedVersion {
        /// The version found.
        found: u16,
    },
    /// The header checksum does not match its contents.
    CrcMismatch {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the header bytes.
        computed: u32,
    },
    /// The trace was recorded against a different topology/addrmap.
    TopologyMismatch {
        /// Digest of the topology the reader is configured for.
        expected: u64,
        /// Digest stored in the trace.
        found: u64,
    },
}

impl fmt::Display for TraceHeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceHeaderError::TooShort { needed, got } => {
                write!(f, "trace header truncated: need {needed} bytes, got {got}")
            }
            TraceHeaderError::BadMagic { found } => {
                write!(f, "not a twice-trace v2 file (magic {found:02x?})")
            }
            TraceHeaderError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace version {found} (reader speaks {VERSION})")
            }
            TraceHeaderError::CrcMismatch { stored, computed } => write!(
                f,
                "trace header checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            TraceHeaderError::TopologyMismatch { expected, found } => write!(
                f,
                "trace topology digest {found:#018x} does not match configured topology {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for TraceHeaderError {}

/// A malformed record inside an otherwise checksum-valid frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The payload ended mid-record.
    Truncated {
        /// 0-based record index within the frame.
        record: u32,
    },
    /// A varint ran past 10 bytes or overflowed 64 bits.
    VarintOverlong {
        /// 0-based record index within the frame.
        record: u32,
    },
    /// The reserved flag bit was set.
    ReservedFlags {
        /// 0-based record index within the frame.
        record: u32,
        /// The offending flags byte.
        flags: u8,
    },
    /// A flat bank id outside the topology.
    BankOutOfRange {
        /// 0-based record index within the frame.
        record: u32,
        /// The decoded bank id.
        bank: u64,
    },
    /// A row delta that lands outside the topology.
    RowOutOfRange {
        /// 0-based record index within the frame.
        record: u32,
        /// The computed row.
        row: i64,
    },
    /// A column delta that lands outside the topology.
    ColOutOfRange {
        /// 0-based record index within the frame.
        record: u32,
        /// The computed column.
        col: i64,
    },
    /// A source id that does not fit in `u16`.
    SourceOutOfRange {
        /// 0-based record index within the frame.
        record: u32,
        /// The decoded source.
        source: u64,
    },
    /// Bytes left in the payload after the declared record count.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Truncated { record } => write!(f, "record {record}: payload truncated"),
            RecordError::VarintOverlong { record } => write!(f, "record {record}: overlong varint"),
            RecordError::ReservedFlags { record, flags } => {
                write!(f, "record {record}: reserved flag bits set ({flags:#04x})")
            }
            RecordError::BankOutOfRange { record, bank } => {
                write!(f, "record {record}: bank {bank} out of range")
            }
            RecordError::RowOutOfRange { record, row } => {
                write!(f, "record {record}: row {row} out of range")
            }
            RecordError::ColOutOfRange { record, col } => {
                write!(f, "record {record}: column {col} out of range")
            }
            RecordError::SourceOutOfRange { record, source } => {
                write!(f, "record {record}: source {source} exceeds u16")
            }
            RecordError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after last record")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// Why one frame (or stretch of bytes) was quarantined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The file ended inside the frame.
    Truncated {
        /// Byte offset of the frame's resync marker.
        offset: u64,
        /// Bytes the frame needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    PayloadTooLarge {
        /// Byte offset of the frame's resync marker.
        offset: u64,
        /// The declared length.
        len: u32,
    },
    /// The frame checksum does not match its contents.
    CrcMismatch {
        /// Byte offset of the frame's resync marker.
        offset: u64,
        /// Checksum stored in the frame.
        stored: u32,
        /// Checksum computed over the frame bytes.
        computed: u32,
    },
    /// The checksum held but a record inside was malformed (hostile or
    /// colliding payload).
    Record {
        /// Byte offset of the frame's resync marker.
        offset: u64,
        /// The record-level error.
        source: RecordError,
    },
    /// Bytes with no parseable frame (flipped markers, torn tails).
    SkippedGarbage {
        /// Byte offset where the garbage started.
        offset: u64,
    },
}

impl FrameError {
    /// Byte offset (from file start) where the problem was seen.
    pub fn offset(&self) -> u64 {
        match self {
            FrameError::Truncated { offset, .. }
            | FrameError::PayloadTooLarge { offset, .. }
            | FrameError::CrcMismatch { offset, .. }
            | FrameError::Record { offset, .. }
            | FrameError::SkippedGarbage { offset } => *offset,
        }
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated {
                offset,
                needed,
                got,
            } => write!(
                f,
                "frame at byte {offset}: truncated (need {needed} bytes, got {got})"
            ),
            FrameError::PayloadTooLarge { offset, len } => write!(
                f,
                "frame at byte {offset}: payload length {len} exceeds {MAX_FRAME_PAYLOAD}"
            ),
            FrameError::CrcMismatch {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "frame at byte {offset}: checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            FrameError::Record { offset, source } => {
                write!(f, "frame at byte {offset}: {source}")
            }
            FrameError::SkippedGarbage { offset } => {
                write!(f, "unparseable bytes starting at byte {offset}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Any strict-decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceV2Error {
    /// The fixed header was unusable.
    Header(TraceHeaderError),
    /// A frame failed to decode.
    Frame(FrameError),
}

impl fmt::Display for TraceV2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceV2Error::Header(e) => write!(f, "{e}"),
            TraceV2Error::Frame(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TraceV2Error {}

impl From<TraceHeaderError> for TraceV2Error {
    fn from(e: TraceHeaderError) -> TraceV2Error {
        TraceV2Error::Header(e)
    }
}

// ---------------------------------------------------------------------
// Delta context and bit plumbing
// ---------------------------------------------------------------------

/// Flat-bank geometry shared by encoder and decoder.
#[derive(Debug, Clone)]
struct Shape {
    mapper: AddressMapper,
    ranks: u64,
    banks_per_rank: u64,
    rows: u64,
    cols: u64,
    total_banks: u64,
}

impl Shape {
    fn new(topo: &Topology) -> Shape {
        Shape {
            mapper: AddressMapper::row_interleaved(topo),
            ranks: u64::from(topo.ranks_per_channel),
            banks_per_rank: u64::from(topo.banks_per_rank),
            rows: u64::from(topo.rows_per_bank),
            cols: u64::from(topo.row_bytes) / 64,
            total_banks: u64::from(topo.channels)
                * u64::from(topo.ranks_per_channel)
                * u64::from(topo.banks_per_rank),
        }
    }

    fn flat_bank(&self, a: &DecodedAccess) -> u64 {
        (u64::from(a.channel.0) * self.ranks + u64::from(a.rank.0)) * self.banks_per_rank
            + u64::from(a.bank)
    }

    fn split_bank(&self, flat: u64) -> (ChannelId, RankId, u16) {
        let bank = flat % self.banks_per_rank;
        let rest = flat / self.banks_per_rank;
        let rank = rest % self.ranks;
        let channel = rest / self.ranks;
        (ChannelId(channel as u8), RankId(rank as u8), bank as u16)
    }
}

/// Per-frame prediction state; reset at every frame boundary so frames
/// decode independently.
#[derive(Debug, Clone)]
struct DeltaCtx {
    bank: u64,
    rows: Vec<u32>,
    cols: Vec<u16>,
    source: u16,
    arrival_ps: u64,
}

impl DeltaCtx {
    fn new(total_banks: u64) -> DeltaCtx {
        DeltaCtx {
            bank: 0,
            rows: vec![0; total_banks as usize],
            cols: vec![0; total_banks as usize],
            source: 0,
            arrival_ps: 0,
        }
    }

    fn reset(&mut self) {
        self.bank = 0;
        self.rows.iter_mut().for_each(|r| *r = 0);
        self.cols.iter_mut().for_each(|c| *c = 0);
        self.source = 0;
        self.arrival_ps = 0;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

struct Cur<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl Cur<'_> {
    fn take_u8(&mut self, record: u32) -> Result<u8, RecordError> {
        let b = *self
            .payload
            .get(self.pos)
            .ok_or(RecordError::Truncated { record })?;
        self.pos += 1;
        Ok(b)
    }

    fn take_varint(&mut self, record: u32) -> Result<u64, RecordError> {
        let mut v = 0u64;
        for i in 0..10 {
            let b = self.take_u8(record)?;
            let payload = u64::from(b & 0x7F);
            if i == 9 && (payload > 1 || b & 0x80 != 0) {
                return Err(RecordError::VarintOverlong { record });
            }
            v |= payload << (7 * i);
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(RecordError::VarintOverlong { record })
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Streaming encoder for a v2 trace.
///
/// ```
/// use twice_workloads::synth::S1Random;
/// use twice_workloads::trace::AccessSource;
/// use twice_workloads::tracev2::{decode_strict, TraceV2Writer};
/// use twice_common::Topology;
///
/// let topo = Topology::paper_default();
/// let items: Vec<_> = S1Random::new(&topo, 1).take_requests(100).collect();
/// let mut w = TraceV2Writer::new(&topo);
/// for item in &items {
///     w.push(item);
/// }
/// let bytes = w.finish();
/// assert_eq!(decode_strict(&bytes, &topo).unwrap(), items);
/// ```
#[derive(Debug)]
pub struct TraceV2Writer {
    shape: Shape,
    out: Vec<u8>,
    frame: Vec<u8>,
    ctx: DeltaCtx,
    in_frame: u32,
    frame_records: u32,
    records: u64,
    frames: u64,
}

impl TraceV2Writer {
    /// A writer for `topo` with [`DEFAULT_FRAME_RECORDS`] per frame.
    pub fn new(topo: &Topology) -> TraceV2Writer {
        TraceV2Writer::with_frame_records(topo, DEFAULT_FRAME_RECORDS)
    }

    /// A writer sealing a frame every `frame_records` records.
    ///
    /// # Panics
    ///
    /// Panics if `frame_records` is zero.
    pub fn with_frame_records(topo: &Topology, frame_records: u32) -> TraceV2Writer {
        assert!(frame_records > 0, "frames must hold at least one record");
        let shape = Shape::new(topo);
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&topology_digest(topo).to_le_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(out.len(), HEADER_LEN);
        let ctx = DeltaCtx::new(shape.total_banks);
        TraceV2Writer {
            shape,
            out,
            frame: Vec::new(),
            ctx,
            in_frame: 0,
            frame_records,
            records: 0,
            frames: 0,
        }
    }

    /// Appends one access.
    pub fn push(&mut self, item: &TraceItem) {
        let (req, access) = item;
        let flat = self.shape.flat_bank(access);
        debug_assert!(flat < self.shape.total_banks, "access outside topology");
        let row = access.row.0;
        let col = access.col.0;
        let arrival_ps = req.arrival.as_ps();
        let canonical = self.shape.mapper.encode(
            access.channel,
            access.rank,
            access.bank,
            access.row,
            access.col,
        );
        let extra = req.addr.wrapping_sub(canonical);

        let mut flags = 0u8;
        if req.kind == AccessKind::Write {
            flags |= FLAG_WRITE;
        }
        let bank_changed = flat != self.ctx.bank;
        let last_row = self.ctx.rows[flat as usize];
        let last_col = self.ctx.cols[flat as usize];
        if bank_changed {
            flags |= FLAG_BANK;
        }
        if row != last_row {
            flags |= FLAG_ROW;
        }
        if col != last_col {
            flags |= FLAG_COL;
        }
        if req.source != self.ctx.source {
            flags |= FLAG_SOURCE;
        }
        if arrival_ps != self.ctx.arrival_ps {
            flags |= FLAG_ARRIVAL;
        }
        if extra != 0 {
            flags |= FLAG_EXTRA;
        }

        self.frame.push(flags);
        if flags & FLAG_BANK != 0 {
            put_varint(&mut self.frame, flat);
        }
        if flags & FLAG_ROW != 0 {
            put_varint(
                &mut self.frame,
                zigzag(i64::from(row) - i64::from(last_row)),
            );
        }
        if flags & FLAG_COL != 0 {
            put_varint(
                &mut self.frame,
                zigzag(i64::from(col) - i64::from(last_col)),
            );
        }
        if flags & FLAG_SOURCE != 0 {
            put_varint(&mut self.frame, u64::from(req.source));
        }
        if flags & FLAG_ARRIVAL != 0 {
            let delta = arrival_ps.wrapping_sub(self.ctx.arrival_ps) as i64;
            put_varint(&mut self.frame, zigzag(delta));
        }
        if flags & FLAG_EXTRA != 0 {
            put_varint(&mut self.frame, extra);
        }

        self.ctx.bank = flat;
        self.ctx.rows[flat as usize] = row;
        self.ctx.cols[flat as usize] = col;
        self.ctx.source = req.source;
        self.ctx.arrival_ps = arrival_ps;
        self.records += 1;
        self.in_frame += 1;
        if self.in_frame == self.frame_records {
            self.seal_frame();
        }
    }

    fn seal_frame(&mut self) {
        if self.in_frame == 0 {
            return;
        }
        let len = self.frame.len() as u32;
        debug_assert!(len <= MAX_FRAME_PAYLOAD, "frame payload overflow");
        self.out.extend_from_slice(&RESYNC);
        let body_start = self.out.len();
        self.out.extend_from_slice(&len.to_le_bytes());
        self.out.extend_from_slice(&self.in_frame.to_le_bytes());
        self.out.extend_from_slice(&self.frame);
        let crc = crc32(&self.out[body_start..]);
        self.out.extend_from_slice(&crc.to_le_bytes());
        self.frame.clear();
        self.ctx.reset();
        self.in_frame = 0;
        self.frames += 1;
    }

    /// Records pushed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Seals any pending frame and returns the complete file bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.seal_frame();
        self.out
    }
}

/// Encodes `items` into a complete v2 trace; returns the bytes and the
/// record count.
pub fn encode_trace(topo: &Topology, items: impl IntoIterator<Item = TraceItem>) -> (Vec<u8>, u64) {
    let mut w = TraceV2Writer::new(topo);
    for item in items {
        w.push(&item);
    }
    let n = w.records();
    (w.finish(), n)
}

// ---------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------

fn check_header(bytes: &[u8], topo: &Topology) -> Result<(), TraceHeaderError> {
    if bytes.len() < HEADER_LEN {
        return Err(TraceHeaderError::TooShort {
            needed: HEADER_LEN,
            got: bytes.len(),
        });
    }
    let stored = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    let computed = crc32(&bytes[..16]);
    if bytes[0..4] != MAGIC {
        return Err(TraceHeaderError::BadMagic {
            found: bytes[0..4].try_into().expect("4 bytes"),
        });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if stored != computed {
        return Err(TraceHeaderError::CrcMismatch { stored, computed });
    }
    if version != VERSION {
        return Err(TraceHeaderError::UnsupportedVersion { found: version });
    }
    let found = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let expected = topology_digest(topo);
    if found != expected {
        return Err(TraceHeaderError::TopologyMismatch { expected, found });
    }
    Ok(())
}

fn decode_payload(
    payload: &[u8],
    count: u32,
    shape: &Shape,
    ctx: &mut DeltaCtx,
    items: &mut Vec<TraceItem>,
) -> Result<(), RecordError> {
    ctx.reset();
    let mut cur = Cur { payload, pos: 0 };
    for record in 0..count {
        let flags = cur.take_u8(record)?;
        if flags & FLAG_RESERVED != 0 {
            return Err(RecordError::ReservedFlags { record, flags });
        }
        let flat = if flags & FLAG_BANK != 0 {
            cur.take_varint(record)?
        } else {
            ctx.bank
        };
        if flat >= shape.total_banks {
            return Err(RecordError::BankOutOfRange { record, bank: flat });
        }
        let row = if flags & FLAG_ROW != 0 {
            let delta = unzigzag(cur.take_varint(record)?);
            // Saturating: a hostile delta near i64::MAX must land in the
            // out-of-range arm, not overflow the add.
            let row = i64::from(ctx.rows[flat as usize]).saturating_add(delta);
            if row < 0 || row >= shape.rows as i64 {
                return Err(RecordError::RowOutOfRange { record, row });
            }
            row as u32
        } else {
            ctx.rows[flat as usize]
        };
        let col = if flags & FLAG_COL != 0 {
            let delta = unzigzag(cur.take_varint(record)?);
            let col = i64::from(ctx.cols[flat as usize]).saturating_add(delta);
            if col < 0 || col >= shape.cols as i64 {
                return Err(RecordError::ColOutOfRange { record, col });
            }
            col as u16
        } else {
            ctx.cols[flat as usize]
        };
        let source = if flags & FLAG_SOURCE != 0 {
            let s = cur.take_varint(record)?;
            if s > u64::from(u16::MAX) {
                return Err(RecordError::SourceOutOfRange { record, source: s });
            }
            s as u16
        } else {
            ctx.source
        };
        let arrival_ps = if flags & FLAG_ARRIVAL != 0 {
            let delta = unzigzag(cur.take_varint(record)?);
            ctx.arrival_ps.wrapping_add(delta as u64)
        } else {
            ctx.arrival_ps
        };
        let extra = if flags & FLAG_EXTRA != 0 {
            cur.take_varint(record)?
        } else {
            0
        };

        let (channel, rank, bank) = shape.split_bank(flat);
        let access = DecodedAccess {
            channel,
            rank,
            bank,
            row: RowId(row),
            col: ColId(col),
        };
        let canonical = shape
            .mapper
            .encode(channel, rank, bank, access.row, access.col);
        let addr = canonical.wrapping_add(extra);
        let arrival = Time::from_ps(arrival_ps);
        let req = if flags & FLAG_WRITE != 0 {
            MemRequest::write(addr, source, arrival)
        } else {
            MemRequest::read(addr, source, arrival)
        };
        items.push((req, access));

        ctx.bank = flat;
        ctx.rows[flat as usize] = row;
        ctx.cols[flat as usize] = col;
        ctx.source = source;
        ctx.arrival_ps = arrival_ps;
    }
    if cur.pos != payload.len() {
        return Err(RecordError::TrailingBytes {
            extra: payload.len() - cur.pos,
        });
    }
    Ok(())
}

/// Parses the frame whose resync marker sits at `offset`; on success
/// returns the records decoded and the bytes consumed (marker included).
fn parse_frame(
    bytes: &[u8],
    offset: usize,
    shape: &Shape,
    ctx: &mut DeltaCtx,
    items: &mut Vec<TraceItem>,
) -> Result<(u32, usize), FrameError> {
    debug_assert_eq!(&bytes[offset..offset + 4], &RESYNC);
    let at = offset as u64;
    let body = offset + 4;
    if bytes.len() < body + 8 {
        return Err(FrameError::Truncated {
            offset: at,
            needed: body + 8 - offset,
            got: bytes.len() - offset,
        });
    }
    let len = u32::from_le_bytes(bytes[body..body + 4].try_into().expect("4 bytes"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::PayloadTooLarge { offset: at, len });
    }
    let count = u32::from_le_bytes(bytes[body + 4..body + 8].try_into().expect("4 bytes"));
    let total = 4 + 8 + len as usize + 4;
    if bytes.len() < offset + total {
        return Err(FrameError::Truncated {
            offset: at,
            needed: total,
            got: bytes.len() - offset,
        });
    }
    let payload = &bytes[body + 8..body + 8 + len as usize];
    let stored = u32::from_le_bytes(
        bytes[body + 8 + len as usize..body + 8 + len as usize + 4]
            .try_into()
            .expect("4 bytes"),
    );
    let computed = crc32(&bytes[body..body + 8 + len as usize]);
    if stored != computed {
        return Err(FrameError::CrcMismatch {
            offset: at,
            stored,
            computed,
        });
    }
    let before = items.len();
    decode_payload(payload, count, shape, ctx, items).map_err(|source| {
        items.truncate(before);
        FrameError::Record { offset: at, source }
    })?;
    Ok((count, total))
}

fn find_resync(bytes: &[u8], from: usize) -> Option<usize> {
    if bytes.len() < 4 {
        return None;
    }
    (from..=bytes.len().saturating_sub(4)).find(|&i| bytes[i..i + 4] == RESYNC)
}

/// What a salvage pass kept and dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SalvageSummary {
    /// Frames that decoded cleanly.
    pub frames_kept: u64,
    /// Contiguous corrupt regions skipped (each region is one or more
    /// damaged frames and/or stretches of unparseable bytes).
    pub frames_dropped: u64,
    /// Records recovered.
    pub records: u64,
    /// Bytes past the header that contributed no records.
    pub bytes_quarantined: u64,
    /// The first [`MAX_REPORTED_ERRORS`] typed frame errors.
    pub errors: Vec<FrameError>,
    /// Whether errors beyond the cap were discarded.
    pub errors_truncated: bool,
}

impl SalvageSummary {
    /// True if anything at all was quarantined.
    pub fn is_degraded(&self) -> bool {
        self.frames_dropped > 0 || self.bytes_quarantined > 0
    }
}

/// Overall verdict for a decoded trace, mapping onto the CLI exit-code
/// contract (0 clean / 4 salvaged / 2 unusable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceHealth {
    /// Every byte decoded.
    Clean,
    /// Some frames were quarantined but records were recovered.
    Salvaged,
    /// Nothing usable was recovered.
    Unusable,
}

/// The result of a corruption-tolerant decode.
#[derive(Debug, Clone)]
pub struct SalvagedTrace {
    /// Recovered accesses, in recorded order (dropped frames excised).
    pub items: Vec<TraceItem>,
    /// What was kept, dropped, and why.
    pub summary: SalvageSummary,
}

impl SalvagedTrace {
    /// Classifies the decode for the 0/4/2 exit-code ladder.
    pub fn health(&self) -> TraceHealth {
        if !self.summary.is_degraded() {
            TraceHealth::Clean
        } else if self.summary.records > 0 {
            TraceHealth::Salvaged
        } else {
            TraceHealth::Unusable
        }
    }
}

/// Decodes a v2 trace, salvaging around corrupt frames.
///
/// Never panics on arbitrary input. Frame-level damage is skipped via
/// resync-marker scanning and reported in the summary; only header
/// damage (no trusted version/topology binding) is a hard error.
///
/// # Errors
///
/// [`TraceHeaderError`] if the fixed header is missing, corrupt, the
/// wrong version, or bound to a different topology.
pub fn decode_salvage(bytes: &[u8], topo: &Topology) -> Result<SalvagedTrace, TraceHeaderError> {
    check_header(bytes, topo)?;
    let shape = Shape::new(topo);
    let mut ctx = DeltaCtx::new(shape.total_banks);
    let mut items = Vec::new();
    let mut summary = SalvageSummary::default();
    let mut kept_bytes = 0usize;
    let mut in_bad_region = false;
    let mut pos = HEADER_LEN;

    let note = |summary: &mut SalvageSummary, in_bad: &mut bool, err: FrameError| {
        if !*in_bad {
            summary.frames_dropped += 1;
            *in_bad = true;
        }
        if summary.errors.len() < MAX_REPORTED_ERRORS {
            summary.errors.push(err);
        } else {
            summary.errors_truncated = true;
        }
    };

    while pos < bytes.len() {
        let marker = match find_resync(bytes, pos) {
            Some(m) => m,
            None => {
                note(
                    &mut summary,
                    &mut in_bad_region,
                    FrameError::SkippedGarbage { offset: pos as u64 },
                );
                break;
            }
        };
        if marker > pos && !in_bad_region {
            note(
                &mut summary,
                &mut in_bad_region,
                FrameError::SkippedGarbage { offset: pos as u64 },
            );
        }
        match parse_frame(bytes, marker, &shape, &mut ctx, &mut items) {
            Ok((count, consumed)) => {
                in_bad_region = false;
                summary.frames_kept += 1;
                summary.records += u64::from(count);
                kept_bytes += consumed;
                pos = marker + consumed;
            }
            Err(err) => {
                note(&mut summary, &mut in_bad_region, err);
                pos = marker + 1;
            }
        }
    }
    summary.bytes_quarantined = (bytes.len() - HEADER_LEN - kept_bytes) as u64;
    Ok(SalvagedTrace { items, summary })
}

/// Decodes a v2 trace, failing on the first irregularity.
///
/// # Errors
///
/// [`TraceV2Error`] for header damage or any frame/record defect.
pub fn decode_strict(bytes: &[u8], topo: &Topology) -> Result<Vec<TraceItem>, TraceV2Error> {
    check_header(bytes, topo)?;
    let shape = Shape::new(topo);
    let mut ctx = DeltaCtx::new(shape.total_banks);
    let mut items = Vec::new();
    let mut pos = HEADER_LEN;
    while pos < bytes.len() {
        if bytes.len() < pos + 4 || bytes[pos..pos + 4] != RESYNC {
            return Err(TraceV2Error::Frame(FrameError::SkippedGarbage {
                offset: pos as u64,
            }));
        }
        let (_, consumed) =
            parse_frame(bytes, pos, &shape, &mut ctx, &mut items).map_err(TraceV2Error::Frame)?;
        pos += consumed;
    }
    Ok(items)
}

/// The exact byte length `item` would occupy in the v1 text format
/// (`kind {:#010x} source\n`); used by `trace stat` to report the
/// compression ratio without re-rendering the whole file.
pub fn v1_encoded_len(item: &TraceItem) -> u64 {
    let addr = item.0.addr;
    let hex_digits = if addr == 0 {
        1
    } else {
        (64 - u64::from(addr.leading_zeros())).div_ceil(4)
    };
    let addr_len = (2 + hex_digits).max(10);
    let mut source_len = 1u64;
    let mut s = item.0.source / 10;
    while s > 0 {
        source_len += 1;
        s /= 10;
    }
    2 + addr_len + 1 + source_len + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::mix_blend;
    use crate::synth::{S1Random, S3SingleRowHammer};
    use crate::trace::AccessSource;

    fn small_topo() -> Topology {
        let mut t = Topology::paper_default();
        t.channels = 1;
        t.ranks_per_channel = 1;
        t.banks_per_rank = 4;
        t.rows_per_bank = 1024;
        t
    }

    fn specimen(n: u64, per_frame: u32) -> (Topology, Vec<TraceItem>, Vec<u8>) {
        let topo = small_topo();
        let items: Vec<TraceItem> = S1Random::new(&topo, 11).take_requests(n).collect();
        let mut w = TraceV2Writer::with_frame_records(&topo, per_frame);
        for item in &items {
            w.push(item);
        }
        (topo, items, w.finish())
    }

    #[test]
    fn round_trip_is_byte_exact() {
        let (topo, items, bytes) = specimen(300, 64);
        assert_eq!(decode_strict(&bytes, &topo).unwrap(), items);
        let salvaged = decode_salvage(&bytes, &topo).unwrap();
        assert_eq!(salvaged.items, items);
        assert_eq!(salvaged.health(), TraceHealth::Clean);
        assert_eq!(salvaged.summary.frames_kept, 5);
        assert_eq!(salvaged.summary.records, 300);
        assert_eq!(salvaged.summary.bytes_quarantined, 0);
    }

    #[test]
    fn round_trip_preserves_arrivals_and_raw_addresses() {
        let topo = small_topo();
        let mapper = AddressMapper::row_interleaved(&topo);
        // Raw, non-canonical addresses (line offsets, beyond-topology
        // bits) and non-zero arrivals, as item_from_addr-style sources
        // produce.
        let mut items = Vec::new();
        for i in 0..50u64 {
            let addr = i * 517 + 3; // unaligned on purpose
            let access = mapper.decode(addr);
            let req = MemRequest::write(addr, (i % 7) as u16, Time::from_ps(i * 1250));
            items.push((req, access));
        }
        let (bytes, n) = encode_trace(&topo, items.clone());
        assert_eq!(n, 50);
        let decoded = decode_strict(&bytes, &topo).unwrap();
        assert_eq!(decoded, items);
    }

    #[test]
    fn mixed_workload_round_trips() {
        let topo = Topology::paper_default();
        let items: Vec<TraceItem> = mix_blend(&topo, 5).take_requests(2000).collect();
        let (bytes, _) = encode_trace(&topo, items.clone());
        assert_eq!(decode_strict(&bytes, &topo).unwrap(), items);
    }

    #[test]
    fn dropping_one_frame_keeps_all_others() {
        let (topo, items, bytes) = specimen(256, 64); // 4 exact frames
                                                      // Corrupt one payload byte in the middle of frame 2.
        let second = find_resync(&bytes, HEADER_LEN + 4).unwrap();
        let mut bad = bytes.clone();
        bad[second + 20] ^= 0xFF;
        let salvaged = decode_salvage(&bad, &topo).unwrap();
        assert_eq!(salvaged.health(), TraceHealth::Salvaged);
        assert_eq!(salvaged.summary.frames_kept, 3);
        assert_eq!(salvaged.summary.frames_dropped, 1);
        assert!(salvaged.summary.bytes_quarantined > 0);
        let mut expected = items;
        expected.drain(64..128);
        assert_eq!(salvaged.items, expected);
        assert!(matches!(
            salvaged.summary.errors[0],
            FrameError::CrcMismatch { .. }
        ));
    }

    #[test]
    fn locality_workload_compresses_hard() {
        let topo = Topology::paper_default();
        let items: Vec<TraceItem> = S3SingleRowHammer::new(&topo, 3)
            .take_requests(4096)
            .collect();
        let v1: u64 = items.iter().map(v1_encoded_len).sum();
        let (bytes, _) = encode_trace(&topo, items);
        assert!(
            (bytes.len() as u64) * 4 <= v1,
            "v2 {} vs v1 {v1}",
            bytes.len()
        );
    }

    #[test]
    fn v1_encoded_len_matches_the_actual_text_format() {
        let topo = Topology::paper_default();
        for item in S1Random::new(&topo, 23).take_requests(200) {
            let kind = match item.0.kind {
                AccessKind::Read => 'R',
                AccessKind::Write => 'W',
            };
            let line = format!("{kind} {:#010x} {}\n", item.0.addr, item.0.source);
            assert_eq!(v1_encoded_len(&item), line.len() as u64, "{line:?}");
        }
        // Degenerate corners.
        let mapper = AddressMapper::row_interleaved(&topo);
        for (addr, source) in [(0u64, 0u16), (u64::MAX, u16::MAX), (0x10_0000_0000, 7)] {
            let item = (
                MemRequest::read(addr, source, Time::ZERO),
                mapper.decode(addr),
            );
            let line = format!("R {:#010x} {}\n", addr, source);
            assert_eq!(v1_encoded_len(&item), line.len() as u64);
        }
    }

    #[test]
    fn header_errors_are_typed() {
        let (topo, _, bytes) = specimen(10, 8);
        let other = Topology::paper_default();

        assert!(matches!(
            decode_salvage(&bytes[..10], &topo),
            Err(TraceHeaderError::TooShort { .. })
        ));

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_salvage(&bad, &topo),
            Err(TraceHeaderError::BadMagic { .. })
        ));

        // A version bump with a fixed-up CRC is rejected as unsupported,
        // not as corruption.
        let mut v3 = bytes.clone();
        v3[4] = 3;
        let crc = crc32(&v3[..16]).to_le_bytes();
        v3[16..20].copy_from_slice(&crc);
        assert!(matches!(
            decode_salvage(&v3, &topo),
            Err(TraceHeaderError::UnsupportedVersion { found: 3 })
        ));

        // Same bump without the CRC fix reads as header corruption.
        let mut torn = bytes.clone();
        torn[4] = 3;
        assert!(matches!(
            decode_salvage(&torn, &topo),
            Err(TraceHeaderError::CrcMismatch { .. })
        ));

        assert!(matches!(
            decode_salvage(&bytes, &other),
            Err(TraceHeaderError::TopologyMismatch { .. })
        ));
    }

    #[test]
    fn empty_trace_is_clean() {
        let topo = small_topo();
        let bytes = TraceV2Writer::new(&topo).finish();
        assert_eq!(bytes.len(), HEADER_LEN);
        let salvaged = decode_salvage(&bytes, &topo).unwrap();
        assert_eq!(salvaged.health(), TraceHealth::Clean);
        assert!(salvaged.items.is_empty());
    }
}
