//! A Zipf-distributed sampler.
//!
//! Skewed popularity is the defining feature of key-value (MICA) and
//! graph (PageRank) traffic; both generators sample from a Zipf
//! distribution with a configurable exponent. The implementation
//! precomputes the CDF and inverts it by binary search — O(n) memory,
//! O(log n) per sample, exact.

use twice_common::rng::SplitMix64;

/// A Zipf(θ) sampler over `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `0..n` with exponent `theta`.
    ///
    /// `theta = 0` degenerates to uniform; MICA's standard skew is 0.99.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "support must be non-empty");
        assert!(theta.is_finite() && theta >= 0.0, "theta must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// The support size.
    #[inline]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank (0 = most popular).
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SplitMix64::new(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c} not ~10000");
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = SplitMix64::new(2);
        let mut head = 0u32;
        let n = 100_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With theta=0.99 over 1000 items, the top 10 take ~35-40%.
        let share = f64::from(head) / f64::from(n);
        assert!(share > 0.25, "head share {share} too small for Zipf 0.99");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(7, 1.2);
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SplitMix64::new(4);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], max);
    }

    #[test]
    #[should_panic(expected = "support")]
    fn empty_support_panics() {
        Zipf::new(0, 1.0);
    }
}
