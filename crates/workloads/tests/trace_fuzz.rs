//! Corruption contract for the `twice-trace v2` binary format.
//!
//! Exhaustively exercises the salvage reader against every truncation
//! point, every single-bit flip, and a battery of checksum-valid
//! hostile frames. The contract under test: arbitrary damage yields a
//! typed error or a successful salvage — never a panic, and never a
//! silently wrong decode. Salvage must keep every frame outside the
//! corrupt region.

use twice_common::crc32::crc32;
use twice_common::Topology;
use twice_workloads::synth::S1Random;
use twice_workloads::tracev2::{
    decode_salvage, decode_strict, FrameError, RecordError, TraceHeaderError, TraceHealth,
    TraceV2Error, TraceV2Writer, HEADER_LEN, MAX_FRAME_PAYLOAD, RESYNC,
};
use twice_workloads::{AccessSource, TraceItem};

const PER_FRAME: u32 = 16;
const RECORDS: u64 = 64; // exactly 4 sealed frames

fn small_topo() -> Topology {
    let mut t = Topology::paper_default();
    t.channels = 1;
    t.ranks_per_channel = 1;
    t.banks_per_rank = 4;
    t.rows_per_bank = 1024;
    t
}

/// A 4-frame specimen trace plus its decoded ground truth.
fn specimen() -> (Topology, Vec<TraceItem>, Vec<u8>) {
    let topo = small_topo();
    let items: Vec<TraceItem> = S1Random::new(&topo, 11).take_requests(RECORDS).collect();
    let mut w = TraceV2Writer::with_frame_records(&topo, PER_FRAME);
    for item in &items {
        w.push(item);
    }
    (topo, items, w.finish())
}

#[test]
fn every_truncation_is_typed_or_a_whole_frame_prefix() {
    let (topo, items, bytes) = specimen();
    for n in 0..bytes.len() {
        let cut = &bytes[..n];
        match decode_salvage(cut, &topo) {
            Err(e) => {
                assert!(
                    n < HEADER_LEN,
                    "byte {n}: header error on intact header: {e}"
                );
                assert_eq!(
                    e,
                    TraceHeaderError::TooShort {
                        needed: HEADER_LEN,
                        got: n
                    },
                    "byte {n}"
                );
            }
            Ok(s) => {
                assert!(n >= HEADER_LEN, "byte {n}: truncated header accepted");
                // A truncated tail may cost the last partial frame, but
                // what survives is always a prefix of whole frames.
                assert_eq!(s.summary.records % u64::from(PER_FRAME), 0, "byte {n}");
                assert_eq!(
                    s.items,
                    items[..s.summary.records as usize],
                    "byte {n}: salvage must be a faithful prefix"
                );
                if s.summary.is_degraded() {
                    assert_ne!(s.health(), TraceHealth::Clean, "byte {n}");
                    assert!(!s.summary.errors.is_empty(), "byte {n}");
                }
            }
        }
    }
    // The full file, for contrast, is clean.
    let full = decode_salvage(&bytes, &topo).unwrap();
    assert_eq!(full.health(), TraceHealth::Clean);
    assert_eq!(full.items, items);
}

#[test]
fn every_single_bit_flip_is_contained_to_one_frame() {
    let (topo, items, bytes) = specimen();
    let chunks: Vec<&[TraceItem]> = items.chunks(PER_FRAME as usize).collect();
    for offset in 0..bytes.len() {
        for bit in 0..8 {
            let mut bad = bytes.clone();
            bad[offset] ^= 1 << bit;
            let result = decode_salvage(&bad, &topo);
            if offset < HEADER_LEN {
                // Any header damage must be a typed hard error — CRC32
                // detects every single-bit flip.
                let e =
                    result.expect_err(&format!("byte {offset} bit {bit}: damaged header accepted"));
                assert!(
                    matches!(
                        e,
                        TraceHeaderError::BadMagic { .. }
                            | TraceHeaderError::CrcMismatch { .. }
                            | TraceHeaderError::UnsupportedVersion { .. }
                            | TraceHeaderError::TopologyMismatch { .. }
                    ),
                    "byte {offset} bit {bit}: {e}"
                );
                continue;
            }
            // Body damage: exactly one corrupt region, every other
            // frame survives byte-exact.
            let s = result.unwrap_or_else(|e| {
                panic!("byte {offset} bit {bit}: body flip broke the header: {e}")
            });
            assert_eq!(
                s.summary.frames_dropped, 1,
                "byte {offset} bit {bit}: {:?}",
                s.summary
            );
            assert_eq!(s.summary.frames_kept, 3, "byte {offset} bit {bit}");
            assert_eq!(
                s.summary.records,
                RECORDS - u64::from(PER_FRAME),
                "byte {offset} bit {bit}"
            );
            assert_eq!(s.health(), TraceHealth::Salvaged, "byte {offset} bit {bit}");
            assert!(!s.summary.errors.is_empty(), "byte {offset} bit {bit}");
            // The survivors are the original minus exactly one frame.
            let matches_excision = (0..chunks.len()).any(|skip| {
                let expect: Vec<TraceItem> = chunks
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .flat_map(|(_, c)| c.iter().copied())
                    .collect();
                s.items == expect
            });
            assert!(
                matches_excision,
                "byte {offset} bit {bit}: salvage is not a one-frame excision"
            );
        }
    }
}

/// Builds a checksum-valid frame around an arbitrary payload — the
/// hostile case CRC framing cannot catch, which the record decoder's
/// range and shape checks must.
fn forge_frame(payload: &[u8], count: u32) -> Vec<u8> {
    let mut f = Vec::new();
    f.extend_from_slice(&RESYNC);
    let body_start = f.len();
    f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    f.extend_from_slice(&count.to_le_bytes());
    f.extend_from_slice(payload);
    let crc = crc32(&f[body_start..]);
    f.extend_from_slice(&crc.to_le_bytes());
    f
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// The bare 20-byte header for `topo` (a finished empty trace).
fn header(topo: &Topology) -> Vec<u8> {
    TraceV2Writer::new(topo).finish()
}

#[test]
fn checksum_valid_hostile_frames_yield_typed_errors() {
    let topo = small_topo();
    let head = header(&topo);

    // flags byte semantics: bit0 write, bit1 bank, bit2 row, bit3 col,
    // bit4 source, bit5 arrival, bit6 extra, bit7 reserved.
    let mut bank_past_end = vec![0x02];
    put_varint(&mut bank_past_end, 4); // total banks in small_topo
    let mut source_too_big = vec![0x10];
    put_varint(&mut source_too_big, 70_000); // > u16::MAX
    let mut overlong = vec![0x02];
    overlong.extend_from_slice(&[0xFF; 10]); // varint never terminates

    type HostileCase = (&'static str, Vec<u8>, u32, fn(&RecordError) -> bool);
    let cases: Vec<HostileCase> = vec![
        ("reserved flag bit", vec![0x80], 1, |e| {
            matches!(e, RecordError::ReservedFlags { .. })
        }),
        ("bank out of range", bank_past_end, 1, |e| {
            matches!(e, RecordError::BankOutOfRange { bank: 4, .. })
        }),
        // zigzag(-1) = 1: a row/col delta below zero from the reset ctx.
        ("row below zero", vec![0x04, 0x01], 1, |e| {
            matches!(e, RecordError::RowOutOfRange { row: -1, .. })
        }),
        ("col below zero", vec![0x08, 0x01], 1, |e| {
            matches!(e, RecordError::ColOutOfRange { col: -1, .. })
        }),
        ("source exceeds u16", source_too_big, 1, |e| {
            matches!(e, RecordError::SourceOutOfRange { source: 70_000, .. })
        }),
        ("overlong varint", overlong, 1, |e| {
            matches!(e, RecordError::VarintOverlong { .. })
        }),
        ("payload ends mid-record", vec![0x02], 1, |e| {
            matches!(e, RecordError::Truncated { record: 0 })
        }),
        (
            "trailing bytes after last record",
            vec![0x00, 0x00],
            1,
            |e| matches!(e, RecordError::TrailingBytes { extra: 1 }),
        ),
        ("count exceeds payload", vec![0x00], 5, |e| {
            matches!(e, RecordError::Truncated { record: 1 })
        }),
        ("huge count, empty payload", vec![], u32::MAX, |e| {
            matches!(e, RecordError::Truncated { record: 0 })
        }),
    ];

    for (what, payload, count, is_expected) in cases {
        let mut file = head.clone();
        file.extend_from_slice(&forge_frame(&payload, count));
        let s = decode_salvage(&file, &topo)
            .unwrap_or_else(|e| panic!("{what}: hostile frame broke the header: {e}"));
        assert_eq!(s.health(), TraceHealth::Unusable, "{what}");
        assert_eq!(s.summary.records, 0, "{what}");
        assert_eq!(s.summary.frames_dropped, 1, "{what}");
        match &s.summary.errors[..] {
            [FrameError::Record { source, .. }, ..] => {
                assert!(is_expected(source), "{what}: got {source:?}");
            }
            other => panic!("{what}: expected a record error, got {other:?}"),
        }
        // Strict mode refuses the same frame outright.
        assert!(
            matches!(
                decode_strict(&file, &topo),
                Err(TraceV2Error::Frame(FrameError::Record { .. }))
            ),
            "{what}: strict decode must fail"
        );
    }
}

#[test]
fn oversize_declared_payload_is_rejected_before_allocation() {
    let topo = small_topo();
    let mut file = header(&topo);
    file.extend_from_slice(&RESYNC);
    file.extend_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
    file.extend_from_slice(&1u32.to_le_bytes());
    file.extend_from_slice(&[0u8; 8]); // a token body; the length lies
    let s = decode_salvage(&file, &topo).unwrap();
    assert_eq!(s.health(), TraceHealth::Unusable);
    assert!(
        matches!(
            s.summary.errors[0],
            FrameError::PayloadTooLarge { len, .. } if len == MAX_FRAME_PAYLOAD + 1
        ),
        "{:?}",
        s.summary.errors
    );
}

#[test]
fn hostile_frame_does_not_poison_its_neighbors() {
    let (topo, items, bytes) = specimen();
    // Splice a hostile (checksum-valid, reserved-flag) frame between
    // frame 0 and frame 1 of a healthy file.
    let first_frame_end = {
        let s = decode_salvage(&bytes, &topo).unwrap();
        assert_eq!(s.summary.frames_kept, 4);
        // Frames are back to back after the header; find the second
        // marker to learn where frame 0 ends.
        let body = &bytes[HEADER_LEN + 4..];
        HEADER_LEN
            + 4
            + body
                .windows(4)
                .position(|w| w == RESYNC)
                .expect("four frames present")
    };
    let mut spliced = bytes[..first_frame_end].to_vec();
    spliced.extend_from_slice(&forge_frame(&[0x80], 1));
    spliced.extend_from_slice(&bytes[first_frame_end..]);

    let s = decode_salvage(&spliced, &topo).unwrap();
    assert_eq!(s.health(), TraceHealth::Salvaged);
    assert_eq!(s.summary.frames_kept, 4, "all real frames survive");
    assert_eq!(s.summary.frames_dropped, 1, "one corrupt region");
    assert_eq!(s.items, items, "record stream is unchanged");
}

#[test]
fn garbage_body_salvages_to_unusable_not_panic() {
    let topo = small_topo();
    let mut file = header(&topo);
    // Deterministic pseudo-garbage (no RNG in tests that must replay).
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..300 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        file.push((x >> 56) as u8);
    }
    let s = decode_salvage(&file, &topo).unwrap();
    assert_eq!(s.health(), TraceHealth::Unusable);
    assert_eq!(s.summary.records, 0);
    assert_eq!(s.summary.bytes_quarantined, 300);
}

#[test]
fn wrong_topology_is_a_hard_typed_error() {
    let (topo, _, bytes) = specimen();
    let other = Topology::paper_default();
    assert_ne!(
        twice_workloads::tracev2::topology_digest(&topo),
        twice_workloads::tracev2::topology_digest(&other)
    );
    match decode_salvage(&bytes, &other) {
        Err(TraceHeaderError::TopologyMismatch { expected, found }) => {
            assert_ne!(expected, found);
        }
        other => panic!("expected TopologyMismatch, got {other:?}"),
    }
}
