//! Review PoC: hostile CRC-valid frame with a huge row delta after a
//! nonzero base row should not panic, per the salvage contract.

use twice_common::crc32::crc32;
use twice_common::Topology;
use twice_workloads::tracev2::{decode_salvage, TraceV2Writer, RESYNC};

fn small_topo() -> Topology {
    let mut t = Topology::paper_default();
    t.channels = 1;
    t.ranks_per_channel = 1;
    t.banks_per_rank = 4;
    t.rows_per_bank = 1024;
    t
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn forge_frame(payload: &[u8], count: u32) -> Vec<u8> {
    let mut f = Vec::new();
    f.extend_from_slice(&RESYNC);
    let body_start = f.len();
    f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    f.extend_from_slice(&count.to_le_bytes());
    f.extend_from_slice(payload);
    let crc = crc32(&f[body_start..]);
    f.extend_from_slice(&crc.to_le_bytes());
    f
}

#[test]
fn huge_row_delta_after_nonzero_base_does_not_panic() {
    let topo = small_topo();
    let head = TraceV2Writer::new(&topo).finish();
    // record 0: row delta +5 (valid); record 1: row delta = i64::MAX.
    let mut payload = vec![0x04];
    put_varint(&mut payload, 10); // zigzag(+5)
    payload.push(0x04);
    put_varint(&mut payload, u64::MAX - 1); // zigzag(i64::MAX)
    let mut file = head;
    file.extend_from_slice(&forge_frame(&payload, 2));
    let s = decode_salvage(&file, &topo).unwrap();
    assert_eq!(s.summary.records, 0);
}
