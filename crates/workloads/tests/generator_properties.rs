//! Property tests: every generator emits coordinates that are valid for
//! its topology, is deterministic in its seed, and the addresses it
//! fabricates decode back to the coordinates it claims.
//!
//! Topologies and seeds are drawn from the in-tree `SplitMix64`
//! generator (the proptest crate is unavailable offline); each case is
//! reproducible from its seed.

use twice_common::rng::SplitMix64;
use twice_common::Topology;
use twice_memctrl::addrmap::AddressMapper;
use twice_workloads::attack::{HammerAttack, HammerShape};
use twice_workloads::fft::FftSource;
use twice_workloads::mica::MicaSource;
use twice_workloads::pagerank::PageRankSource;
use twice_workloads::radix::RadixSource;
use twice_workloads::spec::{spec_cpu2006, SpecAppSource};
use twice_workloads::synth::{S1Random, S2CbtAdversarial, S3SingleRowHammer};
use twice_workloads::{AccessSource, TraceItem};

fn topology(rng: &mut SplitMix64) -> Topology {
    Topology {
        channels: 1 + rng.next_below(2) as u8,
        ranks_per_channel: 1 + rng.next_below(2) as u8,
        banks_per_rank: 1 + rng.next_below(4) as u16,
        rows_per_bank: 1 << (6 + rng.next_below(6)),
        cols_per_row: 128,
        row_bytes: 8_192,
        devices_per_rank: 8,
    }
}

fn check_stream(topo: &Topology, items: impl Iterator<Item = TraceItem>) -> Result<(), String> {
    let mapper = AddressMapper::row_interleaved(topo);
    for (req, access) in items {
        if access.channel.0 >= topo.channels {
            return Err(format!("channel {} out of range", access.channel));
        }
        if access.rank.0 >= topo.ranks_per_channel {
            return Err(format!("rank {} out of range", access.rank));
        }
        if access.bank >= topo.banks_per_rank {
            return Err(format!("bank {} out of range", access.bank));
        }
        if !topo.contains_row(access.row) {
            return Err(format!("row {} out of range", access.row));
        }
        if access.col.0 >= topo.cols_per_row {
            return Err(format!("col {} out of range", access.col.0));
        }
        if mapper.decode(req.addr) != access {
            return Err(format!(
                "address {:#x} does not decode to {access:?}",
                req.addr
            ));
        }
    }
    Ok(())
}

#[test]
fn all_generators_stay_in_range() {
    let mut rng = SplitMix64::new(0x9E3779);
    for _ in 0..16 {
        let topo = topology(&mut rng);
        let seed = rng.next_u64();
        let n = 800;
        let sources: Vec<(&str, Box<dyn Iterator<Item = TraceItem>>)> = vec![
            ("s1", Box::new(S1Random::new(&topo, seed).take_requests(n))),
            (
                "s2",
                Box::new(S2CbtAdversarial::new(&topo, 100, 50, seed).take_requests(n)),
            ),
            (
                "s3",
                Box::new(S3SingleRowHammer::new(&topo, seed).take_requests(n)),
            ),
            (
                "fft",
                Box::new(FftSource::new(&topo, 1 << 14, 4).take_requests(n)),
            ),
            (
                "radix",
                Box::new(RadixSource::new(&topo, 5_000, 16, 4, seed).take_requests(n)),
            ),
            (
                "mica",
                Box::new(MicaSource::new(&topo, 10_000, 0.99, 0.9, 4, seed).take_requests(n)),
            ),
            (
                "pagerank",
                Box::new(PageRankSource::new(&topo, 10_000, 8, 4, seed).take_requests(n)),
            ),
        ];
        for (name, stream) in sources {
            if let Err(e) = check_stream(&topo, stream) {
                panic!("{name}: {e}");
            }
        }
    }
}

#[test]
fn spec_models_stay_in_their_partition() {
    let mut rng = SplitMix64::new(0xBADC0DE);
    let apps = spec_cpu2006();
    for case in 0..16 {
        let topo = topology(&mut rng);
        let seed = rng.next_u64();
        let model = apps[(case * 7) % apps.len()].clone();
        let copies = 4u16;
        for copy in 0..copies {
            let src = SpecAppSource::new(&topo, model.clone(), copy, copies, seed);
            let region = (topo.rows_per_bank / u32::from(copies)).max(1);
            for (_, a) in src.take_requests(300) {
                let lo = u32::from(copy) * region;
                assert!(
                    a.row.0 >= lo && a.row.0 < lo + region,
                    "copy {copy} escaped its region: row {}",
                    a.row
                );
            }
        }
    }
}

#[test]
fn generators_are_deterministic() {
    let mut rng = SplitMix64::new(0x5EED);
    for _ in 0..8 {
        let seed = rng.next_u64();
        let topo = Topology::paper_default();
        let a: Vec<u64> = S1Random::new(&topo, seed)
            .take_requests(200)
            .map(|(r, _)| r.addr)
            .collect();
        let b: Vec<u64> = S1Random::new(&topo, seed)
            .take_requests(200)
            .map(|(r, _)| r.addr)
            .collect();
        assert_eq!(a, b);
        let a: Vec<u64> = MicaSource::new(&topo, 1000, 0.99, 0.5, 2, seed)
            .take_requests(200)
            .map(|(r, _)| r.addr)
            .collect();
        let b: Vec<u64> = MicaSource::new(&topo, 1000, 0.99, 0.5, 2, seed)
            .take_requests(200)
            .map(|(r, _)| r.addr)
            .collect();
        assert_eq!(a, b);
    }
}

#[test]
fn attacks_only_touch_their_aggressors() {
    let mut rng = SplitMix64::new(0xA66);
    for _ in 0..16 {
        let victim = 1 + rng.next_below(999) as u32;
        let topo = Topology::paper_default();
        let shape = HammerShape::DoubleSided {
            victim: twice_common::RowId(victim),
        };
        let aggressors = shape.aggressors();
        let attack = HammerAttack::new(&topo, 0, shape);
        for (_, a) in attack.take_requests(100) {
            assert!(aggressors.contains(&a.row));
            assert_ne!(a.row.0, victim, "the victim itself is never touched");
        }
    }
}
