//! Snapshot round-trip tests for every stateful access source: after
//! advancing a generator, saving it, and restoring the blob into a fresh
//! generator built from the same configuration, the restored generator
//! must emit the exact same access suffix. Any hidden mutable state that
//! escapes `save_state` shows up here as a diverging trace.

use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use twice_common::RowId;
use twice_common::Topology;
use twice_workloads::attack::{HammerAttack, HammerShape};
use twice_workloads::fft::FftSource;
use twice_workloads::mica::MicaSource;
use twice_workloads::mix::mix_high;
use twice_workloads::pagerank::PageRankSource;
use twice_workloads::radix::RadixSource;
use twice_workloads::spec::{app, SpecAppSource};
use twice_workloads::synth::{S1Random, S2CbtAdversarial, S3SingleRowHammer};
use twice_workloads::trace::AccessSource;

/// Advances `a` by `warmup`, snapshots it into `b`, then checks the next
/// `check` accesses agree address-for-address.
fn assert_resumes<S: AccessSource>(mut a: S, mut b: S, warmup: u64, check: u64, what: &str) {
    for _ in 0..warmup {
        a.next_access();
    }
    let mut w = SnapshotWriter::new();
    a.save_state(&mut w);
    let blob = w.finish();
    b.load_state(&mut SnapshotReader::new(&blob).expect("valid header"))
        .unwrap_or_else(|e| panic!("{what}: restore failed: {e:?}"));
    for i in 0..check {
        let (ra, aa) = a.next_access();
        let (rb, ab) = b.next_access();
        assert_eq!(ra.addr, rb.addr, "{what}: addr diverged at access {i}");
        assert_eq!(ra.kind, rb.kind, "{what}: kind diverged at access {i}");
        assert_eq!(ra.source, rb.source, "{what}: source diverged at {i}");
        assert_eq!(aa, ab, "{what}: coordinate diverged at access {i}");
    }
}

#[test]
fn s1_random_resumes() {
    let topo = Topology::paper_default();
    assert_resumes(
        S1Random::new(&topo, 7),
        S1Random::new(&topo, 7),
        1_000,
        500,
        "S1",
    );
}

#[test]
fn s2_cbt_adversarial_resumes_across_the_phase_boundary() {
    let topo = Topology::paper_default();
    // Warm up to just before the phase-1 -> phase-2 switch so the resumed
    // suffix crosses it.
    assert_resumes(
        S2CbtAdversarial::new(&topo, 300, 100, 3),
        S2CbtAdversarial::new(&topo, 300, 100, 3),
        290,
        200,
        "S2",
    );
}

#[test]
fn s3_single_row_hammer_resumes() {
    let topo = Topology::paper_default();
    assert_resumes(
        S3SingleRowHammer::new(&topo, 5),
        S3SingleRowHammer::new(&topo, 5),
        100,
        100,
        "S3",
    );
}

#[test]
fn hammer_attack_cursor_resumes() {
    let topo = Topology::paper_default();
    let shape = HammerShape::ManySided {
        aggressors: (10..17).map(RowId).collect(),
    };
    assert_resumes(
        HammerAttack::new(&topo, 0, shape.clone()),
        HammerAttack::new(&topo, 0, shape),
        5, // mid-rotation
        21,
        "HammerAttack",
    );
}

#[test]
fn spec_app_resumes() {
    let topo = Topology::paper_default();
    for name in ["mcf", "lbm", "omnetpp", "leslie3d"] {
        let model = app(name).expect("known app");
        assert_resumes(
            SpecAppSource::new(&topo, model.clone(), 3, 16, 42),
            SpecAppSource::new(&topo, model, 3, 16, 42),
            2_000,
            1_000,
            name,
        );
    }
}

#[test]
fn weighted_interleave_resumes_with_nested_sources() {
    let topo = Topology::paper_default();
    assert_resumes(
        mix_high(&topo, 11),
        mix_high(&topo, 11),
        3_000,
        1_000,
        "mix-high",
    );
}

#[test]
fn fft_resumes() {
    let topo = Topology::paper_default();
    assert_resumes(
        FftSource::new(&topo, 1 << 12, 4),
        FftSource::new(&topo, 1 << 12, 4),
        1_111, // mid-butterfly (RRWW cursor not at a boundary)
        500,
        "FFT",
    );
}

#[test]
fn mica_resumes_with_pending_value() {
    let topo = Topology::paper_default();
    // Odd warmup leaves a pending value access in flight.
    assert_resumes(
        MicaSource::new(&topo, 10_000, 0.99, 0.95, 4, 2),
        MicaSource::new(&topo, 10_000, 0.99, 0.95, 4, 2),
        1_001,
        500,
        "MICA",
    );
}

#[test]
fn pagerank_resumes_mid_gather() {
    let topo = Topology::paper_default();
    assert_resumes(
        PageRankSource::new(&topo, 5_000, 8, 4, 7),
        PageRankSource::new(&topo, 5_000, 8, 4, 7),
        999, // phase = 1
        500,
        "PageRank",
    );
}

#[test]
fn radix_resumes_mid_scatter() {
    let topo = Topology::paper_default();
    assert_resumes(
        RadixSource::new(&topo, 500, 16, 4, 9),
        RadixSource::new(&topo, 500, 16, 4, 9),
        750, // inside the scatter phase, bucket_fill partly advanced
        500,
        "RADIX",
    );
}

#[test]
fn corrupt_source_blob_is_rejected() {
    let topo = Topology::paper_default();
    let mut s = S1Random::new(&topo, 7);
    for _ in 0..10 {
        s.next_access();
    }
    let mut w = SnapshotWriter::new();
    s.save_state(&mut w);
    let mut blob = w.finish();
    let mid = blob.len() / 2;
    blob[mid] ^= 0x08;
    match SnapshotReader::new(&blob) {
        Err(SnapshotError::ChecksumMismatch { .. }) => {}
        other => panic!("corrupted blob must fail the checksum, got {other:?}"),
    }
}

#[test]
fn restore_into_wrong_shape_is_rejected() {
    let topo = Topology::paper_default();
    let mut a = RadixSource::new(&topo, 500, 16, 4, 9);
    for _ in 0..10 {
        a.next_access();
    }
    let mut w = SnapshotWriter::new();
    a.save_state(&mut w);
    let blob = w.finish();
    let mut b = RadixSource::new(&topo, 500, 32, 4, 9); // different radix
    let err = b
        .load_state(&mut SnapshotReader::new(&blob).expect("valid header"))
        .unwrap_err();
    assert!(matches!(err, SnapshotError::StateMismatch(_)), "{err:?}");
}
