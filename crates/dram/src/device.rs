//! The aggregate DRAM rank model.
//!
//! [`DramRank`] ties together the per-bank FSMs, rank-level activation
//! window, row sparing, refresh cursors, and the row-hammer fault model.
//! All DRAM devices of a rank operate in tandem (§2.3), so one `DramRank`
//! stands for the whole device group.

use crate::bank::Bank;
use crate::cmd::DramCommand;
use crate::data::{BankData, RowIntegrity};
use crate::energy::DramEnergyModel;
use crate::error::DramError;
use crate::hammer::{BitFlip, HammerModel};
use crate::rank::RankActWindow;
use crate::refresh::RefreshCursor;
use crate::remap::{NeighborRows, RemapTable};
use crate::stats::DramStats;
use twice_common::snapshot::{
    Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, StateDigest,
};
use twice_common::{DdrTimings, RowId, Time};

/// Construction parameters for a [`DramRank`].
#[derive(Debug, Clone)]
pub struct RankConfig {
    /// The timing parameter set.
    pub timings: DdrTimings,
    /// Banks in the rank.
    pub banks: u16,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Row-hammer disturbance threshold `N_th`.
    pub n_th: u64,
    /// Faulty (spared/remapped) rows per bank.
    pub faults_per_bank: u32,
    /// Seed for remap-table construction.
    pub remap_seed: u64,
    /// Overdrive fault model: one extra bit flip per this much
    /// disturbance beyond `N_th` (see [`HammerModel::with_overshoot`]).
    pub overshoot_interval: Option<u64>,
    /// Half-Double coupling: every `k`-th activation also disturbs the
    /// rows at physical distance 2 (`None` = classic distance-1 model).
    pub far_coupling: Option<u64>,
    /// ARR blast radius: how far out an ARR refreshes (1 = the paper's
    /// design; 2 = the widened "TWiCe+" ARR that counters Half-Double).
    pub arr_radius: u32,
}

impl RankConfig {
    /// The Table 2/4 configuration: 16 banks of 131,072 rows, DDR4-2400,
    /// `N_th` = 139K (from [Kim et al. 2014] as cited in §4.1), no
    /// remapped rows.
    pub fn paper_default() -> RankConfig {
        RankConfig {
            timings: DdrTimings::ddr4_2400(),
            banks: 16,
            rows_per_bank: 131_072,
            n_th: 139_000,
            faults_per_bank: 0,
            remap_seed: 1,
            overshoot_interval: None,
            far_coupling: None,
            arr_radius: 1,
        }
    }

    /// A small configuration for tests: real DDR4 timing, tiny geometry,
    /// and a low `N_th` (100) so attacks flip quickly.
    pub fn for_test(banks: u16, rows_per_bank: u32) -> RankConfig {
        RankConfig {
            timings: DdrTimings::ddr4_2400(),
            banks,
            rows_per_bank,
            n_th: 100,
            faults_per_bank: 0,
            remap_seed: 1,
            overshoot_interval: None,
            far_coupling: None,
            arr_radius: 1,
        }
    }

    /// Returns the config with a different disturbance threshold.
    pub fn with_n_th(mut self, n_th: u64) -> RankConfig {
        self.n_th = n_th;
        self
    }

    /// Returns the config with `faults` remapped rows per bank.
    pub fn with_faults(mut self, faults: u32) -> RankConfig {
        self.faults_per_bank = faults;
        self
    }

    /// Returns the config with overdrive flips every `interval` of
    /// disturbance past `N_th`.
    pub fn with_overshoot(mut self, interval: u64) -> RankConfig {
        self.overshoot_interval = Some(interval);
        self
    }

    /// Returns the config with Half-Double coupling every `k`-th ACT.
    pub fn with_far_coupling(mut self, k: u64) -> RankConfig {
        self.far_coupling = Some(k);
        self
    }

    /// Returns the config with an ARR blast radius of `radius`.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is zero.
    pub fn with_arr_radius(mut self, radius: u32) -> RankConfig {
        assert!(radius > 0, "ARR radius must be positive");
        self.arr_radius = radius;
        self
    }
}

/// One DRAM rank: banks, timing, sparing, refresh, and fault model.
#[derive(Debug)]
pub struct DramRank {
    config: RankConfig,
    banks: Vec<Bank>,
    act_window: RankActWindow,
    remap: Vec<RemapTable>,
    hammer: Vec<HammerModel>,
    refresh: Vec<RefreshCursor>,
    data: Vec<BankData>,
    stats: DramStats,
    /// Monotone counter seeding deterministic flip positions.
    flip_nonce: u64,
    /// Flip events already applied to the data arrays (total across
    /// banks; the serialized form, kept for snapshot compatibility).
    flips_applied: usize,
    /// Per-bank applied-event counts — the derived index that lets
    /// [`sync_flips`](Self::sync_flips) diff one bank's event list
    /// instead of summing every bank's on each ACT. Recomputed on
    /// restore, never serialized. Invariant: `flips_seen[b]` equals
    /// `hammer[b].flips().len()` after every sync, and the counts sum
    /// to `flips_applied`.
    flips_seen: Vec<usize>,
}

impl DramRank {
    /// Builds the rank described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if the timing set fails validation or geometry is zero.
    pub fn new(config: RankConfig) -> DramRank {
        config.timings.validate().expect("invalid timing set");
        assert!(config.banks > 0 && config.rows_per_bank > 0, "empty rank");
        let refs_per_window = config.timings.refreshes_per_window();
        let banks = (0..config.banks)
            .map(|_| Bank::new(config.timings.clone()))
            .collect();
        let remap = (0..config.banks)
            .map(|b| {
                if config.faults_per_bank == 0 {
                    RemapTable::identity(config.rows_per_bank)
                } else {
                    RemapTable::with_random_faults(
                        config.rows_per_bank,
                        config.faults_per_bank,
                        config.remap_seed.wrapping_add(u64::from(b)),
                    )
                }
            })
            .collect();
        let hammer = (0..config.banks)
            .map(|_| {
                let mut m = HammerModel::new(config.rows_per_bank, config.n_th);
                if let Some(iv) = config.overshoot_interval {
                    m = m.with_overshoot(iv);
                }
                if let Some(k) = config.far_coupling {
                    m = m.with_far_coupling(k);
                }
                m
            })
            .collect();
        let data = (0..config.banks)
            .map(|b| BankData::new(8_192, config.remap_seed ^ (u64::from(b) << 32)))
            .collect();
        let refresh = (0..config.banks)
            .map(|_| RefreshCursor::new(config.rows_per_bank, refs_per_window))
            .collect();
        let nbanks = usize::from(config.banks);
        DramRank {
            act_window: RankActWindow::new(&config.timings, config.banks),
            config,
            banks,
            remap,
            hammer,
            refresh,
            data,
            stats: DramStats::new(),
            flip_nonce: 0,
            flips_applied: 0,
            flips_seen: vec![0; nbanks],
        }
    }

    /// Applies any newly recorded bit-flip events of bank `b` to its data
    /// array at deterministic bit positions.
    fn sync_flips(&mut self, b: usize) {
        use twice_common::rng::SplitMix64;
        let new = self.hammer[b].flips().len();
        let seen = self.flips_seen[b];
        if new <= seen {
            return;
        }
        let events: Vec<_> = self.hammer[b].flips()[seen..].to_vec();
        for flip in events {
            self.flip_nonce += 1;
            let mut rng = SplitMix64::new(
                self.config.remap_seed ^ (u64::from(flip.victim.0) << 16) ^ self.flip_nonce,
            );
            let bit = rng.next_below(8_192 * 8);
            self.data[b].flip_bit(flip.victim, bit);
        }
        self.flips_applied += new - seen;
        self.flips_seen[b] = new;
    }

    /// The construction parameters.
    #[inline]
    pub fn config(&self) -> &RankConfig {
        &self.config
    }

    /// Accumulated command statistics.
    #[inline]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Records one nacked command in the rank's statistics. The RCD calls
    /// this so experiments can split protocol nacks from chaos-injected
    /// ones.
    pub(crate) fn record_nack(&mut self, injected: bool) {
        if injected {
            self.stats.injected_nacks += 1;
        } else {
            self.stats.nacks += 1;
        }
    }

    /// Total energy (pJ) consumed so far under `model`.
    pub fn energy_pj(&self, model: &DramEnergyModel) -> u64 {
        self.stats.energy_pj(model)
    }

    fn check_bank(&self, bank: u16) -> Result<usize, DramError> {
        if bank < self.config.banks {
            Ok(usize::from(bank))
        } else {
            Err(DramError::NoSuchBank { bank })
        }
    }

    fn check_row(&self, row: RowId) -> Result<(), DramError> {
        if row.0 < self.config.rows_per_bank {
            Ok(())
        } else {
            Err(DramError::NoSuchRow { row })
        }
    }

    /// Issues one command at `now`.
    ///
    /// # Errors
    ///
    /// Propagates [`DramError`] for unknown banks/rows, bad bank state,
    /// and timing violations. On error the device state is unchanged.
    pub fn issue(&mut self, cmd: DramCommand, now: Time) -> Result<(), DramError> {
        let b = self.check_bank(cmd.bank())?;
        match cmd {
            DramCommand::Activate { row, .. } => {
                self.check_row(row)?;
                // Validate both constraints before mutating either tracker.
                self.act_window
                    .check(cmd.bank(), now)
                    .map_err(DramError::Timing)?;
                self.banks[b].activate(row, now)?;
                self.act_window.record(cmd.bank(), now);
                self.stats.acts += 1;
                self.hammer[b].on_activate(row, &self.remap[b], now);
                self.sync_flips(b);
                Ok(())
            }
            DramCommand::Precharge { .. } => {
                self.banks[b].precharge(now)?;
                self.stats.precharges += 1;
                Ok(())
            }
            DramCommand::Read { .. } => {
                self.banks[b].column_access(now)?;
                self.stats.reads += 1;
                Ok(())
            }
            DramCommand::Write { .. } => {
                self.banks[b].column_access(now)?;
                self.stats.writes += 1;
                Ok(())
            }
            DramCommand::Refresh { .. } => {
                self.banks[b].refresh(now)?;
                self.stats.refreshes += 1;
                let hammer = &mut self.hammer[b];
                for row in self.refresh[b].refresh() {
                    hammer.on_refresh(row);
                }
                Ok(())
            }
            DramCommand::AdjacentRowRefresh { row, .. } => {
                self.check_row(row)?;
                let open = self.banks[b].open_row();
                if open != Some(row) {
                    return Err(DramError::BadState {
                        reason: "ARR row does not match the open aggressor row",
                    });
                }
                let victims = self.arr_victim_rows(cmd.bank(), row);
                let aggressor = self.banks[b].adjacent_row_refresh(now, victims.len() as u32)?;
                debug_assert_eq!(aggressor, row);
                for &v in &victims {
                    // Refreshing a victim is an internal ACT+PRE: it
                    // restores the victim and disturbs *its* neighbors.
                    self.hammer[b].on_activate(v, &self.remap[b], now);
                }
                self.stats.arrs += 1;
                self.stats.arr_victim_acts += victims.len() as u64;
                self.sync_flips(b);
                Ok(())
            }
        }
    }

    /// Performs an **all-bank refresh** (the DDR4 REFab command): every
    /// bank must be precharged and ready; each is then busy for `tRFC`
    /// while its next rowset refreshes. Modern parts also support the
    /// per-bank REF modeled by [`DramCommand::Refresh`]; controllers
    /// choose one mode (§2.1 discusses the rowset growth that motivated
    /// both).
    ///
    /// # Errors
    ///
    /// Fails with the *first* bank's error if any bank has an open row or
    /// is not ready; no state changes in that case.
    pub fn refresh_all(&mut self, now: Time) -> Result<(), DramError> {
        // Validate every bank first so failure is atomic.
        for bank in &self.banks {
            if bank.open_row().is_some() {
                return Err(DramError::BadState {
                    reason: "REFab with a row open in some bank",
                });
            }
            if now < bank.act_ready_at() {
                return Err(DramError::Timing(crate::error::TimingViolation {
                    kind: crate::error::TimingKind::Trfc,
                    ready_at: bank.act_ready_at(),
                    issued_at: now,
                }));
            }
        }
        for b in 0..usize::from(self.config.banks) {
            self.banks[b]
                .refresh(now)
                .expect("validated above: all banks ready");
            self.stats.refreshes += 1;
            let hammer = &mut self.hammer[b];
            for row in self.refresh[b].refresh() {
                hammer.on_refresh(row);
            }
        }
        Ok(())
    }

    /// Performs the *bookkeeping* of one auto-refresh — advances the
    /// rowset cursor, clears the covered rows' disturbance, counts the
    /// REF — without occupying the bank FSM.
    ///
    /// Memory controllers may postpone up to eight REF commands (JEDEC
    /// DDR4) and pull them in later back-to-back; the timed command path
    /// models the in-window REFs, and this entry point lets a controller
    /// retire a *coalesced backlog* (e.g. after a defense-induced refresh
    /// storm) without serializing thousands of REF commands through the
    /// shared command bus model.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::NoSuchBank`] for an unknown bank.
    pub fn force_refresh(&mut self, bank: u16) -> Result<(), DramError> {
        let b = self.check_bank(bank)?;
        self.stats.refreshes += 1;
        let hammer = &mut self.hammer[b];
        for row in self.refresh[b].refresh() {
            hammer.on_refresh(row);
        }
        Ok(())
    }

    /// Chaos hook for the `BankStuck` device fault: wedges `bank`'s FSM
    /// so it reads busy until `until` (see [`Bank::wedge`]). The RCD
    /// pairs this with its own nack bookkeeping so the MC backs off
    /// instead of tripping timing violations.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::NoSuchBank`] for an unknown bank.
    pub fn wedge_bank(&mut self, bank: u16, until: Time) -> Result<(), DramError> {
        let b = self.check_bank(bank)?;
        self.banks[b].wedge(until);
        Ok(())
    }

    /// Chaos hook for the `RefreshDrop` device fault: performs the bank
    /// FSM and timing side of one per-bank REF (the command was accepted
    /// on the bus and the bank cycles for tRFC), but the covered rowset
    /// is *not* refreshed — the cursor skips it (see
    /// [`RefreshCursor::skip`]) and its disturbance keeps accumulating
    /// for a full extra window.
    ///
    /// # Errors
    ///
    /// Propagates the same validation as a real REF (bank precharged and
    /// ready); on error the device state is unchanged.
    pub fn drop_refresh(&mut self, bank: u16, now: Time) -> Result<(), DramError> {
        let b = self.check_bank(bank)?;
        self.banks[b].refresh(now)?;
        self.stats.refreshes += 1;
        self.stats.dropped_refreshes += 1;
        self.refresh[b].skip();
        Ok(())
    }

    /// Refreshes explicit logical rows on behalf of an MC-side defense
    /// (PARA/CBT/CRA refresh requests). Each refresh is an internal
    /// ACT+PRE pair with the same disturbance side effects as an ARR
    /// victim activation.
    ///
    /// Rows outside the bank are ignored (a defense may ask for a logical
    /// neighbor that does not exist).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::NoSuchBank`] for an unknown bank.
    pub fn refresh_rows_explicit(
        &mut self,
        bank: u16,
        rows: impl IntoIterator<Item = RowId>,
        now: Time,
    ) -> Result<u32, DramError> {
        let b = self.check_bank(bank)?;
        let mut n = 0;
        for row in rows {
            if row.0 < self.config.rows_per_bank {
                self.hammer[b].on_activate(row, &self.remap[b], now);
                self.stats.explicit_refresh_acts += 1;
                n += 1;
            }
        }
        self.sync_flips(b);
        Ok(n)
    }

    /// Writes `data` bytes into `(bank, row)` at byte `offset` — the
    /// data-path side of a WR burst.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range or the write overruns the row.
    pub fn write_data(&mut self, bank: u16, row: RowId, offset: usize, data: &[u8]) {
        self.data[usize::from(bank)].write(row, offset, data);
    }

    /// Reads `len` bytes from `(bank, row)` at byte `offset` — actual
    /// cell contents, row-hammer flips included.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range or the read overruns the row.
    pub fn read_data(&self, bank: u16, row: RowId, offset: usize, len: usize) -> Vec<u8> {
        self.data[usize::from(bank)].read(row, offset, len)
    }

    /// Compares `(bank, row)`'s cells against what software wrote.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn verify_row(&self, bank: u16, row: RowId) -> RowIntegrity {
        self.data[usize::from(bank)].verify(row)
    }

    /// Rows of `bank` whose cells diverge from what software wrote.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn corrupted_data_rows(&self, bank: u16) -> Vec<RowId> {
        self.data[usize::from(bank)].corrupted_rows()
    }

    /// What in-DRAM SEC-DED ECC would make of `(bank, row)`'s damage:
    /// `(corrected, uncorrectable, silent)` codeword counts.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn ecc_judgement(&self, bank: u16, row: RowId) -> (usize, usize, usize) {
        match self.verify_row(bank, row) {
            RowIntegrity::Clean => (0, 0, 0),
            RowIntegrity::Corrupted(bits) => crate::ecc::judge_flips(&bits),
        }
    }

    /// The open row of `bank`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn open_row(&self, bank: u16) -> Option<RowId> {
        self.banks[usize::from(bank)].open_row()
    }

    /// Whether `bank` is occupied by REF or ARR at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn is_bank_busy(&self, bank: u16, now: Time) -> bool {
        self.banks[usize::from(bank)].is_busy(now)
    }

    /// Earliest instant the next ACT to `bank` is legal (bank + rank
    /// constraints).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn act_ready_at(&self, bank: u16) -> Time {
        self.banks[usize::from(bank)]
            .act_ready_at()
            .max(self.act_window.ready_at(bank))
    }

    /// The *physical* victim rows an ARR on `(bank, aggressor)` would
    /// refresh.
    ///
    /// # Panics
    ///
    /// Panics if `bank` or `aggressor` is out of range.
    pub fn physical_neighbors(&self, bank: u16, aggressor: RowId) -> NeighborRows {
        self.remap[usize::from(bank)].physical_neighbors(aggressor)
    }

    /// Every row an ARR on `(bank, aggressor)` refreshes under the
    /// configured blast radius (distance 1 ..= `arr_radius`).
    ///
    /// # Panics
    ///
    /// Panics if `bank` or `aggressor` is out of range.
    pub fn arr_victim_rows(&self, bank: u16, aggressor: RowId) -> Vec<RowId> {
        let remap = &self.remap[usize::from(bank)];
        (1..=self.config.arr_radius)
            .flat_map(|d| remap.physical_neighbors_at(aggressor, d))
            .collect()
    }

    /// The logical (`±1`) neighbors of `aggressor` within the bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn logical_neighbors(&self, bank: u16, aggressor: RowId) -> NeighborRows {
        self.remap[usize::from(bank)].logical_neighbors(aggressor)
    }

    /// The remap table of `bank`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn remap_table(&self, bank: u16) -> &RemapTable {
        &self.remap[usize::from(bank)]
    }

    /// Current disturbance of `(bank, row)`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` or `row` is out of range.
    pub fn disturbance_of(&self, bank: u16, row: RowId) -> u64 {
        self.hammer[usize::from(bank)].disturbance_of(row)
    }

    /// All bit flips recorded so far, across banks.
    pub fn bit_flips(&self) -> Vec<(u16, BitFlip)> {
        let mut out = Vec::new();
        for (b, h) in self.hammer.iter().enumerate() {
            out.extend(h.flips().iter().map(|&f| (b as u16, f)));
        }
        out
    }

    /// Total number of bit flips recorded so far.
    pub fn bit_flip_count(&self) -> usize {
        self.hammer.iter().map(|h| h.flips().len()).sum()
    }

    /// The highest disturbance any row in any bank has ever reached
    /// (monotone watermark; survives refreshes). The red-team search's
    /// attack-margin probe.
    pub fn peak_disturbance(&self) -> u64 {
        self.hammer
            .iter()
            .map(|h| h.peak_disturbance())
            .max()
            .unwrap_or(0)
    }
}

impl Snapshot for DramRank {
    fn save_state(&self, w: &mut SnapshotWriter) {
        // Remap tables are fully determined by the config and need no
        // bytes; everything else is run-time state.
        w.put_usize(self.banks.len());
        for bank in &self.banks {
            bank.save_state(w);
        }
        self.act_window.save_state(w);
        for h in &self.hammer {
            h.save_state(w);
        }
        for c in &self.refresh {
            c.save_state(w);
        }
        for d in &self.data {
            d.save_state(w);
        }
        self.stats.save_state(w);
        w.put_u64(self.flip_nonce);
        w.put_usize(self.flips_applied);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let banks = r.take_usize()?;
        if banks != self.banks.len() {
            return Err(SnapshotError::StateMismatch(format!(
                "rank has {} banks, snapshot has {banks}",
                self.banks.len()
            )));
        }
        for bank in &mut self.banks {
            bank.load_state(r)?;
        }
        self.act_window.load_state(r)?;
        for h in &mut self.hammer {
            h.load_state(r)?;
        }
        for c in &mut self.refresh {
            c.load_state(r)?;
        }
        for d in &mut self.data {
            d.load_state(r)?;
        }
        self.stats.load_state(r)?;
        self.flip_nonce = r.take_u64()?;
        self.flips_applied = r.take_usize()?;
        // Derived: every recorded flip had been applied by save time, so
        // each bank's seen count is just its restored event-list length.
        for b in 0..self.hammer.len() {
            self.flips_seen[b] = self.hammer[b].flips().len();
        }
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_usize(self.banks.len());
        for bank in &self.banks {
            bank.digest_state(d);
        }
        self.act_window.digest_state(d);
        for h in &self.hammer {
            h.digest_state(d);
        }
        for c in &self.refresh {
            c.digest_state(d);
        }
        for data in &self.data {
            data.digest_state(d);
        }
        self.stats.digest_state(d);
        d.write_u64(self.flip_nonce);
        d.write_usize(self.flips_applied);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twice_common::Span;

    fn t(ns: u64) -> Time {
        Time::ZERO + Span::from_ns(ns)
    }

    #[test]
    fn activate_checks_rank_and_bank_constraints() {
        let mut r = DramRank::new(RankConfig::for_test(4, 64));
        r.issue(
            DramCommand::Activate {
                bank: 0,
                row: RowId(1),
            },
            t(0),
        )
        .unwrap();
        // Bank 1 shares bank group 0: tRRD_L (6ns) applies.
        let e = r
            .issue(
                DramCommand::Activate {
                    bank: 1,
                    row: RowId(1),
                },
                t(5),
            )
            .unwrap_err();
        assert!(matches!(e, DramError::Timing(_)));
        r.issue(
            DramCommand::Activate {
                bank: 1,
                row: RowId(1),
            },
            t(6),
        )
        .unwrap();
        assert_eq!(r.stats().acts, 2);
    }

    #[test]
    fn rejects_unknown_bank_and_row() {
        let mut r = DramRank::new(RankConfig::for_test(2, 64));
        assert!(matches!(
            r.issue(
                DramCommand::Activate {
                    bank: 2,
                    row: RowId(0)
                },
                t(0)
            ),
            Err(DramError::NoSuchBank { bank: 2 })
        ));
        assert!(matches!(
            r.issue(
                DramCommand::Activate {
                    bank: 0,
                    row: RowId(64)
                },
                t(0)
            ),
            Err(DramError::NoSuchRow { .. })
        ));
    }

    #[test]
    fn failed_activate_leaves_state_unchanged() {
        let mut r = DramRank::new(RankConfig::for_test(2, 64));
        r.issue(
            DramCommand::Activate {
                bank: 0,
                row: RowId(1),
            },
            t(0),
        )
        .unwrap();
        // Rank-level failure must not record the ACT in the window.
        let _ = r.issue(
            DramCommand::Activate {
                bank: 1,
                row: RowId(2),
            },
            t(3),
        );
        // tRRD_L from the *first* ACT only: legal at t=6.
        r.issue(
            DramCommand::Activate {
                bank: 1,
                row: RowId(2),
            },
            t(6),
        )
        .unwrap();
    }

    #[test]
    fn hammering_without_refresh_flips_victims() {
        let cfg = RankConfig::for_test(1, 64).with_n_th(20);
        let mut r = DramRank::new(cfg);
        let mut now = Time::ZERO;
        for _ in 0..20 {
            r.issue(
                DramCommand::Activate {
                    bank: 0,
                    row: RowId(8),
                },
                now,
            )
            .unwrap();
            now += Span::from_ns(31);
            r.issue(DramCommand::Precharge { bank: 0 }, now).unwrap();
            now += Span::from_ns(14);
        }
        assert_eq!(r.bit_flip_count(), 2);
        let victims: Vec<RowId> = r.bit_flips().iter().map(|(_, f)| f.victim).collect();
        assert!(victims.contains(&RowId(7)) && victims.contains(&RowId(9)));
    }

    #[test]
    fn arr_refreshes_victims_and_blocks_bank() {
        let cfg = RankConfig::for_test(1, 64).with_n_th(1000);
        let mut r = DramRank::new(cfg);
        r.issue(
            DramCommand::Activate {
                bank: 0,
                row: RowId(8),
            },
            t(0),
        )
        .unwrap();
        // Hammer up some disturbance on the neighbors first.
        assert_eq!(r.disturbance_of(0, RowId(7)), 1);
        r.issue(
            DramCommand::AdjacentRowRefresh {
                bank: 0,
                row: RowId(8),
            },
            t(31),
        )
        .unwrap();
        // Victims restored; their own neighbors disturbed (row 8 got +1+1
        // from the two victim activations, but activation also clears...).
        assert_eq!(r.disturbance_of(0, RowId(7)), 0);
        assert_eq!(r.disturbance_of(0, RowId(9)), 0);
        assert_eq!(r.stats().arrs, 1);
        assert_eq!(r.stats().arr_victim_acts, 2);
        assert!(r.is_bank_busy(0, t(100)));
        assert!(!r.is_bank_busy(0, t(31 + 104)));
    }

    #[test]
    fn arr_requires_matching_open_row() {
        let mut r = DramRank::new(RankConfig::for_test(1, 64));
        r.issue(
            DramCommand::Activate {
                bank: 0,
                row: RowId(8),
            },
            t(0),
        )
        .unwrap();
        let e = r
            .issue(
                DramCommand::AdjacentRowRefresh {
                    bank: 0,
                    row: RowId(9),
                },
                t(31),
            )
            .unwrap_err();
        assert!(matches!(e, DramError::BadState { .. }));
    }

    #[test]
    fn auto_refresh_clears_disturbance_of_its_rowset() {
        // 64 rows, fast ratios are irrelevant; DDR4 has 8192 sets so each
        // REF covers exactly one row here (64 < 8192).
        let cfg = RankConfig::for_test(1, 64).with_n_th(1000);
        let mut r = DramRank::new(cfg);
        r.issue(
            DramCommand::Activate {
                bank: 0,
                row: RowId(1),
            },
            t(0),
        )
        .unwrap();
        assert_eq!(r.disturbance_of(0, RowId(0)), 1);
        r.issue(DramCommand::Precharge { bank: 0 }, t(31)).unwrap();
        // First REF covers row 0.
        r.issue(DramCommand::Refresh { bank: 0 }, t(45)).unwrap();
        assert_eq!(r.disturbance_of(0, RowId(0)), 0);
        assert_eq!(r.stats().refreshes, 1);
    }

    #[test]
    fn explicit_refresh_restores_rows_and_counts_acts() {
        let cfg = RankConfig::for_test(1, 64).with_n_th(1000);
        let mut r = DramRank::new(cfg);
        r.issue(
            DramCommand::Activate {
                bank: 0,
                row: RowId(8),
            },
            t(0),
        )
        .unwrap();
        let n = r
            .refresh_rows_explicit(0, [RowId(7), RowId(9), RowId(999)], t(31))
            .unwrap();
        assert_eq!(n, 2, "out-of-range rows are ignored");
        assert_eq!(r.stats().explicit_refresh_acts, 2);
        assert_eq!(r.disturbance_of(0, RowId(7)), 0);
    }

    #[test]
    fn hammer_flips_corrupt_real_data() {
        let cfg = RankConfig::for_test(1, 64).with_n_th(20);
        let mut r = DramRank::new(cfg);
        // Software writes a payload to the victim-to-be.
        r.write_data(0, RowId(7), 0, &[0xAB; 64]);
        assert_eq!(r.verify_row(0, RowId(7)), RowIntegrity::Clean);
        let mut now = Time::ZERO;
        for _ in 0..20 {
            r.issue(
                DramCommand::Activate {
                    bank: 0,
                    row: RowId(8),
                },
                now,
            )
            .unwrap();
            now += Span::from_ns(31);
            r.issue(DramCommand::Precharge { bank: 0 }, now).unwrap();
            now += Span::from_ns(14);
        }
        // Both neighbors flipped in the fault model AND in the bytes.
        assert_eq!(r.bit_flip_count(), 2);
        assert!(r.verify_row(0, RowId(7)).is_corrupted());
        assert!(r.verify_row(0, RowId(9)).is_corrupted());
        let corrupted = r.corrupted_data_rows(0);
        assert_eq!(corrupted, vec![RowId(7), RowId(9)]);
        // A read actually returns damaged bytes somewhere in the row.
        let stored = r.read_data(0, RowId(7), 0, 8_192);
        let expected_prefix = vec![0xAB; 64];
        let prefix = r.read_data(0, RowId(7), 0, 64);
        let _ = (stored, expected_prefix, prefix); // values depend on flip position
                                                   // ECC: a single flipped bit per row is correctable.
        assert_eq!(r.ecc_judgement(0, RowId(7)), (1, 0, 0));
    }

    #[test]
    fn overshoot_hammering_defeats_secded_ecc() {
        // With overdrive flips every N_th/4 of excess disturbance, heavy
        // hammering produces multi-bit damage; some codewords may become
        // uncorrectable once two flips land in one 64-bit word.
        let cfg = RankConfig::for_test(1, 64).with_n_th(20).with_overshoot(5);
        let mut r = DramRank::new(cfg);
        let mut now = Time::ZERO;
        for _ in 0..1000 {
            r.issue(
                DramCommand::Activate {
                    bank: 0,
                    row: RowId(8),
                },
                now,
            )
            .unwrap();
            now += Span::from_ns(31);
            r.issue(DramCommand::Precharge { bank: 0 }, now).unwrap();
            now += Span::from_ns(14);
        }
        // Overdrive is capped at 64 flips per victim per window.
        let flips_on_7 = r
            .bit_flips()
            .iter()
            .filter(|(_, f)| f.victim == RowId(7))
            .count();
        assert_eq!(flips_on_7, 64);
        // Deterministic seeds: across the two victims, 128 flips over
        // 2048 words must produce at least one same-word collision that
        // SEC-DED cannot correct.
        let j7 = r.ecc_judgement(0, RowId(7));
        let j9 = r.ecc_judgement(0, RowId(9));
        assert!(
            j7.1 + j7.2 + j9.1 + j9.2 > 0,
            "multi-bit damage must defeat SEC-DED somewhere: {j7:?} / {j9:?}"
        );
        assert!(j7.0 + j9.0 > 0, "lone flips are still corrected");
    }

    #[test]
    fn energy_accounts_all_activation_sources() {
        let cfg = RankConfig::for_test(1, 64);
        let mut r = DramRank::new(cfg);
        r.issue(
            DramCommand::Activate {
                bank: 0,
                row: RowId(8),
            },
            t(0),
        )
        .unwrap();
        r.issue(
            DramCommand::AdjacentRowRefresh {
                bank: 0,
                row: RowId(8),
            },
            t(31),
        )
        .unwrap();
        let m = DramEnergyModel::ddr4();
        // 1 MC ACT + 2 ARR victim ACTs.
        assert_eq!(r.energy_pj(&m), 3 * m.act_pre_pj);
    }
}
