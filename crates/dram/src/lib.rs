#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

//! A DDR4 DRAM device simulator with a row-hammer fault model.
//!
//! This crate is the substrate the TWiCe paper assumes: a main-memory
//! back-end that enforces JEDEC timing (so the ACT-rate bounds TWiCe's
//! proof relies on are physically real), models in-device **row sparing**
//! (so logical and physical adjacency differ, motivating the ARR command),
//! injects **row-hammer bit flips** when a victim's neighbors are activated
//! beyond the disturbance threshold, and implements the paper's proposed
//! **RCD extension**: the Adjacent Row Refresh command and the nack
//! feedback path to the memory controller (§5.2).
//!
//! Module map:
//!
//! * [`cmd`] — the DRAM command vocabulary (ACT/PRE/RD/WR/REF/ARR).
//! * [`bank`] — per-bank state machine and timing enforcement.
//! * [`rank`] — rank-level tRRD/tFAW constraints.
//! * [`remap`] — row sparing and physical-adjacency resolution.
//! * [`hammer`] — the disturbance/bit-flip fault model.
//! * [`refresh`] — rowset auto-refresh bookkeeping.
//! * [`device`] — [`device::DramRank`], the aggregate device model.
//! * [`rcd`] — the register clock driver hosting a defense, issuing ARR,
//!   and nacking conflicting commands.
//! * [`energy`] — the DDR4 energy model of Table 3.
//! * [`stats`] — command/energy accounting.
//!
//! # Examples
//!
//! ```
//! use twice_common::{Time, RowId};
//! use twice_dram::device::{DramRank, RankConfig};
//! use twice_dram::cmd::DramCommand;
//!
//! let mut rank = DramRank::new(RankConfig::for_test(1, 64));
//! let t0 = Time::ZERO;
//! rank.issue(DramCommand::Activate { bank: 0, row: RowId(3) }, t0).unwrap();
//! // A second ACT to the same bank before tRC is a timing violation.
//! let too_soon = t0 + twice_common::Span::from_ns(1);
//! assert!(rank
//!     .issue(DramCommand::Activate { bank: 0, row: RowId(4) }, too_soon)
//!     .is_err());
//! ```

pub mod bank;
pub mod cmd;
pub mod data;
pub mod device;
pub mod ecc;
pub mod energy;
pub mod error;
pub mod hammer;
pub mod rank;
pub mod rcd;
pub mod refresh;
pub mod remap;
pub mod stats;

pub use cmd::DramCommand;
pub use data::RowIntegrity;
pub use device::{DramRank, RankConfig};
pub use ecc::EccOutcome;
pub use error::{DramError, TimingViolation};
pub use hammer::BitFlip;
pub use rcd::{NackReason, Rcd, RcdOutcome};
