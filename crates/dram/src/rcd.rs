//! The register clock driver (RCD) hosting a row-hammer defense.
//!
//! The paper places the TWiCe table in the RCD (§5.1): it sees every
//! command the memory controller drives, keeps one counter table per bank,
//! converts the PRE of a detected aggressor into an **ARR**, and — because
//! the MC is the bus master and knows nothing about device-internal ARRs
//! — answers with a **nack** whenever a command would conflict with an
//! ARR in progress (§5.2). The MC then resends the nacked command.
//!
//! Two blocking rules from the paper are implemented:
//!
//! 1. any command to a bank performing an ARR is nacked, and
//! 2. any ACT to the *rank* containing that bank is nacked (so the MC's
//!    tFAW accounting cannot be violated by the hidden victim ACTs).

use crate::bank::Bank;
use crate::cmd::DramCommand;
use crate::device::DramRank;
use crate::error::DramError;
use twice_common::fault::{FaultInjector, FaultKind, FaultPlan};
use twice_common::snapshot::{
    Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, StateDigest,
};
use twice_common::{BankId, DefenseResponse, Detection, RowHammerDefense, RowId, Time};

/// Why the RCD nacked a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NackReason {
    /// The protocol reason (§5.2): the command conflicts with an ARR in
    /// progress on the target bank or rank. Resending at `retry_at` is
    /// guaranteed to make progress.
    ArrInProgress,
    /// A chaos fault plan injected a spurious nack
    /// ([`FaultKind::SpuriousNack`]); the protocol would have accepted
    /// the command. Carries no progress guarantee — under a high
    /// injection rate only a *bounded* retry loop terminates.
    Injected,
}

/// The result of presenting one command to the RCD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RcdOutcome {
    /// The command was forwarded to the devices and accepted.
    Accepted,
    /// The command was not accepted; the MC must resend no earlier than
    /// `retry_at`.
    Nack {
        /// Earliest instant at which a resend can succeed.
        retry_at: Time,
        /// Whether this is a real protocol nack or an injected one.
        reason: NackReason,
    },
    /// The command was a PRE to a detected aggressor and was converted
    /// into an ARR refreshing `victims` physical neighbors.
    ArrPerformed {
        /// Number of victim rows refreshed (1 at a physical edge, else 2).
        victims: u32,
    },
}

/// An RCD for one DIMM: forwards commands to its ranks, drives the
/// defense, and implements the ARR/nack protocol.
pub struct Rcd {
    ranks: Vec<DramRank>,
    defense: Box<dyn RowHammerDefense>,
    /// Aggressors awaiting their PRE→ARR conversion, per (rank, bank).
    pending_arr: Vec<Vec<Option<RowId>>>,
    /// Until when each bank is occupied by an ARR, per (rank, bank).
    bank_arr_until: Vec<Vec<Time>>,
    /// Until when each rank blocks ACTs because of an ARR in progress.
    arr_block_until: Vec<Time>,
    /// Global bank-id base for `(rank 0, bank 0)` of this DIMM.
    bank_base: u32,
    detections: Vec<Detection>,
    nacks: u64,
    /// Fail-safe neighbor refreshes performed for rows the defense
    /// reported corrupted during a refresh-window scrub.
    scrub_arrs: u64,
    /// Chaos-testing hook: injects bus/protocol faults (spurious nacks,
    /// dropped or duplicated ARR conversions) per a fault plan.
    injector: FaultInjector,
}

impl std::fmt::Debug for Rcd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rcd")
            .field("ranks", &self.ranks.len())
            .field("defense", &self.defense.name())
            .field("nacks", &self.nacks)
            .field("detections", &self.detections.len())
            .finish()
    }
}

impl Rcd {
    /// Creates an RCD over `ranks`, hosting `defense`. Global bank ids for
    /// the defense are `bank_base + rank_index * banks_per_rank + bank`.
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is empty or ranks have differing bank counts.
    pub fn new(ranks: Vec<DramRank>, defense: Box<dyn RowHammerDefense>, bank_base: u32) -> Rcd {
        assert!(!ranks.is_empty(), "an RCD needs at least one rank");
        let banks = ranks[0].config().banks;
        assert!(
            ranks.iter().all(|r| r.config().banks == banks),
            "all ranks behind an RCD must have the same bank count"
        );
        let pending_arr = ranks
            .iter()
            .map(|r| vec![None; usize::from(r.config().banks)])
            .collect();
        let bank_arr_until = ranks
            .iter()
            .map(|r| vec![Time::ZERO; usize::from(r.config().banks)])
            .collect();
        Rcd {
            arr_block_until: vec![Time::ZERO; ranks.len()],
            pending_arr,
            bank_arr_until,
            ranks,
            defense,
            bank_base,
            detections: Vec::new(),
            nacks: 0,
            scrub_arrs: 0,
            injector: FaultInjector::inert(),
        }
    }

    /// Arms the RCD's bus/protocol fault injector with `plan`, deriving
    /// its stream with `salt` (use a distinct salt per RCD so channels do
    /// not alias).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: &FaultPlan, salt: u64) -> Rcd {
        self.injector = plan.injector(salt);
        self
    }

    /// Books one nack in the RCD and rank statistics.
    fn nack(&mut self, rank: usize, retry_at: Time, reason: NackReason) -> RcdOutcome {
        self.nacks += 1;
        self.ranks[rank].record_nack(reason == NackReason::Injected);
        twice_obs::bump(match reason {
            NackReason::ArrInProgress => twice_obs::Ctr::DramNacksArr,
            NackReason::Injected => twice_obs::Ctr::DramNacksInjected,
        });
        RcdOutcome::Nack { retry_at, reason }
    }

    /// Applies a defense's refresh-window response. By the
    /// [`RowHammerDefense::on_auto_refresh`] contract, every row named in
    /// `arr` / `refresh_rows` is a *corrupted aggressor*: its true
    /// activation count is unknown, so its physical neighbors are
    /// refreshed during the window exactly as a real ARR would.
    fn apply_refresh_response(
        &mut self,
        rank: usize,
        bank: u16,
        response: DefenseResponse,
        now: Time,
    ) -> Result<(), DramError> {
        if let Some(d) = response.detection {
            self.detections.push(d);
        }
        for aggressor in response.arr.into_iter().chain(response.refresh_rows) {
            let victims = self.ranks[rank].arr_victim_rows(bank, aggressor);
            self.ranks[rank].refresh_rows_explicit(bank, victims, now)?;
            self.scrub_arrs += 1;
        }
        Ok(())
    }

    /// The global [`BankId`] of `(rank, bank)` behind this RCD.
    #[inline]
    pub fn bank_id_of(&self, rank: usize, bank: u16) -> BankId {
        let banks = u32::from(self.ranks[rank].config().banks);
        BankId(self.bank_base + rank as u32 * banks + u32::from(bank))
    }

    /// Presents one command for `rank` at `now`.
    ///
    /// # Errors
    ///
    /// Propagates device-model errors (unknown bank/row, bad state, timing
    /// violations). A nack is *not* an error — it is a legal protocol
    /// outcome reported via [`RcdOutcome::Nack`].
    pub fn issue(
        &mut self,
        rank: usize,
        cmd: DramCommand,
        now: Time,
    ) -> Result<RcdOutcome, DramError> {
        assert!(rank < self.ranks.len(), "rank out of range");
        let bank = cmd.bank();

        // Nack rule 1: the target bank is mid-ARR. (REF busy-ness is the
        // MC's own scheduling responsibility and is not nacked.)
        let bank_busy_until = self.bank_arr_until[rank][usize::from(bank)];
        if bank_busy_until > now {
            return Ok(self.nack(rank, bank_busy_until, NackReason::ArrInProgress));
        }
        // Nack rule 2: ACTs to a rank with any ARR in progress.
        if cmd.is_activate() && self.arr_block_until[rank] > now {
            let until = self.arr_block_until[rank];
            return Ok(self.nack(rank, until, NackReason::ArrInProgress));
        }
        // Chaos: a spurious nack of a command the protocol would accept.
        // `retry_at` is the next bus slot — the nack carries no real
        // wait-for condition, so resending immediately is legal (and may
        // be nacked again; the MC's retry budget bounds that).
        if self.injector.fire(FaultKind::SpuriousNack) {
            let retry_at = now + self.ranks[rank].config().timings.clock;
            return Ok(self.nack(rank, retry_at, NackReason::Injected));
        }

        match cmd {
            DramCommand::Activate { bank, row } => {
                self.ranks[rank].issue(cmd, now)?;
                let gbank = self.bank_id_of(rank, bank);
                let response = self.defense.on_activate(gbank, row, now);
                if let Some(d) = response.detection {
                    self.detections.push(d);
                }
                if let Some(aggressor) = response.arr {
                    self.pending_arr[rank][usize::from(bank)] = Some(aggressor);
                }
                if !response.refresh_rows.is_empty() {
                    // An RCD-hosted defense normally uses ARR, but honor
                    // explicit requests for completeness.
                    self.ranks[rank].refresh_rows_explicit(
                        bank,
                        response.refresh_rows.iter().copied(),
                        now,
                    )?;
                }
                Ok(RcdOutcome::Accepted)
            }
            DramCommand::Precharge { bank } => {
                // Peek (do not consume) the pending ARR: a timing-rejected
                // attempt will be *resent* by the MC and must still
                // convert then.
                let pending = self.pending_arr[rank][usize::from(bank)];
                match pending {
                    Some(aggressor) if self.ranks[rank].open_row(bank) == Some(aggressor) => {
                        // Chaos: the PRE→ARR conversion is dropped on the
                        // bus. A plain precharge goes through and the
                        // victims stay unrefreshed this round.
                        if self.injector.fire(FaultKind::ArrDrop) {
                            self.ranks[rank].issue(cmd, now)?;
                            self.pending_arr[rank][usize::from(bank)] = None;
                            return Ok(RcdOutcome::Accepted);
                        }
                        let victims =
                            self.ranks[rank].arr_victim_rows(bank, aggressor).len() as u32;
                        self.ranks[rank].issue(
                            DramCommand::AdjacentRowRefresh {
                                bank,
                                row: aggressor,
                            },
                            now,
                        )?;
                        self.pending_arr[rank][usize::from(bank)] = None;
                        let mut until = now
                            + Bank::arr_duration_for(&self.ranks[rank].config().timings, victims);
                        // Chaos: the conversion is duplicated. Harmless for
                        // safety (victims refreshed twice) but costs a
                        // second round of internal ACTs and bank time.
                        if self.injector.fire(FaultKind::ArrDuplicate) {
                            let rows = self.ranks[rank].arr_victim_rows(bank, aggressor);
                            self.ranks[rank].refresh_rows_explicit(bank, rows, now)?;
                            until +=
                                Bank::arr_duration_for(&self.ranks[rank].config().timings, victims);
                        }
                        self.bank_arr_until[rank][usize::from(bank)] = until;
                        self.arr_block_until[rank] = self.arr_block_until[rank].max(until);
                        Ok(RcdOutcome::ArrPerformed { victims })
                    }
                    _ => {
                        self.ranks[rank].issue(cmd, now)?;
                        // A stale pending (aggressor no longer open) is
                        // dropped once the bank actually precharges.
                        self.pending_arr[rank][usize::from(bank)] = None;
                        Ok(RcdOutcome::Accepted)
                    }
                }
            }
            DramCommand::Refresh { bank } => {
                let _refresh_span = twice_obs::span(twice_obs::SpanId::DramRefresh);
                // Chaos: the refresh window is dropped *inside* the
                // device — the command is accepted on the bus and the
                // bank cycles for tRFC, but the covered rowset stays
                // unrefreshed. The defense still observes the window
                // (it watches the bus), so its pruning assumptions are
                // now wrong — exactly the hazard this fault probes.
                if self.injector.fire(FaultKind::RefreshDrop) {
                    self.ranks[rank].drop_refresh(bank, now)?;
                } else {
                    self.ranks[rank].issue(cmd, now)?;
                }
                let gbank = self.bank_id_of(rank, bank);
                let response = self.defense.on_auto_refresh(gbank, now);
                self.apply_refresh_response(rank, bank, response, now)?;
                // Chaos: the bank FSM wedges after the refresh and
                // stays busy for several tRFC windows. The RCD books
                // the outage in its nack window so the MC is told a
                // truthful retry_at instead of tripping a timing
                // violation; the bounded retry loop absorbs the rest.
                if self.injector.fire(FaultKind::BankStuck) {
                    let t_rfc = self.ranks[rank].config().timings.t_rfc;
                    let until = now + t_rfc * (2 + self.injector.draw(7));
                    self.ranks[rank]
                        .wedge_bank(bank, until)
                        .expect("bank verified by the REF above");
                    let slot = &mut self.bank_arr_until[rank][usize::from(bank)];
                    *slot = (*slot).max(until);
                }
                Ok(RcdOutcome::Accepted)
            }
            _ => {
                self.ranks[rank].issue(cmd, now)?;
                Ok(RcdOutcome::Accepted)
            }
        }
    }

    /// Performs an all-bank refresh on `rank` and runs the defense's
    /// pruning hook for every bank.
    ///
    /// # Errors
    ///
    /// Propagates the device's validation (every bank precharged and
    /// ready); no defense hooks run on failure.
    pub fn refresh_all(&mut self, rank: usize, now: Time) -> Result<(), DramError> {
        let _refresh_span = twice_obs::span(twice_obs::SpanId::DramRefresh);
        self.ranks[rank].refresh_all(now)?;
        for bank in 0..self.ranks[rank].config().banks {
            let gbank = self.bank_id_of(rank, bank);
            let response = self.defense.on_auto_refresh(gbank, now);
            self.apply_refresh_response(rank, bank, response, now)?;
        }
        Ok(())
    }

    /// Retires one *backlogged* auto-refresh for `(rank, bank)`:
    /// bookkeeping-only on the device (see
    /// [`DramRank::force_refresh`]) plus the defense's pruning hook.
    ///
    /// # Panics
    ///
    /// Panics if `rank` or `bank` is out of range.
    pub fn force_refresh(&mut self, rank: usize, bank: u16, now: Time) {
        self.ranks[rank]
            .force_refresh(bank)
            .expect("bank verified by caller");
        let gbank = self.bank_id_of(rank, bank);
        let response = self.defense.on_auto_refresh(gbank, now);
        self.apply_refresh_response(rank, bank, response, now)
            .expect("bank verified by caller");
    }

    /// The hosted defense.
    pub fn defense(&self) -> &dyn RowHammerDefense {
        self.defense.as_ref()
    }

    /// The ranks behind this RCD.
    pub fn ranks(&self) -> &[DramRank] {
        &self.ranks
    }

    /// Mutable access to a rank (for direct fault-model inspection in
    /// tests and experiments).
    pub fn rank_mut(&mut self, rank: usize) -> &mut DramRank {
        &mut self.ranks[rank]
    }

    /// Attack detections recorded by the defense.
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// Commands nacked so far (protocol and injected alike; the per-rank
    /// [`crate::stats::DramStats`] split the two).
    pub fn nacks(&self) -> u64 {
        self.nacks
    }

    /// The RCD's fault-injection stream (counts of opportunities and
    /// injected faults per kind).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Fail-safe neighbor refreshes performed for scrub-detected
    /// corrupted entries (see [`RowHammerDefense::corruption_events`]).
    pub fn scrub_arrs(&self) -> u64 {
        self.scrub_arrs
    }

    /// Whether an ARR is pending or in progress anywhere on `rank`.
    pub fn rank_blocked_until(&self, rank: usize) -> Time {
        self.arr_block_until[rank]
    }
}

impl Snapshot for Rcd {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.ranks.len());
        for rank in &self.ranks {
            rank.save_state(w);
        }
        self.defense.save_state(w);
        for per_rank in &self.pending_arr {
            w.put_usize(per_rank.len());
            for pending in per_rank {
                w.put_bool(pending.is_some());
                w.put_u32(pending.map_or(0, |r| r.0));
            }
        }
        for per_rank in &self.bank_arr_until {
            for &t in per_rank {
                w.put_u64(t.as_ps());
            }
        }
        for &t in &self.arr_block_until {
            w.put_u64(t.as_ps());
        }
        w.put_usize(self.detections.len());
        for det in &self.detections {
            w.put_u32(det.bank.0);
            w.put_u32(det.row.0);
            w.put_u64(det.at.as_ps());
            w.put_u64(det.act_count);
        }
        w.put_u64(self.nacks);
        w.put_u64(self.scrub_arrs);
        self.injector.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let ranks = r.take_usize()?;
        if ranks != self.ranks.len() {
            return Err(SnapshotError::StateMismatch(format!(
                "RCD has {} ranks, snapshot has {ranks}",
                self.ranks.len()
            )));
        }
        for rank in &mut self.ranks {
            rank.load_state(r)?;
        }
        self.defense.load_state(r)?;
        for per_rank in &mut self.pending_arr {
            let banks = r.take_usize()?;
            if banks != per_rank.len() {
                return Err(SnapshotError::StateMismatch(format!(
                    "RCD rank has {} banks, snapshot has {banks}",
                    per_rank.len()
                )));
            }
            for pending in per_rank.iter_mut() {
                let some = r.take_bool()?;
                let row = r.take_u32()?;
                *pending = some.then_some(RowId(row));
            }
        }
        for per_rank in &mut self.bank_arr_until {
            for t in per_rank.iter_mut() {
                *t = Time::from_ps(r.take_u64()?);
            }
        }
        for t in &mut self.arr_block_until {
            *t = Time::from_ps(r.take_u64()?);
        }
        let n = r.take_usize()?;
        self.detections.clear();
        for _ in 0..n {
            let bank = BankId(r.take_u32()?);
            let row = RowId(r.take_u32()?);
            let at = Time::from_ps(r.take_u64()?);
            let act_count = r.take_u64()?;
            self.detections.push(Detection {
                bank,
                row,
                at,
                act_count,
            });
        }
        self.nacks = r.take_u64()?;
        self.scrub_arrs = r.take_u64()?;
        self.injector.load_state(r)?;
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_usize(self.ranks.len());
        for rank in &self.ranks {
            rank.digest_state(d);
        }
        self.defense.digest_state(d);
        for per_rank in &self.pending_arr {
            for pending in per_rank {
                d.write_bool(pending.is_some());
                d.write_u32(pending.map_or(0, |r| r.0));
            }
        }
        for per_rank in &self.bank_arr_until {
            for &t in per_rank {
                d.write_u64(t.as_ps());
            }
        }
        for &t in &self.arr_block_until {
            d.write_u64(t.as_ps());
        }
        d.write_usize(self.detections.len());
        for det in &self.detections {
            d.write_u32(det.bank.0);
            d.write_u32(det.row.0);
            d.write_u64(det.at.as_ps());
            d.write_u64(det.act_count);
        }
        d.write_u64(self.nacks);
        d.write_u64(self.scrub_arrs);
        self.injector.digest_state(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::RankConfig;
    use twice_common::{DefenseResponse, Span};

    /// A test defense that requests an ARR on every `trigger_at`-th ACT to
    /// any row.
    struct EveryNth {
        n: u64,
        count: u64,
    }

    impl RowHammerDefense for EveryNth {
        fn name(&self) -> &str {
            "every-nth"
        }
        fn on_activate(&mut self, bank: BankId, row: RowId, now: Time) -> DefenseResponse {
            self.count += 1;
            if self.count.is_multiple_of(self.n) {
                DefenseResponse {
                    detection: Some(Detection {
                        bank,
                        row,
                        at: now,
                        act_count: self.count,
                    }),
                    ..DefenseResponse::arr(row)
                }
            } else {
                DefenseResponse::none()
            }
        }
    }

    fn t(ns: u64) -> Time {
        Time::ZERO + Span::from_ns(ns)
    }

    fn rcd(n: u64) -> Rcd {
        let rank = DramRank::new(RankConfig::for_test(2, 64).with_n_th(1_000_000));
        Rcd::new(vec![rank], Box::new(EveryNth { n, count: 0 }), 0)
    }

    #[test]
    fn pre_of_detected_aggressor_becomes_arr() {
        let mut r = rcd(1); // every ACT triggers
        assert_eq!(
            r.issue(
                0,
                DramCommand::Activate {
                    bank: 0,
                    row: RowId(8)
                },
                t(0)
            )
            .unwrap(),
            RcdOutcome::Accepted
        );
        let out = r
            .issue(0, DramCommand::Precharge { bank: 0 }, t(31))
            .unwrap();
        assert_eq!(out, RcdOutcome::ArrPerformed { victims: 2 });
        assert_eq!(r.ranks()[0].stats().arrs, 1);
        assert_eq!(r.detections().len(), 1);
    }

    #[test]
    fn normal_pre_passes_through() {
        let mut r = rcd(1000); // never triggers in this test
        r.issue(
            0,
            DramCommand::Activate {
                bank: 0,
                row: RowId(8),
            },
            t(0),
        )
        .unwrap();
        let out = r
            .issue(0, DramCommand::Precharge { bank: 0 }, t(31))
            .unwrap();
        assert_eq!(out, RcdOutcome::Accepted);
        assert_eq!(r.ranks()[0].stats().precharges, 1);
        assert_eq!(r.ranks()[0].stats().arrs, 0);
    }

    #[test]
    fn acts_to_rank_are_nacked_during_arr() {
        let mut r = rcd(1);
        r.issue(
            0,
            DramCommand::Activate {
                bank: 0,
                row: RowId(8),
            },
            t(0),
        )
        .unwrap();
        r.issue(0, DramCommand::Precharge { bank: 0 }, t(31))
            .unwrap();
        // ARR busy until 31 + 104 = 135 ns; an ACT to *another* bank nacks.
        let out = r
            .issue(
                0,
                DramCommand::Activate {
                    bank: 1,
                    row: RowId(3),
                },
                t(60),
            )
            .unwrap();
        assert_eq!(
            out,
            RcdOutcome::Nack {
                retry_at: t(135),
                reason: NackReason::ArrInProgress
            }
        );
        assert_eq!(r.nacks(), 1);
        // After the ARR completes, the resend succeeds.
        assert_eq!(
            r.issue(
                0,
                DramCommand::Activate {
                    bank: 1,
                    row: RowId(3)
                },
                t(135)
            )
            .unwrap(),
            RcdOutcome::Accepted
        );
    }

    #[test]
    fn commands_to_the_arr_bank_are_nacked() {
        let mut r = rcd(1);
        r.issue(
            0,
            DramCommand::Activate {
                bank: 0,
                row: RowId(8),
            },
            t(0),
        )
        .unwrap();
        r.issue(0, DramCommand::Precharge { bank: 0 }, t(31))
            .unwrap();
        let out = r
            .issue(0, DramCommand::Precharge { bank: 0 }, t(60))
            .unwrap();
        assert!(matches!(out, RcdOutcome::Nack { .. }));
    }

    #[test]
    fn arr_for_stale_aggressor_is_dropped() {
        // Defense triggers on ACT #1; but if the bank was re-opened with a
        // different row before PRE (cannot happen in a legal stream without
        // an intervening PRE, so simulate via trigger on first ACT of row 8,
        // then PRE, ACT row 9, PRE).
        let mut r = rcd(1);
        r.issue(
            0,
            DramCommand::Activate {
                bank: 0,
                row: RowId(8),
            },
            t(0),
        )
        .unwrap();
        // This PRE converts to ARR for row 8 (pending matches open row).
        r.issue(0, DramCommand::Precharge { bank: 0 }, t(31))
            .unwrap();
        // Next ACT (after ARR drain) also triggers, pending row 9...
        r.issue(
            0,
            DramCommand::Activate {
                bank: 0,
                row: RowId(9),
            },
            t(200),
        )
        .unwrap();
        let out = r
            .issue(0, DramCommand::Precharge { bank: 0 }, t(231))
            .unwrap();
        assert!(matches!(out, RcdOutcome::ArrPerformed { .. }));
    }

    #[test]
    fn refresh_notifies_defense() {
        struct CountRefs {
            refs: std::cell::Cell<u64>,
        }
        impl RowHammerDefense for CountRefs {
            fn name(&self) -> &str {
                "count-refs"
            }
            fn on_activate(&mut self, _: BankId, _: RowId, _: Time) -> DefenseResponse {
                DefenseResponse::none()
            }
            fn on_auto_refresh(&mut self, _: BankId, _: Time) -> DefenseResponse {
                self.refs.set(self.refs.get() + 1);
                DefenseResponse::none()
            }
        }
        let rank = DramRank::new(RankConfig::for_test(1, 64));
        let mut rcd = Rcd::new(
            vec![rank],
            Box::new(CountRefs {
                refs: std::cell::Cell::new(0),
            }),
            0,
        );
        rcd.issue(0, DramCommand::Refresh { bank: 0 }, t(0))
            .unwrap();
        // Inspect through Debug name to keep the defense boxed; instead use
        // rank stats to confirm the REF went through.
        assert_eq!(rcd.ranks()[0].stats().refreshes, 1);
    }

    #[test]
    fn stuck_bank_nacks_then_recovers() {
        let plan = FaultPlan::with_seed(11).rate(FaultKind::BankStuck, 1.0);
        let mut r = rcd(1_000_000).with_fault_plan(&plan, 0x5ECD);
        r.issue(0, DramCommand::Refresh { bank: 0 }, t(0)).unwrap();
        assert_eq!(r.fault_injector().injected(FaultKind::BankStuck), 1);
        // The wedged bank nacks follow-up commands with a truthful
        // retry_at instead of tripping a timing violation.
        let out = r
            .issue(
                0,
                DramCommand::Activate {
                    bank: 0,
                    row: RowId(3),
                },
                t(400),
            )
            .unwrap();
        let RcdOutcome::Nack { retry_at, reason } = out else {
            panic!("wedged bank accepted a command: {out:?}");
        };
        assert_eq!(reason, NackReason::ArrInProgress);
        assert!(retry_at > t(400), "retry_at must be in the future");
        // The other bank is unaffected.
        assert_eq!(
            r.issue(
                0,
                DramCommand::Activate {
                    bank: 1,
                    row: RowId(3)
                },
                t(400)
            )
            .unwrap(),
            RcdOutcome::Accepted
        );
        // Resending at the advertised time succeeds: the FSM recovered.
        assert_eq!(
            r.issue(
                0,
                DramCommand::Activate {
                    bank: 0,
                    row: RowId(3)
                },
                retry_at
            )
            .unwrap(),
            RcdOutcome::Accepted
        );
    }

    #[test]
    fn dropped_refresh_is_counted_but_invisible_on_the_bus() {
        let plan = FaultPlan::with_seed(7).rate(FaultKind::RefreshDrop, 1.0);
        let mut r = rcd(1_000_000).with_fault_plan(&plan, 0x5ECD);
        assert_eq!(
            r.issue(0, DramCommand::Refresh { bank: 0 }, t(0)).unwrap(),
            RcdOutcome::Accepted
        );
        let stats = r.ranks()[0].stats();
        // The bus (and every observer of it) saw an ordinary REF...
        assert_eq!(stats.refreshes, 1);
        // ...but the device recorded that the rowset was never touched.
        assert_eq!(stats.dropped_refreshes, 1);
        assert_eq!(r.fault_injector().injected(FaultKind::RefreshDrop), 1);
    }

    #[test]
    fn bank_id_composition_spans_ranks() {
        let r0 = DramRank::new(RankConfig::for_test(4, 64));
        let r1 = DramRank::new(RankConfig::for_test(4, 64));
        let rcd = Rcd::new(vec![r0, r1], Box::new(EveryNth { n: 1, count: 0 }), 100);
        assert_eq!(rcd.bank_id_of(0, 0), BankId(100));
        assert_eq!(rcd.bank_id_of(0, 3), BankId(103));
        assert_eq!(rcd.bank_id_of(1, 0), BankId(104));
    }
}
