//! DDR4 operation energy model.
//!
//! Encodes the DRAM-side energy figures of Table 3 (derived by the paper
//! from the Micron DDR4 system-power calculator): an ACT+PRE pair costs
//! 11.49 nJ and a per-bank refresh costs 132.25 nJ. Read/write burst
//! energies are added from the same calculator family so full-system
//! energy accounting is possible; they do not affect any paper claim.
//!
//! All energies are integer **picojoules** to keep accumulation exact.

/// Energy cost (pJ) of each DRAM operation class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramEnergyModel {
    /// One ACT+PRE pair (row cycle), pJ.
    pub act_pre_pj: u64,
    /// One per-bank auto-refresh (tRFC), pJ.
    pub refresh_bank_pj: u64,
    /// One read burst, pJ.
    pub read_pj: u64,
    /// One write burst, pJ.
    pub write_pj: u64,
}

impl DramEnergyModel {
    /// The DDR4 figures used in Table 3.
    pub fn ddr4() -> DramEnergyModel {
        DramEnergyModel {
            act_pre_pj: 11_490,
            refresh_bank_pj: 132_250,
            read_pj: 5_200,
            write_pj: 5_400,
        }
    }

    /// Energy (pJ) of an ARR operation: the aggressor's precharge is part
    /// of its own row cycle; the ARR itself performs up to two internal
    /// ACT+PRE pairs on the victim rows.
    #[inline]
    pub fn arr_pj(&self, victims: u32) -> u64 {
        self.act_pre_pj * u64::from(victims)
    }

    /// Total energy (pJ) for an operation mix.
    pub fn total_pj(&self, acts: u64, refreshes: u64, reads: u64, writes: u64) -> u64 {
        acts * self.act_pre_pj
            + refreshes * self.refresh_bank_pj
            + reads * self.read_pj
            + writes * self.write_pj
    }
}

impl Default for DramEnergyModel {
    fn default() -> Self {
        DramEnergyModel::ddr4()
    }
}

/// Formats picojoules as nanojoules with two decimals (Table 3 style).
pub fn format_nj(pj: u64) -> String {
    format!("{:.2}", pj as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_constants() {
        let m = DramEnergyModel::ddr4();
        assert_eq!(format_nj(m.act_pre_pj), "11.49");
        assert_eq!(format_nj(m.refresh_bank_pj), "132.25");
    }

    #[test]
    fn arr_energy_scales_with_victims() {
        let m = DramEnergyModel::ddr4();
        assert_eq!(m.arr_pj(2), 2 * m.act_pre_pj);
        assert_eq!(m.arr_pj(1), m.act_pre_pj);
        assert_eq!(m.arr_pj(0), 0);
    }

    #[test]
    fn totals_sum_linearly() {
        let m = DramEnergyModel::ddr4();
        assert_eq!(
            m.total_pj(2, 1, 3, 4),
            2 * m.act_pre_pj + m.refresh_bank_pj + 3 * m.read_pj + 4 * m.write_pj
        );
    }
}
