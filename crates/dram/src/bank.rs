//! Per-bank state machine and timing enforcement.
//!
//! A bank is either precharged or has one open row; ACT/PRE/RD/WR/REF/ARR
//! transition it under the timing constraints of §2.4. All checks are
//! explicit so that an illegal command stream from a buggy controller is a
//! loud [`TimingViolation`], never silent mis-simulation — the TWiCe
//! capacity bound is only sound if the ACT stream really respects `tRC`.

use crate::error::{DramError, TimingKind, TimingViolation};
use twice_common::snapshot::{
    Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, StateDigest,
};
use twice_common::{DdrTimings, RowId, Span, Time};

/// The row-state of a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// All bitlines precharged; no open row.
    Precharged,
    /// `row` is open in the sense amplifiers.
    Active {
        /// The open row.
        row: RowId,
    },
}

/// What currently occupies the bank (for nack decisions and debugging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occupancy {
    /// The bank is available (subject to point timing constraints).
    Free,
    /// An auto-refresh is in progress until the given instant.
    Refreshing(Time),
    /// An adjacent-row refresh is in progress until the given instant.
    ArrInProgress(Time),
}

/// One DRAM bank: FSM plus the timestamps needed to enforce timing.
#[derive(Debug, Clone)]
pub struct Bank {
    timings: DdrTimings,
    state: BankState,
    /// Instant of the most recent ACT (for tRC and tRAS).
    last_act: Option<Time>,
    /// Earliest instant the next ACT (or REF) may issue, together with the
    /// constraint that set it.
    ready_at: Time,
    ready_kind: TimingKind,
    /// Earliest instant a column command may issue (tRCD after ACT).
    col_ready_at: Time,
    occupancy: Occupancy,
}

impl Bank {
    /// Creates a precharged, idle bank.
    pub fn new(timings: DdrTimings) -> Bank {
        Bank {
            timings,
            state: BankState::Precharged,
            last_act: None,
            ready_at: Time::ZERO,
            ready_kind: TimingKind::Trp,
            col_ready_at: Time::ZERO,
            occupancy: Occupancy::Free,
        }
    }

    /// The current row state.
    #[inline]
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The open row, if any.
    #[inline]
    pub fn open_row(&self) -> Option<RowId> {
        match self.state {
            BankState::Active { row } => Some(row),
            BankState::Precharged => None,
        }
    }

    /// What currently occupies the bank, with stale occupancy cleared
    /// relative to `now`.
    #[inline]
    pub fn occupancy(&self, now: Time) -> Occupancy {
        match self.occupancy {
            Occupancy::Refreshing(until) | Occupancy::ArrInProgress(until) if now >= until => {
                Occupancy::Free
            }
            o => o,
        }
    }

    /// Whether the bank is busy with REF or ARR at `now` (nack condition).
    #[inline]
    pub fn is_busy(&self, now: Time) -> bool {
        !matches!(self.occupancy(now), Occupancy::Free)
    }

    /// Earliest instant the next ACT may issue.
    #[inline]
    pub fn act_ready_at(&self) -> Time {
        match self.last_act {
            Some(t) => self.ready_at.max(t + self.timings.t_rc),
            None => self.ready_at,
        }
    }

    fn check_ready(&self, now: Time) -> Result<(), TimingViolation> {
        if now < self.ready_at {
            return Err(TimingViolation {
                kind: self.ready_kind,
                ready_at: self.ready_at,
                issued_at: now,
            });
        }
        if let Some(last) = self.last_act {
            let trc_ready = last + self.timings.t_rc;
            if now < trc_ready {
                return Err(TimingViolation {
                    kind: TimingKind::Trc,
                    ready_at: trc_ready,
                    issued_at: now,
                });
            }
        }
        Ok(())
    }

    /// Opens `row`.
    ///
    /// # Errors
    ///
    /// [`DramError::BadState`] if a row is already open;
    /// [`DramError::Timing`] if issued before tRP/tRFC/ARR completion or
    /// within tRC of the previous ACT.
    pub fn activate(&mut self, row: RowId, now: Time) -> Result<(), DramError> {
        if let BankState::Active { .. } = self.state {
            return Err(DramError::BadState {
                reason: "ACT while a row is already open",
            });
        }
        self.check_ready(now)?;
        self.state = BankState::Active { row };
        self.last_act = Some(now);
        self.col_ready_at = now + self.timings.t_rcd;
        self.occupancy = Occupancy::Free;
        twice_obs::bump(twice_obs::Ctr::DramBankTransitions);
        Ok(())
    }

    /// Closes the open row.
    ///
    /// # Errors
    ///
    /// [`DramError::BadState`] if no row is open; [`DramError::Timing`]
    /// if issued before tRAS has elapsed since the ACT.
    pub fn precharge(&mut self, now: Time) -> Result<(), DramError> {
        let BankState::Active { .. } = self.state else {
            return Err(DramError::BadState {
                reason: "PRE with no open row",
            });
        };
        let opened = self.last_act.expect("active bank must have an ACT time");
        let pre_ready = opened + self.timings.t_ras;
        if now < pre_ready {
            return Err(DramError::Timing(TimingViolation {
                kind: TimingKind::Tras,
                ready_at: pre_ready,
                issued_at: now,
            }));
        }
        self.state = BankState::Precharged;
        self.set_ready(now + self.timings.t_rp, TimingKind::Trp);
        twice_obs::bump(twice_obs::Ctr::DramBankTransitions);
        Ok(())
    }

    /// Validates a column command (RD/WR) against the open row and tRCD.
    ///
    /// # Errors
    ///
    /// [`DramError::BadState`] if no row is open; [`DramError::Timing`]
    /// if issued before tRCD has elapsed since the ACT.
    pub fn column_access(&mut self, now: Time) -> Result<RowId, DramError> {
        let BankState::Active { row } = self.state else {
            return Err(DramError::BadState {
                reason: "column command with no open row",
            });
        };
        if now < self.col_ready_at {
            return Err(DramError::Timing(TimingViolation {
                kind: TimingKind::Trcd,
                ready_at: self.col_ready_at,
                issued_at: now,
            }));
        }
        Ok(row)
    }

    /// Starts a per-bank auto-refresh occupying the bank for tRFC.
    ///
    /// # Errors
    ///
    /// [`DramError::BadState`] if a row is open; [`DramError::Timing`]
    /// if the bank is not yet ready.
    pub fn refresh(&mut self, now: Time) -> Result<(), DramError> {
        if let BankState::Active { .. } = self.state {
            return Err(DramError::BadState {
                reason: "REF while a row is open",
            });
        }
        self.check_ready(now)?;
        let until = now + self.timings.t_rfc;
        self.set_ready(until, TimingKind::Trfc);
        self.occupancy = Occupancy::Refreshing(until);
        twice_obs::bump(twice_obs::Ctr::DramBankTransitions);
        Ok(())
    }

    /// Performs an Adjacent Row Refresh: the open aggressor row is
    /// precharged and `victims` physical neighbors are internally
    /// activated and precharged; the bank is busy for
    /// `victims·tRC + tRP` (`2·tRC + tRP` in the paper's radius-1 case).
    ///
    /// ARR substitutes for the PRE of the aggressor (§5.2), so it is legal
    /// exactly when a PRE would be.
    ///
    /// # Errors
    ///
    /// [`DramError::BadState`] if no row is open; [`DramError::Timing`]
    /// if issued before tRAS has elapsed since the ACT.
    pub fn adjacent_row_refresh(&mut self, now: Time, victims: u32) -> Result<RowId, DramError> {
        let BankState::Active { row } = self.state else {
            return Err(DramError::BadState {
                reason: "ARR with no open row",
            });
        };
        let opened = self.last_act.expect("active bank must have an ACT time");
        let pre_ready = opened + self.timings.t_ras;
        if now < pre_ready {
            return Err(DramError::Timing(TimingViolation {
                kind: TimingKind::Tras,
                ready_at: pre_ready,
                issued_at: now,
            }));
        }
        self.state = BankState::Precharged;
        let until = now + Bank::arr_duration_for(&self.timings, victims);
        self.set_ready(until, TimingKind::Arr);
        self.occupancy = Occupancy::ArrInProgress(until);
        twice_obs::bump(twice_obs::Ctr::DramBankTransitions);
        Ok(row)
    }

    /// Chaos hook: wedges the bank FSM — the bank reads busy, as if an
    /// auto-refresh never completed, until `until` (the `BankStuck`
    /// device fault). Commands must be held off until the FSM recovers
    /// on its own; the RCD models that by nacking them with a truthful
    /// `retry_at`, so the MC's bounded retry loop absorbs the outage.
    ///
    /// Only meaningful on a precharged bank (the fault fires on the REF
    /// path, where the row is already closed); with a row open the wedge
    /// is ignored.
    pub fn wedge(&mut self, until: Time) {
        if self.open_row().is_some() {
            return;
        }
        self.set_ready(until, TimingKind::Trfc);
        self.occupancy = Occupancy::Refreshing(until);
    }

    fn set_ready(&mut self, at: Time, kind: TimingKind) {
        if at > self.ready_at {
            self.ready_at = at;
            self.ready_kind = kind;
        }
    }

    /// Duration an ARR with the paper's two victims occupies the bank.
    pub fn arr_duration(timings: &DdrTimings) -> Span {
        Bank::arr_duration_for(timings, 2)
    }

    /// Duration an ARR refreshing `victims` rows occupies the bank.
    pub fn arr_duration_for(timings: &DdrTimings, victims: u32) -> Span {
        timings.t_rc * u64::from(victims.max(1)) + timings.t_rp
    }
}

impl Snapshot for Bank {
    fn save_state(&self, w: &mut SnapshotWriter) {
        match self.state {
            BankState::Precharged => {
                w.put_bool(false);
                w.put_u32(0);
            }
            BankState::Active { row } => {
                w.put_bool(true);
                w.put_u32(row.0);
            }
        }
        w.put_bool(self.last_act.is_some());
        w.put_u64(self.last_act.map_or(0, Time::as_ps));
        w.put_u64(self.ready_at.as_ps());
        w.put_u8(self.ready_kind.code());
        w.put_u64(self.col_ready_at.as_ps());
        let (tag, until) = match self.occupancy {
            Occupancy::Free => (0u8, Time::ZERO),
            Occupancy::Refreshing(t) => (1, t),
            Occupancy::ArrInProgress(t) => (2, t),
        };
        w.put_u8(tag);
        w.put_u64(until.as_ps());
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let active = r.take_bool()?;
        let row = r.take_u32()?;
        self.state = if active {
            BankState::Active { row: RowId(row) }
        } else {
            BankState::Precharged
        };
        let has_act = r.take_bool()?;
        let act_ps = r.take_u64()?;
        self.last_act = has_act.then(|| Time::from_ps(act_ps));
        self.ready_at = Time::from_ps(r.take_u64()?);
        let code = r.take_u8()?;
        self.ready_kind = TimingKind::from_code(code).ok_or_else(|| {
            SnapshotError::StateMismatch(format!("unknown timing-kind code {code}"))
        })?;
        self.col_ready_at = Time::from_ps(r.take_u64()?);
        let tag = r.take_u8()?;
        let until = Time::from_ps(r.take_u64()?);
        self.occupancy = match tag {
            0 => Occupancy::Free,
            1 => Occupancy::Refreshing(until),
            2 => Occupancy::ArrInProgress(until),
            other => {
                return Err(SnapshotError::StateMismatch(format!(
                    "unknown occupancy tag {other}"
                )))
            }
        };
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        match self.state {
            BankState::Precharged => {
                d.write_bool(false);
                d.write_u32(0);
            }
            BankState::Active { row } => {
                d.write_bool(true);
                d.write_u32(row.0);
            }
        }
        d.write_bool(self.last_act.is_some());
        d.write_u64(self.last_act.map_or(0, Time::as_ps));
        d.write_u64(self.ready_at.as_ps());
        d.write_u8(self.ready_kind.code());
        d.write_u64(self.col_ready_at.as_ps());
        let (tag, until) = match self.occupancy {
            Occupancy::Free => (0u8, Time::ZERO),
            Occupancy::Refreshing(t) => (1, t),
            Occupancy::ArrInProgress(t) => (2, t),
        };
        d.write_u8(tag);
        d.write_u64(until.as_ps());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twice_common::Span;

    fn bank() -> Bank {
        Bank::new(DdrTimings::ddr4_2400())
    }

    fn t(ns: u64) -> Time {
        Time::ZERO + Span::from_ns(ns)
    }

    #[test]
    fn act_pre_act_cycle_respects_trc_and_trp() {
        let mut b = bank();
        b.activate(RowId(1), t(0)).unwrap();
        assert_eq!(b.open_row(), Some(RowId(1)));
        // PRE before tRAS (31ns) fails.
        let e = b.precharge(t(10)).unwrap_err();
        assert!(matches!(
            e,
            DramError::Timing(TimingViolation {
                kind: TimingKind::Tras,
                ..
            })
        ));
        b.precharge(t(31)).unwrap();
        // ACT before tRP elapsed (31+14=45) fails with Trp.
        let e = b.activate(RowId(2), t(40)).unwrap_err();
        assert!(matches!(
            e,
            DramError::Timing(TimingViolation {
                kind: TimingKind::Trp,
                ..
            })
        ));
        // At exactly 45 ns both tRP and tRC (45) are satisfied.
        b.activate(RowId(2), t(45)).unwrap();
    }

    #[test]
    fn trc_binds_even_with_early_precharge_path() {
        let mut b = bank();
        // tRAS=31, tRP=14 -> earliest legal next ACT is at tRC=45.
        b.activate(RowId(1), t(0)).unwrap();
        b.precharge(t(31)).unwrap();
        let e = b.activate(RowId(2), t(44)).unwrap_err();
        assert!(matches!(e, DramError::Timing(_)));
        b.activate(RowId(2), t(45)).unwrap();
    }

    #[test]
    fn double_activate_is_bad_state() {
        let mut b = bank();
        b.activate(RowId(1), t(0)).unwrap();
        let e = b.activate(RowId(2), t(100)).unwrap_err();
        assert!(matches!(e, DramError::BadState { .. }));
    }

    #[test]
    fn column_access_waits_for_trcd() {
        let mut b = bank();
        b.activate(RowId(7), t(0)).unwrap();
        let e = b.column_access(t(10)).unwrap_err();
        assert!(matches!(
            e,
            DramError::Timing(TimingViolation {
                kind: TimingKind::Trcd,
                ..
            })
        ));
        assert_eq!(b.column_access(t(14)).unwrap(), RowId(7));
    }

    #[test]
    fn column_access_requires_open_row() {
        let mut b = bank();
        assert!(matches!(
            b.column_access(t(0)).unwrap_err(),
            DramError::BadState { .. }
        ));
    }

    #[test]
    fn refresh_occupies_bank_for_trfc() {
        let mut b = bank();
        b.refresh(t(0)).unwrap();
        assert!(b.is_busy(t(100)));
        assert!(matches!(b.occupancy(t(0)), Occupancy::Refreshing(_)));
        let e = b.activate(RowId(0), t(349)).unwrap_err();
        assert!(matches!(
            e,
            DramError::Timing(TimingViolation {
                kind: TimingKind::Trfc,
                ..
            })
        ));
        assert!(!b.is_busy(t(350)));
        b.activate(RowId(0), t(350)).unwrap();
    }

    #[test]
    fn refresh_with_open_row_is_bad_state() {
        let mut b = bank();
        b.activate(RowId(1), t(0)).unwrap();
        assert!(matches!(
            b.refresh(t(100)).unwrap_err(),
            DramError::BadState { .. }
        ));
    }

    #[test]
    fn arr_replaces_pre_and_blocks_bank() {
        let mut b = bank();
        b.activate(RowId(9), t(0)).unwrap();
        // ARR is legal exactly when PRE is: not before tRAS.
        assert!(b.adjacent_row_refresh(t(30), 2).is_err());
        let aggressor = b.adjacent_row_refresh(t(31), 2).unwrap();
        assert_eq!(aggressor, RowId(9));
        assert!(b.is_busy(t(31)));
        // Busy for 2*45 + 14 = 104 ns.
        assert!(b.is_busy(t(31 + 103)));
        assert!(!b.is_busy(t(31 + 104)));
        let e = b.activate(RowId(1), t(134)).unwrap_err();
        assert!(matches!(
            e,
            DramError::Timing(TimingViolation {
                kind: TimingKind::Arr,
                ..
            })
        ));
        b.activate(RowId(1), t(135)).unwrap();
    }

    #[test]
    fn arr_duration_matches_formula() {
        let ts = DdrTimings::ddr4_2400();
        assert_eq!(Bank::arr_duration(&ts), Span::from_ns(104));
    }

    #[test]
    fn act_ready_at_reports_earliest_legal_act() {
        let mut b = bank();
        b.activate(RowId(0), t(0)).unwrap();
        b.precharge(t(31)).unwrap();
        assert_eq!(b.act_ready_at(), t(45));
    }
}
