//! Command and energy accounting for a DRAM rank.

use crate::energy::DramEnergyModel;
use twice_common::snapshot::{
    Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, StateDigest,
};

/// Running counters for one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// ACT commands accepted (from the memory controller).
    pub acts: u64,
    /// PRE commands accepted.
    pub precharges: u64,
    /// RD commands accepted.
    pub reads: u64,
    /// WR commands accepted.
    pub writes: u64,
    /// REF commands accepted.
    pub refreshes: u64,
    /// REF commands accepted on the bus but silently dropped inside the
    /// device by the `RefreshDrop` chaos fault: the covered rowset was
    /// never actually refreshed.
    pub dropped_refreshes: u64,
    /// ARR commands performed.
    pub arrs: u64,
    /// Internal victim-row activations performed by ARRs.
    pub arr_victim_acts: u64,
    /// Internal row activations performed for explicit defense refreshes
    /// (MC-side schemes refreshing logical rows).
    pub explicit_refresh_acts: u64,
    /// Commands nacked by the RCD for the *protocol* reason (§5.2): the
    /// target bank or rank was busy with an ARR in progress.
    pub nacks: u64,
    /// Commands nacked because a chaos fault plan injected a spurious
    /// nack the protocol would not have produced. Kept separate so
    /// experiments can tell real ARR back-pressure from injected noise.
    pub injected_nacks: u64,
}

impl DramStats {
    /// Creates zeroed stats.
    pub fn new() -> DramStats {
        DramStats::default()
    }

    /// Total row activations actually performed in the array, including
    /// ARR-internal victim activations.
    #[inline]
    pub fn total_array_acts(&self) -> u64 {
        self.acts + self.arr_victim_acts + self.explicit_refresh_acts
    }

    /// All nacks the MC observed, protocol and injected alike.
    #[inline]
    pub fn total_nacks(&self) -> u64 {
        self.nacks + self.injected_nacks
    }

    /// Total energy (pJ) under `model`.
    pub fn energy_pj(&self, model: &DramEnergyModel) -> u64 {
        model.total_pj(
            self.total_array_acts(),
            self.refreshes,
            self.reads,
            self.writes,
        )
    }

    fn fields(&self) -> [u64; 11] {
        [
            self.acts,
            self.precharges,
            self.reads,
            self.writes,
            self.refreshes,
            self.dropped_refreshes,
            self.arrs,
            self.arr_victim_acts,
            self.explicit_refresh_acts,
            self.nacks,
            self.injected_nacks,
        ]
    }
}

impl Snapshot for DramStats {
    fn save_state(&self, w: &mut SnapshotWriter) {
        for v in self.fields() {
            w.put_u64(v);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.acts = r.take_u64()?;
        self.precharges = r.take_u64()?;
        self.reads = r.take_u64()?;
        self.writes = r.take_u64()?;
        self.refreshes = r.take_u64()?;
        self.dropped_refreshes = r.take_u64()?;
        self.arrs = r.take_u64()?;
        self.arr_victim_acts = r.take_u64()?;
        self.explicit_refresh_acts = r.take_u64()?;
        self.nacks = r.take_u64()?;
        self.injected_nacks = r.take_u64()?;
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        for v in self.fields() {
            d.write_u64(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_acts_include_arr_victims() {
        let s = DramStats {
            acts: 100,
            arr_victim_acts: 2,
            ..DramStats::new()
        };
        assert_eq!(s.total_array_acts(), 102);
    }

    #[test]
    fn energy_uses_model() {
        let s = DramStats {
            acts: 1,
            refreshes: 1,
            ..DramStats::new()
        };
        let m = DramEnergyModel::ddr4();
        assert_eq!(s.energy_pj(&m), m.act_pre_pj + m.refresh_bank_pj);
    }
}
