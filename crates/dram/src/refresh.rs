//! Auto-refresh rowset bookkeeping.
//!
//! A modern bank refreshes a *set* of rows per REF command (§2.1): with
//! 8192 REFs per `tREFW` and 131,072 rows per bank, each REF covers 16
//! rows. [`RefreshCursor`] tracks which rowset the next REF covers and
//! reports the covered rows so the fault model can clear their
//! disturbance.

use twice_common::snapshot::{
    Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, StateDigest,
};
use twice_common::RowId;

/// Round-robin cursor over a bank's refresh rowsets.
#[derive(Debug, Clone)]
pub struct RefreshCursor {
    rows: u32,
    rows_per_set: u32,
    num_sets: u32,
    next_set: u32,
    completed_refs: u64,
}

impl RefreshCursor {
    /// Creates a cursor for a bank with `rows` rows refreshed over
    /// `refs_per_window` REF commands.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(rows: u32, refs_per_window: u64) -> RefreshCursor {
        assert!(rows > 0, "rows must be positive");
        assert!(refs_per_window > 0, "refs_per_window must be positive");
        let num_sets = u64::from(rows).min(refs_per_window) as u32;
        let rows_per_set = rows.div_ceil(num_sets);
        RefreshCursor {
            rows,
            rows_per_set,
            num_sets,
            next_set: 0,
            completed_refs: 0,
        }
    }

    /// Rows covered per REF command.
    #[inline]
    pub fn rows_per_set(&self) -> u32 {
        self.rows_per_set
    }

    /// Number of distinct rowsets.
    #[inline]
    pub fn num_sets(&self) -> u32 {
        self.num_sets
    }

    /// Total REF commands performed.
    #[inline]
    pub fn completed_refs(&self) -> u64 {
        self.completed_refs
    }

    /// Performs one REF: returns the rows refreshed and advances.
    pub fn refresh(&mut self) -> impl Iterator<Item = RowId> + '_ {
        let set = self.next_set;
        self.next_set = (self.next_set + 1) % self.num_sets;
        self.completed_refs += 1;
        let start = set * self.rows_per_set;
        let end = (start + self.rows_per_set).min(self.rows);
        (start..end).map(RowId)
    }

    /// Chaos hook: the REF was *dropped inside the device* (the
    /// `RefreshDrop` fault) — the cursor advances as if the rowset had
    /// been refreshed (the device believes it serviced the command), but
    /// no rows are reported, so their disturbance survives a full extra
    /// window.
    pub fn skip(&mut self) {
        self.next_set = (self.next_set + 1) % self.num_sets;
        self.completed_refs += 1;
    }
}

impl Snapshot for RefreshCursor {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u32(self.next_set);
        w.put_u64(self.completed_refs);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let next_set = r.take_u32()?;
        if next_set >= self.num_sets {
            return Err(SnapshotError::StateMismatch(format!(
                "cursor set {next_set} out of {} sets",
                self.num_sets
            )));
        }
        self.next_set = next_set;
        self.completed_refs = r.take_u64()?;
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_u32(self.next_set);
        d.write_u64(self.completed_refs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_is_16_rows_per_set() {
        let c = RefreshCursor::new(131_072, 8192);
        assert_eq!(c.rows_per_set(), 16);
        assert_eq!(c.num_sets(), 8192);
    }

    #[test]
    fn one_window_covers_every_row_exactly_once() {
        let mut c = RefreshCursor::new(100, 8);
        let mut counts = vec![0u32; 100];
        let sets = c.num_sets();
        for _ in 0..sets {
            for r in c.refresh() {
                counts[r.index()] += 1;
            }
        }
        assert!(counts.iter().all(|&n| n == 1), "each row refreshed once");
        assert_eq!(c.completed_refs(), u64::from(sets));
    }

    #[test]
    fn cursor_wraps_around() {
        let mut c = RefreshCursor::new(8, 4);
        let first: Vec<_> = c.refresh().collect();
        for _ in 0..3 {
            c.refresh().for_each(drop);
        }
        let wrapped: Vec<_> = c.refresh().collect();
        assert_eq!(first, wrapped);
    }

    #[test]
    fn skip_advances_without_reporting_rows() {
        let mut a = RefreshCursor::new(8, 4);
        let mut b = RefreshCursor::new(8, 4);
        a.refresh().for_each(drop);
        b.skip();
        assert_eq!(a.completed_refs(), b.completed_refs());
        // Both cursors now cover the same next rowset.
        let ra: Vec<_> = a.refresh().collect();
        let rb: Vec<_> = b.refresh().collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn more_refs_than_rows_degenerates_to_single_rows() {
        let c = RefreshCursor::new(4, 100);
        assert_eq!(c.rows_per_set(), 1);
        assert_eq!(c.num_sets(), 4);
    }

    #[test]
    fn uneven_division_covers_tail() {
        let mut c = RefreshCursor::new(10, 3); // ceil(10/3) = 4 rows/set
        let mut seen = std::collections::HashSet::new();
        for _ in 0..c.num_sets() {
            for r in c.refresh() {
                seen.insert(r);
            }
        }
        assert_eq!(seen.len(), 10);
    }
}
