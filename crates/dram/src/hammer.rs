//! The row-hammer disturbance fault model.
//!
//! Every ACT on a row disturbs its *physically* adjacent rows (§3.1): a
//! victim accumulates disturbance from each neighbor activation and loses
//! it only when the victim itself is refreshed (auto-refresh, ARR, or an
//! explicit defense refresh) or activated (activation restores the row's
//! charge). When accumulated disturbance reaches the vendor threshold
//! `N_th` (paper §3.2; 139K for the DDR4 parts of [Kim et al. 2014]) a
//! **bit flip** is recorded — silent data corruption the defenses exist to
//! prevent.
//!
//! The model is deliberately conservative in the same direction as the
//! paper: disturbance counts are per-victim sums over *both* neighbors
//! (double-sided hammering adds up), and exceeding `N_th` always flips.

use crate::remap::RemapTable;
use twice_common::snapshot::{
    Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, StateDigest,
};
use twice_common::{RowId, Time};

/// A recorded row-hammer bit flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFlip {
    /// The victim row whose data flipped.
    pub victim: RowId,
    /// When the disturbance threshold was crossed.
    pub at: Time,
    /// The accumulated disturbance at flip time.
    pub disturbance: u64,
}

/// Per-bank disturbance state.
#[derive(Debug, Clone)]
pub struct HammerModel {
    /// Vendor disturbance threshold `N_th`.
    n_th: u64,
    /// Disturbance accumulated by each logical row since its last refresh.
    disturbance: Vec<u64>,
    /// Bits already flipped in each victim this window (so each victim
    /// is reported once per corruption event, not once per ACT).
    flips_emitted: Vec<u32>,
    flips: Vec<BitFlip>,
    /// When set, every `interval` of disturbance beyond `N_th` flips an
    /// additional bit (hammer overdrive; used by the ECC experiments).
    overshoot_interval: Option<u64>,
    /// When set, every `k`-th activation also disturbs the rows at
    /// physical distance 2 (the Half-Double blast radius).
    far_coupling: Option<u64>,
    /// Global activation counter driving the deterministic far coupling.
    act_counter: u64,
    /// Highest disturbance any row has ever reached (monotone; refreshes
    /// clear `disturbance` but not this watermark). The red-team fitness
    /// probe: how close an attack got to `N_th`, even if a defense later
    /// wiped the evidence.
    peak: u64,
}

impl HammerModel {
    /// Creates a model for a bank with `rows` logical rows and threshold
    /// `n_th`.
    ///
    /// # Panics
    ///
    /// Panics if `n_th` is zero.
    pub fn new(rows: u32, n_th: u64) -> HammerModel {
        assert!(n_th > 0, "N_th must be positive");
        HammerModel {
            n_th,
            disturbance: vec![0; rows as usize],
            flips_emitted: vec![0; rows as usize],
            flips: Vec::new(),
            overshoot_interval: None,
            far_coupling: None,
            act_counter: 0,
            peak: 0,
        }
    }

    /// Enables distance-2 coupling: every `k`-th activation disturbs the
    /// rows two away from the aggressor as well (Half-Double; discovered
    /// after the paper, it breaks distance-1-only mitigations).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn with_far_coupling(mut self, k: u64) -> HammerModel {
        assert!(k > 0, "coupling interval must be non-zero");
        self.far_coupling = Some(k);
        self
    }

    /// Enables overdrive flips: one additional bit per `interval` of
    /// disturbance beyond `N_th`, capped at 64 bits per victim per
    /// window (models the multi-bit errors heavy hammering produces,
    /// which defeat SEC-DED ECC).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_overshoot(mut self, interval: u64) -> HammerModel {
        assert!(interval > 0, "overshoot interval must be non-zero");
        self.overshoot_interval = Some(interval);
        self
    }

    /// Bits this model would have flipped at disturbance `d`.
    fn flips_allowed(&self, d: u64) -> u32 {
        if d < self.n_th {
            0
        } else {
            1 + match self.overshoot_interval {
                Some(iv) => ((d - self.n_th) / iv).min(63) as u32,
                None => 0,
            }
        }
    }

    /// The configured disturbance threshold.
    #[inline]
    pub fn n_th(&self) -> u64 {
        self.n_th
    }

    /// Records an ACT on `aggressor`, disturbing its physical neighbors.
    ///
    /// The aggressor itself is restored by the activation, clearing its own
    /// accumulated disturbance.
    pub fn on_activate(&mut self, aggressor: RowId, remap: &RemapTable, now: Time) {
        // Activation fully restores the aggressor's cells.
        self.clear(aggressor);
        self.act_counter += 1;
        for victim in remap.physical_neighbors(aggressor) {
            self.bump(victim, now);
        }
        if let Some(k) = self.far_coupling {
            if self.act_counter.is_multiple_of(k) {
                for victim in remap.physical_neighbors_at(aggressor, 2) {
                    self.bump(victim, now);
                }
            }
        }
    }

    fn bump(&mut self, victim: RowId, now: Time) {
        self.disturbance[victim.index()] += 1;
        let d = self.disturbance[victim.index()];
        if d > self.peak {
            self.peak = d;
        }
        while self.flips_emitted[victim.index()] < self.flips_allowed(d) {
            self.flips_emitted[victim.index()] += 1;
            self.flips.push(BitFlip {
                victim,
                at: now,
                disturbance: d,
            });
        }
    }

    /// Records a refresh of `row` (auto-refresh slice, ARR victim, or an
    /// explicit defense refresh): its disturbance is reset.
    #[inline]
    pub fn on_refresh(&mut self, row: RowId) {
        self.clear(row);
    }

    fn clear(&mut self, row: RowId) {
        self.disturbance[row.index()] = 0;
        self.flips_emitted[row.index()] = 0;
    }

    /// Current disturbance of `row`.
    #[inline]
    pub fn disturbance_of(&self, row: RowId) -> u64 {
        self.disturbance[row.index()]
    }

    /// All bit flips recorded so far.
    #[inline]
    pub fn flips(&self) -> &[BitFlip] {
        &self.flips
    }

    /// Drains and returns the recorded flips.
    pub fn take_flips(&mut self) -> Vec<BitFlip> {
        std::mem::take(&mut self.flips)
    }

    /// The maximum disturbance across all rows (attack-margin metric).
    pub fn max_disturbance(&self) -> u64 {
        self.disturbance.iter().copied().max().unwrap_or(0)
    }

    /// The highest disturbance any row has *ever* reached in this bank.
    ///
    /// Unlike [`HammerModel::max_disturbance`] this watermark survives
    /// refreshes, so it measures the attack margin an adversary achieved
    /// even when a defense cleaned up afterwards.
    #[inline]
    pub fn peak_disturbance(&self) -> u64 {
        self.peak
    }
}

impl Snapshot for HammerModel {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.act_counter);
        w.put_u64(self.peak);
        w.put_usize(self.disturbance.len());
        // Disturbance and emitted-flip vectors are almost entirely zero;
        // store only the non-zero rows.
        let nonzero = |v: u64| v != 0;
        w.put_usize(
            self.disturbance
                .iter()
                .copied()
                .filter(|&v| nonzero(v))
                .count(),
        );
        for (i, &v) in self.disturbance.iter().enumerate() {
            if v != 0 {
                w.put_u32(i as u32);
                w.put_u64(v);
            }
        }
        w.put_usize(self.flips_emitted.iter().filter(|&&v| v != 0).count());
        for (i, &v) in self.flips_emitted.iter().enumerate() {
            if v != 0 {
                w.put_u32(i as u32);
                w.put_u32(v);
            }
        }
        w.put_usize(self.flips.len());
        for f in &self.flips {
            w.put_u32(f.victim.0);
            w.put_u64(f.at.as_ps());
            w.put_u64(f.disturbance);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.act_counter = r.take_u64()?;
        self.peak = r.take_u64()?;
        let rows = r.take_usize()?;
        if rows != self.disturbance.len() {
            return Err(SnapshotError::StateMismatch(format!(
                "hammer model has {} rows, snapshot has {rows}",
                self.disturbance.len()
            )));
        }
        self.disturbance.fill(0);
        let n = r.take_usize()?;
        for _ in 0..n {
            let i = r.take_u32()? as usize;
            let v = r.take_u64()?;
            *self
                .disturbance
                .get_mut(i)
                .ok_or_else(|| SnapshotError::StateMismatch(format!("row {i} out of range")))? = v;
        }
        self.flips_emitted.fill(0);
        let n = r.take_usize()?;
        for _ in 0..n {
            let i = r.take_u32()? as usize;
            let v = r.take_u32()?;
            *self
                .flips_emitted
                .get_mut(i)
                .ok_or_else(|| SnapshotError::StateMismatch(format!("row {i} out of range")))? = v;
        }
        let n = r.take_usize()?;
        self.flips.clear();
        for _ in 0..n {
            let victim = RowId(r.take_u32()?);
            let at = Time::from_ps(r.take_u64()?);
            let disturbance = r.take_u64()?;
            self.flips.push(BitFlip {
                victim,
                at,
                disturbance,
            });
        }
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_u64(self.act_counter);
        d.write_u64(self.peak);
        for (i, &v) in self.disturbance.iter().enumerate() {
            if v != 0 {
                d.write_u32(i as u32);
                d.write_u64(v);
            }
        }
        for (i, &v) in self.flips_emitted.iter().enumerate() {
            if v != 0 {
                d.write_u32(i as u32);
                d.write_u32(v);
            }
        }
        d.write_usize(self.flips.len());
        for f in &self.flips {
            d.write_u32(f.victim.0);
            d.write_u64(f.at.as_ps());
            d.write_u64(f.disturbance);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(rows: u32, n_th: u64) -> (HammerModel, RemapTable) {
        (HammerModel::new(rows, n_th), RemapTable::identity(rows))
    }

    #[test]
    fn single_sided_hammer_flips_at_threshold() {
        let (mut m, remap) = model(8, 10);
        for i in 0..9 {
            m.on_activate(RowId(3), &remap, Time::from_ps(i));
            assert!(m.flips().is_empty(), "no flip before N_th");
        }
        m.on_activate(RowId(3), &remap, Time::from_ps(9));
        let flips = m.flips();
        assert_eq!(flips.len(), 2, "both neighbors flip at N_th");
        let victims: Vec<_> = flips.iter().map(|f| f.victim).collect();
        assert!(victims.contains(&RowId(2)) && victims.contains(&RowId(4)));
        assert_eq!(flips[0].disturbance, 10);
    }

    #[test]
    fn double_sided_hammer_sums_disturbance() {
        let (mut m, remap) = model(8, 10);
        // Alternate aggressors around victim row 3: 5+5 ACTs reach N_th.
        for i in 0..5 {
            m.on_activate(RowId(2), &remap, Time::from_ps(2 * i));
            m.on_activate(RowId(4), &remap, Time::from_ps(2 * i + 1));
        }
        assert!(m.flips().iter().any(|f| f.victim == RowId(3)));
        // Single-sided victims (rows 1 and 5) saw only 5 ACTs: no flip.
        assert!(!m.flips().iter().any(|f| f.victim == RowId(1)));
    }

    #[test]
    fn refresh_resets_disturbance() {
        let (mut m, remap) = model(8, 10);
        for i in 0..9 {
            m.on_activate(RowId(3), &remap, Time::from_ps(i));
        }
        m.on_refresh(RowId(2));
        m.on_refresh(RowId(4));
        m.on_activate(RowId(3), &remap, Time::from_ps(100));
        assert!(m.flips().is_empty(), "refreshed victims must not flip");
        assert_eq!(m.disturbance_of(RowId(2)), 1);
    }

    #[test]
    fn activation_restores_the_activated_row() {
        let (mut m, remap) = model(8, 10);
        for i in 0..9 {
            m.on_activate(RowId(3), &remap, Time::from_ps(i));
        }
        assert_eq!(m.disturbance_of(RowId(4)), 9);
        // Activating the victim itself restores it.
        m.on_activate(RowId(4), &remap, Time::from_ps(50));
        assert_eq!(m.disturbance_of(RowId(4)), 0);
    }

    #[test]
    fn each_victim_flips_once_per_window() {
        let (mut m, remap) = model(8, 5);
        for i in 0..20 {
            m.on_activate(RowId(3), &remap, Time::from_ps(i));
        }
        assert_eq!(m.flips().len(), 2, "one flip per victim until refreshed");
        m.on_refresh(RowId(2));
        for i in 20..40 {
            m.on_activate(RowId(3), &remap, Time::from_ps(i));
        }
        // Row 2 was refreshed (flip state cleared) and re-flipped; row 4 not.
        assert_eq!(m.flips().len(), 3);
    }

    #[test]
    fn remapped_aggressor_disturbs_physical_not_logical_neighbors() {
        let remap = RemapTable::with_random_faults(128, 2, 11);
        let mut m = HammerModel::new(128, 3);
        let aggressor = (0..128).map(RowId).find(|&r| remap.is_remapped(r)).unwrap();
        for i in 0..3 {
            m.on_activate(aggressor, &remap, Time::from_ps(i));
        }
        let phys: Vec<_> = remap.physical_neighbors(aggressor).into_iter().collect();
        for f in m.flips() {
            assert!(phys.contains(&f.victim));
        }
        // Logical neighbors (if distinct from physical) are untouched.
        for l in remap.logical_neighbors(aggressor) {
            if !phys.contains(&l) {
                assert_eq!(m.disturbance_of(l), 0);
            }
        }
    }

    #[test]
    fn overshoot_emits_additional_flips() {
        let remap = RemapTable::identity(8);
        let mut m = HammerModel::new(8, 10).with_overshoot(5);
        for i in 0..25 {
            m.on_activate(RowId(3), &remap, Time::from_ps(i));
        }
        // Victim at disturbance 25: allowed = 1 + (25-10)/5 = 4 flips.
        let on_victim_4 = m.flips().iter().filter(|f| f.victim == RowId(4)).count();
        assert_eq!(on_victim_4, 4);
        // Refresh resets the overdrive accounting too.
        m.on_refresh(RowId(4));
        m.on_activate(RowId(3), &remap, Time::from_ps(100));
        assert_eq!(
            m.flips().iter().filter(|f| f.victim == RowId(4)).count(),
            4,
            "no new flip right after refresh"
        );
    }

    #[test]
    fn take_flips_drains() {
        let (mut m, remap) = model(4, 1);
        m.on_activate(RowId(1), &remap, Time::ZERO);
        assert_eq!(m.take_flips().len(), 2);
        assert!(m.flips().is_empty());
    }

    #[test]
    #[should_panic(expected = "N_th must be positive")]
    fn zero_threshold_panics() {
        HammerModel::new(4, 0);
    }

    #[test]
    fn peak_disturbance_survives_refresh() {
        let (mut m, remap) = model(8, 100);
        for i in 0..9 {
            m.on_activate(RowId(3), &remap, Time::from_ps(i));
        }
        assert_eq!(m.peak_disturbance(), 9);
        m.on_refresh(RowId(2));
        m.on_refresh(RowId(4));
        assert_eq!(m.max_disturbance(), 0, "refresh clears live disturbance");
        assert_eq!(m.peak_disturbance(), 9, "watermark survives refresh");
        m.on_activate(RowId(3), &remap, Time::from_ps(100));
        assert_eq!(m.peak_disturbance(), 9, "lower rebound does not move it");
    }
}
