//! The DRAM command vocabulary.
//!
//! Matches §2.4 of the paper plus the newly proposed Adjacent Row Refresh
//! (§5.2). Banks are addressed by their index *within the rank* here; the
//! system-global flat [`twice_common::BankId`] is composed one level up.

use std::fmt;
use twice_common::{ColId, RowId};

/// One DRAM command as driven on the command/address bus of a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCommand {
    /// Open `row` in `bank` (ACT).
    Activate {
        /// Bank index within the rank.
        bank: u16,
        /// Logical (MC-visible) row index.
        row: RowId,
    },
    /// Close the open row of `bank` (PRE).
    Precharge {
        /// Bank index within the rank.
        bank: u16,
    },
    /// Read a column of the open row (RD).
    Read {
        /// Bank index within the rank.
        bank: u16,
        /// Column index.
        col: ColId,
    },
    /// Write a column of the open row (WR).
    Write {
        /// Bank index within the rank.
        bank: u16,
        /// Column index.
        col: ColId,
    },
    /// Per-bank auto-refresh (REF): refreshes the bank's next rowset and
    /// occupies the bank for `tRFC`.
    Refresh {
        /// Bank index within the rank.
        bank: u16,
    },
    /// Adjacent Row Refresh (ARR, §5.2): the device refreshes the rows
    /// *physically* adjacent to `row`, resolving sparing/remapping
    /// internally, then returns the bank to the precharged state.
    /// Takes `2·tRC + tRP`.
    AdjacentRowRefresh {
        /// Bank index within the rank.
        bank: u16,
        /// The aggressor row whose physical neighbors are refreshed.
        row: RowId,
    },
}

impl DramCommand {
    /// The bank this command targets.
    #[inline]
    pub fn bank(&self) -> u16 {
        match *self {
            DramCommand::Activate { bank, .. }
            | DramCommand::Precharge { bank }
            | DramCommand::Read { bank, .. }
            | DramCommand::Write { bank, .. }
            | DramCommand::Refresh { bank }
            | DramCommand::AdjacentRowRefresh { bank, .. } => bank,
        }
    }

    /// Whether this command opens a row (counts toward tRRD/tFAW).
    #[inline]
    pub fn is_activate(&self) -> bool {
        matches!(self, DramCommand::Activate { .. })
    }

    /// A short mnemonic (`ACT`, `PRE`, …) for logs and reports.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            DramCommand::Activate { .. } => "ACT",
            DramCommand::Precharge { .. } => "PRE",
            DramCommand::Read { .. } => "RD",
            DramCommand::Write { .. } => "WR",
            DramCommand::Refresh { .. } => "REF",
            DramCommand::AdjacentRowRefresh { .. } => "ARR",
        }
    }
}

impl fmt::Display for DramCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DramCommand::Activate { bank, row } => write!(f, "ACT b{bank} r{:#x}", row),
            DramCommand::Precharge { bank } => write!(f, "PRE b{bank}"),
            DramCommand::Read { bank, col } => write!(f, "RD b{bank} c{}", col.0),
            DramCommand::Write { bank, col } => write!(f, "WR b{bank} c{}", col.0),
            DramCommand::Refresh { bank } => write!(f, "REF b{bank}"),
            DramCommand::AdjacentRowRefresh { bank, row } => {
                write!(f, "ARR b{bank} r{:#x}", row)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_accessor_covers_all_variants() {
        let cmds = [
            DramCommand::Activate {
                bank: 3,
                row: RowId(1),
            },
            DramCommand::Precharge { bank: 3 },
            DramCommand::Read {
                bank: 3,
                col: ColId(0),
            },
            DramCommand::Write {
                bank: 3,
                col: ColId(0),
            },
            DramCommand::Refresh { bank: 3 },
            DramCommand::AdjacentRowRefresh {
                bank: 3,
                row: RowId(1),
            },
        ];
        for c in cmds {
            assert_eq!(c.bank(), 3, "{c}");
        }
    }

    #[test]
    fn only_activate_is_activate() {
        assert!(DramCommand::Activate {
            bank: 0,
            row: RowId(0)
        }
        .is_activate());
        assert!(!DramCommand::Refresh { bank: 0 }.is_activate());
    }

    #[test]
    fn display_and_mnemonics() {
        let arr = DramCommand::AdjacentRowRefresh {
            bank: 1,
            row: RowId(0x50),
        };
        assert_eq!(arr.mnemonic(), "ARR");
        assert_eq!(arr.to_string(), "ARR b1 r0x50");
    }
}
