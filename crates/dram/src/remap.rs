//! Row sparing and physical-adjacency resolution.
//!
//! DRAM vendors replace faulty rows with spare rows at test time (§2.2);
//! the remapping lives in fuses *inside* the device. Consequently a
//! logical row index differing by one does **not** imply physical
//! adjacency — the core argument for why the MC/RCD must not compute
//! victim addresses and why the ARR command exists (§5.2).
//!
//! The model: a bank has `rows` *primary* physical rows (indices
//! `0..rows`) followed by `spares` spare physical rows
//! (`rows..rows+spares`). Logical row `i` occupies physical row `i`
//! unless remapped, in which case it occupies one of the spares and
//! physical row `i` is dead (disconnected).

use std::collections::HashMap;
use twice_common::rng::SplitMix64;
use twice_common::RowId;

/// A physical row index within a bank (including the spare region).
pub type PhysRow = u32;

/// Per-bank row-sparing table.
#[derive(Debug, Clone)]
pub struct RemapTable {
    rows: u32,
    spares: u32,
    /// logical → spare physical (only for remapped rows).
    to_spare: HashMap<u32, PhysRow>,
    /// spare physical → logical (inverse of `to_spare`).
    from_spare: HashMap<PhysRow, u32>,
}

impl RemapTable {
    /// An identity table: no rows are remapped.
    pub fn identity(rows: u32) -> RemapTable {
        RemapTable {
            rows,
            spares: 0,
            to_spare: HashMap::new(),
            from_spare: HashMap::new(),
        }
    }

    /// Builds a table with `faulty` randomly chosen faulty logical rows,
    /// each remapped to a dedicated spare. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `faulty > rows`.
    pub fn with_random_faults(rows: u32, faulty: u32, seed: u64) -> RemapTable {
        assert!(faulty <= rows, "cannot have more faulty rows than rows");
        let mut rng = SplitMix64::new(seed);
        let mut to_spare = HashMap::with_capacity(faulty as usize);
        let mut from_spare = HashMap::with_capacity(faulty as usize);
        let mut next_spare = rows;
        while to_spare.len() < faulty as usize {
            let victim = rng.next_below(u64::from(rows)) as u32;
            if let std::collections::hash_map::Entry::Vacant(e) = to_spare.entry(victim) {
                e.insert(next_spare);
                from_spare.insert(next_spare, victim);
                next_spare += 1;
            }
        }
        RemapTable {
            rows,
            spares: faulty,
            to_spare,
            from_spare,
        }
    }

    /// Number of primary rows in the bank.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of spare rows appended after the primary region.
    #[inline]
    pub fn spares(&self) -> u32 {
        self.spares
    }

    /// Number of remapped (spared-out) logical rows.
    #[inline]
    pub fn remapped_count(&self) -> usize {
        self.to_spare.len()
    }

    /// Whether logical `row` has been remapped to a spare.
    #[inline]
    pub fn is_remapped(&self, row: RowId) -> bool {
        self.to_spare.contains_key(&row.0)
    }

    /// The physical row a logical row occupies.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[inline]
    pub fn physical_of(&self, row: RowId) -> PhysRow {
        assert!(row.0 < self.rows, "logical row out of range");
        match self.to_spare.get(&row.0) {
            Some(&p) => p,
            None => row.0,
        }
    }

    /// The logical row occupying a physical row, or `None` if the physical
    /// row is dead (spared-out primary row) or an unused spare.
    #[inline]
    pub fn logical_of(&self, phys: PhysRow) -> Option<RowId> {
        if phys < self.rows {
            if self.to_spare.contains_key(&phys) {
                None // primary slot of a remapped row: disconnected
            } else {
                Some(RowId(phys))
            }
        } else {
            self.from_spare.get(&phys).copied().map(RowId)
        }
    }

    /// The logical rows *physically* adjacent to `aggressor` — the victims
    /// an ARR must refresh. At most two; physical edge rows and dead
    /// neighbors yield fewer.
    ///
    /// # Panics
    ///
    /// Panics if `aggressor` is out of range.
    pub fn physical_neighbors(&self, aggressor: RowId) -> NeighborRows {
        let p = self.physical_of(aggressor);
        let total = self.rows + self.spares;
        let mut out = NeighborRows::default();
        if p > 0 {
            if let Some(v) = self.logical_of(p - 1) {
                out.push(v);
            }
        }
        if p + 1 < total {
            if let Some(v) = self.logical_of(p + 1) {
                out.push(v);
            }
        }
        out
    }

    /// The logical rows at *physical* distance exactly `distance` from
    /// `aggressor` (distance 1 = the classic victims; distance 2 = the
    /// Half-Double blast radius). At most two; dead neighbors and edges
    /// yield fewer.
    ///
    /// # Panics
    ///
    /// Panics if `aggressor` is out of range or `distance` is zero.
    pub fn physical_neighbors_at(&self, aggressor: RowId, distance: u32) -> NeighborRows {
        assert!(distance > 0, "distance must be positive");
        let p = self.physical_of(aggressor);
        let total = self.rows + self.spares;
        let mut out = NeighborRows::default();
        if p >= distance {
            if let Some(v) = self.logical_of(p - distance) {
                out.push(v);
            }
        }
        if p + distance < total {
            if let Some(v) = self.logical_of(p + distance) {
                out.push(v);
            }
        }
        out
    }

    /// The logical rows *logically* adjacent to `victim-of-interest`
    /// (`index ± 1`) — what an MC-resident defense that is oblivious to
    /// remapping would refresh. Used to model the baselines faithfully.
    pub fn logical_neighbors(&self, aggressor: RowId) -> NeighborRows {
        let mut out = NeighborRows::default();
        if let Some(below) = aggressor.below() {
            out.push(below);
        }
        if let Some(above) = aggressor.above() {
            if above.0 < self.rows {
                out.push(above);
            }
        }
        out
    }
}

/// Up to two neighbor rows, stack-allocated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NeighborRows {
    rows: [Option<RowId>; 2],
    len: u8,
}

impl NeighborRows {
    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if already full (two entries).
    pub fn push(&mut self, row: RowId) {
        assert!(self.len < 2, "a row has at most two neighbors");
        self.rows[self.len as usize] = Some(row);
        self.len += 1;
    }

    /// Number of neighbors.
    #[inline]
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Whether there are no neighbors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the neighbor rows.
    pub fn iter(&self) -> impl Iterator<Item = RowId> + '_ {
        self.rows.iter().take(self.len as usize).flatten().copied()
    }
}

impl IntoIterator for NeighborRows {
    type Item = RowId;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<RowId>, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.into_iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_straight_through() {
        let t = RemapTable::identity(16);
        assert_eq!(t.physical_of(RowId(5)), 5);
        assert_eq!(t.logical_of(5), Some(RowId(5)));
        let n: Vec<_> = t.physical_neighbors(RowId(5)).into_iter().collect();
        assert_eq!(n, vec![RowId(4), RowId(6)]);
    }

    #[test]
    fn identity_edges_have_one_neighbor() {
        let t = RemapTable::identity(16);
        let low: Vec<_> = t.physical_neighbors(RowId(0)).into_iter().collect();
        assert_eq!(low, vec![RowId(1)]);
        let high: Vec<_> = t.physical_neighbors(RowId(15)).into_iter().collect();
        assert_eq!(high, vec![RowId(14)]);
    }

    #[test]
    fn remapped_row_lives_in_spare_region() {
        let t = RemapTable::with_random_faults(1024, 8, 42);
        assert_eq!(t.remapped_count(), 8);
        let remapped: Vec<u32> = (0..1024).filter(|&r| t.is_remapped(RowId(r))).collect();
        assert_eq!(remapped.len(), 8);
        for &r in &remapped {
            let p = t.physical_of(RowId(r));
            assert!(p >= 1024, "remapped row must occupy a spare");
            assert_eq!(t.logical_of(p), Some(RowId(r)));
            // Its primary slot is dead.
            assert_eq!(t.logical_of(r), None);
        }
    }

    #[test]
    fn physical_vs_logical_adjacency_diverges_for_remapped_rows() {
        let t = RemapTable::with_random_faults(1024, 8, 7);
        let remapped = (0..1024).find(|&r| t.is_remapped(RowId(r))).unwrap();
        // Pick a remapped row away from the logical edges.
        let phys: Vec<_> = t.physical_neighbors(RowId(remapped)).into_iter().collect();
        let logi: Vec<_> = t.logical_neighbors(RowId(remapped)).into_iter().collect();
        assert_ne!(phys, logi, "remapping must break logical adjacency");
        // Physical neighbors of a spare-resident row are in/near the spare region.
        for v in phys {
            let p = t.physical_of(v);
            assert!(
                p + 1 >= 1024,
                "neighbor {v} at phys {p} should adjoin spares"
            );
        }
    }

    #[test]
    fn neighbor_of_dead_slot_is_skipped() {
        // Remap rows until some primary slot is dead, then check its logical
        // neighbors' physical neighborhood skips it.
        let t = RemapTable::with_random_faults(128, 4, 3);
        let dead = (0..128).find(|&r| t.is_remapped(RowId(r))).unwrap();
        if dead > 0 && !t.is_remapped(RowId(dead - 1)) {
            let n: Vec<_> = t.physical_neighbors(RowId(dead - 1)).into_iter().collect();
            assert!(
                !n.contains(&RowId(dead)),
                "dead slot must not appear as a victim"
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = RemapTable::with_random_faults(512, 5, 9);
        let b = RemapTable::with_random_faults(512, 5, 9);
        for r in 0..512 {
            assert_eq!(a.physical_of(RowId(r)), b.physical_of(RowId(r)));
        }
    }

    #[test]
    #[should_panic(expected = "logical row out of range")]
    fn out_of_range_row_panics() {
        RemapTable::identity(4).physical_of(RowId(4));
    }

    #[test]
    fn neighbor_rows_is_bounded() {
        let mut n = NeighborRows::default();
        assert!(n.is_empty());
        n.push(RowId(1));
        n.push(RowId(2));
        assert_eq!(n.len(), 2);
        let collected: Vec<_> = n.iter().collect();
        assert_eq!(collected, vec![RowId(1), RowId(2)]);
    }

    #[test]
    #[should_panic(expected = "at most two")]
    fn neighbor_rows_overflow_panics() {
        let mut n = NeighborRows::default();
        n.push(RowId(1));
        n.push(RowId(2));
        n.push(RowId(3));
    }
}
