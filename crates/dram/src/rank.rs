//! Rank-level activation constraints: tRRD_S/tRRD_L and the
//! four-activate window.
//!
//! Within a rank, any two ACTs must be at least `tRRD_S` apart — and at
//! least `tRRD_L` apart when they target banks of the same DDR4 *bank
//! group* — and any five ACTs must span more than `tFAW` (§2.4). These
//! constraints bound the *rank-wide* ACT rate; together with per-bank
//! `tRC` they are what makes the number of potential row-hammer
//! aggressors finite.

use crate::error::{TimingKind, TimingViolation};
use twice_common::snapshot::{
    Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, StateDigest,
};
use twice_common::{DdrTimings, Time};

/// Banks per DDR4 bank group.
pub const BANKS_PER_GROUP: u16 = 4;

/// Sliding-window tracker for rank-level ACT constraints.
#[derive(Debug, Clone)]
pub struct RankActWindow {
    t_rrd_s: twice_common::Span,
    t_rrd_l: twice_common::Span,
    t_faw: twice_common::Span,
    /// The instants of the four most recent ACTs, oldest first.
    recent: [Option<Time>; 4],
    /// Most recent ACT per bank group (tRRD_L).
    last_in_group: Vec<Option<Time>>,
}

impl RankActWindow {
    /// Creates a tracker for the given timing set and `banks` banks.
    pub fn new(timings: &DdrTimings, banks: u16) -> RankActWindow {
        let groups = usize::from(banks.div_ceil(BANKS_PER_GROUP));
        RankActWindow {
            t_rrd_s: timings.t_rrd,
            t_rrd_l: timings.t_rrd_l,
            t_faw: timings.t_faw,
            recent: [None; 4],
            last_in_group: vec![None; groups.max(1)],
        }
    }

    fn group_of(&self, bank: u16) -> usize {
        usize::from(bank / BANKS_PER_GROUP) % self.last_in_group.len()
    }

    /// Checks whether an ACT to `bank` at `now` satisfies tRRD_S,
    /// tRRD_L, and tFAW.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint and the earliest legal instant.
    pub fn check(&self, bank: u16, now: Time) -> Result<(), TimingViolation> {
        if let Some(last) = self.recent.iter().flatten().last() {
            let ready = *last + self.t_rrd_s;
            if now < ready {
                return Err(TimingViolation {
                    kind: TimingKind::Trrd,
                    ready_at: ready,
                    issued_at: now,
                });
            }
        }
        if let Some(last) = self.last_in_group[self.group_of(bank)] {
            let ready = last + self.t_rrd_l;
            if now < ready {
                return Err(TimingViolation {
                    kind: TimingKind::Trrd,
                    ready_at: ready,
                    issued_at: now,
                });
            }
        }
        if let Some(fourth_back) = self.recent[0] {
            let ready = fourth_back + self.t_faw;
            if now < ready {
                return Err(TimingViolation {
                    kind: TimingKind::Tfaw,
                    ready_at: ready,
                    issued_at: now,
                });
            }
        }
        Ok(())
    }

    /// Records an accepted ACT to `bank` at `now`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `now` precedes the most recent recorded
    /// ACT (the stream must be monotone).
    pub fn record(&mut self, bank: u16, now: Time) {
        if let Some(last) = self.recent.iter().flatten().last() {
            debug_assert!(now >= *last, "ACT stream must be time-ordered");
        }
        self.recent.rotate_left(1);
        self.recent[3] = Some(now);
        let g = self.group_of(bank);
        self.last_in_group[g] = Some(now);
    }

    /// Earliest instant the next ACT to `bank` may issue under
    /// tRRD_S/tRRD_L/tFAW.
    pub fn ready_at(&self, bank: u16) -> Time {
        let rrd_s = self
            .recent
            .iter()
            .flatten()
            .last()
            .map(|&t| t + self.t_rrd_s)
            .unwrap_or(Time::ZERO);
        let rrd_l = self.last_in_group[self.group_of(bank)]
            .map(|t| t + self.t_rrd_l)
            .unwrap_or(Time::ZERO);
        let faw = self.recent[0].map(|t| t + self.t_faw).unwrap_or(Time::ZERO);
        rrd_s.max(rrd_l).max(faw)
    }
}

fn put_opt_time(w: &mut SnapshotWriter, t: Option<Time>) {
    w.put_bool(t.is_some());
    w.put_u64(t.map_or(0, Time::as_ps));
}

fn take_opt_time(r: &mut SnapshotReader<'_>) -> Result<Option<Time>, SnapshotError> {
    let some = r.take_bool()?;
    let ps = r.take_u64()?;
    Ok(some.then(|| Time::from_ps(ps)))
}

impl Snapshot for RankActWindow {
    fn save_state(&self, w: &mut SnapshotWriter) {
        for t in self.recent {
            put_opt_time(w, t);
        }
        w.put_usize(self.last_in_group.len());
        for &t in &self.last_in_group {
            put_opt_time(w, t);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        for slot in &mut self.recent {
            *slot = take_opt_time(r)?;
        }
        let groups = r.take_usize()?;
        if groups != self.last_in_group.len() {
            return Err(SnapshotError::StateMismatch(format!(
                "ACT window has {} bank groups, snapshot has {groups}",
                self.last_in_group.len()
            )));
        }
        for slot in &mut self.last_in_group {
            *slot = take_opt_time(r)?;
        }
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        for t in self.recent {
            d.write_bool(t.is_some());
            d.write_u64(t.map_or(0, Time::as_ps));
        }
        for &t in &self.last_in_group {
            d.write_bool(t.is_some());
            d.write_u64(t.map_or(0, Time::as_ps));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twice_common::Span;

    fn t(ns: u64) -> Time {
        Time::ZERO + Span::from_ns(ns)
    }

    fn window() -> RankActWindow {
        // tRRD_S=5ns, tRRD_L=6ns, tFAW=21ns; 16 banks = 4 groups.
        RankActWindow::new(&DdrTimings::ddr4_2400(), 16)
    }

    #[test]
    fn first_act_is_always_legal() {
        let w = window();
        assert!(w.check(0, Time::ZERO).is_ok());
        assert_eq!(w.ready_at(0), Time::ZERO);
    }

    #[test]
    fn trrd_s_spacing_across_groups() {
        let mut w = window();
        w.record(0, t(0)); // group 0
        let e = w.check(4, t(4)).unwrap_err(); // group 1
        assert_eq!(e.kind, TimingKind::Trrd);
        assert_eq!(e.ready_at, t(5));
        assert!(w.check(4, t(5)).is_ok());
    }

    #[test]
    fn trrd_l_binds_within_a_group() {
        let mut w = window();
        w.record(0, t(0)); // group 0
                           // Bank 1 shares group 0: tRRD_L = 6ns applies.
        let e = w.check(1, t(5)).unwrap_err();
        assert_eq!(e.kind, TimingKind::Trrd);
        assert_eq!(e.ready_at, t(6));
        assert!(w.check(1, t(6)).is_ok());
        // A different group only needs tRRD_S.
        assert!(w.check(4, t(5)).is_ok());
    }

    #[test]
    fn tfaw_limits_bursts_of_four() {
        let mut w = window();
        for i in 0..4 {
            let at = t(i * 5);
            // Spread across groups so only tRRD_S binds.
            w.check((i * 4) as u16 % 16, at).unwrap();
            w.record((i * 4) as u16 % 16, at);
        }
        // Fifth ACT: tRRD satisfied at t=20, but tFAW requires t >= 21.
        let e = w.check(0, t(20)).unwrap_err();
        assert_eq!(e.kind, TimingKind::Tfaw);
        assert_eq!(e.ready_at, t(21));
        assert!(w.check(4, t(21)).is_ok());
    }

    #[test]
    fn window_slides_after_fifth_act() {
        let mut w = window();
        for i in 0..5u64 {
            let at = t(i * 25); // generously spaced
            let bank = ((i * 4) % 16) as u16;
            w.check(bank, at).unwrap();
            w.record(bank, at);
        }
        assert!(w.check(8, t(130)).is_ok());
    }

    #[test]
    fn ready_at_reports_the_binding_constraint() {
        let mut w = window();
        w.record(0, t(0));
        assert_eq!(w.ready_at(1), t(6), "same group: tRRD_L");
        assert_eq!(w.ready_at(4), t(5), "cross group: tRRD_S");
    }
}
