//! In-DRAM ECC: a SEC-DED Hamming(72,64) codec (extension).
//!
//! §2.2 names two cell-repair techniques: row sparing (modeled in
//! [`crate::remap`]) and **in-DRAM ECC**, "which corrects up to a few
//! errors in a block of bits (called codeword)". This module implements
//! the standard single-error-correct / double-error-detect extended
//! Hamming code over 64 data bits — the codeword geometry real in-DRAM
//! ECC uses — so the interaction the row-hammer literature cares about
//! becomes measurable: ECC absorbs a *lone* disturbance flip, but
//! hammering past the threshold produces multi-bit codeword errors that
//! are at best detected and at worst silently miscorrected. ECC is a
//! reliability patch, not a row-hammer defense; TWiCe-style prevention
//! is still required.
//!
//! Layout: 72-bit codeword; check bits at positions 1, 2, 4, 8, 16, 32,
//! 64 (Hamming) plus an overall parity bit at position 0; data bits fill
//! the remaining positions in ascending order.

/// A 72-bit extended-Hamming codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Codeword(u128);

/// Outcome of decoding a (possibly corrupted) codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// No error.
    Clean,
    /// A single-bit error was corrected at codeword position `position`.
    Corrected {
        /// The corrected codeword bit position (0..72).
        position: u8,
    },
    /// A double-bit error was detected; data is unrecoverable.
    Uncorrectable,
}

const BITS: u8 = 72;
const CHECK_POSITIONS: [u8; 7] = [1, 2, 4, 8, 16, 32, 64];

fn is_check_position(p: u8) -> bool {
    p == 0 || p.is_power_of_two()
}

/// Encodes 64 data bits into a 72-bit codeword.
pub fn encode(data: u64) -> Codeword {
    let mut word: u128 = 0;
    // Scatter data bits into non-check positions.
    let mut d = 0;
    for p in 0..BITS {
        if !is_check_position(p) {
            if data >> d & 1 == 1 {
                word |= 1 << p;
            }
            d += 1;
        }
    }
    debug_assert_eq!(d, 64);
    // Hamming check bits: parity over positions with that bit set.
    for &c in &CHECK_POSITIONS {
        let mut parity = 0u8;
        for p in 1..BITS {
            if p & c != 0 && word >> p & 1 == 1 {
                parity ^= 1;
            }
        }
        if parity == 1 {
            word |= 1 << c;
        }
    }
    // Overall parity at position 0: make total parity even.
    if (word.count_ones() % 2) == 1 {
        word |= 1;
    }
    Codeword(word)
}

impl Codeword {
    /// Flips codeword bit `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position >= 72`.
    pub fn flip(&mut self, position: u8) {
        assert!(position < BITS, "codeword has 72 bits");
        self.0 ^= 1 << position;
    }

    /// The raw 72 bits.
    pub fn raw(&self) -> u128 {
        self.0
    }
}

/// Extracts the 64 data bits from a codeword (no checking).
fn extract(word: u128) -> u64 {
    let mut data = 0u64;
    let mut d = 0;
    for p in 0..BITS {
        if !is_check_position(p) {
            if word >> p & 1 == 1 {
                data |= 1 << d;
            }
            d += 1;
        }
    }
    data
}

/// Decodes a codeword, correcting a single-bit error if present.
///
/// Returns the (best-effort) data and the outcome. On
/// [`EccOutcome::Uncorrectable`] the data is whatever extraction yields
/// and must not be trusted.
pub fn decode(cw: Codeword) -> (u64, EccOutcome) {
    let mut word = cw.0;
    // Syndrome: XOR of positions of bits that fail their parity group ==
    // recomputing each check bit and XORing position weights.
    let mut syndrome: u8 = 0;
    for &c in &CHECK_POSITIONS {
        let mut parity = 0u8;
        for p in 1..BITS {
            if p & c != 0 && word >> p & 1 == 1 {
                parity ^= 1;
            }
        }
        if parity == 1 {
            syndrome |= c;
        }
    }
    let overall_even = word.count_ones().is_multiple_of(2);
    match (syndrome, overall_even) {
        (0, true) => (extract(word), EccOutcome::Clean),
        (0, false) => {
            // The overall parity bit itself flipped.
            word ^= 1;
            (extract(word), EccOutcome::Corrected { position: 0 })
        }
        (s, false) if s < BITS => {
            word ^= 1 << s;
            (extract(word), EccOutcome::Corrected { position: s })
        }
        _ => (extract(word), EccOutcome::Uncorrectable),
    }
}

/// Classifies what in-DRAM ECC would make of a row's flipped bits:
/// groups row bit-offsets into 64-bit data codewords and decodes each.
///
/// Returns `(corrected_codewords, uncorrectable_codewords,
/// silent_codewords)` — "silent" meaning ≥3 flips that alias to a clean
/// or miscorrected decode.
pub fn judge_flips(flipped_bits: &[u64]) -> (usize, usize, usize) {
    use std::collections::HashMap;
    let mut per_word: HashMap<u64, Vec<u8>> = HashMap::new();
    for &bit in flipped_bits {
        // Map a row data-bit offset to (codeword index, data bit).
        per_word.entry(bit / 64).or_default().push((bit % 64) as u8);
    }
    let mut corrected = 0;
    let mut uncorrectable = 0;
    let mut silent = 0;
    for flips in per_word.values() {
        // Encode an arbitrary data value; apply flips to the *data bits*
        // of the codeword; decode.
        let data = 0xA5A5_5A5A_F00D_BEEFu64;
        let mut cw = encode(data);
        for &f in flips {
            cw.flip(data_bit_position(f));
        }
        let (out, outcome) = decode(cw);
        match outcome {
            EccOutcome::Clean if out == data => corrected += 0, // impossible with >0 flips
            EccOutcome::Clean => silent += 1,
            EccOutcome::Corrected { .. } if out == data => corrected += 1,
            EccOutcome::Corrected { .. } => silent += 1,
            EccOutcome::Uncorrectable => uncorrectable += 1,
        }
    }
    (corrected, uncorrectable, silent)
}

/// The codeword position of data bit `d` (inverse of the scatter order).
fn data_bit_position(d: u8) -> u8 {
    let mut seen = 0;
    for p in 0..BITS {
        if !is_check_position(p) {
            if seen == d {
                return p;
            }
            seen += 1;
        }
    }
    unreachable!("data bit index must be < 64")
}

#[cfg(test)]
mod tests {
    use super::*;
    use twice_common::rng::SplitMix64;

    #[test]
    fn clean_round_trip() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..200 {
            let data = rng.next_u64();
            let (out, outcome) = decode(encode(data));
            assert_eq!(out, data);
            assert_eq!(outcome, EccOutcome::Clean);
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        let data = 0xDEAD_BEEF_0123_4567u64;
        for pos in 0..72u8 {
            let mut cw = encode(data);
            cw.flip(pos);
            let (out, outcome) = decode(cw);
            assert_eq!(out, data, "data corrupted after flip at {pos}");
            assert_eq!(outcome, EccOutcome::Corrected { position: pos });
        }
    }

    #[test]
    fn every_double_bit_error_is_detected() {
        let data = 0x0F0F_F0F0_AAAA_5555u64;
        let mut rng = SplitMix64::new(3);
        for _ in 0..500 {
            let a = rng.next_below(72) as u8;
            let mut b = rng.next_below(72) as u8;
            while b == a {
                b = rng.next_below(72) as u8;
            }
            let mut cw = encode(data);
            cw.flip(a);
            cw.flip(b);
            let (_, outcome) = decode(cw);
            assert_eq!(
                outcome,
                EccOutcome::Uncorrectable,
                "double error ({a},{b}) must be detected"
            );
        }
    }

    #[test]
    fn triple_errors_can_be_silent_or_miscorrected() {
        // SEC-DED's known blind spot: 3 flips produce an odd overall
        // parity and a plausible syndrome — a miscorrection.
        let data = 0x1111_2222_3333_4444u64;
        let mut miscorrections = 0;
        let mut rng = SplitMix64::new(9);
        for _ in 0..300 {
            let mut cw = encode(data);
            let mut picked = std::collections::HashSet::new();
            while picked.len() < 3 {
                picked.insert(rng.next_below(72) as u8);
            }
            for &p in &picked {
                cw.flip(p);
            }
            let (out, outcome) = decode(cw);
            if !matches!(outcome, EccOutcome::Uncorrectable) && out != data {
                miscorrections += 1;
            }
        }
        assert!(
            miscorrections > 0,
            "triple flips must sometimes silently corrupt"
        );
    }

    #[test]
    fn judge_classifies_hammer_damage() {
        // One lone flip: corrected.
        let (c, u, s) = judge_flips(&[5]);
        assert_eq!((c, u, s), (1, 0, 0));
        // Two flips in the same 64-bit word: uncorrectable.
        let (c, u, s) = judge_flips(&[5, 6]);
        assert_eq!((c, u, s), (0, 1, 0));
        // Two flips in different words: both corrected.
        let (c, u, s) = judge_flips(&[5, 64 + 6]);
        assert_eq!((c, u, s), (2, 0, 0));
    }

    #[test]
    fn data_bit_positions_are_bijective() {
        let mut seen = std::collections::HashSet::new();
        for d in 0..64u8 {
            let p = data_bit_position(d);
            assert!(!is_check_position(p));
            assert!(seen.insert(p));
        }
    }
}
