//! Row data storage and corruption tracking.
//!
//! The fault model in [`crate::hammer`] decides *when* a victim row is
//! disturbed past the threshold; this module gives those events bytes to
//! land on, so "silent data corruption" is literal: rows hold data,
//! reads and writes move it, and a row-hammer event flips a real bit.
//!
//! Storage is sparse at 64-byte (cache-line) granularity: an untouched
//! granule holds a deterministic background pattern derived from
//! `(seed, row, granule)`, so memory use is proportional to the touched
//! footprint, never to capacity. A shadow copy of what the *software*
//! believes is stored (writes only, never flips) makes integrity
//! checking exact: a granule is corrupted iff `actual != shadow`.

use std::collections::HashMap;
use twice_common::rng::SplitMix64;
use twice_common::snapshot::{
    Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, StateDigest,
};
use twice_common::RowId;

/// Bytes per storage granule (one cache line).
pub const GRANULE_BYTES: usize = 64;

/// Integrity verdict for one row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowIntegrity {
    /// Stored bits match what was written (or the background pattern).
    Clean,
    /// Stored bits differ: silent corruption. Carries the flipped bit
    /// offsets (bit index within the row).
    Corrupted(Vec<u64>),
}

impl RowIntegrity {
    /// Whether the row is corrupted.
    pub fn is_corrupted(&self) -> bool {
        matches!(self, RowIntegrity::Corrupted(_))
    }
}

type GranuleKey = (u32, u32); // (row, granule index)

/// Data contents of one bank's rows.
#[derive(Debug, Clone)]
pub struct BankData {
    row_bytes: usize,
    seed: u64,
    /// Actual cell contents (granules that diverged from the pattern).
    actual: HashMap<GranuleKey, [u8; GRANULE_BYTES]>,
    /// What software wrote (never sees flips).
    shadow: HashMap<GranuleKey, [u8; GRANULE_BYTES]>,
}

impl BankData {
    /// Creates a bank with `row_bytes` bytes per row and a background
    /// pattern seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `row_bytes` is zero or not a multiple of 64.
    pub fn new(row_bytes: usize, seed: u64) -> BankData {
        assert!(row_bytes > 0, "rows must hold data");
        assert!(
            row_bytes.is_multiple_of(GRANULE_BYTES),
            "row size must be granule-aligned"
        );
        BankData {
            row_bytes,
            seed,
            actual: HashMap::new(),
            shadow: HashMap::new(),
        }
    }

    /// Bytes per row.
    #[inline]
    pub fn row_bytes(&self) -> usize {
        self.row_bytes
    }

    /// The deterministic background pattern of one granule.
    fn pattern(&self, key: GranuleKey) -> [u8; GRANULE_BYTES] {
        let mut rng = SplitMix64::new(self.seed ^ (u64::from(key.0) << 24) ^ u64::from(key.1));
        let mut out = [0u8; GRANULE_BYTES];
        for chunk in out.chunks_mut(8) {
            chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
        }
        out
    }

    fn materialize(&mut self, key: GranuleKey) {
        if !self.actual.contains_key(&key) {
            let p = self.pattern(key);
            self.actual.insert(key, p);
            self.shadow.insert(key, p);
        }
    }

    /// Writes `data` into `row` starting at byte `offset` (both the
    /// cells and the software shadow).
    ///
    /// # Panics
    ///
    /// Panics if the write overruns the row.
    pub fn write(&mut self, row: RowId, offset: usize, data: &[u8]) {
        assert!(
            offset + data.len() <= self.row_bytes,
            "write overruns the row"
        );
        for (i, &byte) in data.iter().enumerate() {
            let pos = offset + i;
            let key = (row.0, (pos / GRANULE_BYTES) as u32);
            self.materialize(key);
            let within = pos % GRANULE_BYTES;
            self.actual.get_mut(&key).expect("materialized")[within] = byte;
            self.shadow.get_mut(&key).expect("materialized")[within] = byte;
        }
    }

    /// Reads `len` bytes of `row` starting at `offset` — the *actual*
    /// cell contents, flips included.
    ///
    /// # Panics
    ///
    /// Panics if the read overruns the row.
    pub fn read(&self, row: RowId, offset: usize, len: usize) -> Vec<u8> {
        assert!(offset + len <= self.row_bytes, "read overruns the row");
        (offset..offset + len)
            .map(|pos| {
                let key = (row.0, (pos / GRANULE_BYTES) as u32);
                let within = pos % GRANULE_BYTES;
                match self.actual.get(&key) {
                    Some(g) => g[within],
                    None => self.pattern(key)[within],
                }
            })
            .collect()
    }

    /// Flips physical bit `bit` of `row` (a row-hammer event). Only the
    /// actual cells change — software never learns.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the row.
    pub fn flip_bit(&mut self, row: RowId, bit: u64) {
        assert!(
            (bit as usize) < self.row_bytes * 8,
            "bit index outside the row"
        );
        let pos = (bit / 8) as usize;
        let key = (row.0, (pos / GRANULE_BYTES) as u32);
        self.materialize(key);
        self.actual.get_mut(&key).expect("materialized")[pos % GRANULE_BYTES] ^= 1 << (bit % 8);
    }

    /// Compares actual cells against the software shadow.
    pub fn verify(&self, row: RowId) -> RowIntegrity {
        let mut flipped = Vec::new();
        for (key, actual) in &self.actual {
            if key.0 != row.0 {
                continue;
            }
            let shadow = self.shadow.get(key).expect("shadow tracks actual");
            for (i, (a, s)) in actual.iter().zip(shadow.iter()).enumerate() {
                let mut diff = a ^ s;
                while diff != 0 {
                    let b = diff.trailing_zeros();
                    let base = u64::from(key.1) * GRANULE_BYTES as u64 * 8;
                    flipped.push(base + i as u64 * 8 + u64::from(b));
                    diff &= diff - 1;
                }
            }
        }
        if flipped.is_empty() {
            RowIntegrity::Clean
        } else {
            flipped.sort_unstable();
            RowIntegrity::Corrupted(flipped)
        }
    }

    /// All rows whose cells diverge from the shadow.
    pub fn corrupted_rows(&self) -> Vec<RowId> {
        let mut rows: Vec<u32> = self.actual.keys().map(|k| k.0).collect();
        rows.sort_unstable();
        rows.dedup();
        rows.into_iter()
            .map(RowId)
            .filter(|&r| self.verify(r).is_corrupted())
            .collect()
    }

    /// Number of materialized granules (memory-use metric).
    pub fn touched_granules(&self) -> usize {
        self.actual.len()
    }
}

fn sorted_granules(map: &HashMap<GranuleKey, [u8; GRANULE_BYTES]>) -> Vec<(GranuleKey, &[u8])> {
    let mut entries: Vec<(GranuleKey, &[u8])> =
        map.iter().map(|(&k, v)| (k, v.as_slice())).collect();
    entries.sort_unstable_by_key(|&(k, _)| k);
    entries
}

fn save_granules(w: &mut SnapshotWriter, map: &HashMap<GranuleKey, [u8; GRANULE_BYTES]>) {
    let entries = sorted_granules(map);
    w.put_usize(entries.len());
    for ((row, granule), bytes) in entries {
        w.put_u32(row);
        w.put_u32(granule);
        w.put_bytes(bytes);
    }
}

fn load_granules(
    r: &mut SnapshotReader<'_>,
) -> Result<HashMap<GranuleKey, [u8; GRANULE_BYTES]>, SnapshotError> {
    let n = r.take_usize()?;
    let mut map = HashMap::with_capacity(n);
    for _ in 0..n {
        let row = r.take_u32()?;
        let granule = r.take_u32()?;
        let bytes = r.take_bytes()?;
        let arr: [u8; GRANULE_BYTES] = bytes.try_into().map_err(|_| {
            SnapshotError::StateMismatch(format!("granule of {} bytes", bytes.len()))
        })?;
        map.insert((row, granule), arr);
    }
    Ok(map)
}

impl Snapshot for BankData {
    fn save_state(&self, w: &mut SnapshotWriter) {
        save_granules(w, &self.actual);
        save_granules(w, &self.shadow);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.actual = load_granules(r)?;
        self.shadow = load_granules(r)?;
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        for map in [&self.actual, &self.shadow] {
            let entries = sorted_granules(map);
            d.write_usize(entries.len());
            for ((row, granule), bytes) in entries {
                d.write_u32(row);
                d.write_u32(granule);
                d.write_bytes(bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> BankData {
        BankData::new(8_192, 42)
    }

    #[test]
    fn untouched_rows_read_their_pattern_deterministically() {
        let b = bank();
        let a = b.read(RowId(5), 0, 64);
        let b2 = bank().read(RowId(5), 0, 64);
        assert_eq!(a, b2);
        assert_ne!(a, bank().read(RowId(6), 0, 64), "patterns differ per row");
        assert_eq!(b.verify(RowId(5)), RowIntegrity::Clean);
    }

    #[test]
    fn writes_read_back_and_stay_clean() {
        let mut b = bank();
        b.write(RowId(3), 100, &[0xAA, 0xBB, 0xCC]);
        assert_eq!(b.read(RowId(3), 100, 3), vec![0xAA, 0xBB, 0xCC]);
        // Bytes around the write keep the pattern.
        let pattern = bank().read(RowId(3), 96, 4);
        assert_eq!(b.read(RowId(3), 96, 4), pattern);
        assert_eq!(b.verify(RowId(3)), RowIntegrity::Clean);
    }

    #[test]
    fn writes_spanning_granules_work() {
        let mut b = bank();
        let data: Vec<u8> = (0..130).map(|i| i as u8).collect();
        b.write(RowId(1), 60, &data);
        assert_eq!(b.read(RowId(1), 60, 130), data);
        assert!(b.touched_granules() >= 3);
    }

    #[test]
    fn a_flip_is_silent_corruption() {
        let mut b = bank();
        b.write(RowId(3), 0, &[0x00; 8]);
        b.flip_bit(RowId(3), 13);
        let v = b.verify(RowId(3));
        assert_eq!(v, RowIntegrity::Corrupted(vec![13]));
        // The read sees the corrupted value (bit 13 = byte 1, bit 5).
        assert_eq!(b.read(RowId(3), 1, 1), vec![0b0010_0000]);
        assert_eq!(b.corrupted_rows(), vec![RowId(3)]);
    }

    #[test]
    fn flip_in_a_far_granule_reports_the_absolute_bit() {
        let mut b = bank();
        b.flip_bit(RowId(2), 8 * 8_192 - 1); // last bit of the row
        match b.verify(RowId(2)) {
            RowIntegrity::Corrupted(bits) => assert_eq!(bits, vec![8 * 8_192 - 1]),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn rewriting_a_corrupted_byte_heals_it() {
        let mut b = bank();
        b.write(RowId(3), 0, &[0u8; 4]);
        b.flip_bit(RowId(3), 5);
        assert!(b.verify(RowId(3)).is_corrupted());
        b.write(RowId(3), 0, &[0u8; 4]);
        assert_eq!(b.verify(RowId(3)), RowIntegrity::Clean);
    }

    #[test]
    fn double_flip_cancels() {
        let mut b = bank();
        b.flip_bit(RowId(1), 7);
        b.flip_bit(RowId(1), 7);
        assert_eq!(b.verify(RowId(1)), RowIntegrity::Clean);
    }

    #[test]
    fn storage_is_sparse_per_granule() {
        let mut b = bank();
        assert_eq!(b.touched_granules(), 0);
        b.write(RowId(100), 0, &[1]);
        assert_eq!(b.touched_granules(), 1, "one granule, not a whole row");
        let _ = b.read(RowId(200), 0, 64); // reads do not materialize
        assert_eq!(b.touched_granules(), 1);
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn overrun_write_panics() {
        bank().write(RowId(0), 8_190, &[0u8; 8]);
    }

    #[test]
    #[should_panic(expected = "bit index")]
    fn out_of_range_flip_panics() {
        bank().flip_bit(RowId(0), 8 * 8_192);
    }
}
