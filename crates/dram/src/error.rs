//! DRAM simulator error types.

use std::error::Error;
use std::fmt;
use twice_common::{RowId, Span, Time};

/// Which timing parameter a premature command violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimingKind {
    /// ACT-to-ACT to the same bank (`tRC`).
    Trc,
    /// ACT-to-ACT across banks of a rank (`tRRD`).
    Trrd,
    /// Four-activate window (`tFAW`).
    Tfaw,
    /// ACT-to-column command (`tRCD`).
    Trcd,
    /// ACT-to-PRE minimum (`tRAS`).
    Tras,
    /// PRE-to-ACT (`tRP`).
    Trp,
    /// Refresh occupancy (`tRFC`).
    Trfc,
    /// Adjacent-row-refresh occupancy (`2·tRC + tRP`).
    Arr,
}

impl TimingKind {
    /// Stable wire code for checkpoints.
    pub(crate) fn code(self) -> u8 {
        match self {
            TimingKind::Trc => 0,
            TimingKind::Trrd => 1,
            TimingKind::Tfaw => 2,
            TimingKind::Trcd => 3,
            TimingKind::Tras => 4,
            TimingKind::Trp => 5,
            TimingKind::Trfc => 6,
            TimingKind::Arr => 7,
        }
    }

    pub(crate) fn from_code(code: u8) -> Option<TimingKind> {
        Some(match code {
            0 => TimingKind::Trc,
            1 => TimingKind::Trrd,
            2 => TimingKind::Tfaw,
            3 => TimingKind::Trcd,
            4 => TimingKind::Tras,
            5 => TimingKind::Trp,
            6 => TimingKind::Trfc,
            7 => TimingKind::Arr,
            _ => return None,
        })
    }
}

impl fmt::Display for TimingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TimingKind::Trc => "tRC",
            TimingKind::Trrd => "tRRD",
            TimingKind::Tfaw => "tFAW",
            TimingKind::Trcd => "tRCD",
            TimingKind::Tras => "tRAS",
            TimingKind::Trp => "tRP",
            TimingKind::Trfc => "tRFC",
            TimingKind::Arr => "ARR busy",
        };
        f.write_str(s)
    }
}

/// A command arrived before the bank/rank was ready for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingViolation {
    /// The constraint that was violated.
    pub kind: TimingKind,
    /// The earliest instant at which the command would have been legal.
    pub ready_at: Time,
    /// When the command was actually issued.
    pub issued_at: Time,
}

impl TimingViolation {
    /// How early the command was.
    pub fn early_by(&self) -> Span {
        self.ready_at.saturating_since(self.issued_at)
    }
}

impl fmt::Display for TimingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violation: issued at {}, ready at {}",
            self.kind, self.issued_at, self.ready_at
        )
    }
}

impl Error for TimingViolation {}

/// Any error the DRAM device model can report for an issued command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramError {
    /// A timing constraint was violated.
    Timing(TimingViolation),
    /// A column command or precharge-less ACT hit a bank in the wrong state
    /// (e.g. RD with no open row, ACT with a row already open).
    BadState {
        /// A static description of the conflict.
        reason: &'static str,
    },
    /// The addressed row does not exist in the bank.
    NoSuchRow {
        /// The offending row.
        row: RowId,
    },
    /// The addressed bank does not exist in the rank.
    NoSuchBank {
        /// The offending bank index.
        bank: u16,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::Timing(v) => write!(f, "{v}"),
            DramError::BadState { reason } => write!(f, "bad bank state: {reason}"),
            DramError::NoSuchRow { row } => write!(f, "no such row: {row}"),
            DramError::NoSuchBank { bank } => write!(f, "no such bank: {bank}"),
        }
    }
}

impl Error for DramError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DramError::Timing(v) => Some(v),
            _ => None,
        }
    }
}

impl From<TimingViolation> for DramError {
    fn from(v: TimingViolation) -> Self {
        DramError::Timing(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twice_common::Span;

    #[test]
    fn violation_reports_earliness() {
        let v = TimingViolation {
            kind: TimingKind::Trc,
            ready_at: Time::ZERO + Span::from_ns(45),
            issued_at: Time::ZERO + Span::from_ns(10),
        };
        assert_eq!(v.early_by(), Span::from_ns(35));
        assert!(v.to_string().contains("tRC"));
    }

    #[test]
    fn error_is_std_error_with_source() {
        let v = TimingViolation {
            kind: TimingKind::Tfaw,
            ready_at: Time::ZERO,
            issued_at: Time::ZERO,
        };
        let e: DramError = v.into();
        assert!(Error::source(&e).is_some());
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<DramError>();
    }

    #[test]
    fn display_covers_variants() {
        assert!(DramError::BadState { reason: "x" }
            .to_string()
            .contains("x"));
        assert!(DramError::NoSuchRow { row: RowId(5) }
            .to_string()
            .contains("RowId(5)"));
        assert!(DramError::NoSuchBank { bank: 9 }.to_string().contains('9'));
    }
}
