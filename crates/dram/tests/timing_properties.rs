//! Property tests: the device model never accepts a timing-illegal
//! command stream, no matter what a (buggy) controller throws at it.
//!
//! This matters beyond hygiene — TWiCe's capacity bound is only sound if
//! `tRC`/`tRFC` really limit the ACT stream, so the enforcement layer is
//! part of the proof surface.

use proptest::prelude::*;
use twice_common::{RowId, Span, Time};
use twice_dram::cmd::DramCommand;
use twice_dram::device::{DramRank, RankConfig};

#[derive(Debug, Clone, Copy)]
enum Attempt {
    Act { bank: u8, row: u8 },
    Pre { bank: u8 },
    Read { bank: u8 },
    Refresh { bank: u8 },
    Arr { bank: u8, row: u8 },
}

fn attempts() -> impl Strategy<Value = Vec<(Attempt, u16)>> {
    let attempt = prop_oneof![
        4 => (any::<u8>(), any::<u8>()).prop_map(|(b, r)| Attempt::Act { bank: b % 4, row: r }),
        3 => any::<u8>().prop_map(|b| Attempt::Pre { bank: b % 4 }),
        2 => any::<u8>().prop_map(|b| Attempt::Read { bank: b % 4 }),
        1 => any::<u8>().prop_map(|b| Attempt::Refresh { bank: b % 4 }),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(b, r)| Attempt::Arr { bank: b % 4, row: r }),
    ];
    // Each step advances time by 0..=60 ns: short enough to provoke
    // violations, long enough to let some commands through.
    proptest::collection::vec((attempt, 0u16..60), 0..600)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn accepted_acts_respect_trc_trrd_and_tfaw(seq in attempts()) {
        let cfg = RankConfig::for_test(4, 256).with_n_th(1_000_000);
        let timings = cfg.timings.clone();
        let mut rank = DramRank::new(cfg);
        let mut now = Time::ZERO;
        let mut accepted_acts: Vec<(u16, Time)> = Vec::new();
        for (attempt, dt) in seq {
            now += Span::from_ns(u64::from(dt));
            let cmd = match attempt {
                Attempt::Act { bank, row } => DramCommand::Activate {
                    bank: u16::from(bank),
                    row: RowId(u32::from(row)),
                },
                Attempt::Pre { bank } => DramCommand::Precharge { bank: u16::from(bank) },
                Attempt::Read { bank } => DramCommand::Read {
                    bank: u16::from(bank),
                    col: twice_common::ColId(0),
                },
                Attempt::Refresh { bank } => DramCommand::Refresh { bank: u16::from(bank) },
                Attempt::Arr { bank, row } => DramCommand::AdjacentRowRefresh {
                    bank: u16::from(bank),
                    row: RowId(u32::from(row)),
                },
            };
            let was_act = cmd.is_activate();
            if rank.issue(cmd, now).is_ok() && was_act {
                accepted_acts.push((cmd.bank(), now));
            }
        }
        // Post-hoc: the *accepted* ACT stream satisfies every constraint.
        for w in accepted_acts.windows(2) {
            let (_, t0) = w[0];
            let (_, t1) = w[1];
            prop_assert!(t1.saturating_since(t0) >= timings.t_rrd, "tRRD violated");
        }
        for (bank, t1) in &accepted_acts {
            // Same-bank tRC.
            let prev = accepted_acts
                .iter()
                .filter(|(b, t)| b == bank && t < t1)
                .map(|(_, t)| *t)
                .max();
            if let Some(t0) = prev {
                prop_assert!(
                    t1.saturating_since(t0) >= timings.t_rc,
                    "tRC violated on bank {bank}"
                );
            }
        }
        for w in accepted_acts.windows(5) {
            let (_, t0) = w[0];
            let (_, t4) = w[4];
            prop_assert!(t4.saturating_since(t0) >= timings.t_faw, "tFAW violated");
        }
    }

    #[test]
    fn errors_never_mutate_counters(seq in attempts()) {
        // Issue the same stream twice: once against a fresh device, once
        // interleaving each command with a guaranteed-rejected duplicate
        // issued at the same instant. Stats must be identical.
        let build = || DramRank::new(RankConfig::for_test(2, 256).with_n_th(1_000_000));
        let mut a = build();
        let mut b = build();
        let mut now = Time::ZERO;
        for (attempt, dt) in seq {
            now += Span::from_ns(u64::from(dt));
            let cmd = match attempt {
                Attempt::Act { bank, row } => DramCommand::Activate {
                    bank: u16::from(bank % 2),
                    row: RowId(u32::from(row)),
                },
                Attempt::Pre { bank } => DramCommand::Precharge { bank: u16::from(bank % 2) },
                _ => continue,
            };
            let ra = a.issue(cmd, now);
            let rb = b.issue(cmd, now);
            prop_assert_eq!(ra.is_ok(), rb.is_ok());
            if ra.is_ok() {
                // A duplicate at the same instant must be rejected (ACT:
                // open row / tRC; PRE: tRAS or no open row) and must not
                // disturb device B's state.
                let _ = b.issue(cmd, now);
            }
        }
        prop_assert_eq!(a.stats().acts, b.stats().acts);
        prop_assert_eq!(a.stats().precharges, b.stats().precharges);
    }

    #[test]
    fn disturbance_bookkeeping_matches_accepted_acts(seq in attempts()) {
        // Total disturbance added equals the number of physical neighbors
        // of each accepted ACT (minus what refreshes cleared). With
        // refreshes excluded, check the pure-ACT invariant.
        let cfg = RankConfig::for_test(1, 64).with_n_th(1_000_000_000);
        let mut rank = DramRank::new(cfg);
        let mut now = Time::ZERO;
        let mut open: Option<RowId> = None;
        let mut expected: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for (attempt, dt) in seq {
            now += Span::from_ns(u64::from(dt));
            match attempt {
                Attempt::Act { row, .. } => {
                    let row = RowId(u32::from(row) % 64);
                    if rank
                        .issue(DramCommand::Activate { bank: 0, row }, now)
                        .is_ok()
                    {
                        open = Some(row);
                        expected.insert(row.0, 0); // activation restores self
                        for v in rank.physical_neighbors(0, row) {
                            *expected.entry(v.0).or_insert(0) += 1;
                        }
                    }
                }
                Attempt::Pre { .. }
                    if rank.issue(DramCommand::Precharge { bank: 0 }, now).is_ok() => {
                        open = None;
                    }
                _ => {}
            }
            let _ = open;
        }
        for (row, count) in expected {
            prop_assert_eq!(
                rank.disturbance_of(0, RowId(row)),
                count,
                "row {} disturbance mismatch",
                row
            );
        }
    }
}
