//! Property tests: the device model never accepts a timing-illegal
//! command stream, no matter what a (buggy) controller throws at it.
//!
//! This matters beyond hygiene — TWiCe's capacity bound is only sound if
//! `tRC`/`tRFC` really limit the ACT stream, so the enforcement layer is
//! part of the proof surface.
//!
//! Streams are generated with the in-tree seeded `SplitMix64` (the
//! proptest crate is unavailable offline); each seed is a reproducible
//! case.

use twice_common::rng::SplitMix64;
use twice_common::{RowId, Span, Time};
use twice_dram::cmd::DramCommand;
use twice_dram::device::{DramRank, RankConfig};

#[derive(Debug, Clone, Copy)]
enum Attempt {
    Act { bank: u8, row: u8 },
    Pre { bank: u8 },
    Read { bank: u8 },
    Refresh { bank: u8 },
    Arr { bank: u8, row: u8 },
}

/// Weighted like the original proptest strategy: ACT 4, PRE 3, READ 2,
/// REF 1, ARR 1. Each step advances time by 0..=59 ns — short enough to
/// provoke violations, long enough to let some commands through.
fn attempts(seed: u64) -> Vec<(Attempt, u16)> {
    let mut rng = SplitMix64::new(seed);
    let n = rng.next_below(600) as usize;
    (0..n)
        .map(|_| {
            let b = rng.next_below(4) as u8;
            let r = rng.next_u64() as u8;
            let attempt = match rng.next_below(11) {
                0..=3 => Attempt::Act { bank: b, row: r },
                4..=6 => Attempt::Pre { bank: b },
                7..=8 => Attempt::Read { bank: b },
                9 => Attempt::Refresh { bank: b },
                _ => Attempt::Arr { bank: b, row: r },
            };
            (attempt, rng.next_below(60) as u16)
        })
        .collect()
}

const CASES: u64 = 48;

#[test]
fn accepted_acts_respect_trc_trrd_and_tfaw() {
    for seed in 0..CASES {
        let seq = attempts(seed);
        let cfg = RankConfig::for_test(4, 256).with_n_th(1_000_000);
        let timings = cfg.timings.clone();
        let mut rank = DramRank::new(cfg);
        let mut now = Time::ZERO;
        let mut accepted_acts: Vec<(u16, Time)> = Vec::new();
        for (attempt, dt) in seq {
            now += Span::from_ns(u64::from(dt));
            let cmd = match attempt {
                Attempt::Act { bank, row } => DramCommand::Activate {
                    bank: u16::from(bank),
                    row: RowId(u32::from(row)),
                },
                Attempt::Pre { bank } => DramCommand::Precharge {
                    bank: u16::from(bank),
                },
                Attempt::Read { bank } => DramCommand::Read {
                    bank: u16::from(bank),
                    col: twice_common::ColId(0),
                },
                Attempt::Refresh { bank } => DramCommand::Refresh {
                    bank: u16::from(bank),
                },
                Attempt::Arr { bank, row } => DramCommand::AdjacentRowRefresh {
                    bank: u16::from(bank),
                    row: RowId(u32::from(row)),
                },
            };
            let was_act = cmd.is_activate();
            if rank.issue(cmd, now).is_ok() && was_act {
                accepted_acts.push((cmd.bank(), now));
            }
        }
        // Post-hoc: the *accepted* ACT stream satisfies every constraint.
        for w in accepted_acts.windows(2) {
            let (_, t0) = w[0];
            let (_, t1) = w[1];
            assert!(t1.saturating_since(t0) >= timings.t_rrd, "tRRD violated");
        }
        for (bank, t1) in &accepted_acts {
            // Same-bank tRC.
            let prev = accepted_acts
                .iter()
                .filter(|(b, t)| b == bank && t < t1)
                .map(|(_, t)| *t)
                .max();
            if let Some(t0) = prev {
                assert!(
                    t1.saturating_since(t0) >= timings.t_rc,
                    "tRC violated on bank {bank}"
                );
            }
        }
        for w in accepted_acts.windows(5) {
            let (_, t0) = w[0];
            let (_, t4) = w[4];
            assert!(t4.saturating_since(t0) >= timings.t_faw, "tFAW violated");
        }
    }
}

#[test]
fn errors_never_mutate_counters() {
    // Issue the same stream twice: once against a fresh device, once
    // interleaving each command with a guaranteed-rejected duplicate
    // issued at the same instant. Stats must be identical.
    for seed in 0..CASES {
        let seq = attempts(seed ^ 0xD1CE);
        let build = || DramRank::new(RankConfig::for_test(2, 256).with_n_th(1_000_000));
        let mut a = build();
        let mut b = build();
        let mut now = Time::ZERO;
        for (attempt, dt) in seq {
            now += Span::from_ns(u64::from(dt));
            let cmd = match attempt {
                Attempt::Act { bank, row } => DramCommand::Activate {
                    bank: u16::from(bank % 2),
                    row: RowId(u32::from(row)),
                },
                Attempt::Pre { bank } => DramCommand::Precharge {
                    bank: u16::from(bank % 2),
                },
                _ => continue,
            };
            let ra = a.issue(cmd, now);
            let rb = b.issue(cmd, now);
            assert_eq!(ra.is_ok(), rb.is_ok());
            if ra.is_ok() {
                // A duplicate at the same instant must be rejected (ACT:
                // open row / tRC; PRE: tRAS or no open row) and must not
                // disturb device B's state.
                let _ = b.issue(cmd, now);
            }
        }
        assert_eq!(a.stats().acts, b.stats().acts);
        assert_eq!(a.stats().precharges, b.stats().precharges);
    }
}

#[test]
fn disturbance_bookkeeping_matches_accepted_acts() {
    // Total disturbance added equals the number of physical neighbors
    // of each accepted ACT (minus what refreshes cleared). With
    // refreshes excluded, check the pure-ACT invariant.
    for seed in 0..CASES {
        let seq = attempts(seed ^ 0xFA11);
        let cfg = RankConfig::for_test(1, 64).with_n_th(1_000_000_000);
        let mut rank = DramRank::new(cfg);
        let mut now = Time::ZERO;
        let mut open: Option<RowId> = None;
        let mut expected: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for (attempt, dt) in seq {
            now += Span::from_ns(u64::from(dt));
            match attempt {
                Attempt::Act { row, .. } => {
                    let row = RowId(u32::from(row) % 64);
                    if rank
                        .issue(DramCommand::Activate { bank: 0, row }, now)
                        .is_ok()
                    {
                        open = Some(row);
                        expected.insert(row.0, 0); // activation restores self
                        for v in rank.physical_neighbors(0, row) {
                            *expected.entry(v.0).or_insert(0) += 1;
                        }
                    }
                }
                Attempt::Pre { .. }
                    if rank.issue(DramCommand::Precharge { bank: 0 }, now).is_ok() =>
                {
                    open = None;
                }
                _ => {}
            }
            let _ = open;
        }
        for (row, count) in expected {
            assert_eq!(
                rank.disturbance_of(0, RowId(row)),
                count,
                "row {row} disturbance mismatch (seed {seed})"
            );
        }
    }
}
