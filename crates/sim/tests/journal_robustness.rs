//! `OrderedJournalWriter` under hostile storage: failed appends must be
//! dropped and counted (never allowed to stall the grid-order prefix),
//! transient failures must heal within the per-append retry budget, and
//! a worker that dies while holding the journal mutex must not wedge
//! anyone else's flush.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use twice_sim::cio::{CampaignIo, RealIo};
use twice_sim::journal::OrderedJournalWriter;

fn temp_journal(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("twice-jrobust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// A storage layer whose appends fail until its failure budget is
/// spent, then delegate to the real filesystem. Every other operation
/// is passed straight through.
#[derive(Debug)]
struct FlakyAppendIo {
    budget: AtomicU64,
    attempts: AtomicU64,
}

impl FlakyAppendIo {
    fn failing(times: u64) -> FlakyAppendIo {
        FlakyAppendIo {
            budget: AtomicU64::new(times),
            attempts: AtomicU64::new(0),
        }
    }
}

impl CampaignIo for FlakyAppendIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        RealIo.create_dir_all(dir)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        RealIo.read(path)
    }
    fn write_atomically(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        RealIo.write_atomically(path, bytes)
    }
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        RealIo.write_file(path, bytes)
    }
    fn append_line(&self, path: &Path, line: &str) -> io::Result<()> {
        self.attempts.fetch_add(1, Ordering::SeqCst);
        let spent = self
            .budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
            .is_ok();
        if spent {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected append failure",
            ));
        }
        RealIo.append_line(path, line)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        RealIo.remove_file(path)
    }
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        RealIo.list_dir(dir)
    }
}

#[test]
fn a_dead_disk_drops_and_counts_every_line_but_the_prefix_advances() {
    let path = temp_journal("dead");
    let io = Arc::new(FlakyAppendIo::failing(u64::MAX));
    let writer = OrderedJournalWriter::new(io.clone(), path.clone(), 3, 0);
    writer.submit(0, Some("zero".into()));
    writer.submit(2, Some("two".into()));
    writer.submit(1, Some("one".into()));
    assert_eq!(
        writer.dropped(),
        3,
        "every line is dropped exactly once, in grid order"
    );
    assert_eq!(
        io.attempts.load(Ordering::SeqCst),
        9,
        "each drop must first spend the full 3-attempt retry budget"
    );
    assert!(!path.exists(), "nothing may reach a dead disk");
    // The cursor moved past the drops: a late straggler flush has
    // nothing left to write and drops nothing twice.
    writer.flush_stragglers();
    assert_eq!(writer.dropped(), 3);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_transient_append_failure_heals_within_the_retry_budget() {
    let path = temp_journal("flaky");
    let io = Arc::new(FlakyAppendIo::failing(2));
    let writer = OrderedJournalWriter::new(io, path.clone(), 3, 0);
    writer.submit(0, Some("zero".into()));
    writer.submit(1, Some("one".into()));
    assert_eq!(writer.dropped(), 0, "retries must absorb the burst");
    assert_eq!(
        std::fs::read_to_string(&path).expect("journal readable"),
        "zero\none\n",
        "healed lines land in grid order"
    );
    let _ = std::fs::remove_file(&path);
}

/// An append that panics mid-flush, once — the writer holds its mutex
/// at that moment, so this poisons it the way a dying worker would.
#[derive(Debug)]
struct PanicOnceIo {
    armed: AtomicU64,
}

impl CampaignIo for PanicOnceIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        RealIo.create_dir_all(dir)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        RealIo.read(path)
    }
    fn write_atomically(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        RealIo.write_atomically(path, bytes)
    }
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        RealIo.write_file(path, bytes)
    }
    fn append_line(&self, path: &Path, line: &str) -> io::Result<()> {
        if self.armed.swap(0, Ordering::SeqCst) == 1 {
            panic!("worker died mid-append");
        }
        RealIo.append_line(path, line)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        RealIo.remove_file(path)
    }
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        RealIo.list_dir(dir)
    }
}

#[test]
fn a_worker_dying_mid_append_poisons_nothing_for_the_survivors() {
    let path = temp_journal("poison");
    let writer = OrderedJournalWriter::new(
        Arc::new(PanicOnceIo {
            armed: AtomicU64::new(1),
        }),
        path.clone(),
        1,
        0,
    );
    // Index 0's flush panics while the journal lock is held.
    let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        writer.submit(0, Some("never lands".into()));
    }));
    assert!(died.is_err(), "the injected panic must fire");
    // Survivors keep submitting through the recovered mutex; their
    // lines reach the file in grid order.
    writer.submit(2, Some("two".into()));
    writer.submit(1, Some("one".into()));
    writer.flush_stragglers();
    assert_eq!(
        std::fs::read_to_string(&path).expect("journal readable"),
        "one\ntwo\n",
        "the dead worker loses only its own line"
    );
    assert_eq!(writer.dropped(), 0);
    let _ = std::fs::remove_file(&path);
}
