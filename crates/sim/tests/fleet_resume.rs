//! Fleet kill-and-resume: the supervised fleet runtime (DESIGN.md §5g)
//! must survive a mid-stream kill and converge to the pristine run's
//! per-shard digests — even when the resume is launched under a
//! *different* device-fault seed, because the journal's meta line wins
//! over the caller's knobs. Mirrors `storage_torture.rs` for the fleet.

use std::collections::BTreeMap;
use twice_sim::fleet::{run_fleet, FleetConfig, FleetReport, FLEET_JOURNAL_FILE};
use twice_sim::journal::parse_line;
use twice_sim::supervisor::ShardError;

const SHARDS: usize = 24;
const REQUESTS: u64 = 300;
const EPOCH: u64 = 128;
const DEVICE_SEED: u64 = 0xD5;
const DEAD: usize = 2;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("twice-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base_config(dir: Option<&std::path::Path>) -> FleetConfig {
    let mut fc = FleetConfig::new(SHARDS);
    fc.requests = REQUESTS;
    fc.epoch = EPOCH;
    fc.device_faults = Some(DEVICE_SEED);
    fc.dead_shards = DEAD;
    fc.retries = 2;
    fc.telemetry_every = 4;
    fc.dir = dir.map(|d| d.to_path_buf());
    fc
}

/// Completed shards as `index → digest`; quarantined shards as the set
/// of indices. Together they describe the run's converged state.
fn partition(report: &FleetReport) -> (BTreeMap<usize, u64>, Vec<usize>) {
    let mut digests = BTreeMap::new();
    let mut quarantined = Vec::new();
    for shard in &report.shards {
        match &shard.result {
            Ok(stats) => {
                digests.insert(shard.index, stats.digest);
            }
            Err(ShardError::Quarantined { .. }) => quarantined.push(shard.index),
            Err(other) => panic!("shard {} ended abnormally: {other}", shard.index),
        }
    }
    (digests, quarantined)
}

#[test]
fn kill_and_resume_under_a_different_device_seed_reproduces_the_fleet() {
    // The pristine reference: one uninterrupted 4-worker run.
    let ref_dir = temp_dir("ref");
    let mut fc = base_config(Some(&ref_dir));
    fc.jobs = 4;
    let pristine = run_fleet(&fc).expect("pristine fleet");
    let (want_digests, want_quarantined) = partition(&pristine);
    assert_eq!(want_quarantined.len(), DEAD, "sabotage must quarantine");
    assert!(
        pristine.summary.device_faults > 0,
        "the device fault plan must actually fire"
    );

    // Leg 1: same fleet, killed mid-stream after a handful of fresh
    // completions. The journal and epoch checkpoints stay behind.
    let dir = temp_dir("killed");
    let mut fc = base_config(Some(&dir));
    fc.jobs = 4;
    fc.halt_after = Some(5);
    let halted = run_fleet(&fc).expect("halted fleet");
    assert!(halted.halted, "the crash simulation must trigger");
    assert!(
        dir.join(FLEET_JOURNAL_FILE).exists(),
        "the kill must leave a journal to resume from"
    );

    // Leg 2: resume under a *different* device-fault seed and attacker
    // count. The meta line recorded by leg 1 must win over both, so the
    // resumed fleet still converges to the pristine digests.
    let mut fc = base_config(Some(&dir));
    fc.jobs = 4;
    fc.resume = true;
    fc.device_faults = Some(0xBAD_CAFE);
    fc.attackers = 5;
    let resumed = run_fleet(&fc).expect("resumed fleet");
    let (got_digests, got_quarantined) = partition(&resumed);

    assert!(!resumed.halted);
    assert!(resumed.salvaged > 0, "leg 2 must trust leg 1's journal");
    assert_eq!(
        got_quarantined, want_quarantined,
        "sabotage is part of the recorded fleet shape: the same shards quarantine"
    );
    assert_eq!(
        got_digests, want_digests,
        "every unquarantined shard must reproduce the pristine digest byte-for-byte"
    );
    // The backpressure drop-counter depends on consumer timing; every
    // other aggregate must converge exactly.
    let mut got_summary = resumed.summary.clone();
    let mut want_summary = pristine.summary.clone();
    got_summary.telemetry_coalesced = 0;
    want_summary.telemetry_coalesced = 0;
    assert_eq!(got_summary, want_summary, "the aggregates converge too");

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn same_seed_runs_stream_identical_telemetry_modulo_drop_counters() {
    // Two independent runs of the same fleet, different worker counts:
    // every telemetry row must agree on every field except the
    // backpressure drop-counter (and the CRC that seals it).
    let run = |jobs: usize| {
        let mut fc = base_config(None);
        fc.jobs = jobs;
        run_fleet(&fc).expect("telemetry fleet")
    };
    let a = run(1);
    let b = run(4);
    assert!(!a.telemetry.is_empty(), "the fleet must stream telemetry");
    assert_eq!(a.telemetry.len(), b.telemetry.len());
    for (row_a, row_b) in a.telemetry.iter().zip(&b.telemetry) {
        let strip = |row: &str| {
            let mut map = parse_line(row).expect("telemetry rows are flat JSON");
            map.remove("coalesced");
            map.remove("crc");
            map
        };
        assert_eq!(
            strip(row_a),
            strip(row_b),
            "rows diverged:\n{row_a}\n{row_b}"
        );
    }
}
