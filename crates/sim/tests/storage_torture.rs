//! Storage-torture: the self-healing campaign persistence ladder under
//! injected I/O faults (DESIGN.md §5f).
//!
//! A campaign whose every journal/checkpoint byte flows through a
//! fault-injecting [`FaultyIo`] — ENOSPC, silently torn writes, partial
//! reads, failed renames, read-side bit-rot — must still converge to
//! the pristine run's exact per-cell state digests and report: corrupt
//! journals salvage, corrupt checkpoints recompute, I/O-failing cells
//! retry, and only a storage layer that *never* heals is allowed to
//! quarantine cells (and even then the campaign completes, degraded,
//! instead of aborting).

use std::sync::Arc;
use twice_common::fault::{FaultKind, FaultPlan};
use twice_sim::campaign::{
    chaos_campaign, CampaignConfig, CampaignReport, CHECKPOINT_FILE, JOURNAL_CORRUPT_FILE,
    JOURNAL_FILE,
};
use twice_sim::cio::FaultyIo;
use twice_sim::config::SimConfig;
use twice_sim::outcome::CellError;

const REQUESTS: u64 = 4_000;
const EPOCH: u64 = 512;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("twice-torture-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Per-cell digests in grid order; failures panic with their typed
/// error so divergence is never hidden.
fn digests(report: &CampaignReport, label: &str) -> Vec<(String, u64)> {
    report
        .cells
        .iter()
        .map(|c| {
            let o = c
                .outcome
                .result
                .as_ref()
                .unwrap_or_else(|e| panic!("{label}: cell {} failed: {e}", c.outcome.cell));
            (c.outcome.cell.clone(), o.digest)
        })
        .collect()
}

fn base_config(dir: &std::path::Path) -> CampaignConfig {
    let mut cc = CampaignConfig::new(REQUESTS);
    cc.epoch = EPOCH;
    cc.dir = Some(dir.to_path_buf());
    cc
}

#[test]
fn randomized_faults_with_kill_and_resume_match_the_pristine_run() {
    let cfg = SimConfig::fast_test();

    // The pristine reference: real I/O, 4 workers.
    let ref_dir = temp_dir("rand-ref");
    let mut cc = base_config(&ref_dir);
    cc.jobs = 4;
    let pristine = chaos_campaign(&cfg, &cc).expect("pristine campaign");
    assert!(!pristine.storage.is_degraded(), "{}", pristine.storage);

    // Leg 1: a 4-worker campaign under the full randomized fault
    // schedule, killed mid-grid by --halt-after.
    let dir = temp_dir("rand-faulty");
    let mut cc = base_config(&dir);
    cc.jobs = 4;
    cc.halt_after = Some(3);
    cc.retries = 6;
    let fio1 = Arc::new(FaultyIo::with_default_plan(0x70A7));
    cc.io = fio1.clone();
    let halted = chaos_campaign(&cfg, &cc).expect("halted faulty campaign");
    assert!(halted.halted, "the crash simulation must trigger");

    // Leg 2: resume the same directory under a *different* fault
    // schedule — recovery must not depend on replaying the same faults.
    let mut cc = base_config(&dir);
    cc.jobs = 4;
    cc.retries = 6;
    cc.resume = true;
    let fio2 = Arc::new(FaultyIo::with_default_plan(0x5EED));
    cc.io = fio2.clone();
    let resumed = chaos_campaign(&cfg, &cc).expect("resumed faulty campaign");

    assert!(
        fio1.injected_total() + fio2.injected_total() > 0,
        "the torture run must actually inject storage faults"
    );
    assert!(!resumed.halted);
    assert_eq!(
        resumed.storage.quarantined_cells, 0,
        "bounded retry must absorb the default fault rates: {}",
        resumed.storage
    );
    assert_eq!(
        digests(&resumed, "faulty"),
        digests(&pristine, "pristine"),
        "kill + resume under storage faults must reproduce the pristine digests"
    );
    assert_eq!(
        resumed.table.to_string(),
        pristine.table.to_string(),
        "the faulty run's report must be byte-identical to the pristine run's"
    );

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_bit_rotted_journal_is_salvaged_and_the_report_still_matches() {
    let cfg = SimConfig::fast_test();
    let dir = temp_dir("salvage");
    let cc = base_config(&dir);
    let pristine = chaos_campaign(&cfg, &cc).expect("pristine campaign");

    // Rot one bit in the middle of the 5th journal line: that line and
    // everything after it become untrusted.
    let journal = dir.join(JOURNAL_FILE);
    let mut bytes = std::fs::read(&journal).expect("journal readable");
    let line_starts: Vec<usize> = std::iter::once(0)
        .chain(
            bytes
                .iter()
                .enumerate()
                .filter(|(_, &b)| b == b'\n')
                .map(|(i, _)| i + 1),
        )
        .collect();
    let total_lines = line_starts.len() - 1;
    assert!(total_lines >= 6, "grid must journal at least 6 cells");
    let at = line_starts[4] + 10;
    bytes[at] ^= 0x01;
    std::fs::write(&journal, &bytes).expect("plant the rot");

    let mut cc = base_config(&dir);
    cc.resume = true;
    let resumed = chaos_campaign(&cfg, &cc).expect("salvaging campaign");

    assert_eq!(resumed.storage.journal_salvages, 1, "{}", resumed.storage);
    assert!(
        resumed.storage.salvaged_lines_dropped >= 1,
        "the rotted line (and the untrusted tail) must be dropped: {}",
        resumed.storage
    );
    assert!(
        dir.join(JOURNAL_CORRUPT_FILE).exists(),
        "the corrupt suffix must be preserved for forensics"
    );
    assert_eq!(
        resumed.salvaged, 4,
        "exactly the 4 lines before the rot are trusted"
    );
    assert_eq!(
        resumed.table.to_string(),
        pristine.table.to_string(),
        "dropped cells recompute deterministically, so the report matches"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupt_checkpoint_recomputes_the_cell_instead_of_aborting() {
    let cfg = SimConfig::fast_test();
    let ref_dir = temp_dir("ckpt-ref");
    let pristine = chaos_campaign(&cfg, &base_config(&ref_dir)).expect("pristine campaign");

    // A resume finds a checkpoint too damaged to even frame-parse.
    let dir = temp_dir("ckpt-bad");
    std::fs::create_dir_all(&dir).expect("campaign dir");
    std::fs::write(dir.join(CHECKPOINT_FILE), b"not a checkpoint at all")
        .expect("plant the corrupt checkpoint");
    let mut cc = base_config(&dir);
    cc.resume = true;
    let report = chaos_campaign(&cfg, &cc).expect("recovering campaign");

    assert!(
        report.storage.corrupt_checkpoints >= 1,
        "the rejected blob must be counted: {}",
        report.storage
    );
    assert!(report.cells.iter().all(|c| c.outcome.result.is_ok()));
    assert_eq!(
        report.table.to_string(),
        pristine.table.to_string(),
        "recomputing from scratch must reproduce the pristine report"
    );

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_enospc_burst_fails_one_attempt_and_the_retry_completes_the_cell() {
    let cfg = SimConfig::fast_test();
    let ref_dir = temp_dir("burst-ref");
    let pristine = chaos_campaign(&cfg, &base_config(&ref_dir)).expect("pristine campaign");

    // The first three ENOSPC opportunities fire: the first checkpoint
    // write of the first cell fails all of its per-operation retries,
    // failing the whole attempt. The cell-level retry then sails
    // through a recovered disk.
    let dir = temp_dir("burst");
    let plan = FaultPlan::with_seed(11)
        .at_event(FaultKind::StorageEnospc, 0)
        .at_event(FaultKind::StorageEnospc, 1)
        .at_event(FaultKind::StorageEnospc, 2);
    let mut cc = base_config(&dir);
    cc.io = Arc::new(FaultyIo::new(plan));
    let report = chaos_campaign(&cfg, &cc).expect("bursted campaign");

    assert_eq!(report.storage.retried_cells, 1, "{}", report.storage);
    assert_eq!(report.storage.quarantined_cells, 0, "{}", report.storage);
    assert!(report.cells.iter().all(|c| c.outcome.result.is_ok()));
    assert_eq!(
        report.table.to_string(),
        pristine.table.to_string(),
        "a retried cell must converge to the pristine outcome"
    );

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_disk_that_never_recovers_quarantines_cells_but_the_campaign_completes() {
    let cfg = SimConfig::fast_test();
    let dir = temp_dir("quarantine");
    let mut cc = CampaignConfig::new(2_000);
    cc.epoch = 256;
    cc.dir = Some(dir.clone());
    cc.retries = 2;
    cc.io = Arc::new(FaultyIo::new(
        FaultPlan::with_seed(13).rate(FaultKind::StorageEnospc, 1.0),
    ));
    let report = chaos_campaign(&cfg, &cc).expect("degraded campaign");

    assert!(!report.halted, "quarantine is completion, not a halt");
    let grid = report.cells.len();
    assert!(grid >= 2, "the whole grid must be accounted for");
    for cell in &report.cells {
        match &cell.outcome.result {
            Err(CellError::Quarantined { attempts, .. }) => {
                assert_eq!(*attempts, 2, "both configured attempts must be spent");
            }
            other => panic!(
                "cell {} must be quarantined on a dead disk, got {other:?}",
                cell.outcome.cell
            ),
        }
    }
    assert_eq!(report.storage.quarantined_cells, grid as u64);
    assert_eq!(report.storage.retried_cells, grid as u64);
    assert!(report.storage.is_degraded());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fresh_runs_sweep_orphans_and_resumes_keep_live_checkpoints() {
    let cfg = SimConfig::fast_test();
    let dir = temp_dir("sweep");
    std::fs::create_dir_all(&dir).expect("campaign dir");
    // Leftovers of a hypothetical killed run: an orphaned rename temp,
    // a parallel per-cell checkpoint, and the shared serial checkpoint.
    std::fs::write(dir.join("cells.tmp"), b"orphaned rename").expect("tmp");
    std::fs::write(dir.join("cell-07.ckpt"), b"stale worker state").expect("stale");
    std::fs::write(dir.join(CHECKPOINT_FILE), b"stale serial state").expect("stale");

    // A fresh run sweeps all three before touching anything.
    let report = chaos_campaign(&cfg, &base_config(&dir)).expect("fresh campaign");
    assert_eq!(report.storage.swept_orphans, 3, "{}", report.storage);
    assert!(!dir.join("cells.tmp").exists());
    assert!(!dir.join("cell-07.ckpt").exists());

    // A resume sweeps only the temp file: checkpoints are live state.
    std::fs::write(dir.join("cells.tmp"), b"orphaned again").expect("tmp");
    std::fs::write(dir.join(CHECKPOINT_FILE), b"in-flight state").expect("live");
    let mut cc = base_config(&dir);
    cc.resume = true;
    let resumed = chaos_campaign(&cfg, &cc).expect("resumed campaign");
    assert_eq!(resumed.storage.swept_orphans, 1, "{}", resumed.storage);
    assert_eq!(
        resumed.salvaged,
        resumed.cells.len(),
        "every cell comes from the journal on a full resume"
    );
    assert_eq!(resumed.table.to_string(), report.table.to_string());

    let _ = std::fs::remove_dir_all(&dir);
}
