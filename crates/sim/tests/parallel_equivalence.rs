//! The serial-equivalence guarantee of the parallel campaign runner
//! (DESIGN.md §5e): for every defense, a `--jobs 4` campaign must be
//! indistinguishable from `--jobs 1` — identical per-cell state digests,
//! identical journal bytes, identical rendered report — and a campaign
//! killed under `--jobs 4` and resumed must reproduce the uninterrupted
//! run exactly.

use twice::TableOrganization;
use twice_mitigations::DefenseKind;
use twice_sim::campaign::{chaos_campaign, CampaignConfig, CampaignReport, JOURNAL_FILE};
use twice_sim::config::SimConfig;

const REQUESTS: u64 = 4_000;
const EPOCH: u64 = 512;

fn every_defense() -> Vec<DefenseKind> {
    vec![
        DefenseKind::Twice(TableOrganization::FullyAssociative),
        DefenseKind::Twice(TableOrganization::PseudoAssociative),
        DefenseKind::Twice(TableOrganization::Split),
        DefenseKind::Para { p: 0.001 },
        DefenseKind::Prohit { p: 0.001 },
        DefenseKind::Cbt { counters: 256 },
        DefenseKind::Cra { cache_entries: 512 },
        DefenseKind::Trr { entries: 16 },
        DefenseKind::Graphene,
        DefenseKind::Oracle,
        DefenseKind::None,
    ]
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("twice-par-eq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Per-cell digests, in grid order; a failed cell would panic with its
/// structured error so divergence is never hidden behind an `Err`.
fn digests(report: &CampaignReport, label: &str) -> Vec<(String, u64)> {
    report
        .cells
        .iter()
        .map(|c| {
            let o = c
                .outcome
                .result
                .as_ref()
                .unwrap_or_else(|e| panic!("{label}: cell {} failed: {e}", c.outcome.cell));
            (c.outcome.cell.clone(), o.digest)
        })
        .collect()
}

fn sorted_lines(path: &std::path::Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).expect("journal readable");
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    lines.sort();
    lines
}

#[test]
fn four_workers_match_the_serial_run_for_every_defense() {
    let cfg = SimConfig::fast_test();
    for (i, defense) in every_defense().into_iter().enumerate() {
        let label = format!("{defense}");
        let dir_serial = temp_dir(&format!("s{i}"));
        let dir_pooled = temp_dir(&format!("p{i}"));

        let mut cc = CampaignConfig::new(REQUESTS);
        cc.epoch = EPOCH;
        cc.defense = defense;
        cc.dir = Some(dir_serial.clone());
        cc.jobs = 1;
        let serial = chaos_campaign(&cfg, &cc).expect("serial campaign");

        cc.dir = Some(dir_pooled.clone());
        cc.jobs = 4;
        let pooled = chaos_campaign(&cfg, &cc).expect("pooled campaign");

        assert_eq!(
            digests(&pooled, &label),
            digests(&serial, &label),
            "{label}: per-cell digests diverged under --jobs 4"
        );
        for (p, s) in pooled.cells.iter().zip(&serial.cells) {
            assert_eq!(
                p.outcome.result, s.outcome.result,
                "{label}: cell {} outcome diverged",
                s.outcome.cell
            );
        }
        assert_eq!(
            pooled.table.to_string(),
            serial.table.to_string(),
            "{label}: report bytes diverged under --jobs 4"
        );
        // A clean pooled run journals in contiguous grid order, so the
        // raw bytes — not just the sorted lines — must match.
        assert_eq!(
            std::fs::read(dir_pooled.join(JOURNAL_FILE)).expect("pooled journal"),
            std::fs::read(dir_serial.join(JOURNAL_FILE)).expect("serial journal"),
            "{label}: journal bytes diverged under --jobs 4"
        );

        let _ = std::fs::remove_dir_all(&dir_serial);
        let _ = std::fs::remove_dir_all(&dir_pooled);
    }
}

#[test]
fn killed_parallel_campaign_resumes_to_the_uninterrupted_digests() {
    let cfg = SimConfig::fast_test();
    let requests = 6_000;

    // The uninterrupted reference, journaled so its lines are comparable.
    let ref_dir = temp_dir("ref");
    let mut cc = CampaignConfig::new(requests);
    cc.dir = Some(ref_dir.clone());
    let clean = chaos_campaign(&cfg, &cc).expect("clean campaign");
    assert!(clean.cells.iter().all(|c| c.outcome.result.is_ok()));

    // Kill a 4-worker campaign mid-grid. In-flight workers drain, so the
    // journal may hold stragglers past the halt point — out of grid
    // order, which is why resume loads are keyed by cell id.
    let dir = temp_dir("kill");
    let mut cc = CampaignConfig::new(requests);
    cc.dir = Some(dir.clone());
    cc.jobs = 4;
    cc.halt_after = Some(3);
    let halted = chaos_campaign(&cfg, &cc).expect("halted campaign");
    assert!(halted.halted, "the crash simulation must trigger");
    assert!(
        halted.cells.len() < clean.cells.len(),
        "the halt must land mid-grid"
    );

    // Resume the same directory, still with 4 workers. `resume` keeps
    // the in-flight cells' epoch checkpoints alive — a fresh run would
    // sweep them as stale.
    cc.halt_after = None;
    cc.resume = true;
    let resumed = chaos_campaign(&cfg, &cc).expect("resumed campaign");
    assert!(!resumed.halted);
    assert!(
        resumed.salvaged >= 3,
        "journaled cells must be salvaged, not rerun (got {})",
        resumed.salvaged
    );
    assert_eq!(
        digests(&resumed, "resumed"),
        digests(&clean, "clean"),
        "kill + resume under --jobs 4 must reproduce the uninterrupted digests"
    );
    assert_eq!(
        resumed.table.to_string(),
        clean.table.to_string(),
        "the resumed report must be byte-identical to the clean run's"
    );
    // The halted journal's stragglers land out of grid order; the full
    // line *set* still matches the serial journal exactly.
    assert_eq!(
        sorted_lines(&dir.join(JOURNAL_FILE)),
        sorted_lines(&ref_dir.join(JOURNAL_FILE)),
        "resumed journal content must match the clean journal"
    );

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
