//! The security-regression contract for the checked-in `corpus/`.
//!
//! The corpus is the red-team search's distilled output: adversarial
//! traces plus a sealed manifest recording which defenses hold and
//! which fall. This suite replays the real corpus (not a fixture) so
//! any change to a defense, the DRAM model, or the trace codec that
//! shifts a hold/break outcome fails here before it ships. It also
//! re-evaluates every checked-in genome from its manifest hex and
//! asserts the recorded fitness reproduces — serially and across a
//! `--jobs 4` worker pool, which must be outcome-identical.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use twice_mitigations::DefenseKind;
use twice_sim::cio::{CampaignIo, RealIo};
use twice_sim::config::SimConfig;
use twice_sim::journal::{parse_line, unseal_line, JsonValue};
use twice_sim::parallel::parallel_map;
use twice_sim::redteam::{eval_genome, verify_corpus, EvalOutcome, CORPUS_MANIFEST, MUST_HOLD};
use twice_workloads::genome::PatternGenome;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

fn get_str<'a>(
    fields: &'a std::collections::BTreeMap<String, JsonValue>,
    key: &str,
) -> Option<&'a str> {
    fields.get(key).and_then(JsonValue::as_str)
}

fn get_u64(fields: &std::collections::BTreeMap<String, JsonValue>, key: &str) -> Option<u64> {
    fields.get(key).and_then(JsonValue::as_u64)
}

/// One manifest trace line, decoded for re-evaluation.
struct ManifestEntry {
    file: String,
    genome: PatternGenome,
    fitness: u64,
    breaks: Vec<String>,
}

fn load_manifest() -> (u64, u64, DefenseKind, Vec<ManifestEntry>) {
    let bytes = std::fs::read(corpus_dir().join(CORPUS_MANIFEST)).expect("corpus manifest exists");
    let mut seed = None;
    let mut requests = None;
    let mut target = None;
    let mut entries = Vec::new();
    for raw in String::from_utf8(bytes).expect("manifest is utf-8").lines() {
        if raw.trim().is_empty() {
            continue;
        }
        let line = unseal_line(raw).expect("every manifest line passes its CRC seal");
        let fields = parse_line(&line).expect("every manifest line parses");
        match get_str(&fields, "kind") {
            Some("meta") => {
                seed = get_u64(&fields, "seed");
                requests = get_u64(&fields, "requests");
                target = get_str(&fields, "target")
                    .and_then(DefenseKind::parse)
                    .map(Some)
                    .expect("manifest target is a known defense");
            }
            Some("trace") => {
                let genome = PatternGenome::from_hex(
                    get_str(&fields, "genome").expect("trace line has a genome"),
                )
                .expect("manifest genome hex decodes");
                entries.push(ManifestEntry {
                    file: get_str(&fields, "file")
                        .expect("trace line has a file")
                        .to_string(),
                    genome,
                    fitness: get_u64(&fields, "fit").expect("trace line has a fitness"),
                    breaks: get_str(&fields, "breaks")
                        .unwrap_or("")
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect(),
                });
            }
            _ => {}
        }
    }
    (
        seed.expect("manifest meta has a seed"),
        requests.expect("manifest meta has a request count"),
        target.expect("manifest meta names its target"),
        entries,
    )
}

#[test]
fn checked_in_corpus_replays_without_regressions() {
    let cfg = SimConfig::fast_test();
    let io: Arc<dyn CampaignIo> = Arc::new(RealIo);
    let report =
        verify_corpus(&cfg, &io, &corpus_dir(), 1, 0).expect("corpus manifest is readable");
    assert!(
        report.traces >= 3,
        "corpus holds {} trace(s), need >= 3",
        report.traces
    );
    assert_eq!(
        report.replays,
        report.traces * 12,
        "every trace replays against the full 12-defense lineup"
    );
    assert!(
        report.regressions.is_empty(),
        "corpus regressions: {:?}",
        report.regressions
    );
    // The corpus must be genuinely adversarial: unprotected DRAM falls.
    assert!(
        report.findings.iter().any(|f| f.contains("under none")),
        "no trace breaks unprotected DRAM: {:?}",
        report.findings
    );
    // And the paper's core claim must hold against it.
    for f in &report.findings {
        for name in MUST_HOLD {
            assert!(
                !f.contains(&format!("under {name}")),
                "MUST_HOLD defense fell: {f}"
            );
        }
    }
}

#[test]
fn manifest_genomes_reproduce_their_fitness_serially_and_in_parallel() {
    let (seed, requests, target, entries) = load_manifest();
    assert!(
        entries.len() >= 3,
        "manifest records {} genome(s)",
        entries.len()
    );
    let mut cfg = SimConfig::fast_test();
    cfg.seed = seed;
    let eval = |e: &ManifestEntry| -> EvalOutcome {
        eval_genome(&cfg, target, &e.genome, requests, 2_048, 0, 0, None)
    };
    let serial: Vec<EvalOutcome> = entries.iter().map(eval).collect();
    let pooled: Vec<EvalOutcome> = parallel_map(4, &entries, |_idx, e| eval(e));
    assert_eq!(
        serial, pooled,
        "--jobs 4 must be outcome-identical to serial"
    );
    for (e, outcome) in entries.iter().zip(&serial) {
        assert!(outcome.quarantined.is_none(), "{}: quarantined", e.file);
        assert_eq!(
            outcome.fitness, e.fitness,
            "{}: fitness drifted from the manifest",
            e.file
        );
        // A recorded break against the target defense means the eval
        // must still see flips (and vice versa).
        let target_name = target.cli_name().expect("target has a CLI name");
        assert_eq!(
            outcome.bit_flips > 0,
            e.breaks.iter().any(|b| b == target_name),
            "{}: target hold/break outcome drifted",
            e.file
        );
    }
}
