//! Crash-safety properties of the checkpoint/restore/replay machinery:
//!
//! 1. For every defense, interrupting a run at an arbitrary epoch,
//!    serializing it, restoring it, and replaying the remaining trace
//!    reproduces the uninterrupted run's state digest and metrics
//!    exactly — any hidden nondeterminism is a hard failure.
//! 2. A checkpoint with any flipped byte is rejected up front, never
//!    silently loaded.
//! 3. A chaos campaign killed mid-grid and resumed from its journal
//!    produces the same final report as a clean, uninterrupted run.

use twice::TableOrganization;
use twice_mitigations::DefenseKind;
use twice_sim::campaign::{chaos_campaign, CampaignConfig};
use twice_sim::checkpoint::ResumableRun;
use twice_sim::config::SimConfig;
use twice_sim::runner::WorkloadKind;

const TOTAL: u64 = 4_000;
const EPOCH: u64 = 512;

fn every_defense() -> Vec<DefenseKind> {
    vec![
        DefenseKind::Twice(TableOrganization::FullyAssociative),
        DefenseKind::Twice(TableOrganization::PseudoAssociative),
        DefenseKind::Twice(TableOrganization::Split),
        DefenseKind::Para { p: 0.001 },
        DefenseKind::Prohit { p: 0.001 },
        DefenseKind::Cbt { counters: 256 },
        DefenseKind::Cra { cache_entries: 512 },
        DefenseKind::Trr { entries: 16 },
        DefenseKind::Graphene,
        DefenseKind::Oracle,
        DefenseKind::None,
    ]
}

#[test]
fn interrupted_replay_matches_uninterrupted_run_for_every_defense() {
    let cfg = SimConfig::fast_test();
    for workload in &[WorkloadKind::S1, WorkloadKind::S3] {
        for defense in every_defense() {
            let label = format!("{workload:?}/{defense}");

            let mut clean = ResumableRun::new(&cfg, workload, defense, TOTAL)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            clean
                .run_to_completion(EPOCH)
                .unwrap_or_else(|e| panic!("{label}: clean run failed: {e}"));

            let mut interrupted = ResumableRun::new(&cfg, workload, defense, TOTAL)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            for _ in 0..3 {
                interrupted
                    .run_epoch(EPOCH)
                    .unwrap_or_else(|e| panic!("{label}: epoch failed: {e}"));
            }
            let blob = interrupted.checkpoint();
            drop(interrupted); // the "crash"

            let mut resumed = ResumableRun::restore(&cfg, workload, defense, TOTAL, &blob)
                .unwrap_or_else(|e| panic!("{label}: restore rejected: {e}"));
            assert_eq!(
                resumed.requests_done(),
                3 * EPOCH,
                "{label}: restore must land at the interruption point"
            );
            resumed
                .run_to_completion(EPOCH)
                .unwrap_or_else(|e| panic!("{label}: replay failed: {e}"));

            assert_eq!(
                resumed.digest(),
                clean.digest(),
                "{label}: replay digest diverged — hidden nondeterminism"
            );
            assert_eq!(
                resumed.metrics(),
                clean.metrics(),
                "{label}: replay metrics diverged"
            );
        }
    }
}

#[test]
fn corrupted_checkpoints_are_rejected_not_loaded() {
    let cfg = SimConfig::fast_test();
    let workload = WorkloadKind::S3;
    let defense = DefenseKind::Twice(TableOrganization::FullyAssociative);
    let mut run = ResumableRun::new(&cfg, &workload, defense, TOTAL).expect("valid run");
    run.run_epoch(EPOCH).expect("first epoch");
    let blob = run.checkpoint();

    // A flip anywhere — header, payload, or trailing checksum — must be
    // caught before any state is loaded. Stride through the blob plus
    // both ends so every region is exercised.
    let mut positions: Vec<usize> = (0..blob.len()).step_by(37).collect();
    positions.push(blob.len() - 1);
    for pos in positions {
        let mut bad = blob.clone();
        bad[pos] ^= 0x40;
        assert!(
            ResumableRun::restore(&cfg, &workload, defense, TOTAL, &bad).is_err(),
            "flipped byte at {pos}/{} must be rejected",
            blob.len()
        );
    }

    // Truncation is rejected too.
    assert!(
        ResumableRun::restore(&cfg, &workload, defense, TOTAL, &blob[..blob.len() / 2]).is_err()
    );
    assert!(ResumableRun::restore(&cfg, &workload, defense, TOTAL, &[]).is_err());

    // And the pristine blob still loads: the rejections above were about
    // the corruption, not the machinery.
    ResumableRun::restore(&cfg, &workload, defense, TOTAL, &blob).expect("pristine blob loads");
}

#[test]
fn resumed_campaign_reproduces_the_clean_report() {
    let cfg = SimConfig::fast_test();
    let requests = 12_000;

    let clean = chaos_campaign(&cfg, &CampaignConfig::new(requests)).expect("in-memory campaign");
    assert!(clean.cells.iter().all(|c| c.outcome.result.is_ok()));

    let dir = std::env::temp_dir().join(format!("twice-crash-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // "Kill" the campaign mid-grid: journal to disk, stop after three
    // freshly completed cells.
    let mut cc = CampaignConfig::new(requests);
    cc.dir = Some(dir.clone());
    cc.halt_after = Some(3);
    let halted = chaos_campaign(&cfg, &cc).expect("journaled campaign");
    assert!(halted.halted, "the crash simulation must trigger");
    assert!(
        halted.cells.len() < clean.cells.len(),
        "the halt must land mid-grid"
    );

    // Resume from the same directory: journaled cells are salvaged, the
    // rest run fresh, and the final report matches the clean run.
    cc.halt_after = None;
    let resumed = chaos_campaign(&cfg, &cc).expect("resumed campaign");
    assert!(!resumed.halted);
    assert_eq!(
        resumed.salvaged, 3,
        "every journaled cell must be salvaged, not rerun"
    );
    assert_eq!(resumed.cells.len(), clean.cells.len());
    for (r, c) in resumed.cells.iter().zip(&clean.cells) {
        assert_eq!(r.outcome.cell, c.outcome.cell);
        assert_eq!(
            r.outcome.value(),
            c.outcome.value(),
            "cell {} diverged after resume",
            r.outcome.cell
        );
    }
    assert_eq!(
        resumed.table.to_string(),
        clean.table.to_string(),
        "the resumed report must be byte-identical to the clean run's"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
