//! The replay-equivalence guarantee for `twice-trace v2`.
//!
//! Replaying a recorded trace must reproduce the live run's
//! `StateDigest` for every defense — serially, across a `--jobs`-style
//! worker pool, and through a kill+resume snapshot cycle — and every
//! workload generator must round-trip through record/replay byte-exact.
//! The compression floor (binary ≥ 4x smaller than v1 text) is enforced
//! here too, so a format regression fails loudly.

use std::sync::Arc;
use twice::TableOrganization;
use twice_common::snapshot::{restore_from, snapshot_bytes, SnapshotReader, SnapshotWriter};
use twice_mitigations::DefenseKind;
use twice_sim::config::SimConfig;
use twice_sim::parallel::parallel_map;
use twice_sim::runner::{build_trace, WorkloadKind};
use twice_sim::system::System;
use twice_sim::tracecli::{load_trace, record_trace, replay_trace, ReplaySource, TraceIo};
use twice_workloads::tracev2::TraceHealth;
use twice_workloads::{AccessSource, TraceItem};

/// Every registered defense, including all three TWiCe organizations.
fn all_defenses() -> Vec<DefenseKind> {
    vec![
        DefenseKind::None,
        DefenseKind::Twice(TableOrganization::FullyAssociative),
        DefenseKind::Twice(TableOrganization::PseudoAssociative),
        DefenseKind::Twice(TableOrganization::Split),
        DefenseKind::Para { p: 0.001 },
        DefenseKind::Para { p: 0.002 },
        DefenseKind::Prohit { p: 0.001 },
        DefenseKind::Cbt { counters: 256 },
        DefenseKind::Cra { cache_entries: 512 },
        DefenseKind::Trr { entries: 16 },
        DefenseKind::Graphene,
        DefenseKind::Oracle,
    ]
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("twice-replay-eq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Records `kind`, loads it back clean, and returns the shared items.
fn recorded(
    cfg: &SimConfig,
    kind: &WorkloadKind,
    n: u64,
    dir: &std::path::Path,
) -> Arc<Vec<TraceItem>> {
    let path = dir.join(format!("{kind}.twt2"));
    let tio = TraceIo::real();
    let outcome = record_trace(&tio, cfg, kind, n, &path).unwrap();
    assert_eq!(outcome.records, n);
    let loaded = load_trace(&tio, cfg, &path).unwrap();
    assert_eq!(loaded.salvaged.health(), TraceHealth::Clean);
    let live: Vec<TraceItem> = build_trace(cfg, kind, n).collect();
    assert_eq!(
        loaded.salvaged.items, live,
        "{kind}: decode must be byte-exact"
    );
    Arc::new(loaded.salvaged.items)
}

fn live_digest(cfg: &SimConfig, defense: DefenseKind, items: &[TraceItem]) -> u64 {
    let mut system = System::new(cfg, defense);
    system.run(items.iter().copied()).unwrap();
    system.digest()
}

#[test]
fn every_defense_replays_to_the_live_digest() {
    let cfg = SimConfig::fast_test();
    let dir = tmpdir("defenses");
    let items = recorded(&cfg, &WorkloadKind::S2, 4_000, &dir);
    for defense in all_defenses() {
        let live = live_digest(&cfg, defense, &items);
        let replayed = replay_trace(&cfg, defense, items.clone(), &defense.to_string()).unwrap();
        assert_eq!(
            replayed.digest, live,
            "{defense}: replay digest diverged from the live run"
        );
        assert_eq!(replayed.metrics.requests, 4_000, "{defense}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_replay_matches_serial() {
    let cfg = SimConfig::fast_test();
    let dir = tmpdir("jobs");
    let items = recorded(&cfg, &WorkloadKind::S2, 2_000, &dir);
    let defenses = all_defenses();
    let serial: Vec<u64> = defenses
        .iter()
        .map(|d| {
            replay_trace(&cfg, *d, items.clone(), "serial")
                .unwrap()
                .digest
        })
        .collect();
    let pooled: Vec<u64> = parallel_map(4, &defenses, |_, d| {
        replay_trace(&cfg, *d, items.clone(), "pooled")
            .unwrap()
            .digest
    });
    assert_eq!(pooled, serial, "--jobs must not change replay results");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_and_resumed_replay_matches_uninterrupted() {
    let cfg = SimConfig::fast_test();
    let dir = tmpdir("resume");
    let items = recorded(&cfg, &WorkloadKind::S2, 3_000, &dir);
    let defense = DefenseKind::Twice(TableOrganization::FullyAssociative);
    let total = items.len() as u64;

    let uninterrupted = replay_trace(&cfg, defense, items.clone(), "base").unwrap();

    // First half, then checkpoint system + replay cursor.
    let mut system = System::new(&cfg, defense);
    let mut source = ReplaySource::new(items.clone());
    for _ in 0..total / 2 {
        system.feed(source.next_access()).unwrap();
    }
    let system_blob = snapshot_bytes(&system);
    let mut w = SnapshotWriter::new();
    AccessSource::save_state(&source, &mut w);
    let source_blob = w.finish();
    drop(system);
    drop(source);

    // "Kill": rebuild both from configuration + blobs, finish the run.
    let mut system = System::new(&cfg, defense);
    restore_from(&mut system, &system_blob).unwrap();
    let mut source = ReplaySource::new(items.clone());
    let mut r = SnapshotReader::new(&source_blob).unwrap();
    AccessSource::load_state(&mut source, &mut r).unwrap();
    assert_eq!(source.position(), total / 2);
    for _ in total / 2..total {
        system.feed(source.next_access()).unwrap();
    }
    system.drain().unwrap();

    assert_eq!(
        system.digest(),
        uninterrupted.digest,
        "kill+resume must land on the uninterrupted digest"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_generator_round_trips_through_record_and_replay() {
    let cfg = SimConfig::fast_test();
    let dir = tmpdir("generators");
    let kinds = [
        WorkloadKind::S1,
        WorkloadKind::S2,
        WorkloadKind::S3,
        WorkloadKind::MixHigh,
        WorkloadKind::MixBlend,
        WorkloadKind::Fft,
        WorkloadKind::Radix,
        WorkloadKind::Mica,
        WorkloadKind::PageRank,
        WorkloadKind::SpecRate("mcf"),
    ];
    let defense = DefenseKind::Twice(TableOrganization::FullyAssociative);
    for kind in kinds {
        let items = recorded(&cfg, &kind, 800, &dir);
        let live = live_digest(&cfg, defense, &items);
        let replayed = replay_trace(&cfg, defense, items, &kind.to_string()).unwrap();
        assert_eq!(replayed.digest, live, "{kind}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn binary_trace_is_at_least_4x_smaller_than_v1_text() {
    // The acceptance floor from the format's design brief: on a
    // locality-bearing workload at the paper topology, v2 must encode
    // the same 100k-request stream in at most a quarter of the v1 text
    // bytes.
    let cfg = SimConfig::paper_default();
    let dir = tmpdir("ratio");
    let path = dir.join("fft.twt2");
    let tio = TraceIo::real();
    record_trace(&tio, &cfg, &WorkloadKind::Fft, 100_000, &path).unwrap();
    let stats = load_trace(&tio, &cfg, &path).unwrap().stats();
    assert_eq!(stats.records, 100_000);
    assert_eq!(stats.frames_dropped, 0);
    assert!(
        stats.ratio() >= 4.0,
        "compression regressed: v2 {} bytes vs v1 {} bytes = {:.2}x",
        stats.v2_bytes,
        stats.v1_bytes,
        stats.ratio()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
