//! `twice-exp`: run TWiCe-reproduction experiments from the command line.
//!
//! ```console
//! $ twice-exp tables                      # Tables 2-4, bound, storage, sweeps
//! $ twice-exp fig7a --requests 250000     # Figure 7(a) at paper scale
//! $ twice-exp fig7b --requests 1500000    # Figure 7(b) at paper scale
//! $ twice-exp table1 --requests 40000     # measured defense comparison
//! $ twice-exp attack --defense twice      # an S3 confrontation
//! $ twice-exp capacity                    # the 4.4 bound
//! ```

use std::process::ExitCode;
use twice::cost::TwiceCostModel;
use twice::{TableOrganization, TwiceParams};
use twice_mitigations::DefenseKind;
use twice_sim::config::SimConfig;
use twice_sim::experiments::{
    ablation, capacity, chaos, ecc, fig7, latency, storage, table1, table2, table3, table4,
};
use twice_sim::runner::WorkloadKind;
use twice_sim::verify::confront;

struct Args {
    command: String,
    requests: Option<u64>,
    defense: Option<String>,
    workload: Option<String>,
    file: Option<String>,
}

fn parse_args() -> Option<Args> {
    let mut args = std::env::args().skip(1);
    let command = args.next()?;
    let mut requests = None;
    let mut defense = None;
    let mut workload = None;
    let mut file = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--requests" => requests = args.next()?.parse().ok(),
            "--defense" => defense = args.next(),
            "--workload" => workload = args.next(),
            "--file" => file = args.next(),
            _ => {
                eprintln!("unknown flag: {flag}");
                return None;
            }
        }
    }
    Some(Args {
        command,
        requests,
        defense,
        workload,
        file,
    })
}

fn defense_from_name(name: &str) -> Option<DefenseKind> {
    Some(match name {
        "twice" | "twice-fa" => DefenseKind::Twice(TableOrganization::FullyAssociative),
        "twice-pa" => DefenseKind::Twice(TableOrganization::PseudoAssociative),
        "twice-split" => DefenseKind::Twice(TableOrganization::Split),
        "para" => DefenseKind::Para { p: 0.001 },
        "para2" => DefenseKind::Para { p: 0.002 },
        "prohit" => DefenseKind::Prohit { p: 0.001 },
        "cbt" => DefenseKind::Cbt { counters: 256 },
        "cra" => DefenseKind::Cra { cache_entries: 512 },
        "trr" => DefenseKind::Trr { entries: 16 },
        "graphene" => DefenseKind::Graphene,
        "oracle" => DefenseKind::Oracle,
        "none" => DefenseKind::None,
        _ => return None,
    })
}

fn workload_from_name(name: &str) -> Option<WorkloadKind> {
    Some(match name {
        "s1" => WorkloadKind::S1,
        "s2" => WorkloadKind::S2,
        "s3" => WorkloadKind::S3,
        "mix-high" => WorkloadKind::MixHigh,
        "mix-blend" => WorkloadKind::MixBlend,
        "fft" => WorkloadKind::Fft,
        "radix" => WorkloadKind::Radix,
        "mica" => WorkloadKind::Mica,
        "pagerank" => WorkloadKind::PageRank,
        _ => return None,
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: twice-exp <command> [--requests N] [--defense NAME]\n\
         commands:\n\
         \x20 tables    print every computational table (2,3,4, bound, storage, sweeps)\n\
         \x20 table1    measured defense comparison (scaled system)\n\
         \x20 fig7a     Figure 7(a) sweep at paper scale\n\
         \x20 fig7b     Figure 7(b) sweep at paper scale\n\
         \x20 capacity  the 4.4 capacity bound\n\
         \x20 attack    S3 confrontation on the scaled system\n\
         \x20 chaos     fault-injection campaign (SEU sweep + bus gauntlet)\n\
         defenses: twice twice-pa twice-split para para2 prohit cbt cra oracle none"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    let params = TwiceParams::paper_default();
    match args.command.as_str() {
        "tables" => {
            println!("{}", table2::table2(&params));
            println!(
                "{}",
                table3::table3(&TwiceCostModel::table3_45nm(), &params.timings)
            );
            println!("{}", table4::table4(&SimConfig::paper_default()));
            println!("{}", capacity::capacity(&params, 128).table);
            println!("{}", storage::storage(&params).table);
            println!("{}", ablation::arr_overhead(&params).table);
            println!(
                "{}",
                ablation::th_rh_sweep(&params, &[8_192, 16_384, 32_768, 65_536])
            );
            println!("{}", ablation::timing_sweep(&params));
        }
        "table1" => {
            let cfg = SimConfig::fast_test();
            let (table, _) = table1::table1(&cfg, args.requests.unwrap_or(40_000));
            println!("{table}");
        }
        "fig7a" => {
            let cfg = SimConfig::paper_default();
            let sample = ["mcf", "libquantum", "lbm", "omnetpp", "gcc", "hmmer"];
            let result = fig7::figure7a(&cfg, &sample, args.requests.unwrap_or(250_000));
            println!("{}", result.table);
        }
        "fig7b" => {
            let cfg = SimConfig::paper_default();
            let result = fig7::figure7b(&cfg, args.requests.unwrap_or(1_500_000));
            println!("{}", result.table);
        }
        "capacity" => {
            println!("{}", capacity::capacity(&params, 256).table);
        }
        "latency" => {
            let cfg = SimConfig::paper_default();
            let requests = args.requests.unwrap_or(250_000);
            let workloads = vec![
                ("S3".to_string(), WorkloadKind::S3, requests),
                ("S2".to_string(), WorkloadKind::S2, requests.max(1_500_000)),
            ];
            println!("{}", latency::latency_spike(&cfg, &workloads).table);
        }
        "ecc" => {
            let cfg = SimConfig::fast_test();
            let (table, _) = ecc::ecc_experiment(&cfg, args.requests.unwrap_or(60_000));
            println!("{table}");
        }
        "chaos" => {
            let cfg = SimConfig::fast_test();
            let (table, runs) = chaos::chaos_experiment(&cfg, args.requests.unwrap_or(60_000));
            println!("{table}");
            let hardened_flips: usize = runs
                .iter()
                .filter(|o| o.scrubbing)
                .map(|o| o.bit_flips)
                .sum();
            let unhardened_flips: usize = runs
                .iter()
                .filter(|o| !o.scrubbing)
                .map(|o| o.bit_flips)
                .sum();
            println!(
                "hardened engine: {hardened_flips} bit flip(s) across the grid; \
                 unhardened: {unhardened_flips}"
            );
            if hardened_flips > 0 {
                return ExitCode::FAILURE;
            }
        }
        "attack" => {
            let cfg = SimConfig::fast_test();
            let name = args.defense.as_deref().unwrap_or("twice");
            let Some(kind) = defense_from_name(name) else {
                eprintln!("unknown defense: {name}");
                return usage();
            };
            let out = confront(
                &cfg,
                WorkloadKind::S3,
                kind,
                args.requests.unwrap_or(60_000),
            );
            println!(
                "S3 hammer, {} requests (scaled system, N_th = {}):",
                out.unprotected.requests, cfg.fault_n_th
            );
            println!("  unprotected : {} bit flip(s)", out.unprotected.bit_flips);
            println!(
                "  {:11} : {} bit flip(s), {} detection(s), {} additional ACTs ({})",
                out.defended.defense,
                out.defended.bit_flips,
                out.defended.detections,
                out.defended.additional_acts,
                out.defended.ratio_percent(),
            );
        }
        "record" => {
            let Some(path) = args.file.as_deref() else {
                eprintln!("record needs --file PATH");
                return usage();
            };
            let name = args.workload.as_deref().unwrap_or("s1");
            let Some(workload) = workload_from_name(name) else {
                eprintln!("unknown workload: {name}");
                return usage();
            };
            let cfg = SimConfig::paper_default();
            let trace =
                twice_sim::runner::build_trace(&cfg, &workload, args.requests.unwrap_or(100_000));
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match twice_workloads::record::write_trace(std::io::BufWriter::new(file), trace) {
                Ok(n) => println!("wrote {n} accesses to {path}"),
                Err(e) => {
                    eprintln!("write failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "replay" => {
            let Some(path) = args.file.as_deref() else {
                eprintln!("replay needs --file PATH");
                return usage();
            };
            let name = args.defense.as_deref().unwrap_or("twice");
            let Some(kind) = defense_from_name(name) else {
                eprintln!("unknown defense: {name}");
                return usage();
            };
            let cfg = SimConfig::paper_default();
            let file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let reader = twice_workloads::record::TraceReader::new(
                std::io::BufReader::new(file),
                &cfg.topology,
            );
            let mut system = twice_sim::system::System::new(&cfg, kind);
            let mut bad = 0u64;
            let outcome = system.run(reader.filter_map(|r| match r {
                Ok(item) => Some(item),
                Err(e) => {
                    if bad == 0 {
                        eprintln!("skipping malformed line: {e}");
                    }
                    bad += 1;
                    None
                }
            }));
            if let Err(e) = outcome {
                eprintln!("replay aborted: {e}");
                std::process::exit(1);
            }
            let m = system.metrics(path.to_string());
            println!(
                "{}: {} requests, {} ACTs, {} additional ({}), {} detection(s), {} flip(s)",
                m.defense,
                m.requests,
                m.normal_acts,
                m.additional_acts,
                m.ratio_percent(),
                m.detections,
                m.bit_flips
            );
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
