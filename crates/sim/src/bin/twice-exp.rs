//! `twice-exp`: run TWiCe-reproduction experiments from the command line.
//!
//! ```console
//! $ twice-exp tables                      # Tables 2-4, bound, storage, sweeps
//! $ twice-exp fig7a --requests 250000     # Figure 7(a) at paper scale
//! $ twice-exp fig7b --requests 1500000    # Figure 7(b) at paper scale
//! $ twice-exp table1 --requests 40000     # measured defense comparison
//! $ twice-exp attack --defense twice      # an S3 confrontation
//! $ twice-exp capacity                    # the 4.4 bound
//! $ twice-exp chaos --journal out/        # crash-safe fault campaign
//! $ twice-exp chaos --resume out/         # resume a killed campaign
//! $ twice-exp chaos --storage-faults 7 --journal out/  # storage torture
//! $ twice-exp fleet --shards 1000 --jobs 8 --journal out/  # fleet run
//! $ twice-exp fleet --shards 64 --device-faults 9 --journal out/
//! $ twice-exp profile --obs-out trace.json  # instrumented cell + trace
//! $ twice-exp bench --jobs 4                # timing + BENCH_3.json
//! $ twice-exp trace record --workload mica --file m.twt2   # binary trace
//! $ twice-exp trace replay --file m.twt2 --defense twice   # digest-faithful
//! $ twice-exp trace verify --file m.twt2    # salvage report, exit 0/4/2
//! $ twice-exp trace stat --file m.twt2      # sizes + v1-vs-v2 compression
//! $ twice-exp trace diff --file m.twt2 --defense-a twice --defense-b trr
//! $ twice-exp redteam --defense trr --journal rt/       # evolve attacks
//! $ twice-exp redteam --resume rt/ --corpus corpus/     # resume + distill
//! $ twice-exp redteam verify --corpus corpus/           # regression gate
//! ```
//!
//! Failures exit with a distinct code and one structured line on stderr
//! (`twice-exp: error experiment=… cell=… cause="…"`):
//!
//! * `2` — unknown command, defense, workload, or SPEC app name
//! * `3` — invalid flag value (`--seed`, `--requests`, `--resume`, …)
//! * `4` — the run completed but in degraded mode: at least one chaos
//!   cell or fleet shard was quarantined after exhausting its retry
//!   ladder (the report is still printed; the storage summary or
//!   `FleetSummary` goes to stderr)
//! * `75` — campaign intentionally halted by `--halt-after` (tempfail,
//!   in the sysexits tradition: rerun with `--resume` to continue)
//! * `1` — everything else (I/O, a failed safety property)
//!
//! `chaos --storage-faults SEED` wraps every journal/checkpoint byte in
//! a fault-injecting storage layer (ENOSPC, torn writes, partial reads,
//! failed renames, bit-rot) to exercise the self-healing ladder:
//! journal salvage, checkpoint recomputation, bounded per-cell retry
//! (`--retries`/`--backoff-ms`), and quarantine.
//!
//! `fleet --device-faults SEED` arms every shard's device fault
//! injectors (stuck bank FSMs, dropped refresh windows, counter-SRAM
//! soft errors); shards that panic or blow their deadline restart from
//! their last epoch checkpoint and are quarantined only after the
//! supervision ladder is exhausted — the fleet degrades, never aborts.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use twice::cost::TwiceCostModel;
use twice::{TableOrganization, TwiceParams};
use twice_mitigations::DefenseKind;
use twice_sim::campaign::CampaignConfig;
use twice_sim::config::SimConfig;
use twice_sim::experiments::{
    ablation, capacity, ecc, fig7, latency, storage, table1, table2, table3, table4,
};
use twice_sim::parallel::default_jobs;
use twice_sim::runner::WorkloadKind;
use twice_sim::verify::confront;

/// Exit code for unknown experiment/defense/workload names.
const EXIT_UNKNOWN_NAME: u8 = 2;
/// Exit code for malformed flag values.
const EXIT_BAD_FLAG: u8 = 3;
/// Exit code for a campaign that completed in degraded mode (at least
/// one cell quarantined after exhausting its I/O retry budget).
const EXIT_DEGRADED: u8 = 4;
/// Exit code when `--halt-after` stops a campaign early (tempfail).
const EXIT_HALTED: u8 = 75;

/// A structured CLI failure: who failed (`experiment`/`cell`, `-` when
/// not applicable), why, and with which exit code.
struct CliError {
    experiment: String,
    cell: String,
    cause: String,
    code: u8,
}

impl CliError {
    fn unknown(experiment: &str, cause: impl Into<String>) -> CliError {
        CliError {
            experiment: experiment.to_string(),
            cell: "-".to_string(),
            cause: cause.into(),
            code: EXIT_UNKNOWN_NAME,
        }
    }

    fn bad_flag(experiment: &str, cause: impl Into<String>) -> CliError {
        CliError {
            experiment: experiment.to_string(),
            cell: "-".to_string(),
            cause: cause.into(),
            code: EXIT_BAD_FLAG,
        }
    }

    /// An unusable trace (header damage, wrong topology, nothing
    /// salvageable): exit 2, same bucket as other bad-input failures.
    fn unusable(experiment: &str, cause: impl Into<String>) -> CliError {
        CliError {
            experiment: experiment.to_string(),
            cell: "-".to_string(),
            cause: cause.into(),
            code: EXIT_UNKNOWN_NAME,
        }
    }

    fn failure(experiment: &str, cell: &str, cause: impl Into<String>) -> CliError {
        CliError {
            experiment: experiment.to_string(),
            cell: cell.to_string(),
            cause: cause.into(),
            code: 1,
        }
    }

    fn report(self) -> ExitCode {
        eprintln!(
            "twice-exp: error experiment={} cell={} cause=\"{}\"",
            self.experiment, self.cell, self.cause
        );
        ExitCode::from(self.code)
    }
}

struct Args {
    command: String,
    subcommand: Option<String>,
    requests: Option<u64>,
    defense: Option<String>,
    workload: Option<String>,
    file: Option<String>,
    seed: Option<u64>,
    resume: Option<PathBuf>,
    journal: Option<PathBuf>,
    epoch: Option<u64>,
    halt_after: Option<usize>,
    wall_budget_ms: Option<u64>,
    sim_budget_ps: Option<u64>,
    jobs: Option<usize>,
    storage_faults: Option<u64>,
    retries: Option<u32>,
    backoff_ms: Option<u64>,
    shards: Option<usize>,
    device_faults: Option<u64>,
    dead_shards: Option<usize>,
    attackers: Option<u16>,
    telemetry_every: Option<usize>,
    obs_out: Option<String>,
    heartbeat_counters: Option<String>,
    population: Option<usize>,
    generations: Option<u32>,
    corpus: Option<PathBuf>,
    top: Option<usize>,
    sabotage: Option<usize>,
    defense_a: Option<String>,
    defense_b: Option<String>,
}

impl Args {
    /// The worker count: `--jobs N`, defaulting to the host's available
    /// parallelism. `--jobs 1` is the exact serial path.
    fn jobs(&self) -> usize {
        self.jobs.unwrap_or_else(default_jobs)
    }
}

fn flag_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, CliError> {
    args.next()
        .ok_or_else(|| CliError::bad_flag("-", format!("{flag} needs a value")))
}

fn parse_number<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, CliError> {
    raw.parse()
        .map_err(|_| CliError::bad_flag("-", format!("invalid {flag} value \"{raw}\"")))
}

fn parse_args() -> Result<Option<Args>, CliError> {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        return Ok(None);
    };
    let mut out = Args {
        command,
        subcommand: None,
        requests: None,
        defense: None,
        workload: None,
        file: None,
        seed: None,
        resume: None,
        journal: None,
        epoch: None,
        halt_after: None,
        wall_budget_ms: None,
        sim_budget_ps: None,
        jobs: None,
        storage_faults: None,
        retries: None,
        backoff_ms: None,
        shards: None,
        device_faults: None,
        dead_shards: None,
        attackers: None,
        telemetry_every: None,
        obs_out: None,
        heartbeat_counters: None,
        population: None,
        generations: None,
        corpus: None,
        top: None,
        sabotage: None,
        defense_a: None,
        defense_b: None,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--requests" => {
                out.requests = Some(parse_number(&flag, &flag_value(&mut args, &flag)?)?)
            }
            "--defense" => out.defense = Some(flag_value(&mut args, &flag)?),
            "--workload" => out.workload = Some(flag_value(&mut args, &flag)?),
            "--file" => out.file = Some(flag_value(&mut args, &flag)?),
            "--seed" => out.seed = Some(parse_number(&flag, &flag_value(&mut args, &flag)?)?),
            "--resume" => out.resume = Some(PathBuf::from(flag_value(&mut args, &flag)?)),
            "--journal" => out.journal = Some(PathBuf::from(flag_value(&mut args, &flag)?)),
            "--epoch" => out.epoch = Some(parse_number(&flag, &flag_value(&mut args, &flag)?)?),
            "--halt-after" => {
                out.halt_after = Some(parse_number(&flag, &flag_value(&mut args, &flag)?)?)
            }
            "--wall-budget-ms" => {
                out.wall_budget_ms = Some(parse_number(&flag, &flag_value(&mut args, &flag)?)?)
            }
            "--sim-budget-ps" => {
                out.sim_budget_ps = Some(parse_number(&flag, &flag_value(&mut args, &flag)?)?)
            }
            "--jobs" => {
                let jobs: usize = parse_number(&flag, &flag_value(&mut args, &flag)?)?;
                if jobs == 0 {
                    return Err(CliError::bad_flag("-", "--jobs must be at least 1"));
                }
                out.jobs = Some(jobs);
            }
            "--storage-faults" => {
                out.storage_faults = Some(parse_number(&flag, &flag_value(&mut args, &flag)?)?)
            }
            "--retries" => {
                let retries: u32 = parse_number(&flag, &flag_value(&mut args, &flag)?)?;
                if retries == 0 {
                    return Err(CliError::bad_flag("-", "--retries must be at least 1"));
                }
                out.retries = Some(retries);
            }
            "--backoff-ms" => {
                out.backoff_ms = Some(parse_number(&flag, &flag_value(&mut args, &flag)?)?)
            }
            "--shards" => {
                let shards: usize = parse_number(&flag, &flag_value(&mut args, &flag)?)?;
                if shards == 0 {
                    return Err(CliError::bad_flag("-", "--shards must be at least 1"));
                }
                out.shards = Some(shards);
            }
            "--device-faults" => {
                out.device_faults = Some(parse_number(&flag, &flag_value(&mut args, &flag)?)?)
            }
            "--dead-shards" => {
                out.dead_shards = Some(parse_number(&flag, &flag_value(&mut args, &flag)?)?)
            }
            "--attackers" => {
                out.attackers = Some(parse_number(&flag, &flag_value(&mut args, &flag)?)?)
            }
            "--telemetry-every" => {
                let every: usize = parse_number(&flag, &flag_value(&mut args, &flag)?)?;
                if every == 0 {
                    return Err(CliError::bad_flag(
                        "-",
                        "--telemetry-every must be at least 1",
                    ));
                }
                out.telemetry_every = Some(every);
            }
            "--obs-out" => out.obs_out = Some(flag_value(&mut args, &flag)?),
            "--heartbeat-counters" => out.heartbeat_counters = Some(flag_value(&mut args, &flag)?),
            "--population" => {
                let population: usize = parse_number(&flag, &flag_value(&mut args, &flag)?)?;
                if population < 2 {
                    return Err(CliError::bad_flag("-", "--population must be at least 2"));
                }
                out.population = Some(population);
            }
            "--generations" => {
                let generations: u32 = parse_number(&flag, &flag_value(&mut args, &flag)?)?;
                if generations == 0 {
                    return Err(CliError::bad_flag("-", "--generations must be at least 1"));
                }
                out.generations = Some(generations);
            }
            "--corpus" => out.corpus = Some(PathBuf::from(flag_value(&mut args, &flag)?)),
            "--top" => {
                let top: usize = parse_number(&flag, &flag_value(&mut args, &flag)?)?;
                if top == 0 {
                    return Err(CliError::bad_flag("-", "--top must be at least 1"));
                }
                out.top = Some(top);
            }
            "--sabotage" => {
                out.sabotage = Some(parse_number(&flag, &flag_value(&mut args, &flag)?)?)
            }
            "--defense-a" => out.defense_a = Some(flag_value(&mut args, &flag)?),
            "--defense-b" => out.defense_b = Some(flag_value(&mut args, &flag)?),
            _ if !flag.starts_with('-')
                && matches!(out.command.as_str(), "trace" | "redteam")
                && out.subcommand.is_none() =>
            {
                out.subcommand = Some(flag)
            }
            _ => return Err(CliError::bad_flag("-", format!("unknown flag {flag}"))),
        }
    }
    Ok(Some(out))
}

/// The one defense-name parser every subcommand shares
/// ([`DefenseKind::parse`]); a typo exits 2 with the full known-name
/// menu instead of a bare "unknown defense".
fn parse_defense(experiment: &str, name: &str) -> Result<DefenseKind, CliError> {
    DefenseKind::parse(name).ok_or_else(|| {
        CliError::unknown(
            experiment,
            format!(
                "unknown defense \"{name}\" (known: {})",
                DefenseKind::NAMES.join(" ")
            ),
        )
    })
}

fn workload_from_name(name: &str) -> Option<WorkloadKind> {
    // The named kinds plus every SPEC CPU2006 app model (as SPECrate).
    WorkloadKind::parse(name)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: twice-exp <command> [--requests N] [--defense NAME]\n\
         commands:\n\
         \x20 tables    print every computational table (2,3,4, bound, storage, sweeps)\n\
         \x20 table1    measured defense comparison (scaled system)\n\
         \x20 fig7a     Figure 7(a) sweep at paper scale\n\
         \x20 fig7b     Figure 7(b) sweep at paper scale\n\
         \x20 capacity  the 4.4 capacity bound\n\
         \x20 latency   ACT-latency spike comparison (S3 + S2)\n\
         \x20 ecc       ECC scrubbing fault experiment\n\
         \x20 attack    S3 confrontation on the scaled system\n\
         \x20 chaos     fault-injection campaign (SEU sweep + bus gauntlet)\n\
         \x20 fleet     supervised many-shard fleet (multi-tenant blend, quarantine)\n\
         \x20 bench     time table1 serial vs --jobs and each table variant's hot\n\
         \x20           path; write BENCH_3.json with the obs counter map\n\
         \x20 profile   run one instrumented cell ([--workload NAME] [--defense NAME])\n\
         \x20           and write a chrome://tracing trace to --obs-out\n\
         \x20 redteam   supervised adversarial search: evolve hammer-pattern genomes\n\
         \x20           against --defense NAME (quarantining pathological genomes,\n\
         \x20           journaling every evaluation for kill+resume); distill the\n\
         \x20           champions into a regression corpus with --corpus DIR\n\
         \x20   redteam verify  replay a corpus against EVERY defense and diff the\n\
         \x20                   hold/break outcomes against the sealed manifest\n\
         \x20 record    write a v1 text workload trace (--workload NAME --file PATH)\n\
         \x20 replay    replay a v1 text trace (--file PATH [--defense NAME])\n\
         \x20 trace     binary (twice-trace v2) trace ecosystem; subcommands:\n\
         \x20   trace record  encode a workload (--workload NAME --file PATH [--requests N])\n\
         \x20   trace replay  salvage-decode and replay (--file PATH [--defense NAME])\n\
         \x20   trace verify  salvage-decode and report health (--file PATH)\n\
         \x20   trace stat    sizes, composition, v1-vs-v2 compression (--file PATH)\n\
         \x20   trace diff    replay one trace under two defenses and report the\n\
         \x20                 first divergence (--file PATH --defense-a A --defense-b B)\n\
         \x20           trace subcommands honor --storage-faults/--retries/--backoff-ms\n\
         \x20           and exit 0 clean / 4 salvaged-and-degraded / 2 unusable\n\
         common flags:\n\
         \x20 --jobs N            worker threads for experiment grids\n\
         \x20                     (default: available parallelism; 1 = serial)\n\
         chaos/fleet flags:\n\
         \x20 --seed N            override the simulation seed\n\
         \x20 --journal DIR       journal completed cells + epoch checkpoints to DIR\n\
         \x20 --resume DIR        resume a killed campaign/fleet from DIR (must exist)\n\
         \x20 --epoch N           requests per checkpoint/watchdog epoch\n\
         \x20 --halt-after N      stop after N fresh cells (crash simulation, exit 75)\n\
         \x20 --wall-budget-ms N  per-cell wall-clock watchdog\n\
         \x20 --sim-budget-ps N   per-cell simulated-time watchdog (picoseconds)\n\
         \x20 --storage-faults S  inject seeded storage faults into every journal/\n\
         \x20                     checkpoint path (exit 4 if any cell is quarantined)\n\
         \x20 --retries N         attempts per failing cell/shard before quarantine\n\
         \x20 --backoff-ms N      linear backoff between attempts\n\
         fleet flags:\n\
         \x20 --shards N          shard instances to run (default 64)\n\
         \x20 --attackers N       attacker tenants per 16-tenant shard (default 2)\n\
         \x20 --device-faults S   arm the recoverable device fault plan (stuck bank\n\
         \x20                     FSMs, dropped refreshes, counter soft errors)\n\
         \x20 --dead-shards N     sabotage N shards (panics + deadline overruns)\n\
         \x20 --telemetry-every N cumulative telemetry row cadence (default 16)\n\
         \x20 --heartbeat-counters LIST\n\
         \x20                     comma-separated obs counters carried on telemetry\n\
         \x20                     rows (default: the full deterministic heartbeat set)\n\
         profile flags:\n\
         \x20 --obs-out PATH      trace_event JSON output (default profile-trace.json)\n\
         redteam flags:\n\
         \x20 --population N      genomes per generation (default 16)\n\
         \x20 --generations N     generations to evolve (default 8)\n\
         \x20 --requests N        requests per evaluation (default 24000)\n\
         \x20 --corpus DIR        distill the top genomes into DIR (search) /\n\
         \x20                     the corpus to replay (verify)\n\
         \x20 --top N             corpus traces to distill (default 3)\n\
         \x20 --sabotage N        poison N generation-0 genomes (panic + budget\n\
         \x20                     blowout) to exercise quarantine\n\
         \x20 (--journal/--resume/--jobs/--epoch/--halt-after/--seed and the\n\
         \x20  budget/storage/retry flags work as for chaos)\n\
         exit codes:\n\
         \x20  0  success\n\
         \x20  2  unknown command, defense, workload, or SPEC app name\n\
         \x20  3  invalid flag value (e.g. --jobs 0, --shards 0)\n\
         \x20  4  completed degraded: at least one cell/shard quarantined\n\
         \x20     (fleet prints its FleetSummary on stderr), a trace\n\
         \x20     replayed/verified only after salvage dropped frames, or a\n\
         \x20     defense fell to the red-team corpus (redteam/redteam verify)\n\
         \x20  2  (trace) the trace file is unusable: damaged header,\n\
         \x20     foreign version/topology, or nothing salvageable\n\
         \x20 75  halted early by --halt-after (rerun with --resume)\n\
         \x20  1  everything else (I/O, a failed safety property)\n\
         defenses: twice twice-fa twice-pa twice-split para para2 prohit cbt cra\n\
         \x20         trr graphene oracle none"
    );
    ExitCode::from(EXIT_UNKNOWN_NAME)
}

fn run_chaos(args: &Args) -> Result<ExitCode, CliError> {
    let mut cfg = SimConfig::fast_test();
    if let Some(seed) = args.seed {
        cfg.seed = seed;
    }
    let mut cc = CampaignConfig::new(args.requests.unwrap_or(60_000));
    if let Some(epoch) = args.epoch {
        if epoch == 0 {
            return Err(CliError::bad_flag("chaos", "--epoch must be at least 1"));
        }
        cc.epoch = epoch;
    }
    cc.halt_after = args.halt_after;
    cc.wall_budget_ms = args.wall_budget_ms;
    cc.sim_budget_ps = args.sim_budget_ps;
    cc.jobs = args.jobs();
    if let Some(retries) = args.retries {
        cc.retries = retries;
    }
    if let Some(backoff) = args.backoff_ms {
        cc.backoff_ms = backoff;
    }
    if let Some(seed) = args.storage_faults {
        cc.io = Arc::new(twice_sim::cio::FaultyIo::with_default_plan(seed));
    }
    if args.resume.is_some() && args.journal.is_some() {
        return Err(CliError::bad_flag(
            "chaos",
            "--resume and --journal are mutually exclusive (resume implies the journal directory)",
        ));
    }
    if let Some(dir) = &args.resume {
        if !dir.is_dir() {
            return Err(CliError::bad_flag(
                "chaos",
                format!("--resume directory {} does not exist", dir.display()),
            ));
        }
        cc.dir = Some(dir.clone());
        cc.resume = true;
    } else if let Some(dir) = &args.journal {
        cc.dir = Some(dir.clone());
    }

    let report = twice_sim::campaign::chaos_campaign(&cfg, &cc)
        .map_err(|e| CliError::failure("chaos", "-", format!("journal I/O failed: {e}")))?;

    // The report goes to stdout and is byte-identical between a clean
    // run and a kill+resume; bookkeeping notes go to stderr.
    if report.salvaged > 0 {
        eprintln!(
            "twice-exp: resumed: {} journaled cell(s) salvaged",
            report.salvaged
        );
    }
    if report.storage.is_degraded() {
        eprintln!("twice-exp: storage recovery: {}", report.storage);
    }
    for cell in &report.cells {
        if let Some(line) = cell.outcome.error_line() {
            eprintln!("twice-exp: degraded cell: {line}");
        }
    }
    if report.halted {
        eprintln!(
            "twice-exp: halted by --halt-after with {} cell(s) journaled; \
             rerun with --resume to continue",
            report.cells.len()
        );
        return Ok(ExitCode::from(EXIT_HALTED));
    }

    println!("{}", report.table);
    // Per-cell totals merged at collection time (no shared counters
    // across workers) — see CampaignTotals.
    let hardened_flips = usize::try_from(report.hardened.bit_flips).unwrap_or(usize::MAX);
    println!(
        "hardened engine: {hardened_flips} bit flip(s) across the grid; \
         unhardened: {}",
        report.unhardened.bit_flips
    );
    if hardened_flips > 0 {
        return Err(CliError::failure(
            "chaos",
            "-",
            format!("hardened engine recorded {hardened_flips} bit flip(s)"),
        ));
    }
    if report.storage.quarantined_cells > 0 {
        // The campaign completed and the report above is trustworthy,
        // but quarantined cells are missing from it: a distinct exit
        // code so supervisors can tell "done" from "done, degraded".
        eprintln!(
            "twice-exp: degraded: {} cell(s) quarantined after exhausting retries",
            report.storage.quarantined_cells
        );
        return Ok(ExitCode::from(EXIT_DEGRADED));
    }
    Ok(ExitCode::SUCCESS)
}

/// Parses `--heartbeat-counters`: a comma-separated list of counter
/// names (`core.acts` or `core_acts` form). An unrecognized counter
/// name exits 2 like any other unknown name; a real counter outside
/// the deterministic [`twice_obs::HEARTBEAT`] set is an invalid *value*
/// (exit 3) — carrying it would break the rows-identical-across-jobs
/// telemetry contract.
fn parse_heartbeat(spec: &str) -> Result<Vec<twice_obs::Ctr>, CliError> {
    let mut out = Vec::new();
    for name in spec.split(',').map(str::trim) {
        if name.is_empty() {
            continue;
        }
        let Some(c) = twice_obs::Ctr::parse(name) else {
            return Err(CliError::unknown(
                "fleet",
                format!("unknown counter \"{name}\""),
            ));
        };
        if !twice_obs::HEARTBEAT.contains(&c) {
            return Err(CliError::bad_flag(
                "fleet",
                format!(
                    "counter \"{name}\" is not heartbeat-safe; choose from: {}",
                    twice_obs::HEARTBEAT.map(|h| h.name()).join(", ")
                ),
            ));
        }
        if !out.contains(&c) {
            out.push(c);
        }
    }
    if out.is_empty() {
        return Err(CliError::bad_flag(
            "fleet",
            "--heartbeat-counters needs at least one counter name",
        ));
    }
    Ok(out)
}

/// `twice-exp fleet`: the supervised many-shard fleet. Every shard is
/// an independent scaled system running the 16-tenant attacker/benign
/// blend; panicking, over-deadline, or I/O-starved shards are
/// quarantined (exit 4 with the `FleetSummary` on stderr) instead of
/// aborting the fleet. `--journal DIR` makes the run durable and
/// resumable; on `--resume` the journaled fleet meta wins over flags.
fn run_fleet(args: &Args) -> Result<ExitCode, CliError> {
    let mut fc = twice_sim::fleet::FleetConfig::new(args.shards.unwrap_or(64));
    fc.requests = args.requests.unwrap_or(2_000);
    if let Some(epoch) = args.epoch {
        if epoch == 0 {
            return Err(CliError::bad_flag("fleet", "--epoch must be at least 1"));
        }
        fc.epoch = epoch;
    }
    if let Some(seed) = args.seed {
        fc.seed = seed;
    }
    fc.attackers = args.attackers.unwrap_or(2);
    fc.device_faults = args.device_faults;
    fc.dead_shards = args.dead_shards.unwrap_or(0);
    fc.halt_after = args.halt_after;
    // Dead shards stall on purpose; a default wall budget keeps any
    // non-deterministic hang from wedging the whole fleet.
    fc.wall_budget_ms = args.wall_budget_ms.or(Some(30_000));
    fc.sim_budget_ps = args.sim_budget_ps;
    fc.jobs = args.jobs();
    if let Some(every) = args.telemetry_every {
        fc.telemetry_every = every;
    }
    if let Some(retries) = args.retries {
        fc.retries = retries;
    }
    if let Some(backoff) = args.backoff_ms {
        fc.backoff_ms = backoff;
    }
    if let Some(seed) = args.storage_faults {
        fc.io = Arc::new(twice_sim::cio::FaultyIo::with_default_plan(seed));
    }
    if let Some(spec) = &args.heartbeat_counters {
        fc.heartbeat = parse_heartbeat(spec)?;
    }
    if args.resume.is_some() && args.journal.is_some() {
        return Err(CliError::bad_flag(
            "fleet",
            "--resume and --journal are mutually exclusive (resume implies the journal directory)",
        ));
    }
    if let Some(dir) = &args.resume {
        if !dir.is_dir() {
            return Err(CliError::bad_flag(
                "fleet",
                format!("--resume directory {} does not exist", dir.display()),
            ));
        }
        fc.dir = Some(dir.clone());
        fc.resume = true;
    } else if let Some(dir) = &args.journal {
        fc.dir = Some(dir.clone());
    }

    let report = twice_sim::fleet::run_fleet(&fc)
        .map_err(|e| CliError::failure("fleet", "-", format!("fleet I/O failed: {e}")))?;

    if report.salvaged > 0 {
        eprintln!(
            "twice-exp: resumed: {} journaled shard(s) salvaged",
            report.salvaged
        );
    }
    if report.storage.is_degraded() {
        eprintln!("twice-exp: storage recovery: {}", report.storage);
    }
    for shard in &report.shards {
        if let Err(e) = &shard.result {
            eprintln!("twice-exp: quarantined shard {}: {e}", shard.index);
        }
    }
    if report.halted {
        eprintln!(
            "twice-exp: halted by --halt-after with {} shard(s) accounted; \
             rerun with --resume to continue",
            report.shards.len()
        );
        return Ok(ExitCode::from(EXIT_HALTED));
    }
    println!("{}", report.summary);
    for row in &report.telemetry {
        println!("{row}");
    }
    if report.summary.bit_flips > 0 {
        return Err(CliError::failure(
            "fleet",
            "-",
            format!(
                "{} bit flip(s) escaped the defense across the fleet",
                report.summary.bit_flips
            ),
        ));
    }
    if report.summary.quarantined > 0 {
        // Degrade, don't die: the fleet completed around its quarantined
        // shards. The summary on stderr is the supervisor-facing signal.
        eprintln!("twice-exp: degraded: {}", report.summary);
        return Ok(ExitCode::from(EXIT_DEGRADED));
    }
    Ok(ExitCode::SUCCESS)
}

/// `twice-exp profile`: one instrumented cell with the trace buffer
/// armed. Prints the counter/histogram/span report to stdout and
/// writes the Chrome `trace_event` JSON (validated before the write)
/// to `--obs-out` (default `profile-trace.json`). Open the file in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
fn run_profile(args: &Args) -> Result<ExitCode, CliError> {
    let defense_name = args.defense.as_deref().unwrap_or("twice");
    let defense = parse_defense("profile", defense_name)?;
    let workload_name = args.workload.as_deref().unwrap_or("s1");
    let Some(workload) = workload_from_name(workload_name) else {
        return Err(CliError::unknown(
            "profile",
            format!("unknown workload \"{workload_name}\""),
        ));
    };
    if args.epoch == Some(0) {
        return Err(CliError::bad_flag("profile", "--epoch must be at least 1"));
    }
    let mut cfg = SimConfig::fast_test();
    if let Some(seed) = args.seed {
        cfg.seed = seed;
    }
    let requests = args.requests.unwrap_or(20_000);
    let epoch = args.epoch.unwrap_or(4_096);
    let cell = format!("{workload_name}/{defense_name}");
    let report = twice_sim::profile::profile_cell(&cfg, workload, defense, requests, epoch)
        .map_err(|e| CliError::failure("profile", &cell, e.to_string()))?;

    if cfg!(feature = "obs-off") {
        eprintln!(
            "twice-exp: built with obs-off: every probe is compiled out, \
             the report and trace are empty"
        );
    } else {
        let missing = report.missing_layers();
        if !missing.is_empty() {
            return Err(CliError::failure(
                "profile",
                &cell,
                format!("no trace events from layer(s): {}", missing.join(",")),
            ));
        }
    }
    let trace = report.trace_json();
    twice_sim::profile::validate_trace_json(&trace)
        .map_err(|e| CliError::failure("profile", &cell, format!("trace self-check: {e}")))?;
    let path = args
        .obs_out
        .clone()
        .unwrap_or_else(|| "profile-trace.json".into());
    std::fs::write(&path, &trace)
        .map_err(|e| CliError::failure("profile", "-", format!("cannot write {path}: {e}")))?;
    print!("{}", report.render());
    println!(
        "profiled {cell} x{requests}: {} trace event(s) -> {path}",
        report.snapshot.trace.len()
    );
    Ok(ExitCode::SUCCESS)
}

/// Times one table organization's engine hot path directly: a
/// deterministic pseudo-random row stream into `on_activate`, with a
/// prune across all banks every `max_act` ACTs — the TWiCe per-ACT work
/// with no simulator around it, so the SoA-vs-legacy layout difference
/// is what the clock sees. Returns (wall seconds, anti-DCE sink).
fn bench_table_variant(org: TableOrganization, acts: u64) -> (f64, u64) {
    use twice::TwiceEngine;
    use twice_common::rng::SplitMix64;
    use twice_common::{BankId, RowHammerDefense, RowId, Time};
    const BANKS: u32 = 4;
    let params = TwiceParams::fast_test();
    let max_act = params.max_act();
    let mut engine = TwiceEngine::with_organization(params, BANKS, org);
    let mut rng = SplitMix64::new(0xB311C4);
    let mut sink = 0u64;
    let start = Instant::now();
    for step in 0..acts {
        if step > 0 && step.is_multiple_of(max_act) {
            for b in 0..BANKS {
                sink ^= engine
                    .on_auto_refresh(BankId(b), Time::ZERO)
                    .refresh_rows
                    .len() as u64;
            }
        }
        let bank = BankId(rng.next_below(u64::from(BANKS)) as u32);
        let row = RowId(rng.next_below(4_096) as u32);
        sink ^= engine
            .on_activate(bank, row, Time::ZERO)
            .arr
            .map_or(0, |r| u64::from(r.0));
    }
    (start.elapsed().as_secs_f64(), sink)
}

/// `twice-exp bench`: times Table 1 serial vs pooled, then each table
/// organization's engine hot path in isolation, and records the perf
/// data point (`BENCH_3.json`, overridable via `--file`) with the obs
/// counter map and per-span phase totals for the pooled pass.
/// Requests come from `--requests`, then `TWICE_BENCH_REQUESTS`, then
/// 40 000. The two tables must render identically — the bench doubles
/// as a serial-equivalence smoke test. A speedup is only computed (and
/// only printed) when the parallel job count actually differs from the
/// serial pass; `serial_jobs`/`parallel_jobs` are recorded separately
/// so the file can never claim a speedup between two identical runs.
/// `soa_acts_per_sec` is the *slowest* SoA variant's hot-path
/// throughput — the honest floor a regression guard can compare.
fn run_bench(args: &Args) -> Result<ExitCode, CliError> {
    let requests = args
        .requests
        .or_else(|| {
            std::env::var("TWICE_BENCH_REQUESTS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(40_000);
    let serial_jobs = 1usize;
    let parallel_jobs = args.jobs();
    let cfg = SimConfig::fast_test();
    let serial_start = Instant::now();
    let (serial_table, _) = table1::table1_jobs(&cfg, requests, serial_jobs);
    let serial_secs = serial_start.elapsed().as_secs_f64();
    // The counter map and phase totals are scoped to the pooled pass —
    // the pass whose wall time produces `acts_per_sec`.
    twice_obs::reset();
    let pooled_start = Instant::now();
    let (pooled_table, cells) = table1::table1_jobs(&cfg, requests, parallel_jobs);
    let pooled_secs = pooled_start.elapsed().as_secs_f64();
    let snapshot = twice_obs::snapshot();
    if pooled_table.to_string() != serial_table.to_string() {
        return Err(CliError::failure(
            "bench",
            "table1",
            format!("--jobs {parallel_jobs} table diverged from the serial run"),
        ));
    }
    let speedup = (parallel_jobs != serial_jobs).then(|| serial_secs / pooled_secs.max(1e-9));
    // Absolute throughput: total activations simulated by the pooled
    // pass over its wall time, so BENCH_N.json files are comparable
    // across machines and request budgets, not just to their own
    // serial baseline.
    let acts: u64 = cells
        .iter()
        .filter_map(|c| c.result.as_ref().ok())
        .map(|c| c.acts)
        .sum();
    let acts_per_sec = (acts as f64 / pooled_secs.max(1e-9)).round() as u64;
    // Hot-path throughput per table organization (SoA variants and
    // their map-based legacy twins). The budget scales with the request
    // budget so CI smoke runs stay quick, with a floor that keeps the
    // measurement out of timer-noise territory.
    let variant_acts = (requests * 25).max(1_000_000);
    const VARIANT_ORGS: [TableOrganization; 6] = [
        TableOrganization::FullyAssociative,
        TableOrganization::PseudoAssociative,
        TableOrganization::Split,
        TableOrganization::LegacyFullyAssociative,
        TableOrganization::LegacyPseudoAssociative,
        TableOrganization::LegacySplit,
    ];
    let variants: Vec<(&'static str, f64, u64)> = VARIANT_ORGS
        .into_iter()
        .map(|org| {
            let (secs, _sink) = bench_table_variant(org, variant_acts);
            let aps = (variant_acts as f64 / secs.max(1e-9)).round() as u64;
            (org.label(), secs, aps)
        })
        .collect();
    let soa_acts_per_sec = variants[..3]
        .iter()
        .map(|(_, _, aps)| *aps)
        .min()
        .expect("three SoA variants");
    let path = args.file.clone().unwrap_or_else(|| "BENCH_3.json".into());
    let counters: Vec<String> = twice_obs::Ctr::ALL
        .into_iter()
        .filter(|c| snapshot.counter(*c) > 0)
        .map(|c| format!("    \"{}\": {}", c.name(), snapshot.counter(c)))
        .collect();
    let phases: Vec<String> = twice_obs::SpanId::ALL
        .into_iter()
        .filter(|s| snapshot.span_hist(*s).count() > 0)
        .map(|s| {
            let h = snapshot.span_hist(s);
            format!(
                "    \"{}\": {{ \"count\": {}, \"total_ns\": {} }}",
                s.name(),
                h.count(),
                h.sum()
            )
        })
        .collect();
    let speedup_field = speedup
        .map(|s| format!("  \"speedup\": {s:.2},\n"))
        .unwrap_or_default();
    let variant_rows: Vec<String> = variants
        .iter()
        .map(|(label, secs, aps)| {
            format!(
                "    {{ \"table_variant\": \"{label}\", \"acts\": {variant_acts}, \
                 \"secs\": {secs:.3}, \"acts_per_sec\": {aps} }}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"twice-bench-3\",\n  \"experiment\": \"table1\",\n  \
         \"requests\": {requests},\n  \"serial_jobs\": {serial_jobs},\n  \
         \"parallel_jobs\": {parallel_jobs},\n  \
         \"serial_secs\": {serial_secs:.3},\n  \"parallel_secs\": {pooled_secs:.3},\n\
         {speedup_field}  \"acts\": {acts},\n  \"acts_per_sec\": {acts_per_sec},\n  \
         \"soa_acts_per_sec\": {soa_acts_per_sec},\n  \
         \"table_variants\": [\n{}\n  ],\n  \
         \"counters\": {{\n{}\n  }},\n  \"phases\": {{\n{}\n  }}\n}}\n",
        variant_rows.join(",\n"),
        counters.join(",\n"),
        phases.join(",\n"),
    );
    std::fs::write(&path, json)
        .map_err(|e| CliError::failure("bench", "-", format!("cannot write {path}: {e}")))?;
    let speedup_note = speedup
        .map(|s| format!(", speedup {s:.2}x"))
        .unwrap_or_else(|| ", speedup n/a (serial == parallel jobs)".to_string());
    println!(
        "table1 x{requests}: serial {serial_secs:.3}s, --jobs {parallel_jobs} \
         {pooled_secs:.3}s{speedup_note}, {acts_per_sec} acts/s -> {path}"
    );
    // Hot-path rows, with each SoA variant's gain over its legacy twin.
    for (i, (label, secs, aps)) in variants.iter().enumerate() {
        let vs_legacy = if i < 3 {
            let legacy_aps = variants[i + 3].2;
            format!(
                ", {:.1}x vs {}",
                *aps as f64 / legacy_aps.max(1) as f64,
                variants[i + 3].0
            )
        } else {
            String::new()
        };
        println!("table {label:12} x{variant_acts}: {secs:.3}s, {aps} acts/s{vs_legacy}");
    }
    // The per-phase breakdown, mirrored to stdout for humans.
    for s in twice_obs::SpanId::ALL {
        let h = snapshot.span_hist(s);
        if h.count() > 0 {
            println!(
                "phase {:18} n={:<8} total={:.3}ms mean={}ns",
                s.name(),
                h.count(),
                h.sum() as f64 / 1e6,
                h.mean()
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// `twice-exp trace <record|replay|verify|stat>`: the binary
/// (`twice-trace v2`) trace ecosystem. All file I/O goes through the
/// campaign storage seam, so `--storage-faults` tortures these paths
/// exactly like journals and checkpoints. Exit codes follow the trace
/// health ladder: 0 clean, 4 salvaged-and-degraded, 2 unusable.
/// `redteam` — evolve adversarial hammer patterns against a defense
/// under the supervision ladder, journal every evaluation for
/// kill+resume, and optionally distill the winners into a regression
/// corpus. `redteam verify` replays a corpus against every defense and
/// exits 4 on any contract violation (a defense fell).
fn run_redteam(args: &Args) -> Result<ExitCode, CliError> {
    use twice_sim::redteam::{self, RedteamConfig, RedteamOutcome, CORPUS_MANIFEST, MUST_HOLD};

    if let Some(sub) = args.subcommand.as_deref() {
        if sub != "verify" {
            return Err(CliError::unknown(
                "redteam",
                format!("unknown redteam subcommand \"{sub}\" (only: verify)"),
            ));
        }
        let Some(corpus_dir) = &args.corpus else {
            return Err(CliError::bad_flag(
                "redteam verify",
                "redteam verify needs --corpus DIR",
            ));
        };
        let mut cfg = SimConfig::fast_test();
        if let Some(seed) = args.seed {
            cfg.seed = seed;
        }
        let io: Arc<dyn twice_sim::cio::CampaignIo> = match args.storage_faults {
            Some(seed) => Arc::new(twice_sim::cio::FaultyIo::with_default_plan(seed)),
            None => Arc::new(twice_sim::cio::RealIo),
        };
        let report = redteam::verify_corpus(
            &cfg,
            &io,
            corpus_dir,
            args.retries.unwrap_or(3),
            args.backoff_ms.unwrap_or(0),
        )
        .map_err(|e| {
            if e.contains(CORPUS_MANIFEST) {
                CliError::unusable("redteam verify", e)
            } else {
                CliError::failure("redteam verify", "-", e)
            }
        })?;
        for finding in &report.findings {
            println!("finding: {finding}");
        }
        println!(
            "verified {} trace(s) x {} defense replay(s): {} expected break(s), {} regression(s)",
            report.traces,
            report.replays,
            report.findings.len(),
            report.regressions.len()
        );
        if !report.regressions.is_empty() {
            for r in &report.regressions {
                eprintln!("twice-exp: corpus regression: {r}");
            }
            eprintln!("twice-exp: degraded: a defense fell to the red-team corpus");
            return Ok(ExitCode::from(EXIT_DEGRADED));
        }
        return Ok(ExitCode::SUCCESS);
    }

    let mut cfg = SimConfig::fast_test();
    if let Some(seed) = args.seed {
        cfg.seed = seed;
    }
    let name = args.defense.as_deref().unwrap_or("twice");
    let defense = parse_defense("redteam", name)?;
    if args.resume.is_some() && args.journal.is_some() {
        return Err(CliError::bad_flag(
            "redteam",
            "--resume and --journal are mutually exclusive (resume implies the journal directory)",
        ));
    }
    let dir = if let Some(d) = &args.resume {
        if !d.is_dir() {
            return Err(CliError::bad_flag(
                "redteam",
                format!("--resume directory {} does not exist", d.display()),
            ));
        }
        d.clone()
    } else {
        args.journal
            .clone()
            .unwrap_or_else(|| PathBuf::from("redteam-out"))
    };
    let mut rc = RedteamConfig::new(cfg, defense, dir);
    if let Some(p) = args.population {
        rc.population = p;
    }
    if let Some(g) = args.generations {
        rc.generations = g;
    }
    if let Some(r) = args.requests {
        rc.requests = r;
    }
    if let Some(e) = args.epoch {
        if e == 0 {
            return Err(CliError::bad_flag("redteam", "--epoch must be at least 1"));
        }
        rc.epoch = e;
    }
    rc.wall_budget_ms = args.wall_budget_ms.unwrap_or(0);
    rc.sim_budget_ps = args.sim_budget_ps.unwrap_or(0);
    rc.jobs = args.jobs();
    if let Some(r) = args.retries {
        rc.retries = r;
    }
    if let Some(b) = args.backoff_ms {
        rc.backoff_ms = b;
    }
    rc.sabotage = args.sabotage.unwrap_or(0);
    rc.halt_after = args.halt_after.map(|n| n as u64);
    if let Some(seed) = args.storage_faults {
        rc.io = Arc::new(twice_sim::cio::FaultyIo::with_default_plan(seed));
    }

    let outcome = redteam::redteam_search(&rc).map_err(|e| {
        if e.contains("different campaign") {
            CliError::unusable("redteam", e)
        } else {
            CliError::failure("redteam", "-", e)
        }
    })?;
    let report = match outcome {
        RedteamOutcome::Halted { evals_live } => {
            eprintln!(
                "twice-exp: redteam halted after {evals_live} live evaluation(s); \
                 rerun with --resume {} to continue",
                rc.dir.display()
            );
            return Ok(ExitCode::from(EXIT_HALTED));
        }
        RedteamOutcome::Completed(r) => r,
    };

    println!(
        "redteam search: defense={} population={} generations={} requests={} seed={}",
        rc.defense, rc.population, rc.generations, rc.requests, rc.cfg.seed
    );
    println!("gen  best_fitness  quarantined  digest              best");
    for g in &report.generations {
        println!(
            "{:>3}  {:>12}  {:>11}  {:#018x}  {}",
            g.gen, g.best_fitness, g.quarantined, g.digest, g.best_summary
        );
    }
    println!(
        "evals: {} live, {} cached; {} quarantined; {} journal line(s) dropped, {} corrupt",
        report.evals_live,
        report.evals_cached,
        report.quarantined,
        report.journal_dropped,
        report.journal_corrupt
    );
    if let Some((genome, best)) = report.best.first() {
        println!(
            "champion: {} (fitness {}, {} flip(s), stealth peak {}, near-miss {}permille) {}",
            genome.summary(),
            best.fitness,
            best.bit_flips,
            best.stealth_peak,
            best.near_miss_permille,
            genome.hex()
        );
    }

    if let Some(corpus_dir) = &args.corpus {
        let entries = redteam::distill_corpus(&rc, &report.best, corpus_dir, args.top.unwrap_or(3))
            .map_err(|e| CliError::failure("redteam", "corpus", e))?;
        let mut fallen = Vec::new();
        for e in &entries {
            println!(
                "corpus {}: fitness {} holds=[{}] breaks=[{}]",
                e.file,
                e.fitness,
                e.holds.join(","),
                e.breaks.join(",")
            );
            for broken in &e.breaks {
                if MUST_HOLD.contains(&broken.as_str()) {
                    fallen.push(format!("{} fell to {}", broken, e.file));
                }
            }
        }
        if !fallen.is_empty() {
            for f in &fallen {
                eprintln!(
                    "twice-exp: HEADLINE: {f} - record this in DESIGN.md, do not ship silently"
                );
            }
            return Ok(ExitCode::from(EXIT_DEGRADED));
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn run_trace(args: &Args) -> Result<ExitCode, CliError> {
    use twice_sim::tracecli::{self, TraceIo};
    use twice_workloads::tracev2::TraceHealth;

    let Some(sub) = args.subcommand.as_deref() else {
        return Err(CliError::bad_flag(
            "trace",
            "trace needs a subcommand: record | replay | verify | stat | diff",
        ));
    };
    if !matches!(sub, "record" | "replay" | "verify" | "stat" | "diff") {
        return Err(CliError::unknown(
            "trace",
            format!("unknown trace subcommand \"{sub}\""),
        ));
    }
    let experiment = format!("trace {sub}");
    let Some(path) = args.file.as_deref() else {
        return Err(CliError::bad_flag(&experiment, "trace needs --file PATH"));
    };
    let path = std::path::Path::new(path);
    let mut cfg = SimConfig::paper_default();
    if let Some(seed) = args.seed {
        cfg.seed = seed;
    }
    let mut tio = TraceIo::real();
    if let Some(seed) = args.storage_faults {
        tio.io = Arc::new(twice_sim::cio::FaultyIo::with_default_plan(seed));
    }
    if let Some(retries) = args.retries {
        tio.attempts = retries;
    }
    if let Some(backoff) = args.backoff_ms {
        tio.backoff_ms = backoff;
    }

    if sub == "record" {
        let name = args.workload.as_deref().unwrap_or("s1");
        let Some(workload) = workload_from_name(name) else {
            return Err(CliError::unknown(
                &experiment,
                format!("unknown workload \"{name}\""),
            ));
        };
        let requests = args.requests.unwrap_or(100_000);
        let out = tracecli::record_trace(&tio, &cfg, &workload, requests, path)
            .map_err(|e| CliError::failure(&experiment, name, e.to_string()))?;
        println!(
            "recorded {} accesses ({} bytes) of {name} to {}",
            out.records,
            out.bytes,
            path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    // Every other subcommand starts by loading + salvage-decoding.
    let loaded = tracecli::load_trace(&tio, &cfg, path).map_err(|e| match e {
        tracecli::TraceCliError::Header(h) => CliError::unusable(&experiment, h.to_string()),
        other => CliError::failure(&experiment, "-", other.to_string()),
    })?;
    let health = loaded.salvaged.health();
    let summary = &loaded.salvaged.summary;
    if summary.is_degraded() {
        eprintln!(
            "twice-exp: trace salvage: {} frame(s) kept, {} corrupt region(s), \
             {} byte(s) quarantined",
            summary.frames_kept, summary.frames_dropped, summary.bytes_quarantined
        );
        for err in &summary.errors {
            eprintln!("twice-exp: trace salvage: {err}");
        }
        if summary.errors_truncated {
            eprintln!("twice-exp: trace salvage: (further errors elided)");
        }
    }
    if health == TraceHealth::Unusable {
        return Err(CliError::unusable(
            &experiment,
            format!(
                "no records salvageable from {} ({} byte(s) quarantined)",
                path.display(),
                summary.bytes_quarantined
            ),
        ));
    }

    match sub {
        "verify" | "stat" => {
            if sub == "stat" {
                println!("{}", loaded.stats());
            } else {
                println!(
                    "{}: {} record(s) in {} frame(s){}",
                    path.display(),
                    summary.records,
                    summary.frames_kept,
                    if health == TraceHealth::Salvaged {
                        " (salvaged)"
                    } else {
                        ""
                    }
                );
            }
        }
        "diff" => {
            let Some(name_a) = args.defense_a.as_deref() else {
                return Err(CliError::bad_flag(
                    &experiment,
                    "trace diff needs --defense-a NAME",
                ));
            };
            let Some(name_b) = args.defense_b.as_deref() else {
                return Err(CliError::bad_flag(
                    &experiment,
                    "trace diff needs --defense-b NAME",
                ));
            };
            let kind_a = parse_defense(&experiment, name_a)?;
            let kind_b = parse_defense(&experiment, name_b)?;
            let label = format!("{}", path.display());
            let total = loaded.salvaged.items.len();
            let diff = tracecli::diff_trace(
                &cfg,
                kind_a,
                kind_b,
                Arc::new(loaded.salvaged.items),
                &label,
            )
            .map_err(|e| CliError::failure(&experiment, "-", format!("diff aborted: {e}")))?;
            println!("{label}: {} vs {}", diff.a.defense, diff.b.defense);
            match diff.divergence {
                Some(d) => println!(
                    "first divergence at access {}/{total}: {} {} vs {}",
                    d.access, d.field, d.a, d.b
                ),
                None => println!("no observable divergence over {total} accesses"),
            }
            for m in [&diff.a, &diff.b] {
                println!(
                    "  {:12} {} additional ACT(s) ({}), {} detection(s), {} flip(s), {} nack(s)",
                    m.defense,
                    m.additional_acts,
                    m.ratio_percent(),
                    m.detections,
                    m.bit_flips,
                    m.nacks
                );
            }
            println!(
                "  delta        {:+} additional ACT(s), {:+} detection(s), {:+} flip(s), \
                 digests {:#018x} / {:#018x}",
                diff.b.additional_acts as i64 - diff.a.additional_acts as i64,
                diff.b.detections as i64 - diff.a.detections as i64,
                diff.b.bit_flips as i64 - diff.a.bit_flips as i64,
                diff.digest_a,
                diff.digest_b
            );
        }
        "replay" => {
            let name = args.defense.as_deref().unwrap_or("twice");
            let kind = parse_defense(&experiment, name)?;
            let label = format!("{}", path.display());
            let out = tracecli::replay_trace(&cfg, kind, Arc::new(loaded.salvaged.items), &label)
                .map_err(|e| {
                CliError::failure(&experiment, name, format!("replay aborted: {e}"))
            })?;
            let m = &out.metrics;
            println!(
                "{}: {} requests, {} ACTs, {} additional ({}), {} detection(s), {} flip(s), \
                 digest {:#018x}",
                m.defense,
                m.requests,
                m.normal_acts,
                m.additional_acts,
                m.ratio_percent(),
                m.detections,
                m.bit_flips,
                out.digest
            );
        }
        _ => unreachable!("subcommand validated above"),
    }
    if health == TraceHealth::Salvaged {
        eprintln!("twice-exp: degraded: replayable records were salvaged from a damaged trace");
        return Ok(ExitCode::from(EXIT_DEGRADED));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => return usage(),
        Err(e) => return e.report(),
    };
    let params = TwiceParams::paper_default();
    match args.command.as_str() {
        "tables" => {
            println!("{}", table2::table2(&params));
            println!(
                "{}",
                table3::table3(&TwiceCostModel::table3_45nm(), &params.timings)
            );
            println!("{}", table4::table4(&SimConfig::paper_default()));
            println!("{}", capacity::capacity(&params, 128).table);
            println!("{}", storage::storage(&params).table);
            println!("{}", ablation::arr_overhead(&params).table);
            println!(
                "{}",
                ablation::th_rh_sweep(&params, &[8_192, 16_384, 32_768, 65_536])
            );
            println!("{}", ablation::timing_sweep(&params));
        }
        "table1" => {
            let cfg = SimConfig::fast_test();
            let (table, _) =
                table1::table1_jobs(&cfg, args.requests.unwrap_or(40_000), args.jobs());
            println!("{table}");
        }
        "fig7a" => {
            let cfg = SimConfig::paper_default();
            let sample = ["mcf", "libquantum", "lbm", "omnetpp", "gcc", "hmmer"];
            let result =
                fig7::figure7a_jobs(&cfg, &sample, args.requests.unwrap_or(250_000), args.jobs());
            println!("{}", result.table);
        }
        "fig7b" => {
            let cfg = SimConfig::paper_default();
            let result = fig7::figure7b_jobs(&cfg, args.requests.unwrap_or(1_500_000), args.jobs());
            println!("{}", result.table);
        }
        "capacity" => {
            println!("{}", capacity::capacity(&params, 256).table);
        }
        "latency" => {
            let cfg = SimConfig::paper_default();
            let requests = args.requests.unwrap_or(250_000);
            let workloads = vec![
                ("S3".to_string(), WorkloadKind::S3, requests),
                ("S2".to_string(), WorkloadKind::S2, requests.max(1_500_000)),
            ];
            println!(
                "{}",
                latency::latency_spike_jobs(&cfg, &workloads, args.jobs()).table
            );
        }
        "ecc" => {
            let cfg = SimConfig::fast_test();
            let (table, _) =
                ecc::ecc_experiment_jobs(&cfg, args.requests.unwrap_or(60_000), args.jobs());
            println!("{table}");
        }
        "chaos" => {
            return match run_chaos(&args) {
                Ok(code) => code,
                Err(e) => e.report(),
            };
        }
        "fleet" => {
            return match run_fleet(&args) {
                Ok(code) => code,
                Err(e) => e.report(),
            };
        }
        "bench" => {
            return match run_bench(&args) {
                Ok(code) => code,
                Err(e) => e.report(),
            };
        }
        "profile" => {
            return match run_profile(&args) {
                Ok(code) => code,
                Err(e) => e.report(),
            };
        }
        "trace" => {
            return match run_trace(&args) {
                Ok(code) => code,
                Err(e) => e.report(),
            };
        }
        "redteam" => {
            return match run_redteam(&args) {
                Ok(code) => code,
                Err(e) => e.report(),
            };
        }
        "attack" => {
            let cfg = SimConfig::fast_test();
            let name = args.defense.as_deref().unwrap_or("twice");
            let kind = match parse_defense("attack", name) {
                Ok(k) => k,
                Err(e) => return e.report(),
            };
            let out = confront(
                &cfg,
                WorkloadKind::S3,
                kind,
                args.requests.unwrap_or(60_000),
            );
            println!(
                "S3 hammer, {} requests (scaled system, N_th = {}):",
                out.unprotected.requests, cfg.fault_n_th
            );
            println!("  unprotected : {} bit flip(s)", out.unprotected.bit_flips);
            println!(
                "  {:11} : {} bit flip(s), {} detection(s), {} additional ACTs ({})",
                out.defended.defense,
                out.defended.bit_flips,
                out.defended.detections,
                out.defended.additional_acts,
                out.defended.ratio_percent(),
            );
        }
        "record" => {
            let Some(path) = args.file.as_deref() else {
                return CliError::bad_flag("record", "record needs --file PATH").report();
            };
            let name = args.workload.as_deref().unwrap_or("s1");
            let Some(workload) = workload_from_name(name) else {
                return CliError::unknown("record", format!("unknown workload \"{name}\""))
                    .report();
            };
            let cfg = SimConfig::paper_default();
            let trace =
                twice_sim::runner::build_trace(&cfg, &workload, args.requests.unwrap_or(100_000));
            // Serialize in memory, then land the file atomically (temp +
            // fsync + rename): a killed record never leaves a torn,
            // header-valid trace behind.
            let mut buf = Vec::new();
            let n = match twice_workloads::record::write_trace(&mut buf, trace) {
                Ok(n) => n,
                Err(e) => {
                    return CliError::failure("record", "-", format!("encode failed: {e}")).report()
                }
            };
            use twice_sim::cio::CampaignIo as _;
            if let Err(e) =
                twice_sim::cio::RealIo.write_atomically(std::path::Path::new(path), &buf)
            {
                return CliError::failure("record", "-", format!("cannot write {path}: {e}"))
                    .report();
            }
            println!("wrote {n} accesses to {path}");
        }
        "replay" => {
            let Some(path) = args.file.as_deref() else {
                return CliError::bad_flag("replay", "replay needs --file PATH").report();
            };
            let name = args.defense.as_deref().unwrap_or("twice");
            let kind = match parse_defense("replay", name) {
                Ok(k) => k,
                Err(e) => return e.report(),
            };
            let cfg = SimConfig::paper_default();
            let file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    return CliError::failure("replay", "-", format!("cannot open {path}: {e}"))
                        .report()
                }
            };
            let reader = match twice_workloads::record::TraceReader::open(
                std::io::BufReader::new(file),
                &cfg.topology,
            ) {
                Ok(r) => r,
                Err(e) => return CliError::unusable("replay", e.to_string()).report(),
            };
            let mut system = twice_sim::system::System::new(&cfg, kind);
            let mut bad = 0u64;
            let outcome = system.run(reader.filter_map(|r| match r {
                Ok(item) => Some(item),
                Err(e) => {
                    if bad == 0 {
                        eprintln!("skipping malformed line: {e}");
                    }
                    bad += 1;
                    None
                }
            }));
            if let Err(e) = outcome {
                return CliError::failure("replay", "-", format!("replay aborted: {e}")).report();
            }
            let m = system.metrics(path.to_string());
            println!(
                "{}: {} requests, {} ACTs, {} additional ({}), {} detection(s), {} flip(s)",
                m.defense,
                m.requests,
                m.normal_acts,
                m.additional_acts,
                m.ratio_percent(),
                m.detections,
                m.bit_flips
            );
        }
        other => {
            eprintln!("twice-exp: error experiment={other} cell=- cause=\"unknown command\"");
            return usage();
        }
    }
    ExitCode::SUCCESS
}
