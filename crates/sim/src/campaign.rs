//! The supervised, crash-safe chaos campaign.
//!
//! Every grid cell runs under `catch_unwind` with a cooperative deadline
//! — host wall-clock and simulated-time budgets checked at epoch
//! boundaries — so a panicking, hanging, or over-budget cell degrades to
//! a structured [`Cell`] outcome instead of aborting the campaign. With
//! a campaign directory configured, completed cells are appended to a
//! JSONL journal (`cells.jsonl`) and the in-flight cell checkpoints its
//! full simulator state every epoch (`cell.ckpt`), so a killed process
//! loses nothing: rerunning with the same directory skips journaled
//! cells and salvages the partial cell from its last checkpoint.

use crate::checkpoint::ResumableRun;
use crate::config::SimConfig;
use crate::experiments::chaos::{self, ChaosOutcome};
use crate::journal::{emit_line, parse_line, JsonValue};
use crate::outcome::{Cell, CellError};
use crate::report::Table;
use crate::runner::WorkloadKind;
use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Instant;
use twice_common::fault::FaultPlan;
use twice_common::snapshot::{SnapshotReader, SnapshotWriter};

/// The journal file name inside a campaign directory.
pub const JOURNAL_FILE: &str = "cells.jsonl";

/// The in-flight cell's checkpoint file name. The blob is wrapped with
/// the owning cell's id: a checkpoint left behind by one cell can never
/// be adopted by a different cell of the grid.
pub const CHECKPOINT_FILE: &str = "cell.ckpt";

/// Supervision knobs for a campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Requests per cell.
    pub requests: u64,
    /// Requests per epoch (checkpoint/watchdog granularity).
    pub epoch: u64,
    /// Per-cell host wall-clock budget, checked at epoch boundaries.
    pub wall_budget_ms: Option<u64>,
    /// Per-cell simulated-time budget (ps), checked at epoch boundaries.
    pub sim_budget_ps: Option<u64>,
    /// Crash simulation: stop the campaign (exit early, journal intact)
    /// after this many freshly completed cells.
    pub halt_after: Option<usize>,
    /// Campaign directory for the journal and epoch checkpoints; `None`
    /// runs fully in memory.
    pub dir: Option<PathBuf>,
}

impl CampaignConfig {
    /// A plain in-memory campaign: `requests` per cell, 4096-request
    /// epochs, no budgets, no journaling.
    pub fn new(requests: u64) -> CampaignConfig {
        CampaignConfig {
            requests,
            epoch: 4096,
            wall_budget_ms: None,
            sim_budget_ps: None,
            halt_after: None,
            dir: None,
        }
    }
}

/// One supervised cell: its outcome plus whether it was salvaged from
/// the journal instead of (re)run.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// The cell's typed outcome.
    pub outcome: Cell<ChaosOutcome>,
    /// Whether the outcome came from a previous run's journal.
    pub salvaged: bool,
}

/// A finished (or halted) campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The rendered report table (grid order, failures as error rows).
    pub table: Table,
    /// Per-cell outcomes in grid order (partial if halted).
    pub cells: Vec<CampaignCell>,
    /// Whether `halt_after` stopped the campaign early.
    pub halted: bool,
    /// How many cells were salvaged from the journal.
    pub salvaged: usize,
}

fn cell_id(label: &str, scrubbing: bool) -> String {
    format!(
        "{label}/{}",
        if scrubbing { "hardened" } else { "unhardened" }
    )
}

/// Runs the chaos fault grid under supervision.
///
/// # Errors
///
/// Journal/checkpoint I/O errors when a campaign directory is set.
pub fn chaos_campaign(
    cfg_base: &SimConfig,
    cc: &CampaignConfig,
) -> std::io::Result<CampaignReport> {
    if let Some(dir) = &cc.dir {
        fs::create_dir_all(dir)?;
    }
    let journal_path = cc.dir.as_ref().map(|d| d.join(JOURNAL_FILE));
    let ckpt_path = cc.dir.as_ref().map(|d| d.join(CHECKPOINT_FILE));
    let journaled = match &journal_path {
        Some(p) => load_journal(p)?,
        None => HashMap::new(),
    };
    let mut journal = match &journal_path {
        Some(p) => Some(fs::OpenOptions::new().create(true).append(true).open(p)?),
        None => None,
    };

    let mut cells = Vec::new();
    let mut fresh_completed = 0usize;
    let mut salvaged = 0usize;
    let mut halted = false;

    'grid: for (label, plan) in chaos::fault_grid(cfg_base.seed ^ 0xC4A0) {
        for scrubbing in [true, false] {
            let id = cell_id(&label, scrubbing);
            if let Some(o) = journaled.get(&id) {
                salvaged += 1;
                cells.push(CampaignCell {
                    outcome: Cell::ok("chaos", id, o.clone()),
                    salvaged: true,
                });
                continue;
            }
            let outcome = run_cell(
                cfg_base,
                &label,
                plan.clone(),
                scrubbing,
                cc,
                ckpt_path.as_deref(),
            );
            // The cell is over — completed, panicked, or timed out — so
            // its epoch checkpoint is stale. Remove it unconditionally:
            // a failed cell's last checkpoint must never linger where the
            // next cell (or a later --resume) could find it. The cell-id
            // check in `read_cell_checkpoint` is the second line of
            // defense for checkpoints orphaned by a process kill.
            if let Some(p) = &ckpt_path {
                let _ = fs::remove_file(p);
            }
            if let (Some(f), Ok(o)) = (journal.as_mut(), &outcome.result) {
                writeln!(f, "{}", journal_line(&outcome.cell, o))?;
                f.flush()?;
            }
            let completed_now = outcome.result.is_ok();
            cells.push(CampaignCell {
                outcome,
                salvaged: false,
            });
            if completed_now {
                fresh_completed += 1;
                if cc.halt_after.is_some_and(|h| fresh_completed >= h) {
                    halted = true;
                    break 'grid;
                }
            }
        }
    }

    let table = chaos::render_table(cells.iter().map(|c| &c.outcome));
    Ok(CampaignReport {
        table,
        cells,
        halted,
        salvaged,
    })
}

fn run_cell(
    cfg_base: &SimConfig,
    label: &str,
    plan: FaultPlan,
    scrubbing: bool,
    cc: &CampaignConfig,
    ckpt: Option<&Path>,
) -> Cell<ChaosOutcome> {
    let id = cell_id(label, scrubbing);
    let body = catch_unwind(AssertUnwindSafe(|| {
        cell_body(cfg_base, label, plan, scrubbing, cc, ckpt)
    }));
    match body {
        Ok(Ok(o)) => Cell::ok("chaos", id, o),
        Ok(Err(e)) => Cell::err("chaos", id, e),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Cell::err("chaos", id, CellError::Panicked(msg))
        }
    }
}

fn cell_body(
    cfg_base: &SimConfig,
    label: &str,
    plan: FaultPlan,
    scrubbing: bool,
    cc: &CampaignConfig,
    ckpt: Option<&Path>,
) -> Result<ChaosOutcome, CellError> {
    let id = cell_id(label, scrubbing);
    let cfg = chaos::cell_config(cfg_base, plan, scrubbing);
    let workload = WorkloadKind::S3;
    let defense = chaos::chaos_defense();
    // Salvage the in-flight cell from its last epoch checkpoint. A blob
    // that fails its checksum, is owned by a different grid cell, or
    // does not reconstruct its digest is rejected — start fresh then.
    let restored = ckpt
        .and_then(|p| read_cell_checkpoint(p, &id))
        .and_then(|blob| ResumableRun::restore(&cfg, &workload, defense, cc.requests, &blob).ok());
    let mut run = match restored {
        Some(r) => r,
        None => ResumableRun::new(&cfg, &workload, defense, cc.requests)?,
    };
    let start = Instant::now();
    let mut retry_exhausted = false;
    while !run.is_complete() {
        // An exhausted retry budget is chaos data, not a cell failure:
        // record it and report the partial metrics, like the monolithic
        // runner did.
        if run.run_epoch(cc.epoch.max(1)).is_err() {
            retry_exhausted = true;
            break;
        }
        if let Some(p) = ckpt {
            write_cell_checkpoint(p, &id, &run).map_err(|e| CellError::Io(e.to_string()))?;
        }
        if let Some(ms) = cc.wall_budget_ms {
            let elapsed = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
            if elapsed > ms {
                return Err(CellError::WallClockExceeded {
                    budget_ms: ms,
                    done: run.requests_done(),
                });
            }
        }
        if let Some(ps) = cc.sim_budget_ps {
            if run.system().sim_time().as_ps() > ps {
                return Err(CellError::SimTimeExceeded {
                    budget_ps: ps,
                    done: run.requests_done(),
                });
            }
        }
    }
    Ok(chaos::collect_outcome(
        run.system(),
        label,
        scrubbing,
        retry_exhausted,
    ))
}

/// Writes `bytes` to `path` via a temporary file + rename, so a crash
/// mid-write never leaves a torn checkpoint behind.
fn write_atomically(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// Seals a cell's epoch checkpoint: the owning cell id wraps the run
/// blob, so the checkpoint carries its identity, not just its state.
fn write_cell_checkpoint(path: &Path, id: &str, run: &ResumableRun) -> std::io::Result<()> {
    let mut w = SnapshotWriter::new();
    w.put_str(id);
    w.put_bytes(&run.checkpoint());
    write_atomically(path, &w.finish())
}

/// Reads a cell checkpoint back, yielding the inner run blob only when
/// the file exists, passes its checksum, and is owned by `id`. A
/// checkpoint orphaned by a killed process therefore resumes exactly the
/// cell that wrote it; every other cell starts fresh.
fn read_cell_checkpoint(path: &Path, id: &str) -> Option<Vec<u8>> {
    let bytes = fs::read(path).ok()?;
    let mut r = SnapshotReader::new(&bytes).ok()?;
    if r.take_str().ok()? != id {
        return None;
    }
    Some(r.take_bytes().ok()?.to_vec())
}

fn journal_line(id: &str, o: &ChaosOutcome) -> String {
    emit_line(&[
        ("cell", JsonValue::Str(id.to_string())),
        ("label", JsonValue::Str(o.label.clone())),
        ("scrubbing", JsonValue::Bool(o.scrubbing)),
        ("seu_injected", JsonValue::U64(o.seu_injected)),
        ("corruption_events", JsonValue::U64(o.corruption_events)),
        ("additional_acts", JsonValue::U64(o.additional_acts)),
        ("protocol_nacks", JsonValue::U64(o.protocol_nacks)),
        ("injected_nacks", JsonValue::U64(o.injected_nacks)),
        ("fallback_windows", JsonValue::U64(o.fallback_windows)),
        ("retry_exhausted", JsonValue::Bool(o.retry_exhausted)),
        ("bit_flips", JsonValue::U64(o.bit_flips as u64)),
    ])
}

/// Loads journaled cell outcomes. Malformed lines (e.g. a line torn by
/// the very crash being recovered from) are skipped: the affected cell
/// simply reruns.
fn load_journal(path: &Path) -> std::io::Result<HashMap<String, ChaosOutcome>> {
    let mut out = HashMap::new();
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Some((id, o)) = parse_journal_line(line) {
            out.insert(id, o);
        }
    }
    Ok(out)
}

fn parse_journal_line(line: &str) -> Option<(String, ChaosOutcome)> {
    let map = parse_line(line).ok()?;
    let outcome = ChaosOutcome {
        label: map.get("label")?.as_str()?.to_string(),
        scrubbing: map.get("scrubbing")?.as_bool()?,
        seu_injected: map.get("seu_injected")?.as_u64()?,
        corruption_events: map.get("corruption_events")?.as_u64()?,
        additional_acts: map.get("additional_acts")?.as_u64()?,
        protocol_nacks: map.get("protocol_nacks")?.as_u64()?,
        injected_nacks: map.get("injected_nacks")?.as_u64()?,
        fallback_windows: map.get("fallback_windows")?.as_u64()?,
        retry_exhausted: map.get("retry_exhausted")?.as_bool()?,
        bit_flips: usize::try_from(map.get("bit_flips")?.as_u64()?).ok()?,
    };
    Some((map.get("cell")?.as_str()?.to_string(), outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_line_round_trips() {
        let o = ChaosOutcome {
            label: "bus gauntlet".to_string(),
            scrubbing: true,
            seu_injected: 12,
            corruption_events: 3,
            additional_acts: 40,
            protocol_nacks: 5,
            injected_nacks: 6,
            fallback_windows: 2,
            retry_exhausted: false,
            bit_flips: 0,
        };
        let line = journal_line("bus gauntlet/hardened", &o);
        let (id, parsed) = parse_journal_line(&line).expect("round trip");
        assert_eq!(id, "bus gauntlet/hardened");
        assert_eq!(parsed, o);
    }

    #[test]
    fn torn_journal_lines_are_skipped() {
        let line = journal_line(
            "x/hardened",
            &ChaosOutcome {
                label: "x".to_string(),
                scrubbing: true,
                seu_injected: 0,
                corruption_events: 0,
                additional_acts: 0,
                protocol_nacks: 0,
                injected_nacks: 0,
                fallback_windows: 0,
                retry_exhausted: false,
                bit_flips: 0,
            },
        );
        // A crash mid-write truncates the final line.
        let torn = &line[..line.len() - 7];
        assert!(parse_journal_line(torn).is_none());
    }

    #[test]
    fn wall_clock_watchdog_fires_at_epoch_boundary() {
        let cfg = SimConfig::fast_test();
        let mut cc = CampaignConfig::new(50_000);
        cc.epoch = 128;
        cc.wall_budget_ms = Some(0); // fires at the first epoch boundary
        let grid = chaos::fault_grid(cfg.seed ^ 0xC4A0);
        let (label, plan) = &grid[0];
        let cell = run_cell(&cfg, label, plan.clone(), true, &cc, None);
        match cell.result {
            Err(CellError::WallClockExceeded { done, .. }) => {
                assert!(done >= 128, "at least one epoch ran: {done}");
                assert!(done < 50_000, "the watchdog must cut the cell short");
            }
            other => panic!("expected a wall-clock timeout, got {other:?}"),
        }
    }

    #[test]
    fn checkpoints_are_bound_to_their_cell() {
        let cfg = SimConfig::fast_test();
        let mut run = ResumableRun::new(&cfg, &WorkloadKind::S3, chaos::chaos_defense(), 4_000)
            .expect("valid cell");
        run.run_epoch(512).expect("fault-free");
        let dir = std::env::temp_dir().join(format!("twice-ckpt-owner-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(CHECKPOINT_FILE);
        write_cell_checkpoint(&path, "seu x1/hardened", &run).expect("write");
        // The owner reads its checkpoint back; every other cell — even
        // one differing only in the scrubbing flag — is refused, so no
        // cell can inherit a failed neighbour's partial state.
        assert!(read_cell_checkpoint(&path, "seu x1/hardened").is_some());
        assert!(read_cell_checkpoint(&path, "seu x1/unhardened").is_none());
        assert!(read_cell_checkpoint(&path, "bus gauntlet/hardened").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_cells_leave_no_checkpoint_for_the_next_cell() {
        // Every cell dies at its first epoch boundary via a watchdog,
        // having just written an epoch checkpoint. Each subsequent cell
        // must start from request 0 — `done` stuck at exactly one epoch
        // proves no cell adopted a predecessor's checkpoint (which would
        // resume at 2, 3, … epochs). Both budgets are armed: the
        // wall-clock one is the scenario under test, the sim-time one
        // guarantees the kill lands at the *first* boundary even when an
        // epoch finishes in under a millisecond.
        let cfg = SimConfig::fast_test();
        let dir = std::env::temp_dir().join(format!("twice-stale-ckpt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut cc = CampaignConfig::new(50_000);
        cc.epoch = 128;
        cc.wall_budget_ms = Some(0);
        cc.sim_budget_ps = Some(1);
        cc.dir = Some(dir.clone());
        let report = chaos_campaign(&cfg, &cc).expect("campaign");
        assert!(!report.cells.is_empty());
        for cell in &report.cells {
            match &cell.outcome.result {
                Err(
                    CellError::WallClockExceeded { done, .. }
                    | CellError::SimTimeExceeded { done, .. },
                ) => assert_eq!(
                    *done, 128,
                    "cell {} must start fresh, not inherit a failed \
                     predecessor's checkpoint",
                    cell.outcome.cell
                ),
                other => panic!("expected a watchdog timeout, got {other:?}"),
            }
        }
        assert!(
            !dir.join(CHECKPOINT_FILE).exists(),
            "a finished campaign must not leave a stale checkpoint behind"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sim_time_watchdog_fires_and_degrades_the_cell() {
        let cfg = SimConfig::fast_test();
        let mut cc = CampaignConfig::new(50_000);
        cc.epoch = 256;
        cc.sim_budget_ps = Some(1); // any simulated progress exceeds this
        let grid = chaos::fault_grid(cfg.seed ^ 0xC4A0);
        let (label, plan) = &grid[0];
        let cell = run_cell(&cfg, label, plan.clone(), false, &cc, None);
        assert!(
            matches!(cell.result, Err(CellError::SimTimeExceeded { .. })),
            "{:?}",
            cell.result
        );
    }
}
