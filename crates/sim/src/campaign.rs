//! The supervised, crash-safe chaos campaign.
//!
//! Every grid cell runs under `catch_unwind` with a cooperative deadline
//! — host wall-clock and simulated-time budgets checked at epoch
//! boundaries — so a panicking, hanging, or over-budget cell degrades to
//! a structured [`Cell`] outcome instead of aborting the campaign. With
//! a campaign directory configured, completed cells are appended to a
//! JSONL journal (`cells.jsonl`) and the in-flight cell checkpoints its
//! full simulator state every epoch (`cell.ckpt`), so a killed process
//! loses nothing: rerunning with the same directory skips journaled
//! cells and salvages the partial cell from its last checkpoint.
//!
//! With `jobs > 1` the grid cells shard across a fixed-size
//! [`crate::parallel`] worker pool. Each worker owns its cell's
//! engine/DRAM/workload state end-to-end; journal lines funnel through a
//! mutex-guarded [`OrderedJournalWriter`] that restores grid order, and
//! each in-flight cell checkpoints to its own `cell-NN.ckpt` (still
//! wrapped with the owning cell id). Results are collected back in grid
//! order, so the final report, the journal bytes, and every per-cell
//! digest are byte-identical to the serial run — the contract DESIGN.md
//! §5e spells out and `crates/sim/tests/parallel_equivalence.rs`
//! enforces.

use crate::checkpoint::{
    cell_checkpoint_path, read_cell_checkpoint, write_cell_checkpoint, CheckpointRead, ResumableRun,
};
use crate::cio::{with_retries, CampaignIo, RealIo, StorageEvents, StorageSummary};
use crate::config::SimConfig;
use crate::experiments::chaos::{self, ChaosOutcome};
use crate::journal::{
    emit_line, parse_line, seal_line, unseal_line, JsonValue, OrderedJournalWriter,
};
use crate::metrics::CampaignTotals;
use crate::outcome::{Cell, CellError};
use crate::parallel::parallel_map;
use crate::report::Table;
use crate::runner::WorkloadKind;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use twice_common::fault::FaultPlan;
use twice_mitigations::DefenseKind;

/// The journal file name inside a campaign directory.
pub const JOURNAL_FILE: &str = "cells.jsonl";

/// Where journal salvage moves the unparseable suffix it truncated, so
/// a corrupt tail is preserved for forensics instead of silently lost.
pub const JOURNAL_CORRUPT_FILE: &str = "journal.corrupt";

/// The in-flight cell's checkpoint file name. The blob is wrapped with
/// the owning cell's id: a checkpoint left behind by one cell can never
/// be adopted by a different cell of the grid. Parallel workers write
/// per-cell `cell-NN.ckpt` files instead (see
/// [`crate::checkpoint::cell_checkpoint_path`]) but still *adopt* this
/// shared file when a previous serial run left one behind.
pub const CHECKPOINT_FILE: &str = "cell.ckpt";

/// Supervision knobs for a campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Requests per cell.
    pub requests: u64,
    /// Requests per epoch (checkpoint/watchdog granularity).
    pub epoch: u64,
    /// Per-cell host wall-clock budget, checked at epoch boundaries.
    pub wall_budget_ms: Option<u64>,
    /// Per-cell simulated-time budget (ps), checked at epoch boundaries.
    pub sim_budget_ps: Option<u64>,
    /// Crash simulation: stop the campaign (exit early, journal intact)
    /// after this many freshly completed cells.
    pub halt_after: Option<usize>,
    /// Campaign directory for the journal and epoch checkpoints; `None`
    /// runs fully in memory.
    pub dir: Option<PathBuf>,
    /// Worker threads for the grid; `1` is the plain serial loop.
    pub jobs: usize,
    /// The defense every cell runs (the chaos default is the paper's
    /// fully-associative TWiCe).
    pub defense: DefenseKind,
    /// Whether this run resumes an earlier campaign in `dir`. A fresh
    /// run (`false`) sweeps stale `*.ckpt` files at start so leftovers
    /// from a killed run can never be confused with live state; a
    /// resume keeps them, because the in-flight cell's checkpoint *is*
    /// the live state being salvaged. Orphaned `*.tmp` files are swept
    /// either way.
    pub resume: bool,
    /// Attempts per cell before an I/O-failing cell is quarantined
    /// (1 = no retry). Non-I/O failures — panics, watchdogs — are
    /// deterministic and are never retried.
    pub retries: u32,
    /// Linear backoff between attempts, in milliseconds (per-cell retry
    /// and per-operation journal/salvage retries both scale from this).
    pub backoff_ms: u64,
    /// The storage layer every journal/checkpoint byte flows through.
    /// [`RealIo`] in production; a fault-injecting
    /// [`FaultyIo`](crate::cio::FaultyIo) under storage chaos.
    pub io: Arc<dyn CampaignIo>,
}

impl CampaignConfig {
    /// A plain in-memory campaign: `requests` per cell, 4096-request
    /// epochs, no budgets, no journaling, serial execution, real I/O,
    /// up to 3 attempts per I/O-failing cell.
    pub fn new(requests: u64) -> CampaignConfig {
        CampaignConfig {
            requests,
            epoch: 4096,
            wall_budget_ms: None,
            sim_budget_ps: None,
            halt_after: None,
            dir: None,
            jobs: 1,
            defense: chaos::chaos_defense(),
            resume: false,
            retries: 3,
            backoff_ms: 0,
            io: Arc::new(RealIo),
        }
    }

    /// Per-operation retry budget for journal appends and salvage
    /// writes (smaller than the per-cell budget: an operation that
    /// fails this often is better handled by failing the cell).
    fn op_retries(&self) -> u32 {
        self.retries.clamp(1, 3)
    }
}

/// One supervised cell: its outcome plus whether it was salvaged from
/// the journal instead of (re)run.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// The cell's typed outcome.
    pub outcome: Cell<ChaosOutcome>,
    /// Whether the outcome came from a previous run's journal.
    pub salvaged: bool,
}

/// A finished (or halted) campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The rendered report table (grid order, failures as error rows).
    pub table: Table,
    /// Per-cell outcomes in grid order (partial if halted).
    pub cells: Vec<CampaignCell>,
    /// Whether `halt_after` stopped the campaign early.
    pub halted: bool,
    /// How many cells were salvaged from the journal.
    pub salvaged: usize,
    /// Aggregates over the completed hardened (scrubbing) cells, merged
    /// per cell at collection time — workers never share an accumulator.
    pub hardened: CampaignTotals,
    /// Aggregates over the completed unhardened cells.
    pub unhardened: CampaignTotals,
    /// The storage recovery ledger: every sweep, salvage, retry, and
    /// quarantine this run performed. All-zero on a healthy filesystem.
    pub storage: StorageSummary,
}

/// One grid cell's static description, fixed before any worker starts.
#[derive(Debug, Clone)]
struct CellSpec {
    id: String,
    label: String,
    plan: FaultPlan,
    scrubbing: bool,
}

fn cell_id(label: &str, scrubbing: bool) -> String {
    format!(
        "{label}/{}",
        if scrubbing { "hardened" } else { "unhardened" }
    )
}

fn grid_specs(cfg_base: &SimConfig) -> Vec<CellSpec> {
    let mut specs = Vec::new();
    for (label, plan) in chaos::fault_grid(cfg_base.seed ^ 0xC4A0) {
        for scrubbing in [true, false] {
            specs.push(CellSpec {
                id: cell_id(&label, scrubbing),
                label: label.clone(),
                plan: plan.clone(),
                scrubbing,
            });
        }
    }
    specs
}

/// Runs the chaos fault grid under supervision, serially (`jobs <= 1`)
/// or across a worker pool with the serial run's exact outputs.
///
/// Storage faults do not abort the campaign: corrupt journals are
/// salvaged, corrupt checkpoints recomputed, I/O-failing cells retried
/// and finally quarantined, and the whole ledger is returned on
/// [`CampaignReport::storage`].
///
/// # Errors
///
/// Only unrecoverable setup I/O: the campaign directory cannot be
/// created, or the journal cannot be read at all.
pub fn chaos_campaign(
    cfg_base: &SimConfig,
    cc: &CampaignConfig,
) -> std::io::Result<CampaignReport> {
    let io = cc.io.as_ref();
    let events = StorageEvents::default();
    if let Some(dir) = &cc.dir {
        io.create_dir_all(dir)?;
        sweep_stale_files(io, dir, cc.resume, &events);
    }
    let journal_path = cc.dir.as_ref().map(|d| d.join(JOURNAL_FILE));
    let ckpt_path = cc.dir.as_ref().map(|d| d.join(CHECKPOINT_FILE));
    let journaled = match &journal_path {
        Some(p) => load_journal(io, p, cc, &events)?,
        None => HashMap::new(),
    };

    let specs = grid_specs(cfg_base);
    let (cells, halted) = if cc.jobs <= 1 {
        serial_grid(
            cfg_base,
            cc,
            &specs,
            &journaled,
            journal_path.as_deref(),
            ckpt_path.as_deref(),
            &events,
        )
    } else {
        parallel_grid(
            cfg_base,
            cc,
            &specs,
            &journaled,
            journal_path.as_deref(),
            ckpt_path.as_deref(),
            &events,
        )
    };

    if !halted {
        if let Some(dir) = &cc.dir {
            // A fully swept grid leaves no epoch checkpoint behind —
            // neither the serial shared file nor any parallel per-cell
            // file (including strays from an earlier killed run).
            let _ = io.remove_file(&dir.join(CHECKPOINT_FILE));
            for i in 0..specs.len() {
                let _ = io.remove_file(&cell_checkpoint_path(dir, i));
            }
        }
    }

    let salvaged = cells.iter().filter(|c| c.salvaged).count();
    let mut hardened = CampaignTotals::default();
    let mut unhardened = CampaignTotals::default();
    for cell in &cells {
        if let Ok(o) = &cell.outcome.result {
            let side = if o.scrubbing {
                &mut hardened
            } else {
                &mut unhardened
            };
            side.merge(&o.totals());
        }
    }
    let table = chaos::render_table(cells.iter().map(|c| &c.outcome));
    Ok(CampaignReport {
        table,
        cells,
        halted,
        salvaged,
        hardened,
        unhardened,
        storage: events.summary(),
    })
}

/// Start-of-campaign hygiene. Orphaned `*.tmp` files — a failed rename,
/// or a kill between temp-write and rename — are removed always: no
/// reader ever trusts them. Stale `*.ckpt` files are removed only on a
/// *fresh* run: a resume's checkpoint is the live state being salvaged,
/// but a fresh campaign adopting a previous run's leftover would be
/// recovery where none was asked for.
pub(crate) fn sweep_stale_files(
    io: &dyn CampaignIo,
    dir: &Path,
    resume: bool,
    events: &StorageEvents,
) {
    let Ok(entries) = io.list_dir(dir) else {
        return;
    };
    for path in entries {
        let stale = match path.extension().and_then(|e| e.to_str()) {
            Some("tmp") => true,
            Some("ckpt") => !resume,
            _ => false,
        };
        if stale && io.remove_file(&path).is_ok() {
            StorageEvents::bump(&events.swept_orphans);
        }
    }
}

/// Today's strictly serial loop: one cell at a time in grid order, the
/// shared `cell.ckpt` for epoch checkpoints, journal lines appended the
/// moment each cell completes. `--jobs 1` must preserve this behavior
/// bit for bit, so this path stays structurally untouched.
fn serial_grid(
    cfg_base: &SimConfig,
    cc: &CampaignConfig,
    specs: &[CellSpec],
    journaled: &HashMap<String, ChaosOutcome>,
    journal_path: Option<&Path>,
    ckpt_path: Option<&Path>,
    events: &StorageEvents,
) -> (Vec<CampaignCell>, bool) {
    let io = cc.io.as_ref();
    let mut cells = Vec::new();
    let mut fresh_completed = 0usize;
    for spec in specs {
        if let Some(o) = journaled.get(&spec.id) {
            cells.push(CampaignCell {
                outcome: Cell::ok("chaos", spec.id.clone(), o.clone()),
                salvaged: true,
            });
            continue;
        }
        let outcome = run_cell_supervised(cfg_base, spec, cc, ckpt_path, ckpt_path, events);
        // The cell is over — completed, panicked, or timed out — so
        // its epoch checkpoint is stale. Remove it unconditionally:
        // a failed cell's last checkpoint must never linger where the
        // next cell (or a later --resume) could find it. The cell-id
        // check in `read_cell_checkpoint` is the second line of
        // defense for checkpoints orphaned by a process kill.
        if let Some(p) = ckpt_path {
            let _ = io.remove_file(p);
        }
        if let (Some(path), Ok(o)) = (journal_path, &outcome.result) {
            // A journal line that cannot be appended after retries is
            // dropped, not fatal: the cell's outcome still reaches this
            // run's report, and the cell simply reruns on `--resume`.
            let line = journal_line(&outcome.cell, o);
            let _io_span = twice_obs::span(twice_obs::SpanId::SimJournalIo);
            twice_obs::bump(twice_obs::Ctr::SimJournalAppends);
            let wrote = with_retries(cc.op_retries(), cc.backoff_ms, || {
                io.append_line(path, &line)
            });
            if wrote.is_err() {
                StorageEvents::bump(&events.journal_write_failures);
            }
        }
        let completed_now = outcome.result.is_ok();
        cells.push(CampaignCell {
            outcome,
            salvaged: false,
        });
        if completed_now {
            fresh_completed += 1;
            if cc.halt_after.is_some_and(|h| fresh_completed >= h) {
                return (cells, true);
            }
        }
    }
    (cells, false)
}

/// The sharded grid: `cc.jobs` workers claim cells from an atomic
/// cursor. Every cell submits its index to the [`OrderedJournalWriter`]
/// exactly once (salvaged and failed cells submit a skip marker), which
/// is what lets the journal bytes come out identical to the serial
/// append loop. Fresh-completion counting for `halt_after` goes through
/// an atomic; once it trips, unclaimed cells are skipped and whatever
/// finished out of order is flushed to the journal as stragglers.
fn parallel_grid(
    cfg_base: &SimConfig,
    cc: &CampaignConfig,
    specs: &[CellSpec],
    journaled: &HashMap<String, ChaosOutcome>,
    journal_path: Option<&Path>,
    shared_ckpt: Option<&Path>,
    events: &StorageEvents,
) -> (Vec<CampaignCell>, bool) {
    let writer = journal_path.map(|p| {
        OrderedJournalWriter::new(
            cc.io.clone(),
            p.to_path_buf(),
            cc.op_retries(),
            cc.backoff_ms,
        )
    });
    let fresh = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let results: Vec<Option<CampaignCell>> = parallel_map(cc.jobs, specs, |index, spec| {
        if let Some(o) = journaled.get(&spec.id) {
            if let Some(w) = &writer {
                // Already journaled: nothing to append, but the
                // index must be accounted for or the ordered writer
                // would stall behind it forever.
                w.submit(index, None);
            }
            return Some(CampaignCell {
                outcome: Cell::ok("chaos", spec.id.clone(), o.clone()),
                salvaged: true,
            });
        }
        if stop.load(Ordering::SeqCst) {
            return None;
        }
        let own_ckpt = cc.dir.as_ref().map(|d| cell_checkpoint_path(d, index));
        let outcome =
            run_cell_supervised(cfg_base, spec, cc, own_ckpt.as_deref(), shared_ckpt, events);
        if let Some(p) = &own_ckpt {
            let _ = cc.io.remove_file(p);
        }
        if let Some(p) = shared_ckpt {
            // Consume a serial-era shared checkpoint that belonged
            // to this cell; other cells' files are left for their
            // owners (the id check keeps them from being adopted),
            // and a corrupt blob is left for the fresh-run sweep — a
            // transient read fault must not delete live state.
            if matches!(
                read_cell_checkpoint(cc.io.as_ref(), p, &spec.id),
                CheckpointRead::Valid(_)
            ) {
                let _ = cc.io.remove_file(p);
            }
        }
        let line = outcome
            .result
            .as_ref()
            .ok()
            .map(|o| journal_line(&outcome.cell, o));
        if let Some(w) = &writer {
            w.submit(index, line);
        }
        if outcome.result.is_ok() {
            let n = fresh.fetch_add(1, Ordering::SeqCst) + 1;
            if cc.halt_after.is_some_and(|h| n >= h) {
                stop.store(true, Ordering::SeqCst);
            }
        }
        Some(CampaignCell {
            outcome,
            salvaged: false,
        })
    });
    let halted = stop.load(Ordering::SeqCst);
    let cells = results.into_iter().flatten().collect();
    if halted {
        if let Some(w) = &writer {
            w.flush_stragglers();
        }
    }
    if let Some(w) = &writer {
        StorageEvents::add(&events.journal_write_failures, w.dropped());
    }
    (cells, halted)
}

/// Runs one cell with bounded retry: an I/O-failing cell (a checkpoint
/// write that kept failing after per-operation retries) is rerun up to
/// `cc.retries` times with linear backoff, then **quarantined** — the
/// campaign completes in degraded mode with a typed
/// [`CellError::Quarantined`] row instead of aborting. Non-I/O failures
/// (panics, watchdogs, bad configs) are deterministic; retrying them
/// would just repeat the failure, so they pass straight through.
fn run_cell_supervised(
    cfg_base: &SimConfig,
    spec: &CellSpec,
    cc: &CampaignConfig,
    ckpt: Option<&Path>,
    adopt: Option<&Path>,
    events: &StorageEvents,
) -> Cell<ChaosOutcome> {
    let max_attempts = cc.retries.max(1);
    let mut attempt: u32 = 1;
    loop {
        let cell = run_cell(cfg_base, spec, cc, ckpt, adopt, events);
        let cause = match &cell.result {
            Err(CellError::Io(why)) => why.clone(),
            _ => return cell,
        };
        if attempt >= max_attempts {
            StorageEvents::bump(&events.quarantined_cells);
            return Cell::err(
                "chaos",
                spec.id.clone(),
                CellError::Quarantined {
                    attempts: attempt,
                    cause,
                },
            );
        }
        if attempt == 1 {
            StorageEvents::bump(&events.retried_cells);
        }
        if cc.backoff_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(
                cc.backoff_ms.saturating_mul(u64::from(attempt)),
            ));
        }
        attempt += 1;
    }
}

fn run_cell(
    cfg_base: &SimConfig,
    spec: &CellSpec,
    cc: &CampaignConfig,
    ckpt: Option<&Path>,
    adopt: Option<&Path>,
    events: &StorageEvents,
) -> Cell<ChaosOutcome> {
    let body = catch_unwind(AssertUnwindSafe(|| {
        cell_body(cfg_base, spec, cc, ckpt, adopt, events)
    }));
    match body {
        Ok(Ok(o)) => Cell::ok("chaos", spec.id.clone(), o),
        Ok(Err(e)) => Cell::err("chaos", spec.id.clone(), e),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Cell::err("chaos", spec.id.clone(), CellError::Panicked(msg))
        }
    }
}

fn cell_body(
    cfg_base: &SimConfig,
    spec: &CellSpec,
    cc: &CampaignConfig,
    ckpt: Option<&Path>,
    adopt: Option<&Path>,
    events: &StorageEvents,
) -> Result<ChaosOutcome, CellError> {
    let io = cc.io.as_ref();
    let cfg = chaos::cell_config(cfg_base, spec.plan.clone(), spec.scrubbing);
    let workload = WorkloadKind::S3;
    let defense = cc.defense;
    // Salvage the in-flight cell from its last epoch checkpoint: first
    // this cell's own file, then the shared serial-era file. A blob
    // that fails its checksum, is owned by a different grid cell, or
    // does not reconstruct its digest is rejected — the cell recomputes
    // from scratch, and every corrupt rejection is counted on the
    // recovery ledger rather than silently absorbed.
    let read_blob = |p: &Path| match read_cell_checkpoint(io, p, &spec.id) {
        CheckpointRead::Valid(blob) => Some(blob),
        CheckpointRead::Corrupt(_) => {
            StorageEvents::bump(&events.corrupt_checkpoints);
            None
        }
        CheckpointRead::Absent | CheckpointRead::Foreign => None,
    };
    let restored = ckpt
        .and_then(read_blob)
        .or_else(|| adopt.filter(|a| Some(*a) != ckpt).and_then(read_blob))
        .and_then(|blob| {
            match ResumableRun::restore(&cfg, &workload, defense, cc.requests, &blob) {
                Ok(r) => Some(r),
                Err(_) => {
                    // The wrapper checksum passed but the inner state
                    // failed to reconstruct (torn inside the run blob,
                    // or a digest mismatch): still a corrupt checkpoint.
                    StorageEvents::bump(&events.corrupt_checkpoints);
                    None
                }
            }
        });
    let mut run = match restored {
        Some(r) => r,
        None => ResumableRun::new(&cfg, &workload, defense, cc.requests)?,
    };
    let start = Instant::now();
    let mut retry_exhausted = false;
    while !run.is_complete() {
        // An exhausted retry budget is chaos data, not a cell failure:
        // record it and report the partial metrics, like the monolithic
        // runner did.
        if run.run_epoch(cc.epoch.max(1)).is_err() {
            retry_exhausted = true;
            break;
        }
        if let Some(p) = ckpt {
            // Per-operation retries absorb transient write faults; a
            // write that keeps failing fails the cell with an I/O error,
            // which the supervisor treats as retryable (and, past the
            // budget, quarantines).
            with_retries(cc.op_retries(), cc.backoff_ms, || {
                write_cell_checkpoint(io, p, &spec.id, &run)
            })
            .map_err(|e| CellError::Io(e.to_string()))?;
        }
        if let Some(ms) = cc.wall_budget_ms {
            let elapsed = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
            if elapsed > ms {
                return Err(CellError::WallClockExceeded {
                    budget_ms: ms,
                    done: run.requests_done(),
                });
            }
        }
        if let Some(ps) = cc.sim_budget_ps {
            if run.system().sim_time().as_ps() > ps {
                return Err(CellError::SimTimeExceeded {
                    budget_ps: ps,
                    done: run.requests_done(),
                });
            }
        }
    }
    Ok(chaos::collect_outcome(
        run.system(),
        &spec.label,
        spec.scrubbing,
        retry_exhausted,
        run.digest(),
    ))
}

fn journal_line(id: &str, o: &ChaosOutcome) -> String {
    seal_line(&emit_line(&[
        ("cell", JsonValue::Str(id.to_string())),
        ("label", JsonValue::Str(o.label.clone())),
        ("scrubbing", JsonValue::Bool(o.scrubbing)),
        ("seu_injected", JsonValue::U64(o.seu_injected)),
        ("corruption_events", JsonValue::U64(o.corruption_events)),
        ("additional_acts", JsonValue::U64(o.additional_acts)),
        ("protocol_nacks", JsonValue::U64(o.protocol_nacks)),
        ("injected_nacks", JsonValue::U64(o.injected_nacks)),
        ("fallback_windows", JsonValue::U64(o.fallback_windows)),
        ("retry_exhausted", JsonValue::Bool(o.retry_exhausted)),
        ("bit_flips", JsonValue::U64(o.bit_flips as u64)),
        ("digest", JsonValue::U64(o.digest)),
    ]))
}

/// Loads journaled cell outcomes, salvaging the journal when its tail
/// is corrupt. Every line must parse *and* pass its CRC seal; the first
/// line that does not ends the trusted prefix. The journal is truncated
/// to that prefix and the corrupt suffix moved to
/// [`JOURNAL_CORRUPT_FILE`] for forensics, so the cells whose lines
/// were lost simply rerun — torn appends, bit-rot, and crash damage all
/// heal to recomputation, never to trusting a damaged outcome. Loading
/// is keyed by cell id, never by line position, which is what lets a
/// halted parallel campaign journal stragglers out of grid order
/// without confusing a later `--resume`.
///
/// # Errors
///
/// Only a journal that cannot be read at all (beyond `NotFound`, which
/// is simply an empty campaign).
fn load_journal(
    io: &dyn CampaignIo,
    path: &Path,
    cc: &CampaignConfig,
    events: &StorageEvents,
) -> std::io::Result<HashMap<String, ChaosOutcome>> {
    let mut out = HashMap::new();
    let bytes = match io.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    // The trusted prefix: contiguous complete, sealed, parseable lines
    // from the start of the file.
    let mut good_end = 0usize;
    for chunk in bytes.split_inclusive(|&b| b == b'\n') {
        if !chunk.ends_with(b"\n") {
            break; // a torn final append
        }
        let Ok(line) = std::str::from_utf8(&chunk[..chunk.len() - 1]) else {
            break;
        };
        if line.trim().is_empty() {
            good_end += chunk.len();
            continue;
        }
        let Some((id, o)) = parse_journal_line(line) else {
            break;
        };
        out.insert(id, o);
        good_end += chunk.len();
    }
    if good_end < bytes.len() {
        // Salvage: preserve the corrupt suffix, truncate the journal to
        // its trusted prefix. Both writes are best-effort with retries —
        // a failed truncation just means the next load salvages again,
        // and salvage converges because reruns are deterministic.
        let suffix = &bytes[good_end..];
        let dropped = suffix
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .count() as u64;
        let _ = with_retries(cc.op_retries(), cc.backoff_ms, || {
            io.write_file(&path.with_file_name(JOURNAL_CORRUPT_FILE), suffix)
        });
        let _ = with_retries(cc.op_retries(), cc.backoff_ms, || {
            io.write_atomically(path, &bytes[..good_end])
        });
        StorageEvents::bump(&events.journal_salvages);
        StorageEvents::add(&events.salvaged_lines_dropped, dropped);
    }
    Ok(out)
}

fn parse_journal_line(line: &str) -> Option<(String, ChaosOutcome)> {
    let line = unseal_line(line)?;
    let map = parse_line(&line).ok()?;
    let outcome = ChaosOutcome {
        label: map.get("label")?.as_str()?.to_string(),
        scrubbing: map.get("scrubbing")?.as_bool()?,
        seu_injected: map.get("seu_injected")?.as_u64()?,
        corruption_events: map.get("corruption_events")?.as_u64()?,
        additional_acts: map.get("additional_acts")?.as_u64()?,
        protocol_nacks: map.get("protocol_nacks")?.as_u64()?,
        injected_nacks: map.get("injected_nacks")?.as_u64()?,
        fallback_windows: map.get("fallback_windows")?.as_u64()?,
        retry_exhausted: map.get("retry_exhausted")?.as_bool()?,
        bit_flips: usize::try_from(map.get("bit_flips")?.as_u64()?).ok()?,
        digest: map.get("digest")?.as_u64()?,
    };
    Some((map.get("cell")?.as_str()?.to_string(), outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(label: &str, plan: FaultPlan, scrubbing: bool) -> CellSpec {
        CellSpec {
            id: cell_id(label, scrubbing),
            label: label.to_string(),
            plan,
            scrubbing,
        }
    }

    #[test]
    fn journal_line_round_trips() {
        let o = ChaosOutcome {
            label: "bus gauntlet".to_string(),
            scrubbing: true,
            seu_injected: 12,
            corruption_events: 3,
            additional_acts: 40,
            protocol_nacks: 5,
            injected_nacks: 6,
            fallback_windows: 2,
            retry_exhausted: false,
            bit_flips: 0,
            digest: 0xDEAD_BEEF_0123_4567,
        };
        let line = journal_line("bus gauntlet/hardened", &o);
        let (id, parsed) = parse_journal_line(&line).expect("round trip");
        assert_eq!(id, "bus gauntlet/hardened");
        assert_eq!(parsed, o);
    }

    #[test]
    fn torn_journal_lines_are_skipped() {
        let line = journal_line(
            "x/hardened",
            &ChaosOutcome {
                label: "x".to_string(),
                scrubbing: true,
                seu_injected: 0,
                corruption_events: 0,
                additional_acts: 0,
                protocol_nacks: 0,
                injected_nacks: 0,
                fallback_windows: 0,
                retry_exhausted: false,
                bit_flips: 0,
                digest: 1,
            },
        );
        // A crash mid-write truncates the final line.
        let torn = &line[..line.len() - 7];
        assert!(parse_journal_line(torn).is_none());
    }

    #[test]
    fn wall_clock_watchdog_fires_at_epoch_boundary() {
        let cfg = SimConfig::fast_test();
        let mut cc = CampaignConfig::new(50_000);
        cc.epoch = 128;
        cc.wall_budget_ms = Some(0); // fires at the first epoch boundary
        let grid = chaos::fault_grid(cfg.seed ^ 0xC4A0);
        let (label, plan) = &grid[0];
        let events = StorageEvents::default();
        let cell = run_cell(
            &cfg,
            &spec(label, plan.clone(), true),
            &cc,
            None,
            None,
            &events,
        );
        match cell.result {
            Err(CellError::WallClockExceeded { done, .. }) => {
                assert!(done >= 128, "at least one epoch ran: {done}");
                assert!(done < 50_000, "the watchdog must cut the cell short");
            }
            other => panic!("expected a wall-clock timeout, got {other:?}"),
        }
    }

    #[test]
    fn checkpoints_are_bound_to_their_cell() {
        let cfg = SimConfig::fast_test();
        let mut run = ResumableRun::new(&cfg, &WorkloadKind::S3, chaos::chaos_defense(), 4_000)
            .expect("valid cell");
        run.run_epoch(512).expect("fault-free");
        let dir = std::env::temp_dir().join(format!("twice-ckpt-owner-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(CHECKPOINT_FILE);
        let io = RealIo;
        write_cell_checkpoint(&io, &path, "seu x1/hardened", &run).expect("write");
        // The owner reads its checkpoint back; every other cell — even
        // one differing only in the scrubbing flag — is refused, so no
        // cell can inherit a failed neighbour's partial state.
        assert!(matches!(
            read_cell_checkpoint(&io, &path, "seu x1/hardened"),
            CheckpointRead::Valid(_)
        ));
        assert!(matches!(
            read_cell_checkpoint(&io, &path, "seu x1/unhardened"),
            CheckpointRead::Foreign
        ));
        assert!(matches!(
            read_cell_checkpoint(&io, &path, "bus gauntlet/hardened"),
            CheckpointRead::Foreign
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_cells_leave_no_checkpoint_for_the_next_cell() {
        // Every cell dies at its first epoch boundary via a watchdog,
        // having just written an epoch checkpoint. Each subsequent cell
        // must start from request 0 — `done` stuck at exactly one epoch
        // proves no cell adopted a predecessor's checkpoint (which would
        // resume at 2, 3, … epochs). Both budgets are armed: the
        // wall-clock one is the scenario under test, the sim-time one
        // guarantees the kill lands at the *first* boundary even when an
        // epoch finishes in under a millisecond.
        let cfg = SimConfig::fast_test();
        let dir = std::env::temp_dir().join(format!("twice-stale-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cc = CampaignConfig::new(50_000);
        cc.epoch = 128;
        cc.wall_budget_ms = Some(0);
        cc.sim_budget_ps = Some(1);
        cc.dir = Some(dir.clone());
        let report = chaos_campaign(&cfg, &cc).expect("campaign");
        assert!(!report.cells.is_empty());
        for cell in &report.cells {
            match &cell.outcome.result {
                Err(
                    CellError::WallClockExceeded { done, .. }
                    | CellError::SimTimeExceeded { done, .. },
                ) => assert_eq!(
                    *done, 128,
                    "cell {} must start fresh, not inherit a failed \
                     predecessor's checkpoint",
                    cell.outcome.cell
                ),
                other => panic!("expected a watchdog timeout, got {other:?}"),
            }
        }
        assert!(
            !dir.join(CHECKPOINT_FILE).exists(),
            "a finished campaign must not leave a stale checkpoint behind"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sim_time_watchdog_fires_and_degrades_the_cell() {
        let cfg = SimConfig::fast_test();
        let mut cc = CampaignConfig::new(50_000);
        cc.epoch = 256;
        cc.sim_budget_ps = Some(1); // any simulated progress exceeds this
        let grid = chaos::fault_grid(cfg.seed ^ 0xC4A0);
        let (label, plan) = &grid[0];
        let events = StorageEvents::default();
        let cell = run_cell(
            &cfg,
            &spec(label, plan.clone(), false),
            &cc,
            None,
            None,
            &events,
        );
        assert!(
            matches!(cell.result, Err(CellError::SimTimeExceeded { .. })),
            "{:?}",
            cell.result
        );
    }

    #[test]
    fn report_totals_merge_per_cell_at_collection() {
        let cfg = SimConfig::fast_test();
        let mut cc = CampaignConfig::new(6_000);
        cc.epoch = 1_024;
        let report = chaos_campaign(&cfg, &cc).expect("campaign");
        let hand_summed: u64 = report
            .cells
            .iter()
            .filter_map(|c| c.outcome.result.as_ref().ok())
            .filter(|o| o.scrubbing)
            .map(|o| o.additional_acts)
            .sum();
        assert_eq!(report.hardened.additional_acts, hand_summed);
        assert_eq!(
            report.hardened.cells + report.unhardened.cells,
            report.cells.len() as u64
        );
        assert_eq!(report.hardened.bit_flips, 0, "hardened cells stay safe");
    }
}
