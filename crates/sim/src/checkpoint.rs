//! Epoch-based resumable runs: periodic digests, on-disk checkpoints,
//! and bit-exact restore.
//!
//! A [`ResumableRun`] owns a [`System`] plus the workload generator that
//! feeds it, and advances in *epochs* of N requests. At any epoch
//! boundary the whole mutable state — controller queues, DRAM FSMs,
//! defense tables, RNG cursors — serializes to a self-contained blob
//! ([`ResumableRun::checkpoint`]) whose trailing [`StateDigest`] is
//! recomputed on restore: a checkpoint that does not reconstruct the
//! exact state it was taken from is rejected, never silently loaded.
//! Replaying the remaining trace suffix from a restored run therefore
//! must reproduce the uninterrupted run's final digest, which turns any
//! hidden nondeterminism into a hard test failure (see
//! `crates/sim/tests/digest_replay.rs`).

use crate::cio::CampaignIo;
use crate::config::SimConfig;
use crate::metrics::RunMetrics;
use crate::outcome::CellError;
use crate::runner::{try_build_source, WorkloadKind};
use crate::system::System;
use std::path::{Path, PathBuf};
use twice_common::snapshot::{
    Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, StateDigest,
};
use twice_memctrl::resilience::ControllerError;
use twice_mitigations::DefenseKind;
use twice_workloads::AccessSource;

/// A checkpointable workload × defense run that advances in epochs.
pub struct ResumableRun {
    workload_label: String,
    defense_label: String,
    seed: u64,
    system: System,
    source: Box<dyn AccessSource + Send>,
    total: u64,
    done: u64,
    complete: bool,
}

impl std::fmt::Debug for ResumableRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResumableRun")
            .field("workload", &self.workload_label)
            .field("defense", &self.defense_label)
            .field("done", &self.done)
            .field("total", &self.total)
            .finish()
    }
}

impl ResumableRun {
    /// Prepares a fresh run of `workload` under `defense` for `total`
    /// requests on `cfg`.
    ///
    /// # Errors
    ///
    /// [`CellError::InvalidConfig`] or [`CellError::UnknownApp`].
    pub fn new(
        cfg: &SimConfig,
        workload: &WorkloadKind,
        defense: DefenseKind,
        total: u64,
    ) -> Result<ResumableRun, CellError> {
        cfg.validate()
            .map_err(|e| CellError::InvalidConfig(e.to_string()))?;
        let source = try_build_source(cfg, workload)?;
        Ok(ResumableRun {
            workload_label: workload.to_string(),
            defense_label: defense.to_string(),
            seed: cfg.seed,
            system: System::new(cfg, defense),
            source,
            total,
            done: 0,
            complete: false,
        })
    }

    /// Rebuilds a run from a [`checkpoint`](ResumableRun::checkpoint)
    /// blob. The configuration arguments must match the run that took
    /// the checkpoint; the blob's stored digest is recomputed from the
    /// reconstructed state and any mismatch is a hard error.
    ///
    /// # Errors
    ///
    /// [`CellError::BadCheckpoint`] on checksum, shape, label, seed, or
    /// digest mismatches.
    pub fn restore(
        cfg: &SimConfig,
        workload: &WorkloadKind,
        defense: DefenseKind,
        total: u64,
        blob: &[u8],
    ) -> Result<ResumableRun, CellError> {
        let mut run = ResumableRun::new(cfg, workload, defense, total)?;
        let mut r =
            SnapshotReader::new(blob).map_err(|e| CellError::BadCheckpoint(e.to_string()))?;
        run.load_state(&mut r)
            .map_err(|e| CellError::BadCheckpoint(e.to_string()))?;
        Ok(run)
    }

    /// Feeds up to `epoch` further requests; once the trace is
    /// exhausted, drains all queues and marks the run complete. Returns
    /// whether the run is now complete.
    ///
    /// # Errors
    ///
    /// [`ControllerError::RetryExhausted`] under fault injection.
    pub fn run_epoch(&mut self, epoch: u64) -> Result<bool, ControllerError> {
        let _epoch_span = twice_obs::span(twice_obs::SpanId::SimEpoch);
        twice_obs::bump(twice_obs::Ctr::SimEpochs);
        let n = epoch.min(self.total - self.done);
        for _ in 0..n {
            let item = self.source.next_access();
            self.system.feed(item)?;
        }
        self.done += n;
        if self.done >= self.total {
            self.system.drain()?;
            self.complete = true;
        }
        Ok(self.complete)
    }

    /// Runs epochs of `epoch` requests until complete.
    ///
    /// # Errors
    ///
    /// As for [`ResumableRun::run_epoch`].
    pub fn run_to_completion(&mut self, epoch: u64) -> Result<(), ControllerError> {
        while !self.run_epoch(epoch.max(1))? {}
        Ok(())
    }

    /// Serializes the complete run state (header, fields, digest, blob
    /// checksum) for crash-safe persistence.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        self.save_state(&mut w);
        w.finish()
    }

    /// The 64-bit digest of the run's complete mutable state.
    pub fn digest(&self) -> u64 {
        let mut d = StateDigest::new();
        self.digest_state(&mut d);
        d.finish()
    }

    /// Whether the trace has been fed and drained to completion.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Requests fed so far.
    pub fn requests_done(&self) -> u64 {
        self.done
    }

    /// The run's request budget.
    pub fn total_requests(&self) -> u64 {
        self.total
    }

    /// The underlying system (controller/fault inspection).
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Metrics of the run so far, labeled by the workload.
    pub fn metrics(&self) -> RunMetrics {
        self.system.metrics(self.workload_label.clone())
    }
}

impl Snapshot for ResumableRun {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_str(&self.workload_label);
        w.put_str(&self.defense_label);
        w.put_u64(self.seed);
        w.put_u64(self.total);
        w.put_u64(self.done);
        w.put_bool(self.complete);
        self.system.save_state(w);
        self.source.save_state(w);
        // The digest goes last so restore can compare it against the
        // digest of the state it just reconstructed.
        w.put_u64(self.digest());
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let workload = r.take_str()?;
        if workload != self.workload_label {
            return Err(SnapshotError::StateMismatch(format!(
                "checkpoint is for workload {workload}, not {}",
                self.workload_label
            )));
        }
        let defense = r.take_str()?;
        if defense != self.defense_label {
            return Err(SnapshotError::StateMismatch(format!(
                "checkpoint is for defense {defense}, not {}",
                self.defense_label
            )));
        }
        let seed = r.take_u64()?;
        if seed != self.seed {
            return Err(SnapshotError::StateMismatch(format!(
                "checkpoint seed {seed} != configured seed {}",
                self.seed
            )));
        }
        let total = r.take_u64()?;
        if total != self.total {
            return Err(SnapshotError::StateMismatch(format!(
                "checkpoint budget {total} != configured budget {}",
                self.total
            )));
        }
        self.done = r.take_u64()?;
        self.complete = r.take_bool()?;
        self.system.load_state(r)?;
        self.source.load_state(r)?;
        let stored = r.take_u64()?;
        let rebuilt = self.digest();
        if stored != rebuilt {
            return Err(SnapshotError::StateMismatch(format!(
                "state digest mismatch: checkpoint {stored:#018x}, \
                 reconstructed {rebuilt:#018x} — hidden nondeterminism or \
                 configuration drift"
            )));
        }
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_str(&self.workload_label);
        d.write_str(&self.defense_label);
        d.write_u64(self.seed);
        d.write_u64(self.total);
        d.write_u64(self.done);
        d.write_bool(self.complete);
        self.system.digest_state(d);
        self.source.digest_state(d);
    }
}

/// The path of grid cell `index`'s private epoch checkpoint inside a
/// campaign directory. Parallel workers write here — one file per cell,
/// so no two workers ever contend on a checkpoint — while the serial
/// loop keeps the single shared [`crate::campaign::CHECKPOINT_FILE`].
pub fn cell_checkpoint_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("cell-{index:02}.ckpt"))
}

/// Writes `bytes` to `path` via a temporary file + fsync + rename +
/// parent-directory fsync, so a crash or power loss mid-write never
/// leaves a torn checkpoint behind — and never persists the rename
/// without the data (see [`crate::cio::durable_atomic_write`]).
pub fn write_atomically(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    crate::cio::durable_atomic_write(path, bytes)
}

/// Seals a cell's epoch checkpoint: the owning cell id wraps the run
/// blob, so the checkpoint carries its identity, not just its state.
///
/// # Errors
///
/// Filesystem errors from the atomic write (injected ones included,
/// when `io` is a fault-injecting [`CampaignIo`]).
pub fn write_cell_checkpoint(
    io: &dyn CampaignIo,
    path: &Path,
    id: &str,
    run: &ResumableRun,
) -> std::io::Result<()> {
    let mut w = SnapshotWriter::new();
    w.put_str(id);
    w.put_bytes(&run.checkpoint());
    let bytes = w.finish();
    let _io_span = twice_obs::span(twice_obs::SpanId::SimCkptIo);
    twice_obs::bump(twice_obs::Ctr::SimCkptWrites);
    twice_obs::add(twice_obs::Ctr::SimCkptBytes, bytes.len() as u64);
    io.write_atomically(path, &bytes)
}

/// What a cell-checkpoint read found on disk.
#[derive(Debug)]
pub enum CheckpointRead {
    /// No checkpoint file exists (a fresh cell, the common case).
    Absent,
    /// A checkpoint exists but is owned by a different grid cell; the
    /// caller must start fresh and leave the file for its owner.
    Foreign,
    /// The blob failed its checksum, shape, or read — torn write,
    /// bit-rot, or a partial read. The cell recomputes from scratch;
    /// the reason feeds the campaign's structured recovery ledger.
    Corrupt(String),
    /// The inner run blob, checksummed and owned by the requested id.
    Valid(Vec<u8>),
}

impl CheckpointRead {
    /// The run blob, when the read was [`CheckpointRead::Valid`].
    pub fn into_blob(self) -> Option<Vec<u8>> {
        match self {
            CheckpointRead::Valid(blob) => Some(blob),
            _ => None,
        }
    }
}

/// Reads a cell checkpoint back, yielding the inner run blob only when
/// the file exists, passes its checksum, and is owned by `id`. A
/// checkpoint orphaned by a killed process therefore resumes exactly the
/// cell that wrote it; every other cell starts fresh — and a corrupt
/// blob is reported as [`CheckpointRead::Corrupt`] so the campaign can
/// log the recomputation instead of silently absorbing it.
pub fn read_cell_checkpoint(io: &dyn CampaignIo, path: &Path, id: &str) -> CheckpointRead {
    let _io_span = twice_obs::span(twice_obs::SpanId::SimCkptIo);
    let bytes = match io.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CheckpointRead::Absent,
        Err(e) => return CheckpointRead::Corrupt(format!("read failed: {e}")),
    };
    let mut r = match SnapshotReader::new(&bytes) {
        Ok(r) => r,
        Err(e) => return CheckpointRead::Corrupt(e.to_string()),
    };
    let owner = match r.take_str() {
        Ok(o) => o,
        Err(e) => return CheckpointRead::Corrupt(e.to_string()),
    };
    if owner != id {
        return CheckpointRead::Foreign;
    }
    match r.take_bytes() {
        Ok(blob) => CheckpointRead::Valid(blob.to_vec()),
        Err(e) => CheckpointRead::Corrupt(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twice::TableOrganization;

    fn twice_fa() -> DefenseKind {
        DefenseKind::Twice(TableOrganization::FullyAssociative)
    }

    #[test]
    fn epochs_match_a_monolithic_run() {
        let cfg = SimConfig::fast_test();
        let mut epoched =
            ResumableRun::new(&cfg, &WorkloadKind::S3, twice_fa(), 10_000).expect("valid cell");
        epoched.run_to_completion(256).expect("fault-free");
        let monolithic = crate::runner::run(&cfg, WorkloadKind::S3, twice_fa(), 10_000);
        assert_eq!(epoched.metrics(), monolithic);
    }

    #[test]
    fn checkpoint_restore_resumes_to_the_same_digest() {
        let cfg = SimConfig::fast_test();
        let mut reference =
            ResumableRun::new(&cfg, &WorkloadKind::S1, twice_fa(), 6_000).expect("valid cell");
        reference.run_to_completion(512).expect("fault-free");

        let mut interrupted =
            ResumableRun::new(&cfg, &WorkloadKind::S1, twice_fa(), 6_000).expect("valid cell");
        interrupted.run_epoch(2_500).expect("fault-free");
        let blob = interrupted.checkpoint();
        let mut resumed = ResumableRun::restore(&cfg, &WorkloadKind::S1, twice_fa(), 6_000, &blob)
            .expect("restore");
        assert_eq!(resumed.requests_done(), 2_500);
        resumed.run_to_completion(512).expect("fault-free");
        assert_eq!(resumed.digest(), reference.digest());
        assert_eq!(resumed.metrics(), reference.metrics());
    }

    #[test]
    fn restore_rejects_mismatched_configuration() {
        let cfg = SimConfig::fast_test();
        let mut run =
            ResumableRun::new(&cfg, &WorkloadKind::S1, twice_fa(), 4_000).expect("valid cell");
        run.run_epoch(1_000).expect("fault-free");
        let blob = run.checkpoint();
        for (workload, defense, total, what) in [
            (WorkloadKind::S3, twice_fa(), 4_000, "workload"),
            (WorkloadKind::S1, DefenseKind::None, 4_000, "defense"),
            (WorkloadKind::S1, twice_fa(), 5_000, "budget"),
        ] {
            let err = ResumableRun::restore(&cfg, &workload, defense, total, &blob)
                .err()
                .unwrap_or_else(|| panic!("{what} mismatch must be rejected"));
            assert!(
                matches!(err, CellError::BadCheckpoint(_)),
                "{what}: {err:?}"
            );
        }
        let mut other_seed = cfg.clone();
        other_seed.seed ^= 1;
        let err = ResumableRun::restore(&other_seed, &WorkloadKind::S1, twice_fa(), 4_000, &blob)
            .err()
            .unwrap_or_else(|| panic!("seed mismatch must be rejected"));
        assert!(matches!(err, CellError::BadCheckpoint(_)), "{err:?}");
    }
}
