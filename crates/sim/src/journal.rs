//! The JSONL cell-outcome journal for resumable campaigns.
//!
//! One line per *completed* grid cell, appended and flushed as soon as
//! the cell finishes, so a crash loses at most the in-flight cell (whose
//! partial state lives in the epoch checkpoint instead). The format is a
//! flat JSON object of strings, unsigned integers, and booleans —
//! written and parsed by the tiny codec below, because the workspace
//! deliberately has no serde dependency.
//!
//! Every line the campaign persists is *sealed* with a trailing `crc`
//! field ([`seal_line`]) — an FNV-1a checksum over the rest of the
//! object — and loading verifies it ([`unseal_line`]). A torn append
//! fails to parse; a bit-rotted line that still *looks* like JSON fails
//! its CRC. Either way the loader treats the line as corrupt and the
//! salvage machinery in [`crate::campaign`] truncates the journal to
//! its last sealed line, so corrupted outcomes are recomputed rather
//! than trusted.

use crate::cio::{with_retries, CampaignIo};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use twice_common::snapshot::fnv1a;

/// A flat JSON scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string.
    Str(String),
    /// A non-negative JSON integer.
    U64(u64),
    /// A JSON boolean.
    Bool(bool),
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

/// Escapes `s` for use inside a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one journal line from ordered key/value pairs.
pub fn emit_line(fields: &[(&str, JsonValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&escape(k));
        out.push_str("\":");
        match v {
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::U64(n) => out.push_str(&n.to_string()),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    out.push('}');
    out
}

/// Parses one journal line back into a key → value map.
///
/// # Errors
///
/// A human-readable description of the first syntax error.
pub fn parse_line(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut p = Parser {
        chars: line.trim().chars().collect(),
        pos: 0,
    };
    let map = p.object()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing garbage at column {}", p.pos));
    }
    Ok(map)
}

/// Seals a rendered journal line with a trailing `crc` field: FNV-1a
/// over the line as [`emit_line`] produced it. The result is still one
/// flat JSON object, parseable by [`parse_line`].
///
/// # Panics
///
/// Panics if `line` is not a `{…}` object (a programming error — only
/// [`emit_line`] output is sealed).
pub fn seal_line(line: &str) -> String {
    assert!(
        line.starts_with('{') && line.ends_with('}'),
        "only emit_line output can be sealed"
    );
    let crc = fnv1a(line.as_bytes());
    format!("{},\"crc\":{crc}}}", &line[..line.len() - 1])
}

/// Verifies and strips the `crc` seal of [`seal_line`], returning the
/// inner line. `None` means the line was torn, bit-rotted, or never
/// sealed — the caller must treat it as corrupt, never as data.
pub fn unseal_line(line: &str) -> Option<String> {
    let line = line.trim();
    let at = line.rfind(",\"crc\":")?;
    let crc: u64 = line.strip_suffix('}')?.get(at + 7..)?.parse().ok()?;
    let inner = format!("{}}}", line.get(..at)?);
    (fnv1a(inner.as_bytes()) == crc).then_some(inner)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<char, String> {
        let c = self.peek().ok_or("unexpected end of line")?;
        self.pos += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        self.skip_ws();
        let got = self.bump()?;
        if got != want {
            return Err(format!(
                "expected '{want}', got '{got}' at column {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<BTreeMap<String, JsonValue>, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(map);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump()? {
                ',' => {}
                '}' => return Ok(map),
                c => return Err(format!("expected ',' or '}}', got '{c}'")),
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of line")? {
            '"' => Ok(JsonValue::Str(self.string()?)),
            't' => self.literal("true", JsonValue::Bool(true)),
            'f' => self.literal("false", JsonValue::Bool(false)),
            c if c.is_ascii_digit() => {
                let mut n = String::new();
                while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                    n.push(self.bump()?);
                }
                n.parse::<u64>()
                    .map(JsonValue::U64)
                    .map_err(|e| format!("bad integer {n}: {e}"))
            }
            c => Err(format!("unexpected value start '{c}'")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        for want in word.chars() {
            let got = self.bump()?;
            if got != want {
                return Err(format!("bad literal: expected {word}"));
            }
        }
        Ok(value)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code =
                                code * 16 + d.to_digit(16).ok_or(format!("bad \\u digit '{d}'"))?;
                        }
                        out.push(char::from_u32(code).ok_or(format!("bad codepoint {code:#x}"))?);
                    }
                    c => return Err(format!("unsupported escape '\\{c}'")),
                },
                c => out.push(c),
            }
        }
    }
}

/// A mutex-guarded journal writer that restores *grid order* to lines
/// arriving from concurrent workers.
///
/// Every grid cell — salvaged, completed, or failed — must `submit` its
/// index exactly once: completed cells submit their journal line,
/// salvaged and failed cells submit `None` (the serial loop journals
/// neither). Lines are held in a pending map and written only as the
/// contiguous prefix of indices completes, so the bytes that reach the
/// file are exactly the bytes the serial loop would have appended, in
/// the same order. Anything still pending when a campaign halts early is
/// written by [`flush_stragglers`](OrderedJournalWriter::flush_stragglers)
/// — out of grid order, which is fine because journal *loading* is keyed
/// by cell id, not line position.
///
/// Appends go through a [`CampaignIo`] with bounded retries. A line
/// whose append still fails is **dropped, never allowed to stall the
/// prefix**: the writer advances past it and counts it in
/// [`dropped`](OrderedJournalWriter::dropped), and the affected cell
/// simply reruns on the next `--resume`. Losing one line is recoverable;
/// wedging every later cell's line behind it is not.
#[derive(Debug)]
pub struct OrderedJournalWriter {
    io: Arc<dyn CampaignIo>,
    path: PathBuf,
    retries: u32,
    backoff_ms: u64,
    state: Mutex<WriterState>,
}

#[derive(Debug)]
struct WriterState {
    next: usize,
    pending: BTreeMap<usize, Option<String>>,
    dropped: u64,
}

impl OrderedJournalWriter {
    /// A writer appending to `path` through `io`, retrying each failed
    /// append up to `retries` times with `backoff_ms` linear backoff.
    pub fn new(
        io: Arc<dyn CampaignIo>,
        path: PathBuf,
        retries: u32,
        backoff_ms: u64,
    ) -> OrderedJournalWriter {
        OrderedJournalWriter {
            io,
            path,
            retries,
            backoff_ms,
            state: Mutex::new(WriterState {
                next: 0,
                pending: BTreeMap::new(),
                dropped: 0,
            }),
        }
    }

    /// A panicking worker must not wedge every other worker's journal
    /// flush: recover the poisoned guard — the state is a cursor plus a
    /// pending map, both valid at every await-free step.
    fn lock(&self) -> std::sync::MutexGuard<'_, WriterState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn append(&self, st: &mut WriterState, line: &str) {
        let _io_span = twice_obs::span(twice_obs::SpanId::SimJournalIo);
        twice_obs::bump(twice_obs::Ctr::SimJournalAppends);
        let result = with_retries(self.retries, self.backoff_ms, || {
            self.io.append_line(&self.path, line)
        });
        if result.is_err() {
            st.dropped += 1;
        }
    }

    /// Records cell `index`'s contribution (`Some(line)` to journal it,
    /// `None` to skip it) and flushes the contiguous prefix of completed
    /// indices to the file.
    pub fn submit(&self, index: usize, line: Option<String>) {
        let mut st = self.lock();
        st.pending.insert(index, line);
        loop {
            let next = st.next;
            match st.pending.remove(&next) {
                Some(Some(line)) => {
                    self.append(&mut st, &line);
                    st.next += 1;
                }
                Some(None) => st.next += 1,
                None => break,
            }
        }
    }

    /// Writes every still-pending line (in index order) regardless of
    /// gaps. Called when a campaign halts early: cells that finished
    /// while a lower-indexed neighbour was still running must reach the
    /// journal before the process exits, or their work is lost.
    pub fn flush_stragglers(&self) {
        let mut st = self.lock();
        let pending = std::mem::take(&mut st.pending);
        for (index, line) in pending {
            if let Some(line) = line {
                self.append(&mut st, &line);
            }
            st.next = st.next.max(index + 1);
        }
    }

    /// Lines lost to append failures after retries. Each lost line
    /// means one cell reruns on the next `--resume` — degraded, never
    /// wrong.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_scalar_kind() {
        let line = emit_line(&[
            (
                "cell",
                JsonValue::Str("seu 1e-4 \"random\"/hardened".into()),
            ),
            ("bit_flips", JsonValue::U64(0)),
            ("scrubbing", JsonValue::Bool(true)),
            ("retry_exhausted", JsonValue::Bool(false)),
        ]);
        let map = parse_line(&line).expect("parse");
        assert_eq!(
            map["cell"].as_str().unwrap(),
            "seu 1e-4 \"random\"/hardened"
        );
        assert_eq!(map["bit_flips"].as_u64(), Some(0));
        assert_eq!(map["scrubbing"].as_bool(), Some(true));
        assert_eq!(map["retry_exhausted"].as_bool(), Some(false));
    }

    #[test]
    fn escapes_control_characters() {
        let line = emit_line(&[("k", JsonValue::Str("a\nb\t\"c\"\\d\u{1}".into()))]);
        let map = parse_line(&line).expect("parse");
        assert_eq!(map["k"].as_str().unwrap(), "a\nb\t\"c\"\\d\u{1}");
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["", "{", "{\"k\":}", "{\"k\":1} extra", "{\"k\":nope}"] {
            assert!(parse_line(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_line("{}").expect("parse").is_empty());
    }

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("twice-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn real_writer(path: &std::path::Path) -> OrderedJournalWriter {
        OrderedJournalWriter::new(Arc::new(crate::cio::RealIo), path.to_path_buf(), 1, 0)
    }

    #[test]
    fn seal_and_unseal_round_trip() {
        let inner = emit_line(&[("cell", JsonValue::Str("x/hardened".into()))]);
        let sealed = seal_line(&inner);
        assert_eq!(unseal_line(&sealed).expect("seal verifies"), inner);
        // The sealed line is still one flat JSON object.
        let map = parse_line(&sealed).expect("parse");
        assert!(map.contains_key("crc"));
    }

    #[test]
    fn unseal_rejects_tears_and_single_bit_rot() {
        let sealed = seal_line(&emit_line(&[
            ("cell", JsonValue::Str("seu 1e-2/unhardened".into())),
            ("digest", JsonValue::U64(0xDEAD_BEEF)),
        ]));
        for n in 0..sealed.len() {
            assert!(unseal_line(&sealed[..n]).is_none(), "tear at {n}");
        }
        let bytes = sealed.as_bytes();
        for i in 0..bytes.len() {
            for bit in [0x01u8, 0x20, 0x80] {
                let mut bad = bytes.to_vec();
                bad[i] ^= bit;
                if let Ok(s) = std::str::from_utf8(&bad) {
                    assert!(
                        unseal_line(s).is_none(),
                        "bit-rot at byte {i} bit {bit:#04x} must fail the CRC"
                    );
                }
            }
        }
        assert!(unseal_line(&emit_line(&[("k", JsonValue::U64(1))])).is_none());
    }

    #[test]
    fn out_of_order_submissions_reach_the_file_in_index_order() {
        let path = temp_journal("order");
        let writer = real_writer(&path);
        // Grid order 0..5, submitted shuffled, with 1 (failed) and 3
        // (salvaged) contributing nothing.
        writer.submit(4, Some("four".into()));
        writer.submit(2, Some("two".into()));
        writer.submit(0, Some("zero".into()));
        writer.submit(3, None);
        writer.submit(1, None);
        assert_eq!(
            std::fs::read_to_string(&path).expect("read"),
            "zero\ntwo\nfour\n"
        );
        assert_eq!(writer.dropped(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn halting_flushes_stragglers_past_the_gap() {
        let path = temp_journal("halt");
        let writer = real_writer(&path);
        writer.submit(0, Some("zero".into()));
        // Index 1 never completes (the campaign halted); 2 and 4 did.
        writer.submit(2, Some("two".into()));
        writer.submit(4, Some("four".into()));
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "zero\n");
        writer.flush_stragglers();
        assert_eq!(
            std::fs::read_to_string(&path).expect("read"),
            "zero\ntwo\nfour\n"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_submissions_serialize_in_grid_order() {
        let path = temp_journal("concurrent");
        let writer = real_writer(&path);
        let lines: Vec<usize> = (0..64).collect();
        crate::parallel::parallel_map(8, &lines, |i, _| {
            writer.submit(i, Some(format!("line {i}")));
        });
        let expect: String = (0..64).map(|i| format!("line {i}\n")).collect();
        assert_eq!(std::fs::read_to_string(&path).expect("read"), expect);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_poisoned_writer_keeps_accepting_lines() {
        let path = temp_journal("poison");
        let writer = real_writer(&path);
        writer.submit(0, Some("before".into()));
        // A worker panics while holding the journal lock; every other
        // worker's flush must survive the poisoned mutex.
        let poisoner = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = writer.state.lock().expect("first lock is clean");
            panic!("worker died mid-flush");
        }));
        assert!(poisoner.is_err(), "the panic must fire");
        writer.submit(1, Some("after".into()));
        assert_eq!(
            std::fs::read_to_string(&path).expect("read"),
            "before\nafter\n"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_appends_drop_the_line_instead_of_stalling_the_prefix() {
        use twice_common::fault::{FaultKind, FaultPlan};
        let path = temp_journal("drop");
        // Every append fails with ENOSPC, forever.
        let io = Arc::new(crate::cio::FaultyIo::new(
            FaultPlan::with_seed(9).rate(FaultKind::StorageEnospc, 1.0),
        ));
        let writer = OrderedJournalWriter::new(io, path.clone(), 2, 0);
        writer.submit(0, Some("zero".into()));
        writer.submit(1, Some("one".into()));
        writer.submit(2, None);
        assert_eq!(writer.dropped(), 2, "both lines drop; the cursor moves on");
        assert!(!path.exists(), "nothing must reach the file");
        let _ = std::fs::remove_file(&path);
    }
}
