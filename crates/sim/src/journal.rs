//! The JSONL cell-outcome journal for resumable campaigns.
//!
//! One line per *completed* grid cell, appended and flushed as soon as
//! the cell finishes, so a crash loses at most the in-flight cell (whose
//! partial state lives in the epoch checkpoint instead). The format is a
//! flat JSON object of strings, unsigned integers, and booleans —
//! written and parsed by the tiny codec below, because the workspace
//! deliberately has no serde dependency.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::Mutex;

/// A flat JSON scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string.
    Str(String),
    /// A non-negative JSON integer.
    U64(u64),
    /// A JSON boolean.
    Bool(bool),
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

/// Escapes `s` for use inside a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one journal line from ordered key/value pairs.
pub fn emit_line(fields: &[(&str, JsonValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&escape(k));
        out.push_str("\":");
        match v {
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::U64(n) => out.push_str(&n.to_string()),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    out.push('}');
    out
}

/// Parses one journal line back into a key → value map.
///
/// # Errors
///
/// A human-readable description of the first syntax error.
pub fn parse_line(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut p = Parser {
        chars: line.trim().chars().collect(),
        pos: 0,
    };
    let map = p.object()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing garbage at column {}", p.pos));
    }
    Ok(map)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<char, String> {
        let c = self.peek().ok_or("unexpected end of line")?;
        self.pos += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        self.skip_ws();
        let got = self.bump()?;
        if got != want {
            return Err(format!(
                "expected '{want}', got '{got}' at column {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<BTreeMap<String, JsonValue>, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(map);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump()? {
                ',' => {}
                '}' => return Ok(map),
                c => return Err(format!("expected ',' or '}}', got '{c}'")),
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of line")? {
            '"' => Ok(JsonValue::Str(self.string()?)),
            't' => self.literal("true", JsonValue::Bool(true)),
            'f' => self.literal("false", JsonValue::Bool(false)),
            c if c.is_ascii_digit() => {
                let mut n = String::new();
                while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                    n.push(self.bump()?);
                }
                n.parse::<u64>()
                    .map(JsonValue::U64)
                    .map_err(|e| format!("bad integer {n}: {e}"))
            }
            c => Err(format!("unexpected value start '{c}'")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        for want in word.chars() {
            let got = self.bump()?;
            if got != want {
                return Err(format!("bad literal: expected {word}"));
            }
        }
        Ok(value)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code =
                                code * 16 + d.to_digit(16).ok_or(format!("bad \\u digit '{d}'"))?;
                        }
                        out.push(char::from_u32(code).ok_or(format!("bad codepoint {code:#x}"))?);
                    }
                    c => return Err(format!("unsupported escape '\\{c}'")),
                },
                c => out.push(c),
            }
        }
    }
}

/// A mutex-guarded journal writer that restores *grid order* to lines
/// arriving from concurrent workers.
///
/// Every grid cell — salvaged, completed, or failed — must `submit` its
/// index exactly once: completed cells submit their journal line,
/// salvaged and failed cells submit `None` (the serial loop journals
/// neither). Lines are held in a pending map and written only as the
/// contiguous prefix of indices completes, so the bytes that reach the
/// file are exactly the bytes the serial loop would have appended, in
/// the same order. Anything still pending when a campaign halts early is
/// written by [`flush_stragglers`](OrderedJournalWriter::flush_stragglers)
/// — out of grid order, which is fine because journal *loading* is keyed
/// by cell id, not line position.
#[derive(Debug)]
pub struct OrderedJournalWriter {
    state: Mutex<WriterState>,
}

#[derive(Debug)]
struct WriterState {
    file: std::fs::File,
    next: usize,
    pending: BTreeMap<usize, Option<String>>,
}

impl OrderedJournalWriter {
    /// Wraps an append-mode journal file handle.
    pub fn new(file: std::fs::File) -> OrderedJournalWriter {
        OrderedJournalWriter {
            state: Mutex::new(WriterState {
                file,
                next: 0,
                pending: BTreeMap::new(),
            }),
        }
    }

    /// Records cell `index`'s contribution (`Some(line)` to journal it,
    /// `None` to skip it) and flushes the contiguous prefix of completed
    /// indices to the file.
    ///
    /// # Errors
    ///
    /// Propagates write/flush errors; pending lines stay queued.
    pub fn submit(&self, index: usize, line: Option<String>) -> std::io::Result<()> {
        let mut st = self.state.lock().expect("journal writer poisoned");
        st.pending.insert(index, line);
        let mut wrote = false;
        loop {
            let next = st.next;
            match st.pending.remove(&next) {
                Some(Some(line)) => {
                    writeln!(st.file, "{line}")?;
                    wrote = true;
                    st.next += 1;
                }
                Some(None) => st.next += 1,
                None => break,
            }
        }
        if wrote {
            st.file.flush()?;
        }
        Ok(())
    }

    /// Writes every still-pending line (in index order) regardless of
    /// gaps. Called when a campaign halts early: cells that finished
    /// while a lower-indexed neighbour was still running must reach the
    /// journal before the process exits, or their work is lost.
    ///
    /// # Errors
    ///
    /// Propagates write/flush errors.
    pub fn flush_stragglers(&self) -> std::io::Result<()> {
        let mut st = self.state.lock().expect("journal writer poisoned");
        let pending = std::mem::take(&mut st.pending);
        for (index, line) in pending {
            if let Some(line) = line {
                writeln!(st.file, "{line}")?;
            }
            st.next = st.next.max(index + 1);
        }
        st.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_scalar_kind() {
        let line = emit_line(&[
            (
                "cell",
                JsonValue::Str("seu 1e-4 \"random\"/hardened".into()),
            ),
            ("bit_flips", JsonValue::U64(0)),
            ("scrubbing", JsonValue::Bool(true)),
            ("retry_exhausted", JsonValue::Bool(false)),
        ]);
        let map = parse_line(&line).expect("parse");
        assert_eq!(
            map["cell"].as_str().unwrap(),
            "seu 1e-4 \"random\"/hardened"
        );
        assert_eq!(map["bit_flips"].as_u64(), Some(0));
        assert_eq!(map["scrubbing"].as_bool(), Some(true));
        assert_eq!(map["retry_exhausted"].as_bool(), Some(false));
    }

    #[test]
    fn escapes_control_characters() {
        let line = emit_line(&[("k", JsonValue::Str("a\nb\t\"c\"\\d\u{1}".into()))]);
        let map = parse_line(&line).expect("parse");
        assert_eq!(map["k"].as_str().unwrap(), "a\nb\t\"c\"\\d\u{1}");
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["", "{", "{\"k\":}", "{\"k\":1} extra", "{\"k\":nope}"] {
            assert!(parse_line(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_line("{}").expect("parse").is_empty());
    }

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("twice-journal-{tag}-{}", std::process::id()))
    }

    #[test]
    fn out_of_order_submissions_reach_the_file_in_index_order() {
        let path = temp_journal("order");
        let writer = OrderedJournalWriter::new(std::fs::File::create(&path).expect("create"));
        // Grid order 0..5, submitted shuffled, with 1 (failed) and 3
        // (salvaged) contributing nothing.
        writer.submit(4, Some("four".into())).expect("submit");
        writer.submit(2, Some("two".into())).expect("submit");
        writer.submit(0, Some("zero".into())).expect("submit");
        writer.submit(3, None).expect("submit");
        writer.submit(1, None).expect("submit");
        assert_eq!(
            std::fs::read_to_string(&path).expect("read"),
            "zero\ntwo\nfour\n"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn halting_flushes_stragglers_past_the_gap() {
        let path = temp_journal("halt");
        let writer = OrderedJournalWriter::new(std::fs::File::create(&path).expect("create"));
        writer.submit(0, Some("zero".into())).expect("submit");
        // Index 1 never completes (the campaign halted); 2 and 4 did.
        writer.submit(2, Some("two".into())).expect("submit");
        writer.submit(4, Some("four".into())).expect("submit");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "zero\n");
        writer.flush_stragglers().expect("flush");
        assert_eq!(
            std::fs::read_to_string(&path).expect("read"),
            "zero\ntwo\nfour\n"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_submissions_serialize_in_grid_order() {
        let path = temp_journal("concurrent");
        let writer = OrderedJournalWriter::new(std::fs::File::create(&path).expect("create"));
        let lines: Vec<usize> = (0..64).collect();
        crate::parallel::parallel_map(8, &lines, |i, _| {
            writer.submit(i, Some(format!("line {i}"))).expect("submit")
        });
        let expect: String = (0..64).map(|i| format!("line {i}\n")).collect();
        assert_eq!(std::fs::read_to_string(&path).expect("read"), expect);
        let _ = std::fs::remove_file(&path);
    }
}
