//! E3 (extension): in-DRAM ECC is not a row-hammer defense.
//!
//! §2.2 names in-DRAM ECC as the other cell-repair technique besides row
//! sparing. A natural question the paper leaves to the reader: doesn't
//! SEC-DED ECC make TWiCe unnecessary? This experiment answers it with
//! the fault model's overdrive mode (extra bit flips as disturbance
//! grows past `N_th`): a hammer that barely crosses the threshold is
//! absorbed by ECC, but a sustained hammer produces multi-bit codeword
//! errors ECC can at best *detect* — and sometimes silently miscorrects
//! — while TWiCe simply prevents the damage.

use crate::config::SimConfig;
use crate::outcome::{Cell, CellError};
use crate::report::Table;
use crate::runner::{try_build_source, WorkloadKind};
use crate::system::System;
use twice::TableOrganization;
use twice_mitigations::DefenseKind;
use twice_workloads::AccessSource;

/// Per-run ECC outcome summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccSummary {
    /// Rows with any corruption.
    pub corrupted_rows: usize,
    /// Codewords ECC corrected.
    pub corrected: usize,
    /// Codewords ECC detected but could not correct.
    pub uncorrectable: usize,
    /// Codewords where ECC silently mis-corrected (or missed) damage.
    pub silent: usize,
}

/// Runs `workload` for `requests` on `cfg` under `defense` and judges
/// every corrupted row with the SEC-DED model.
///
/// # Errors
///
/// [`CellError::InvalidConfig`] for a malformed configuration and
/// [`CellError::RetryExhausted`] when the controller gives up — both
/// degrade one table cell instead of aborting the experiment.
pub fn run_with_ecc_judgement(
    cfg: &SimConfig,
    workload: WorkloadKind,
    defense: DefenseKind,
    requests: u64,
) -> Result<EccSummary, CellError> {
    cfg.validate()
        .map_err(|e| CellError::InvalidConfig(e.to_string()))?;
    let mut system = System::new(cfg, defense);
    let trace = try_build_source(cfg, &workload)?.take_requests(requests);
    system
        .run(trace)
        .map_err(|e| CellError::RetryExhausted(e.to_string()))?;
    let mut summary = EccSummary {
        corrupted_rows: 0,
        corrected: 0,
        uncorrectable: 0,
        silent: 0,
    };
    for ctrl in system.controllers() {
        for (bank_idx, rank) in ctrl.rcd().ranks().iter().enumerate() {
            let _ = bank_idx;
            for bank in 0..rank.config().banks {
                for row in rank.corrupted_data_rows(bank) {
                    summary.corrupted_rows += 1;
                    let (c, u, s) = rank.ecc_judgement(bank, row);
                    summary.corrected += c;
                    summary.uncorrectable += u;
                    summary.silent += s;
                }
            }
        }
    }
    Ok(summary)
}

/// Runs E3 and renders the comparison table. A failed run degrades to a
/// structured error row instead of aborting the experiment.
pub fn ecc_experiment(cfg_base: &SimConfig, requests: u64) -> (Table, Vec<Cell<EccSummary>>) {
    ecc_experiment_jobs(cfg_base, requests, 1)
}

/// [`ecc_experiment`] across a worker pool; the two runs are independent
/// and seeded, so the table is identical for every `jobs` value.
pub fn ecc_experiment_jobs(
    cfg_base: &SimConfig,
    requests: u64,
    jobs: usize,
) -> (Table, Vec<Cell<EccSummary>>) {
    // Overdrive: one extra flip per N_th/32 of excess disturbance, so a
    // sustained hammer sprays enough bits for same-codeword collisions.
    let mut cfg = cfg_base.clone();
    cfg.overshoot_interval = Some((cfg.fault_n_th / 32).max(1));
    let runs = [
        ("no defense", DefenseKind::None),
        (
            "TWiCe",
            DefenseKind::Twice(TableOrganization::FullyAssociative),
        ),
    ];
    let mut results = crate::parallel::parallel_map(jobs, &runs, |_, (_, defense)| {
        run_with_ecc_judgement(&cfg, WorkloadKind::S3, *defense, requests)
    })
    .into_iter();
    let mut table = Table::new(
        "E3 (extension): SEC-DED ECC vs a sustained hammer",
        &[
            "defense",
            "corrupted rows",
            "ECC corrected",
            "ECC uncorrectable",
            "ECC silent",
        ],
    );
    let mut out = Vec::new();
    for (label, _) in runs {
        let cell = Cell {
            experiment: "ecc",
            cell: label.to_string(),
            result: results.next().expect("one summary per configured run"),
        };
        match &cell.result {
            Ok(s) => {
                table.row(&[
                    label.to_string(),
                    s.corrupted_rows.to_string(),
                    s.corrected.to_string(),
                    s.uncorrectable.to_string(),
                    s.silent.to_string(),
                ]);
            }
            Err(e) => {
                table.row(&[
                    label.to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    format!("error: {e}"),
                ]);
            }
        }
        out.push(cell);
    }
    (table, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustained_hammer_defeats_ecc_but_twice_prevents_it() {
        let cfg = SimConfig::fast_test();
        let (table, runs) = ecc_experiment(&cfg, 60_000);
        assert_eq!(table.len(), 2);
        let by = |cell: &Cell<EccSummary>| {
            *cell
                .value()
                .unwrap_or_else(|| panic!("{}", cell.error_line().unwrap()))
        };
        let unprotected = by(&runs[0]);
        let twice = by(&runs[1]);
        assert!(
            unprotected.corrupted_rows > 0,
            "the hammer must corrupt rows undefended"
        );
        assert!(
            unprotected.uncorrectable + unprotected.silent > 0,
            "overdriven damage must exceed SEC-DED: {unprotected:?}"
        );
        assert_eq!(twice.corrupted_rows, 0, "TWiCe prevents the damage");
    }

    #[test]
    fn a_barely_crossing_hammer_is_absorbed_by_ecc() {
        // Without overdrive, each victim gets exactly one flipped bit —
        // within SEC-DED's correction power.
        let cfg = SimConfig::fast_test(); // overshoot disabled
        let s = run_with_ecc_judgement(&cfg, WorkloadKind::S3, DefenseKind::None, 60_000)
            .expect("fault-free run");
        assert!(s.corrupted_rows > 0);
        // One flip lands per victim per window; flips persist through
        // refresh (that is what makes row-hammer dangerous), so a
        // multi-window run accrues several *scattered* single-bit
        // errors — all within SEC-DED's power.
        assert_eq!(s.uncorrectable, 0, "{s:?}");
        assert_eq!(s.silent, 0, "{s:?}");
        assert!(s.corrected >= s.corrupted_rows);
    }
}
