//! E2: the §3.4 latency-spike claim, quantified.
//!
//! "CBT may generate bursts of DRAM refreshes … This flurry of refreshes
//! incur a spike in memory access latency, which hurts latency-critical
//! workloads." The controller's latency histogram lets us measure
//! exactly that: run the same adversarial traffic under CBT and under
//! TWiCe and compare tail latencies. TWiCe's worst case blocks one bank
//! for `2·tRC + tRP` (~104 ns); CBT's worst case refreshes a whole
//! counter group back-to-back.

use crate::config::SimConfig;
use crate::metrics::RunMetrics;
use crate::outcome::Cell;
use crate::report::Table;
use crate::runner::{try_run_batch, RunSpec, WorkloadKind};
use twice::TableOrganization;
use twice_mitigations::DefenseKind;

/// The latency-spike comparison.
#[derive(Debug, Clone)]
pub struct LatencyResult {
    /// Per-(workload, defense) cells; failures degrade to error rows.
    pub runs: Vec<Cell<RunMetrics>>,
    /// Rendered table.
    pub table: Table,
}

/// Runs E2: tail latency of each defense under `workloads`.
pub fn latency_spike(cfg: &SimConfig, workloads: &[(String, WorkloadKind, u64)]) -> LatencyResult {
    latency_spike_jobs(cfg, workloads, 1)
}

/// [`latency_spike`] across a worker pool; cells are independent, so the
/// rendered table is identical for every `jobs` value.
pub fn latency_spike_jobs(
    cfg: &SimConfig,
    workloads: &[(String, WorkloadKind, u64)],
    jobs: usize,
) -> LatencyResult {
    let defenses = [
        DefenseKind::None,
        DefenseKind::Twice(TableOrganization::FullyAssociative),
        DefenseKind::Cbt { counters: 256 },
    ];
    let specs: Vec<RunSpec> = workloads
        .iter()
        .flat_map(|(_, workload, requests)| {
            defenses.iter().map(|&d| (workload.clone(), d, *requests))
        })
        .collect();
    let mut results = try_run_batch(cfg, &specs, jobs).into_iter();
    let mut table = Table::new(
        "E2: request-latency spikes under refresh bursts (paper 3.4)",
        &["workload", "defense", "mean", "p99 (<=)", "max"],
    );
    let mut runs = Vec::new();
    for (label, _, _) in workloads {
        for &d in &defenses {
            let cell = Cell {
                experiment: "latency",
                cell: format!("{label}/{d}"),
                result: results.next().expect("one run per workload × defense"),
            };
            match &cell.result {
                Ok(m) => {
                    table.row(&[
                        label.clone(),
                        m.defense.clone(),
                        m.latency_mean.to_string(),
                        m.latency_p99.to_string(),
                        m.latency_max.to_string(),
                    ]);
                }
                Err(e) => {
                    table.row(&[
                        label.clone(),
                        d.to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        format!("error: {e}"),
                    ]);
                }
            }
            runs.push(cell);
        }
    }
    LatencyResult { runs, table }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::require;

    #[test]
    fn cbt_spikes_dwarf_twice_on_its_adversarial_pattern() {
        // Scaled S2: enough sweep to exhaust the small-window tree, then
        // hammer the other half so CBT group-refreshes.
        let mut cfg = SimConfig::fast_test();
        // CBT-256 cannot exhaust in the fast window; use the hammer (S3)
        // where CBT refreshes a leaf group per crossing instead.
        cfg.params.th_rh = 256;
        let workloads = vec![("S3".to_string(), WorkloadKind::S3, 60_000u64)];
        let result = latency_spike(&cfg, &workloads);
        let by = |name: &str| {
            require(&result.runs, name, |m: &RunMetrics| {
                m.defense.contains(name)
            })
            .unwrap_or_else(|e| panic!("{e}"))
        };
        let twice = by("TWiCe");
        let cbt = by("CBT");
        let none = by("none");
        // TWiCe's ARR adds at most a ~104ns blocking window.
        assert!(
            twice.latency_max.as_ps() <= none.latency_max.as_ps() + 300_000,
            "TWiCe max {} vs none max {}",
            twice.latency_max,
            none.latency_max
        );
        // CBT's group refresh blocks the bank for (group+2) row cycles.
        assert!(
            cbt.latency_max > twice.latency_max,
            "CBT max {} must exceed TWiCe max {}",
            cbt.latency_max,
            twice.latency_max
        );
    }
}
