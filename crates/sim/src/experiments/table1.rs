//! Table 1: qualitative comparison of RH defenses — backed by
//! measurements from this reproduction rather than just claims.

use crate::config::SimConfig;
use crate::report::{percent, Table};
use crate::runner::{run, WorkloadKind};
use twice::TableOrganization;
use twice_mitigations::DefenseKind;

/// One defense's Table 1 row, with the qualitative claims of the paper
/// and the measured evidence from this reproduction.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Defense label.
    pub defense: String,
    /// Where the scheme lives ("MC" or "RCD").
    pub location: &'static str,
    /// Measured additional-ACT ratio on a benign pattern (S1).
    pub typical_overhead: f64,
    /// Measured additional-ACT ratio on its worst adversarial pattern.
    pub adversarial_overhead: f64,
    /// Whether the scheme raised detections under attack.
    pub detects: bool,
}

/// Reproduces Table 1, measuring each scheme on a benign pattern (S1)
/// and on the adversarial patterns (S2 for the counter trees, S3 for
/// everyone) with `requests` accesses per run.
pub fn table1(cfg: &SimConfig, requests: u64) -> (Table, Vec<Comparison>) {
    let lineup: Vec<(DefenseKind, &'static str)> = vec![
        (DefenseKind::Cra { cache_entries: 64 }, "MC"),
        (DefenseKind::Cbt { counters: 256 }, "MC"),
        (DefenseKind::Para { p: 0.001 }, "MC"),
        (
            DefenseKind::Twice(TableOrganization::FullyAssociative),
            "RCD",
        ),
    ];
    let mut rows = Vec::new();
    for (kind, location) in lineup {
        let typical = run(cfg, WorkloadKind::S1, kind, requests);
        // Each defense's worst pattern: CBT hates S2; everyone else S3;
        // CRA hates S1 itself, so take the max.
        let s2 = run(cfg, WorkloadKind::S2, kind, requests);
        let s3 = run(cfg, WorkloadKind::S3, kind, requests);
        let adversarial = s2
            .additional_act_ratio()
            .max(s3.additional_act_ratio())
            .max(typical.additional_act_ratio());
        rows.push(Comparison {
            defense: kind.to_string(),
            location,
            typical_overhead: typical.additional_act_ratio(),
            adversarial_overhead: adversarial,
            detects: s3.detections > 0,
        });
    }
    let mut table = Table::new(
        "Table 1: TWiCe vs previous row-hammer defenses (measured)",
        &[
            "defense",
            "location",
            "typical overhead (S1)",
            "worst adversarial overhead",
            "detects attacks",
        ],
    );
    for c in &rows {
        table.row(&[
            c.defense.clone(),
            c.location.to_string(),
            percent(c.typical_overhead),
            percent(c.adversarial_overhead),
            if c.detects { "yes" } else { "no" }.to_string(),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_table1_preserves_paper_ordering() {
        let cfg = SimConfig::fast_test();
        let (table, rows) = table1(&cfg, 30_000);
        assert_eq!(table.len(), 4);
        let by_name = |n: &str| rows.iter().find(|c| c.defense.contains(n)).unwrap();
        let cra = by_name("CRA");
        let cbt = by_name("CBT");
        let para = by_name("PARA");
        let twice = by_name("TWiCe");
        // Paper's qualitative claims:
        assert!(twice.detects && cbt.detects && cra.detects);
        assert!(!para.detects, "PARA is attack-oblivious");
        assert!(
            twice.typical_overhead == 0.0,
            "TWiCe: no overhead on typical patterns"
        );
        assert!(
            cra.adversarial_overhead > para.adversarial_overhead,
            "CRA degrades badly on adversarial patterns"
        );
        assert!(
            cbt.adversarial_overhead > twice.adversarial_overhead,
            "CBT group refreshes dwarf TWiCe's ARRs"
        );
        // TWiCe's worst case is analytic: 2 extra ACTs per thRH ACTs.
        assert!(twice.adversarial_overhead <= 2.5 / cfg.params.th_rh as f64);
        assert_eq!(twice.location, "RCD");
    }
}
