//! Table 1: qualitative comparison of RH defenses — backed by
//! measurements from this reproduction rather than just claims.

use crate::config::SimConfig;
use crate::metrics::RunMetrics;
use crate::outcome::{Cell, CellError};
use crate::report::{percent, Table};
use crate::runner::{try_run_batch, RunSpec, WorkloadKind};
use twice::TableOrganization;
use twice_mitigations::DefenseKind;

/// One defense's Table 1 row, with the qualitative claims of the paper
/// and the measured evidence from this reproduction.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Defense label.
    pub defense: String,
    /// Where the scheme lives ("MC" or "RCD").
    pub location: &'static str,
    /// Measured additional-ACT ratio on a benign pattern (S1).
    pub typical_overhead: f64,
    /// Measured additional-ACT ratio on its worst adversarial pattern.
    pub adversarial_overhead: f64,
    /// Whether the scheme raised detections under attack.
    pub detects: bool,
    /// Total activations (normal + additional) across the three
    /// measured runs — the work unit behind `twice-exp bench`'s
    /// absolute-throughput figure.
    pub acts: u64,
}

/// Assembles one defense's row from its three finished runs, with the
/// serial `S1 → S2 → S3` error priority: the first failing run in that
/// order is the cell's error.
fn combine(
    kind: DefenseKind,
    location: &'static str,
    typical: Result<RunMetrics, CellError>,
    s2: Result<RunMetrics, CellError>,
    s3: Result<RunMetrics, CellError>,
) -> Result<Comparison, CellError> {
    let typical = typical?;
    // Each defense's worst pattern: CBT hates S2; everyone else S3;
    // CRA hates S1 itself, so take the max.
    let s2 = s2?;
    let s3 = s3?;
    let adversarial = s2
        .additional_act_ratio()
        .max(s3.additional_act_ratio())
        .max(typical.additional_act_ratio());
    let acts = [&typical, &s2, &s3]
        .iter()
        .map(|m| m.normal_acts + m.additional_acts)
        .sum();
    Ok(Comparison {
        defense: kind.to_string(),
        location,
        typical_overhead: typical.additional_act_ratio(),
        adversarial_overhead: adversarial,
        detects: s3.detections > 0,
        acts,
    })
}

/// Reproduces Table 1, measuring each scheme on a benign pattern (S1)
/// and on the adversarial patterns (S2 for the counter trees, S3 for
/// everyone) with `requests` accesses per run. A cell that fails —
/// malformed configuration, exhausted retry budget — degrades to a
/// structured error row instead of aborting the table.
pub fn table1(cfg: &SimConfig, requests: u64) -> (Table, Vec<Cell<Comparison>>) {
    table1_jobs(cfg, requests, 1)
}

/// [`table1`] across a worker pool: all 12 runs (4 defenses × S1/S2/S3)
/// are independent and seeded by `cfg`, so every `jobs` value yields the
/// same table — the pool only changes wall-clock time.
pub fn table1_jobs(cfg: &SimConfig, requests: u64, jobs: usize) -> (Table, Vec<Cell<Comparison>>) {
    let lineup: Vec<(DefenseKind, &'static str)> = vec![
        (DefenseKind::Cra { cache_entries: 64 }, "MC"),
        (DefenseKind::Cbt { counters: 256 }, "MC"),
        (DefenseKind::Para { p: 0.001 }, "MC"),
        (
            DefenseKind::Twice(TableOrganization::FullyAssociative),
            "RCD",
        ),
    ];
    let specs: Vec<RunSpec> = lineup
        .iter()
        .flat_map(|&(kind, _)| {
            [
                (WorkloadKind::S1, kind, requests),
                (WorkloadKind::S2, kind, requests),
                (WorkloadKind::S3, kind, requests),
            ]
        })
        .collect();
    let mut results = try_run_batch(cfg, &specs, jobs).into_iter();
    let mut cells = Vec::new();
    for (kind, location) in lineup {
        let typical = results.next().expect("one S1 run per defense");
        let s2 = results.next().expect("one S2 run per defense");
        let s3 = results.next().expect("one S3 run per defense");
        cells.push(Cell {
            experiment: "table1",
            cell: kind.to_string(),
            result: combine(kind, location, typical, s2, s3),
        });
    }
    let mut table = Table::new(
        "Table 1: TWiCe vs previous row-hammer defenses (measured)",
        &[
            "defense",
            "location",
            "typical overhead (S1)",
            "worst adversarial overhead",
            "detects attacks",
        ],
    );
    for cell in &cells {
        match &cell.result {
            Ok(c) => {
                table.row(&[
                    c.defense.clone(),
                    c.location.to_string(),
                    percent(c.typical_overhead),
                    percent(c.adversarial_overhead),
                    if c.detects { "yes" } else { "no" }.to_string(),
                ]);
            }
            Err(e) => {
                table.row(&[
                    cell.cell.clone(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    format!("error: {e}"),
                ]);
            }
        }
    }
    (table, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::require;

    #[test]
    fn measured_table1_preserves_paper_ordering() {
        let cfg = SimConfig::fast_test();
        let (table, rows) = table1(&cfg, 30_000);
        assert_eq!(table.len(), 4);
        let by_name = |n: &str| {
            require(&rows, n, |c: &Comparison| c.defense.contains(n))
                .unwrap_or_else(|e| panic!("{e}"))
        };
        let cra = by_name("CRA");
        let cbt = by_name("CBT");
        let para = by_name("PARA");
        let twice = by_name("TWiCe");
        // Paper's qualitative claims:
        assert!(twice.detects && cbt.detects && cra.detects);
        assert!(!para.detects, "PARA is attack-oblivious");
        assert!(
            twice.typical_overhead == 0.0,
            "TWiCe: no overhead on typical patterns"
        );
        assert!(
            cra.adversarial_overhead > para.adversarial_overhead,
            "CRA degrades badly on adversarial patterns"
        );
        assert!(
            cbt.adversarial_overhead > twice.adversarial_overhead,
            "CBT group refreshes dwarf TWiCe's ARRs"
        );
        // TWiCe's worst case is analytic: 2 extra ACTs per thRH ACTs.
        assert!(twice.adversarial_overhead <= 2.5 / cfg.params.th_rh as f64);
        assert_eq!(twice.location, "RCD");
    }

    #[test]
    fn pooled_table1_renders_the_serial_bytes() {
        let cfg = SimConfig::fast_test();
        let (serial, _) = table1_jobs(&cfg, 8_000, 1);
        let (pooled, _) = table1_jobs(&cfg, 8_000, 3);
        assert_eq!(pooled.to_string(), serial.to_string());
    }
}
