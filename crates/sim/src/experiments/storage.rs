//! §6.2/§7.1: table storage arithmetic (experiment B2).

use crate::report::Table;
use twice::cost::TableStorage;
use twice::{CapacityBound, TwiceParams};

/// The storage experiment's outcome.
#[derive(Debug, Clone)]
pub struct StorageResult {
    /// Unified (fa) layout.
    pub unified: TableStorage,
    /// Split layout.
    pub split: TableStorage,
    /// Split + pa SB indicators.
    pub split_pa: TableStorage,
    /// Rendered table.
    pub table: Table,
}

/// Computes B2 for `params`.
pub fn storage(params: &TwiceParams) -> StorageResult {
    let bound = CapacityBound::for_params(params);
    let unified = TableStorage::unified(params, &bound);
    let split = TableStorage::split(params, &bound);
    let split_pa = TableStorage::split_pa(params, &bound, 64);
    let mut table = Table::new(
        "Table storage per bank (paper 6.2 / 7.1)",
        &["layout", "entries", "bits/entry", "total", "note"],
    );
    table.row(&[
        "unified (fa)".into(),
        unified.long_entries.to_string(),
        unified.long_entry_bits.to_string(),
        format!("{:.2} KiB", unified.total_kib()),
        "paper: 553 x 46b".into(),
    ]);
    table.row(&[
        "split".into(),
        format!("{}L + {}S", split.long_entries, split.short_entries),
        format!("{}b / {}b", split.long_entry_bits, split.short_entry_bits),
        format!("{:.2} KiB", split.total_kib()),
        format!(
            "paper: 2.71 KB; saving {:.1}% (paper ~13%)",
            split.saving_vs(&unified) * 100.0
        ),
    ]);
    table.row(&[
        "split + pa SB indicators".into(),
        format!(
            "{} + 72 ind.",
            split_pa.long_entries + split_pa.short_entries
        ),
        String::new(),
        format!("{:.2} KiB", split_pa.total_kib()),
        format!(
            "+{} B (paper: +54 B)",
            split_pa.total_bytes() - split.total_bytes()
        ),
    ]);
    StorageResult {
        unified,
        split,
        split_pa,
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_table_matches_paper_scale() {
        let r = storage(&TwiceParams::paper_default());
        assert!((2.65..=2.80).contains(&r.split.total_kib()));
        let saving = r.split.saving_vs(&r.unified);
        assert!((0.11..=0.14).contains(&saving));
        assert_eq!(r.split_pa.total_bytes() - r.split.total_bytes(), 54);
        let s = r.table.to_string();
        assert!(s.contains("KiB"));
    }
}
