//! Table 4: the simulated-system configuration.

use crate::config::SimConfig;
use crate::report::Table;
use twice_memctrl::scheduler::SchedulerKind;

/// Renders the system configuration in Table 4's shape.
pub fn table4(cfg: &SimConfig) -> Table {
    let mut t = Table::new(
        "Table 4: parameters of the simulated system",
        &["resource", "value"],
    );
    let topo = &cfg.topology;
    let scheduler = match cfg.scheduler {
        SchedulerKind::Fcfs => "FCFS",
        SchedulerKind::FrFcfs => "FR-FCFS",
        SchedulerKind::ParBs => "PAR-BS",
    };
    let rows: Vec<(&str, String)> = vec![
        ("memory channels / MCs", topo.channels.to_string()),
        ("ranks per channel", topo.ranks_per_channel.to_string()),
        ("banks per rank", topo.banks_per_rank.to_string()),
        ("rows per bank", topo.rows_per_bank.to_string()),
        ("row size", format!("{} B", topo.row_bytes)),
        (
            "total capacity",
            format!("{} GiB", topo.capacity_bytes() >> 30),
        ),
        ("module type", "DDR4-2400 (RDIMM, RCD per DIMM)".to_string()),
        ("request queue", format!("{} entries", cfg.queue_capacity)),
        ("scheduling policy", scheduler.to_string()),
        ("DRAM page policy", format!("{:?}", cfg.page_policy)),
        ("RH threshold N_th", cfg.fault_n_th.to_string()),
        ("TWiCe thRH", cfg.params.th_rh.to_string()),
    ];
    for (k, v) in rows {
        t.row(&[k.to_string(), v]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_system_matches_table4() {
        let t = table4(&SimConfig::paper_default());
        let s = t.to_string();
        assert!(s.contains("DDR4-2400"));
        assert!(s.contains("PAR-BS"));
        assert!(s.contains("64 entries"));
        assert!(s.contains("MinimalistOpen"));
        assert!(s.contains("131072"));
        assert!(s.contains("64 GiB"));
    }
}
