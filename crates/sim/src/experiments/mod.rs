//! One module per paper table/figure (see DESIGN.md's experiment index).
//!
//! Each module exposes a function that computes its experiment and
//! renders a [`crate::report::Table`]; the bench harness in
//! `twice-bench` prints these, and EXPERIMENTS.md records the outcomes
//! against the paper's numbers.

pub mod ablation;
pub mod capacity;
pub mod chaos;
pub mod ecc;
pub mod fig7;
pub mod latency;
pub mod storage;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
