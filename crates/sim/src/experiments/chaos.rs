//! E4 (extension): chaos campaign — TWiCe under injected hardware faults.
//!
//! The paper's §4.3 safety proof assumes ideal hardware: counter SRAM
//! never flips, ARR conversions survive the command bus, the nack-resend
//! loop converges. This campaign violates those assumptions on purpose
//! (see `twice_common::fault`) and asks the only question that matters:
//! does `twice_dram::hammer` ever record a bit flip?
//!
//! Two engine configurations face the same seeded fault stream:
//!
//! * **hardened** — per-entry parity with scrub-on-prune; a corrupted
//!   entry fails safe (evicted with an immediate ARR, like `TableFull`),
//!   and the MC opens a PARA fallback window while corruption is being
//!   reported.
//! * **unhardened** — the paper's original, fault-oblivious design: an
//!   SEU silently corrupts the activation count, and an adversarial
//!   (`Hottest`) upset stream can hold the hot counter below `th_rh`
//!   forever, so the ARR never fires and the victim rows accumulate the
//!   full `N_th` disturbance.

use crate::config::SimConfig;
use crate::report::Table;
use crate::runner::{build_trace, WorkloadKind};
use crate::system::System;
use twice::TableOrganization;
use twice_common::fault::{FaultKind, FaultPlan, FaultTargeting};
use twice_mitigations::DefenseKind;

/// One chaos run's outcome.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Human-readable fault-configuration label.
    pub label: String,
    /// Whether the engine's parity/scrub hardening was on.
    pub scrubbing: bool,
    /// Counter-SRAM SEUs the engine's injector landed.
    pub seu_injected: u64,
    /// Parity failures the hardened engine caught (0 when unhardened —
    /// without the parity column the damage is invisible).
    pub corruption_events: u64,
    /// ARRs plus every other defense-driven extra activation.
    pub additional_acts: u64,
    /// Protocol nacks (ARR in progress).
    pub protocol_nacks: u64,
    /// Chaos-injected spurious nacks.
    pub injected_nacks: u64,
    /// MC-side PARA fallback windows opened on corruption reports.
    pub fallback_windows: u64,
    /// Whether the run died with `RetryExhausted` instead of finishing.
    pub retry_exhausted: bool,
    /// Bit flips recorded by the DRAM disturbance model. The whole point.
    pub bit_flips: usize,
}

/// Runs one S3 hammer campaign under `plan` with the TWiCe hardening
/// toggled by `scrubbing`; a PARA-0.01 fallback stands by in the MC.
pub fn chaos_run(
    cfg_base: &SimConfig,
    label: &str,
    plan: FaultPlan,
    scrubbing: bool,
    requests: u64,
) -> ChaosOutcome {
    let mut cfg = cfg_base.clone();
    cfg.fault_plan = plan;
    cfg.twice_scrubbing = scrubbing;
    cfg.para_fallback = Some(0.01);
    let mut system = System::new(
        &cfg,
        DefenseKind::Twice(TableOrganization::FullyAssociative),
    );
    let trace = build_trace(&cfg, &WorkloadKind::S3, requests);
    let retry_exhausted = system.run(trace).is_err();
    let m = system.metrics("s3-chaos");
    let ctrls = system.controllers();
    ChaosOutcome {
        label: label.to_string(),
        scrubbing,
        seu_injected: ctrls.iter().map(|c| c.defense_faults_injected()).sum(),
        corruption_events: ctrls.iter().map(|c| c.corruption_events()).sum(),
        additional_acts: m.additional_acts,
        protocol_nacks: ctrls
            .iter()
            .flat_map(|c| c.rank_stats())
            .map(|s| s.nacks)
            .sum(),
        injected_nacks: ctrls
            .iter()
            .flat_map(|c| c.rank_stats())
            .map(|s| s.injected_nacks)
            .sum(),
        fallback_windows: ctrls.iter().map(|c| c.fallback_windows()).sum(),
        retry_exhausted,
        bit_flips: m.bit_flips,
    }
}

/// The campaign's fault grid: an SEU-rate sweep (random targeting), the
/// adversarial hottest-counter stream, and a command-bus gauntlet
/// (spurious nacks + dropped/duplicated ARRs + refresh postponement +
/// jitter), each against both engine configurations.
fn fault_grid(seed: u64) -> Vec<(String, FaultPlan)> {
    let mut grid = Vec::new();
    for rate in [1e-4, 1e-3, 1e-2] {
        grid.push((
            format!("seu {rate:.0e} random"),
            FaultPlan::with_seed(seed).rate(FaultKind::CounterBitFlip, rate),
        ));
    }
    grid.push((
        "seu 1e-2 hottest".to_string(),
        FaultPlan::with_seed(seed)
            .rate(FaultKind::CounterBitFlip, 1e-2)
            .targeting(FaultTargeting::Hottest),
    ));
    grid.push((
        "bus gauntlet".to_string(),
        FaultPlan::with_seed(seed)
            .rate(FaultKind::SpuriousNack, 1e-3)
            .rate(FaultKind::ArrDrop, 1e-2)
            .rate(FaultKind::ArrDuplicate, 1e-2)
            .rate(FaultKind::RefreshPostpone, 1e-2)
            .rate(FaultKind::TimingJitter, 1e-3),
    ));
    grid
}

/// Runs the full campaign and renders the report table.
pub fn chaos_experiment(cfg_base: &SimConfig, requests: u64) -> (Table, Vec<ChaosOutcome>) {
    let mut table = Table::new(
        "E4 (extension): fault-injection campaign, S3 hammer",
        &[
            "faults",
            "engine",
            "SEUs landed",
            "corruption caught",
            "extra ACTs",
            "nacks (proto/injected)",
            "fallback windows",
            "retry exhausted",
            "bit flips",
        ],
    );
    let mut out = Vec::new();
    for (label, plan) in fault_grid(cfg_base.seed ^ 0xC4A0) {
        for scrubbing in [true, false] {
            let o = chaos_run(cfg_base, &label, plan.clone(), scrubbing, requests);
            table.row(&[
                o.label.clone(),
                if o.scrubbing {
                    "hardened"
                } else {
                    "unhardened"
                }
                .to_string(),
                o.seu_injected.to_string(),
                o.corruption_events.to_string(),
                o.additional_acts.to_string(),
                format!("{}/{}", o.protocol_nacks, o.injected_nacks),
                o.fallback_windows.to_string(),
                if o.retry_exhausted { "YES" } else { "no" }.to_string(),
                o.bit_flips.to_string(),
            ]);
            out.push(o);
        }
    }
    (table, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardened_twice_survives_the_full_grid() {
        let cfg = SimConfig::fast_test();
        let (table, runs) = chaos_experiment(&cfg, 60_000);
        assert_eq!(table.len(), runs.len());
        for o in runs.iter().filter(|o| o.scrubbing) {
            assert_eq!(o.bit_flips, 0, "hardened engine must stay safe: {o:?}");
            assert!(
                !o.retry_exhausted,
                "retry budget must absorb the grid: {o:?}"
            );
        }
        // The adversarial stream demonstrably defeats the unhardened
        // engine — the hot counter never reaches th_rh, so no ARR fires
        // and the victims take the full N_th disturbance.
        let adversarial = runs
            .iter()
            .find(|o| o.label.contains("hottest") && !o.scrubbing)
            .unwrap();
        assert!(
            adversarial.bit_flips > 0,
            "the unhardened engine must lose the hot counter: {adversarial:?}"
        );
        // Same fault stream, hardened: every upset is caught by parity.
        let defended = runs
            .iter()
            .find(|o| o.label.contains("hottest") && o.scrubbing)
            .unwrap();
        assert!(defended.seu_injected > 0, "faults must actually land");
        assert!(
            defended.corruption_events > 0,
            "parity must catch the upsets: {defended:?}"
        );
        assert!(
            defended.fallback_windows > 0,
            "corruption reports must open PARA fallback windows: {defended:?}"
        );
    }

    #[test]
    fn bus_gauntlet_exercises_the_nack_path_without_divergence() {
        let cfg = SimConfig::fast_test();
        let plan = FaultPlan::with_seed(7)
            .rate(FaultKind::SpuriousNack, 1e-3)
            .rate(FaultKind::TimingJitter, 1e-3);
        let o = chaos_run(&cfg, "nack+jitter", plan, true, 30_000);
        assert!(o.injected_nacks > 0, "spurious nacks must land: {o:?}");
        assert!(
            !o.retry_exhausted,
            "transient nacks must be absorbed: {o:?}"
        );
        assert_eq!(o.bit_flips, 0);
    }
}
