//! E4 (extension): chaos campaign — TWiCe under injected hardware faults.
//!
//! The paper's §4.3 safety proof assumes ideal hardware: counter SRAM
//! never flips, ARR conversions survive the command bus, the nack-resend
//! loop converges. This campaign violates those assumptions on purpose
//! (see `twice_common::fault`) and asks the only question that matters:
//! does `twice_dram::hammer` ever record a bit flip?
//!
//! Two engine configurations face the same seeded fault stream:
//!
//! * **hardened** — per-entry parity with scrub-on-prune; a corrupted
//!   entry fails safe (evicted with an immediate ARR, like `TableFull`),
//!   and the MC opens a PARA fallback window while corruption is being
//!   reported.
//! * **unhardened** — the paper's original, fault-oblivious design: an
//!   SEU silently corrupts the activation count, and an adversarial
//!   (`Hottest`) upset stream can hold the hot counter below `th_rh`
//!   forever, so the ARR never fires and the victim rows accumulate the
//!   full `N_th` disturbance.
//!
//! The grid is executed by the crash-safe supervisor in
//! [`crate::campaign`]: each cell runs in epochs under `catch_unwind`
//! with optional watchdog budgets, and completed cells can be journaled
//! so an interrupted campaign resumes instead of restarting.

use crate::checkpoint::ResumableRun;
use crate::config::SimConfig;
use crate::metrics::CampaignTotals;
use crate::outcome::{Cell, CellError};
use crate::report::Table;
use crate::runner::WorkloadKind;
use crate::system::System;
use twice::TableOrganization;
use twice_common::fault::{FaultKind, FaultPlan, FaultTargeting};
use twice_mitigations::DefenseKind;

/// One chaos run's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOutcome {
    /// Human-readable fault-configuration label.
    pub label: String,
    /// Whether the engine's parity/scrub hardening was on.
    pub scrubbing: bool,
    /// Counter-SRAM SEUs the engine's injector landed.
    pub seu_injected: u64,
    /// Parity failures the hardened engine caught (0 when unhardened —
    /// without the parity column the damage is invisible).
    pub corruption_events: u64,
    /// ARRs plus every other defense-driven extra activation.
    pub additional_acts: u64,
    /// Protocol nacks (ARR in progress).
    pub protocol_nacks: u64,
    /// Chaos-injected spurious nacks.
    pub injected_nacks: u64,
    /// MC-side PARA fallback windows opened on corruption reports.
    pub fallback_windows: u64,
    /// Whether the run died with `RetryExhausted` instead of finishing.
    pub retry_exhausted: bool,
    /// Bit flips recorded by the DRAM disturbance model. The whole point.
    pub bit_flips: usize,
    /// The cell's final [`StateDigest`](twice_common::snapshot::StateDigest)
    /// over the complete simulator state. Journaled with the outcome, so
    /// a resumed campaign — and the parallel-equivalence test — can
    /// compare cells bit for bit, not just by their summary counters.
    pub digest: u64,
}

impl ChaosOutcome {
    /// This cell's contribution to the campaign-level aggregates. Each
    /// worker produces its own [`CampaignTotals`] per cell; the campaign
    /// merges them at collection time instead of sharing counters across
    /// threads.
    pub fn totals(&self) -> CampaignTotals {
        CampaignTotals {
            cells: 1,
            requests: 0,
            normal_acts: 0,
            additional_acts: self.additional_acts,
            detections: 0,
            bit_flips: self.bit_flips as u64,
            nacks: self.protocol_nacks + self.injected_nacks,
            energy_pj: 0,
        }
    }
}

/// The defense every chaos cell runs: the paper's fully-associative
/// TWiCe (hardening is toggled per cell through the config).
pub fn chaos_defense() -> DefenseKind {
    DefenseKind::Twice(TableOrganization::FullyAssociative)
}

/// Derives one cell's configuration: the fault plan under test, the
/// hardening toggle, and the standing PARA-0.01 MC fallback.
pub fn cell_config(cfg_base: &SimConfig, plan: FaultPlan, scrubbing: bool) -> SimConfig {
    let mut cfg = cfg_base.clone();
    cfg.fault_plan = plan;
    cfg.twice_scrubbing = scrubbing;
    cfg.para_fallback = Some(0.01);
    cfg
}

/// Extracts a [`ChaosOutcome`] from a finished (or retry-exhausted)
/// cell's system state.
pub(crate) fn collect_outcome(
    system: &System,
    label: &str,
    scrubbing: bool,
    retry_exhausted: bool,
    digest: u64,
) -> ChaosOutcome {
    let m = system.metrics("s3-chaos");
    let ctrls = system.controllers();
    ChaosOutcome {
        label: label.to_string(),
        scrubbing,
        seu_injected: ctrls.iter().map(|c| c.defense_faults_injected()).sum(),
        corruption_events: ctrls.iter().map(|c| c.corruption_events()).sum(),
        additional_acts: m.additional_acts,
        protocol_nacks: ctrls
            .iter()
            .flat_map(|c| c.rank_stats())
            .map(|s| s.nacks)
            .sum(),
        injected_nacks: ctrls
            .iter()
            .flat_map(|c| c.rank_stats())
            .map(|s| s.injected_nacks)
            .sum(),
        fallback_windows: ctrls.iter().map(|c| c.fallback_windows()).sum(),
        retry_exhausted,
        bit_flips: m.bit_flips,
        digest,
    }
}

/// Runs one S3 hammer campaign under `plan` with the TWiCe hardening
/// toggled by `scrubbing`; a PARA-0.01 fallback stands by in the MC.
///
/// # Errors
///
/// Typed [`CellError`]s for malformed configuration; an exhausted retry
/// budget is chaos *data*, recorded in the outcome instead.
pub fn chaos_run(
    cfg_base: &SimConfig,
    label: &str,
    plan: FaultPlan,
    scrubbing: bool,
    requests: u64,
) -> Result<ChaosOutcome, CellError> {
    let cfg = cell_config(cfg_base, plan, scrubbing);
    let mut run = ResumableRun::new(&cfg, &WorkloadKind::S3, chaos_defense(), requests)?;
    let retry_exhausted = run.run_to_completion(4096).is_err();
    Ok(collect_outcome(
        run.system(),
        label,
        scrubbing,
        retry_exhausted,
        run.digest(),
    ))
}

/// The campaign's fault grid: an SEU-rate sweep (random targeting), the
/// adversarial hottest-counter stream, and a command-bus gauntlet
/// (spurious nacks + dropped/duplicated ARRs + refresh postponement +
/// jitter), each against both engine configurations.
pub fn fault_grid(seed: u64) -> Vec<(String, FaultPlan)> {
    let mut grid = Vec::new();
    for rate in [1e-4, 1e-3, 1e-2] {
        grid.push((
            format!("seu {rate:.0e} random"),
            FaultPlan::with_seed(seed).rate(FaultKind::CounterBitFlip, rate),
        ));
    }
    grid.push((
        "seu 1e-2 hottest".to_string(),
        FaultPlan::with_seed(seed)
            .rate(FaultKind::CounterBitFlip, 1e-2)
            .targeting(FaultTargeting::Hottest),
    ));
    grid.push((
        "bus gauntlet".to_string(),
        FaultPlan::with_seed(seed)
            .rate(FaultKind::SpuriousNack, 1e-3)
            .rate(FaultKind::ArrDrop, 1e-2)
            .rate(FaultKind::ArrDuplicate, 1e-2)
            .rate(FaultKind::RefreshPostpone, 1e-2)
            .rate(FaultKind::TimingJitter, 1e-3),
    ));
    grid
}

/// Renders the campaign table: completed cells show their measurements,
/// failed cells degrade to a structured error row instead of aborting
/// the report.
pub(crate) fn render_table<'a>(cells: impl IntoIterator<Item = &'a Cell<ChaosOutcome>>) -> Table {
    let mut table = Table::new(
        "E4 (extension): fault-injection campaign, S3 hammer",
        &[
            "faults",
            "engine",
            "SEUs landed",
            "corruption caught",
            "extra ACTs",
            "nacks (proto/injected)",
            "fallback windows",
            "retry exhausted",
            "bit flips",
        ],
    );
    for cell in cells {
        match &cell.result {
            Ok(o) => {
                table.row(&[
                    o.label.clone(),
                    if o.scrubbing {
                        "hardened"
                    } else {
                        "unhardened"
                    }
                    .to_string(),
                    o.seu_injected.to_string(),
                    o.corruption_events.to_string(),
                    o.additional_acts.to_string(),
                    format!("{}/{}", o.protocol_nacks, o.injected_nacks),
                    o.fallback_windows.to_string(),
                    if o.retry_exhausted { "YES" } else { "no" }.to_string(),
                    o.bit_flips.to_string(),
                ]);
            }
            Err(e) => {
                let (label, engine) = cell.cell.rsplit_once('/').unwrap_or((&cell.cell[..], "?"));
                table.row(&[
                    label.to_string(),
                    engine.to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    format!("error: {e}"),
                ]);
            }
        }
    }
    table
}

/// Runs the full campaign in-process and renders the report table.
///
/// # Errors
///
/// Only journal I/O can fail, and this entry point never journals (no
/// directory), so an error here indicates a campaign-plumbing bug.
pub fn chaos_experiment(
    cfg_base: &SimConfig,
    requests: u64,
) -> std::io::Result<(Table, Vec<Cell<ChaosOutcome>>)> {
    let cc = crate::campaign::CampaignConfig::new(requests);
    let report = crate::campaign::chaos_campaign(cfg_base, &cc)?;
    Ok((
        report.table,
        report.cells.into_iter().map(|c| c.outcome).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::require;

    #[test]
    fn hardened_twice_survives_the_full_grid() {
        let cfg = SimConfig::fast_test();
        let (table, cells) = chaos_experiment(&cfg, 60_000).expect("no journal directory");
        assert_eq!(table.len(), cells.len());
        for cell in &cells {
            assert!(
                cell.result.is_ok(),
                "no cell may fail: {:?}",
                cell.error_line()
            );
        }
        for o in crate::outcome::completed(&cells).filter(|o| o.scrubbing) {
            assert_eq!(o.bit_flips, 0, "hardened engine must stay safe: {o:?}");
            assert!(
                !o.retry_exhausted,
                "retry budget must absorb the grid: {o:?}"
            );
        }
        // The adversarial stream demonstrably defeats the unhardened
        // engine — the hot counter never reaches th_rh, so no ARR fires
        // and the victims take the full N_th disturbance.
        let adversarial = require(&cells, "unhardened hottest cell", |o| {
            o.label.contains("hottest") && !o.scrubbing
        })
        .unwrap_or_else(|e| panic!("{e}"));
        assert!(
            adversarial.bit_flips > 0,
            "the unhardened engine must lose the hot counter: {adversarial:?}"
        );
        // Same fault stream, hardened: every upset is caught by parity.
        let defended = require(&cells, "hardened hottest cell", |o| {
            o.label.contains("hottest") && o.scrubbing
        })
        .unwrap_or_else(|e| panic!("{e}"));
        assert!(defended.seu_injected > 0, "faults must actually land");
        assert!(
            defended.corruption_events > 0,
            "parity must catch the upsets: {defended:?}"
        );
        assert!(
            defended.fallback_windows > 0,
            "corruption reports must open PARA fallback windows: {defended:?}"
        );
    }

    #[test]
    fn bus_gauntlet_exercises_the_nack_path_without_divergence() {
        let cfg = SimConfig::fast_test();
        let plan = FaultPlan::with_seed(7)
            .rate(FaultKind::SpuriousNack, 1e-3)
            .rate(FaultKind::TimingJitter, 1e-3);
        let o = chaos_run(&cfg, "nack+jitter", plan, true, 30_000).expect("valid cell");
        assert!(o.injected_nacks > 0, "spurious nacks must land: {o:?}");
        assert!(
            !o.retry_exhausted,
            "transient nacks must be absorbed: {o:?}"
        );
        assert_eq!(o.bit_flips, 0);
    }
}
