//! Table 2: TWiCe definitions and typical values.

use crate::report::Table;
use twice::TwiceParams;

/// Renders Table 2 for `params`, marking which rows match the paper's
/// published values when `params` is the paper default.
pub fn table2(params: &TwiceParams) -> Table {
    let mut t = Table::new(
        "Table 2: definition and typical values for TWiCe",
        &["term", "definition", "value", "paper"],
    );
    let rows: Vec<(&str, &str, String, &str)> = vec![
        (
            "tREFW",
            "refresh window",
            params.timings.t_refw.to_string(),
            "64 ms",
        ),
        (
            "tREFI",
            "refresh interval",
            params.timings.t_refi.to_string(),
            "7.8 us",
        ),
        (
            "tRFC",
            "refresh command time",
            params.timings.t_rfc.to_string(),
            "350 ns",
        ),
        (
            "tRC",
            "ACT to ACT interval",
            params.timings.t_rc.to_string(),
            "45 ns",
        ),
        (
            "thRH",
            "RH detection threshold",
            params.th_rh.to_string(),
            "32,768",
        ),
        (
            "thPI",
            "pruning interval threshold",
            params.th_pi().to_string(),
            "4",
        ),
        (
            "maxact",
            "max # of ACTs during PI",
            params.max_act().to_string(),
            "165",
        ),
        (
            "maxlife",
            "max life of a row in PI",
            params.max_life().to_string(),
            "8,192",
        ),
    ];
    for (term, def, value, paper) in rows {
        t.row(&[term.to_string(), def.to_string(), value, paper.to_string()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_reproduce_every_derived_value() {
        let p = TwiceParams::paper_default();
        assert_eq!(p.th_pi(), 4);
        assert_eq!(p.max_act(), 165);
        assert_eq!(p.max_life(), 8_192);
        let t = table2(&p);
        assert_eq!(t.len(), 8);
        let rendered = t.to_string();
        assert!(rendered.contains("165"));
        assert!(rendered.contains("8192"));
        assert!(rendered.contains("32768"));
    }
}
