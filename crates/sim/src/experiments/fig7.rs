//! Figure 7: relative number of additional ACTs per defense.
//!
//! 7(a) covers the multi-programmed/multi-threaded workloads (with a
//! SPECrate average), 7(b) the synthetic S1/S2/S3 patterns. Both sweep
//! the paper's defense lineup: PARA-0.001, PARA-0.002, CBT-256, TWiCe.
//!
//! The expected *shape* (what "reproduced" means here): TWiCe adds zero
//! ACTs on every benign workload and ~0.006% on S3; PARA-p adds ~p
//! everywhere; CBT is small on benign workloads but worst of all on S2
//! and ~0.39% on S3.

use crate::config::SimConfig;
use crate::metrics::RunMetrics;
use crate::report::{percent, Table};
use crate::runner::{run, try_run_batch, RunSpec, WorkloadKind};
use twice_mitigations::DefenseKind;

/// Unwraps one batched run with [`run`]'s exact panic semantics, so the
/// pooled sweeps fail the same way the serial loops always did.
fn expect_run(result: Option<Result<RunMetrics, crate::outcome::CellError>>) -> RunMetrics {
    result
        .expect("batch yields one result per spec")
        .unwrap_or_else(|e| panic!("{e}; use try_run for fallible cells"))
}

/// The result of one Figure 7 sweep.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Rendered table.
    pub table: Table,
    /// Raw metrics: `rows[workload][defense]` in lineup order.
    pub rows: Vec<(String, Vec<RunMetrics>)>,
    /// The defense lineup labels.
    pub defenses: Vec<String>,
}

impl Fig7Result {
    /// The measured ratio for (workload, defense), if present.
    pub fn ratio(&self, workload: &str, defense_contains: &str) -> Option<f64> {
        let d = self
            .defenses
            .iter()
            .position(|d| d.contains(defense_contains))?;
        let (_, metrics) = self.rows.iter().find(|(w, _)| w == workload)?;
        Some(metrics[d].additional_act_ratio())
    }
}

fn sweep(
    cfg: &SimConfig,
    title: &str,
    workloads: &[(String, WorkloadKind)],
    requests: u64,
    with_average: bool,
    jobs: usize,
) -> Fig7Result {
    let lineup = DefenseKind::figure7_lineup();
    let defenses: Vec<String> = lineup.iter().map(|d| d.to_string()).collect();
    let specs: Vec<RunSpec> = workloads
        .iter()
        .flat_map(|(_, w)| lineup.iter().map(|&d| (w.clone(), d, requests)))
        .collect();
    let mut results = try_run_batch(cfg, &specs, jobs).into_iter();
    let mut rows: Vec<(String, Vec<RunMetrics>)> = Vec::new();
    for (label, _) in workloads {
        let metrics: Vec<RunMetrics> = lineup.iter().map(|_| expect_run(results.next())).collect();
        rows.push((label.clone(), metrics));
    }
    let mut headers: Vec<&str> = vec!["workload"];
    headers.extend(defenses.iter().map(String::as_str));
    let mut table = Table::new(title, &headers);
    for (label, metrics) in &rows {
        let mut cells = vec![label.clone()];
        cells.extend(metrics.iter().map(|m| percent(m.additional_act_ratio())));
        table.row(&cells);
    }
    if with_average && !rows.is_empty() {
        let mut cells = vec!["Average".to_string()];
        for d in 0..defenses.len() {
            let avg = rows
                .iter()
                .map(|(_, m)| m[d].additional_act_ratio())
                .sum::<f64>()
                / rows.len() as f64;
            cells.push(percent(avg));
        }
        table.row(&cells);
    }
    Fig7Result {
        table,
        rows,
        defenses,
    }
}

/// Figure 7(a): the benign workloads. `spec_sample` picks which SPECrate
/// applications to run (their mean is reported as `SPECrate(avg)`);
/// `requests` is the per-run trace length.
pub fn figure7a(cfg: &SimConfig, spec_sample: &[&'static str], requests: u64) -> Fig7Result {
    figure7a_jobs(cfg, spec_sample, requests, 1)
}

/// [`figure7a`] across a worker pool. The SPECrate accumulation keeps
/// its serial iteration order — only the underlying runs are pooled —
/// so the rendered figure is identical for every `jobs` value.
pub fn figure7a_jobs(
    cfg: &SimConfig,
    spec_sample: &[&'static str],
    requests: u64,
    jobs: usize,
) -> Fig7Result {
    let lineup = DefenseKind::figure7_lineup();
    // SPECrate average across the sampled applications.
    let mut spec_avg: Vec<RunMetrics> = Vec::new();
    if !spec_sample.is_empty() {
        let specs: Vec<RunSpec> = lineup
            .iter()
            .flat_map(|&kind| {
                spec_sample
                    .iter()
                    .map(move |name| (WorkloadKind::SpecRate(name), kind, requests))
            })
            .collect();
        let mut results = try_run_batch(cfg, &specs, jobs).into_iter();
        for (d, _) in lineup.iter().enumerate() {
            let mut acc: Option<RunMetrics> = None;
            for _ in spec_sample {
                let m = expect_run(results.next());
                acc = Some(match acc {
                    None => m,
                    Some(mut a) => {
                        a.normal_acts += m.normal_acts;
                        a.additional_acts += m.additional_acts;
                        a.detections += m.detections;
                        a.bit_flips += m.bit_flips;
                        a.requests += m.requests;
                        a
                    }
                });
            }
            let mut m = acc.expect("non-empty sample");
            m.workload = "SPECrate(avg)".to_string();
            debug_assert_eq!(d, spec_avg.len());
            spec_avg.push(m);
        }
    }
    let workloads: Vec<(String, WorkloadKind)> = WorkloadKind::figure7a()
        .into_iter()
        .map(|w| (w.to_string(), w))
        .collect();
    let mut result = sweep(
        cfg,
        "Figure 7(a): additional ACTs on multi-programmed and multi-threaded workloads",
        &workloads,
        requests,
        false,
        jobs,
    );
    if !spec_avg.is_empty() {
        result
            .rows
            .insert(0, ("SPECrate(avg)".to_string(), spec_avg));
    }
    // Re-render the table including SPECrate(avg) and the Average row.
    let mut headers: Vec<&str> = vec!["workload"];
    headers.extend(result.defenses.iter().map(String::as_str));
    let mut table = Table::new(
        "Figure 7(a): additional ACTs on multi-programmed and multi-threaded workloads",
        &headers,
    );
    for (label, metrics) in &result.rows {
        let mut cells = vec![label.clone()];
        cells.extend(metrics.iter().map(|m| percent(m.additional_act_ratio())));
        table.row(&cells);
    }
    let mut cells = vec!["Average".to_string()];
    for d in 0..result.defenses.len() {
        let avg = result
            .rows
            .iter()
            .map(|(_, m)| m[d].additional_act_ratio())
            .sum::<f64>()
            / result.rows.len() as f64;
        cells.push(percent(avg));
    }
    table.row(&cells);
    result.table = table;
    result
}

/// An extended sweep (beyond the paper): every defense in the
/// workspace — including PRoHIT, CRA, the TRR model, Graphene, and the
/// oracle — on S1 and S3.
pub fn figure7_extended(cfg: &SimConfig, requests: u64) -> Fig7Result {
    use twice::TableOrganization;
    let lineup = [
        DefenseKind::Para { p: 0.001 },
        DefenseKind::Prohit { p: 0.001 },
        DefenseKind::Cbt { counters: 256 },
        DefenseKind::Cra { cache_entries: 512 },
        DefenseKind::Trr { entries: 16 },
        DefenseKind::Graphene,
        DefenseKind::Twice(TableOrganization::Split),
        DefenseKind::Oracle,
    ];
    let defenses: Vec<String> = lineup.iter().map(|d| d.to_string()).collect();
    let workloads = [
        ("S1".to_string(), WorkloadKind::S1),
        ("S3".to_string(), WorkloadKind::S3),
    ];
    let mut rows = Vec::new();
    for (label, w) in &workloads {
        let metrics: Vec<RunMetrics> = lineup
            .iter()
            .map(|&d| run(cfg, w.clone(), d, requests))
            .collect();
        rows.push((label.clone(), metrics));
    }
    let mut headers: Vec<&str> = vec!["workload"];
    headers.extend(defenses.iter().map(String::as_str));
    let mut table = Table::new("Extended defense sweep (additional-ACT ratio)", &headers);
    for (label, metrics) in &rows {
        let mut cells = vec![label.clone()];
        cells.extend(metrics.iter().map(|m| percent(m.additional_act_ratio())));
        table.row(&cells);
    }
    Fig7Result {
        table,
        rows,
        defenses,
    }
}

/// Figure 7(b): the synthetic workloads.
pub fn figure7b(cfg: &SimConfig, requests: u64) -> Fig7Result {
    figure7b_jobs(cfg, requests, 1)
}

/// [`figure7b`] across a worker pool; identical output for every `jobs`.
pub fn figure7b_jobs(cfg: &SimConfig, requests: u64, jobs: usize) -> Fig7Result {
    let workloads: Vec<(String, WorkloadKind)> = WorkloadKind::figure7b()
        .into_iter()
        .map(|w| (w.to_string(), w))
        .collect();
    sweep(
        cfg,
        "Figure 7(b): additional ACTs on synthetic workloads",
        &workloads,
        requests,
        false,
        jobs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down Figure 7(b): the shape must match the paper even on
    /// the fast-test system.
    #[test]
    fn figure7b_shape_holds_on_fast_system() {
        let cfg = SimConfig::fast_test();
        let result = figure7b(&cfg, 60_000);
        assert_eq!(result.rows.len(), 3);

        // TWiCe: zero on S1, tiny on S3 (2 extra ACTs per thRH).
        let twice_s1 = result.ratio("S1", "TWiCe").unwrap();
        let twice_s3 = result.ratio("S3", "TWiCe").unwrap();
        assert_eq!(twice_s1, 0.0, "TWiCe must not fire on random traffic");
        assert!(twice_s3 > 0.0, "TWiCe must ARR the S3 hammer");
        assert!(twice_s3 < 0.02, "TWiCe S3 overhead {twice_s3}");

        // PARA sits at ~p regardless of pattern.
        for w in ["S1", "S2", "S3"] {
            let p1 = result.ratio(w, "PARA-0.001").unwrap();
            assert!((0.0..0.004).contains(&p1), "{w}: PARA-0.001 at {p1}");
        }
        let p1 = result.ratio("S1", "PARA-0.001").unwrap();
        let p2 = result.ratio("S1", "PARA-0.002").unwrap();
        assert!(p2 > p1, "doubling p must raise PARA's overhead");

        // CBT refreshes whole leaf groups where TWiCe's ARR touches only
        // 2 rows, so CBT must cost more on S3. (The full CBT-vs-S2 blowup
        // needs paper-scale windows — the fast window cannot fit the
        // counter-exhaustion phase — and is exercised by the paper-scale
        // fig7b bench, recorded in EXPERIMENTS.md.)
        let cbt_s3 = result.ratio("S3", "CBT").unwrap();
        let twice_s2 = result.ratio("S2", "TWiCe").unwrap();
        assert_eq!(twice_s2, 0.0, "S2 never hammers one row past thRH");
        assert!(cbt_s3 > twice_s3, "CBT S3 {cbt_s3} vs TWiCe {twice_s3}");
    }

    #[test]
    fn figure7a_benign_workloads_never_trip_twice() {
        // The default fast-test thRH (256) is below the ~512 consecutive
        // activations a row-sized FFT sweep legitimately produces, so
        // for the benign sweep use a threshold with paper-like headroom
        // relative to burst length (at paper scale: 512 << 32768).
        let mut cfg = SimConfig::fast_test();
        cfg.params.th_rh = 2_048;
        cfg.params.n_th = 8_192;
        cfg.fault_n_th = 8_192;
        let result = figure7a(&cfg, &["mcf", "libquantum"], 8_000);
        // Every workload row exists plus SPECrate(avg).
        assert_eq!(result.rows.len(), 7);
        for (w, metrics) in &result.rows {
            let twice = metrics.last().expect("lineup has TWiCe last");
            assert_eq!(
                twice.additional_acts, 0,
                "TWiCe fired on benign workload {w}"
            );
            assert_eq!(twice.detections, 0);
        }
    }
}
