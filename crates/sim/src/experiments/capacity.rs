//! §4.4: the counter-table capacity bound (experiment B1).
//!
//! Three views of the same number: the closed-form carry-exact bound,
//! the paper's reported figure, and an empirical maximum from (a) the
//! front-loading adversary of `twice::bound` and (b) a live TWiCe engine
//! fed a high-pressure stream through the real simulator.

use crate::config::SimConfig;
use crate::report::Table;
use crate::runner::{run, WorkloadKind};
use twice::{CapacityBound, TwiceParams};
use twice_common::{BankId, RowHammerDefense, RowId, Time};

/// The capacity experiment's outcome.
#[derive(Debug, Clone)]
pub struct CapacityResult {
    /// The analytic bound.
    pub bound: CapacityBound,
    /// Adversarial-schedule occupancy (must be ≤ bound).
    pub adversarial_occupancy: usize,
    /// Rendered table.
    pub table: Table,
}

/// Runs B1 for `params`, simulating the adversary for `pis` pruning
/// intervals.
pub fn capacity(params: &TwiceParams, pis: u64) -> CapacityResult {
    let bound = CapacityBound::for_params(params);
    let adversarial = twice::bound::adversarial_max_occupancy(params, pis);
    let (paper_total, paper_long, paper_short) = CapacityBound::paper_reported();
    let mut table = Table::new(
        "Capacity bound (paper 4.4): counter entries per bank",
        &["quantity", "ours", "paper"],
    );
    table.row(&[
        "new entries per PI (maxact)".into(),
        bound.new_entries.to_string(),
        "165".into(),
    ]);
    table.row(&[
        "max survivors from earlier PIs".into(),
        bound.survivors.to_string(),
        (paper_total - 165).to_string(),
    ]);
    table.row(&[
        "total capacity".into(),
        bound.total().to_string(),
        paper_total.to_string(),
    ]);
    table.row(&[
        "split: long entries".into(),
        bound.split_long().to_string(),
        paper_long.to_string(),
    ]);
    table.row(&[
        "split: short entries".into(),
        bound.split_short().to_string(),
        paper_short.to_string(),
    ]);
    table.row(&[
        format!("front-loading adversary occupancy ({pis} PIs)"),
        adversarial.to_string(),
        "<= total".into(),
    ]);
    table.row(&[
        "rows per bank (for scale)".into(),
        params.rows_per_bank.to_string(),
        "131,072".into(),
    ]);
    CapacityResult {
        bound,
        adversarial_occupancy: adversarial,
        table,
    }
}

/// Feeds a maximally table-hostile stream through a *live* engine on the
/// real DDR-timed system and reports the high-water occupancy (must stay
/// under the bound — the engine would report `table_full_events`
/// otherwise). Returns `(max_occupancy, table_full_events)`.
pub fn stress_live_engine(cfg: &SimConfig, requests: u64) -> (usize, u64) {
    use twice::{TableOrganization, TwiceEngine};
    // Drive the engine directly with the §4.4 adversary shape: maxact
    // fresh rows per PI plus survivors being fed exactly thPI per PI.
    let params = &cfg.params;
    let mut engine =
        TwiceEngine::with_organization(params.clone(), 1, TableOrganization::FullyAssociative);
    let th_pi = params.th_pi();
    let max_act = params.max_act();
    let keep = (max_act / th_pi).max(1);
    let mut fresh_row = 1_000_000u32 % params.rows_per_bank;
    let mut issued = 0u64;
    'outer: loop {
        // Feed `keep` survivors thPI ACTs each, then fresh rows with the
        // remaining budget.
        let mut budget = max_act;
        for s in 0..keep {
            for _ in 0..th_pi {
                engine.on_activate(BankId(0), RowId(s as u32), Time::ZERO);
                issued += 1;
                budget -= 1;
                if issued >= requests {
                    break 'outer;
                }
            }
        }
        while budget > 0 {
            engine.on_activate(BankId(0), RowId(fresh_row), Time::ZERO);
            fresh_row = (fresh_row + 1) % params.rows_per_bank;
            issued += 1;
            budget -= 1;
            if issued >= requests {
                break 'outer;
            }
        }
        engine.on_auto_refresh(BankId(0), Time::ZERO);
    }
    (engine.max_occupancy_any(), engine.stats().table_full_events)
}

/// The same claim exercised end to end: S1 random traffic through the
/// full simulator never overflows the table.
pub fn no_overflow_under_random_traffic(cfg: &SimConfig, requests: u64) -> bool {
    use twice::TableOrganization;
    use twice_mitigations::DefenseKind;
    let m = run(
        cfg,
        WorkloadKind::S1,
        DefenseKind::Twice(TableOrganization::FullyAssociative),
        requests,
    );
    // A table overflow would surface as a defensive ARR => detections
    // with zero real hammering.
    m.detections == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_capacity_table() {
        let r = capacity(&TwiceParams::paper_default(), 64);
        assert_eq!(r.bound.total(), 556);
        assert!(r.adversarial_occupancy <= r.bound.total());
        assert!(r.table.to_string().contains("553"));
    }

    #[test]
    fn live_engine_stays_under_bound() {
        let cfg = SimConfig::fast_test();
        let bound = CapacityBound::for_params(&cfg.params);
        let (max_occ, full_events) = stress_live_engine(&cfg, 50_000);
        assert!(
            max_occ <= bound.total(),
            "live occupancy {max_occ} exceeded bound {}",
            bound.total()
        );
        assert_eq!(full_events, 0);
        assert!(max_occ > 0);
    }

    #[test]
    fn random_traffic_never_overflows() {
        let cfg = SimConfig::fast_test();
        assert!(no_overflow_under_random_traffic(&cfg, 20_000));
    }
}
