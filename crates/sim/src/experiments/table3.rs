//! Table 3: timing and energy of TWiCe and DRAM operations, plus the
//! §7.1 claims derived from them.

use crate::report::Table;
use twice::cost::TwiceCostModel;
use twice_common::DdrTimings;

/// Renders Table 3 and the derived §7.1 claims.
pub fn table3(model: &TwiceCostModel, timings: &DdrTimings) -> Table {
    let mut t = Table::new(
        "Table 3: timing and energy in operating TWiCe and DRAM devices (45nm model)",
        &["operation", "timing (ns)", "energy (nJ)"],
    );
    let rows = [
        ("fa-TWiCe ACT count", &model.fa_count),
        ("fa-TWiCe table update", &model.fa_update),
        (
            "pa-TWiCe ACT cnt (preferred set)",
            &model.pa_count_preferred,
        ),
        ("pa-TWiCe ACT cnt (all sets)", &model.pa_count_all),
        ("pa-TWiCe table update", &model.pa_update),
        ("DRAM ACT+PRE (tRC)", &model.dram_act_pre),
        ("DRAM refresh/bank (tRFC)", &model.dram_refresh_bank),
    ];
    for (name, op) in rows {
        t.row(&[
            name.to_string(),
            format!("{}", op.latency.as_ns()),
            format!("{:.3}", op.energy_pj as f64 / 1e3),
        ]);
    }
    t.row(&[
        "derived: count hides under tRC".to_string(),
        model.count_hides_under_trc(timings).to_string(),
        String::new(),
    ]);
    t.row(&[
        "derived: update hides under tRFC".to_string(),
        model.update_hides_under_trfc(timings).to_string(),
        String::new(),
    ]);
    t.row(&[
        "derived: fa count energy vs ACT+PRE".to_string(),
        String::new(),
        format!("{:.2}%", model.count_energy_overhead(false) * 100.0),
    ]);
    t.row(&[
        "derived: fa update energy vs refresh".to_string(),
        String::new(),
        format!("{:.2}%", model.update_energy_overhead(false) * 100.0),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_reproduces_paper_numbers_and_claims() {
        let m = TwiceCostModel::table3_45nm();
        let t = table3(&m, &DdrTimings::ddr4_2400());
        let s = t.to_string();
        // The seven measured rows of the paper's Table 3.
        for needle in [
            "0.082", "0.663", "0.037", "0.313", "0.474", "11.490", "132.250",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
        // §7.1 claims.
        assert!(s.contains("count hides under tRC"));
        assert!(m.count_hides_under_trc(&DdrTimings::ddr4_2400()));
        assert!(m.update_hides_under_trfc(&DdrTimings::ddr4_2400()));
        assert!(m.count_energy_overhead(false) < 0.0075);
        assert!(m.update_energy_overhead(false) < 0.0055);
    }
}
