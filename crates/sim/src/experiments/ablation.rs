//! Ablations over TWiCe's design choices (experiments A1–A3, B3).
//!
//! * **A1** — pa-TWiCe vs fa-TWiCe: probe behavior and modeled energy.
//! * **A2** — `thRH` sweep: table capacity vs ARR rate vs safety margin.
//! * **A3** — timing sensitivity: `maxact` and capacity under varying
//!   `tREFI`/`tRC` (the paper's "maxact only changes slightly" claim).
//! * **B3** — ARR protocol overhead: rate bound and per-event cost.

use crate::config::SimConfig;
use crate::report::{percent, Table};
use crate::runner::build_trace;
use crate::runner::WorkloadKind;
use twice::cost::TwiceCostModel;
use twice::pa::PaTwice;
use twice::table::CounterTable;
use twice::{CapacityBound, TwiceParams};
use twice_common::Span;

/// A1: drives a pa-TWiCe table with the per-bank row stream of a
/// workload and reports preferred-set behavior plus modeled energy vs
/// fa-TWiCe.
#[derive(Debug, Clone)]
pub struct PaVsFaResult {
    /// Lookups served by the preferred set only.
    pub preferred_only: u64,
    /// Lookups that probed beyond the preferred set.
    pub extended: u64,
    /// Modeled pa energy (pJ) for the stream.
    pub pa_energy_pj: u64,
    /// Modeled fa energy (pJ) for the stream.
    pub fa_energy_pj: u64,
    /// Rendered table.
    pub table: Table,
}

/// Runs A1 on `workload`'s row stream (bank 0 of channel 0).
pub fn pa_vs_fa(cfg: &SimConfig, workload: WorkloadKind, requests: u64) -> PaVsFaResult {
    let bound = CapacityBound::for_params(&cfg.params);
    let mut pa = PaTwice::with_capacity_64way(bound.total());
    let th_pi = cfg.params.th_pi();
    let max_act = cfg.params.max_act();
    let mut acts = 0u64;
    for (_, access) in build_trace(cfg, &workload, requests) {
        if access.channel.0 != 0 || access.rank.0 != 0 || access.bank != 0 {
            continue;
        }
        pa.record_act(access.row);
        acts += 1;
        if acts.is_multiple_of(max_act) {
            pa.prune(th_pi);
        }
    }
    let stats = pa.stats();
    let model = TwiceCostModel::table3_45nm();
    let pa_energy = stats.preferred_only * model.pa_count_preferred.energy_pj
        + stats.extended * model.pa_count_all.energy_pj;
    let fa_energy = (stats.preferred_only + stats.extended) * model.fa_count.energy_pj;
    let mut table = Table::new(
        format!("A1: pa-TWiCe vs fa-TWiCe on {workload}"),
        &["metric", "value"],
    );
    let total = (stats.preferred_only + stats.extended).max(1);
    table.row(&[
        "preferred-set-only lookups".into(),
        format!(
            "{} ({:.2}%)",
            stats.preferred_only,
            stats.preferred_only as f64 / total as f64 * 100.0
        ),
    ]);
    table.row(&["extended lookups".into(), stats.extended.to_string()]);
    table.row(&["pa energy (modeled)".into(), format!("{} pJ", pa_energy)]);
    table.row(&["fa energy (modeled)".into(), format!("{} pJ", fa_energy)]);
    table.row(&[
        "pa/fa energy".into(),
        format!("{:.2}", pa_energy as f64 / fa_energy.max(1) as f64),
    ]);
    PaVsFaResult {
        preferred_only: stats.preferred_only,
        extended: stats.extended,
        pa_energy_pj: pa_energy,
        fa_energy_pj: fa_energy,
        table,
    }
}

/// A2: sweeps `thRH` and reports capacity, analytic ARR rate under a
/// sustained hammer, and the safety margin vs `N_th`.
pub fn th_rh_sweep(base: &TwiceParams, th_rh_values: &[u64]) -> Table {
    let mut table = Table::new(
        "A2: thRH sweep (capacity vs overhead vs margin)",
        &[
            "thRH",
            "thPI",
            "table entries",
            "ARR rate on a hammer",
            "margin (N_th - 4*thRH)",
            "valid",
        ],
    );
    for &th_rh in th_rh_values {
        let params = base.clone().with_th_rh(th_rh);
        let valid = params.validate().is_ok();
        if valid {
            let bound = CapacityBound::for_params(&params);
            table.row(&[
                th_rh.to_string(),
                params.th_pi().to_string(),
                bound.total().to_string(),
                percent(2.0 / th_rh as f64),
                (base.n_th as i64 - 4 * th_rh as i64).to_string(),
                "yes".into(),
            ]);
        } else {
            table.row(&[
                th_rh.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                (base.n_th as i64 - 4 * th_rh as i64).to_string(),
                "no".into(),
            ]);
        }
    }
    table
}

/// A3: timing sensitivity of `maxact` and table capacity.
pub fn timing_sweep(base: &TwiceParams) -> Table {
    let mut table = Table::new(
        "A3: timing sensitivity (paper: 'maxact only changes slightly')",
        &["tREFI", "tRFC", "tRC", "maxact", "capacity"],
    );
    let refi_divisors: [u64; 3] = [8192, 4096, 16384];
    let trcs = [Span::from_ns(45), Span::from_ns(50), Span::from_ns(40)];
    for &div in &refi_divisors {
        for &trc in &trcs {
            let mut p = base.clone();
            p.timings.t_refi = p.timings.t_refw / div;
            p.timings.t_rc = trc;
            // Keep thPI >= 1: thRH must be >= maxlife.
            if p.th_rh < p.max_life() {
                p.th_rh = p.max_life();
            }
            if p.validate().is_err() {
                continue;
            }
            let bound = CapacityBound::for_params(&p);
            table.row(&[
                p.timings.t_refi.to_string(),
                p.timings.t_rfc.to_string(),
                trc.to_string(),
                p.max_act().to_string(),
                bound.total().to_string(),
            ]);
        }
    }
    table
}

/// B3: the ARR protocol overhead claims of §5.2/§7.1.
#[derive(Debug, Clone)]
pub struct ArrOverheadResult {
    /// Maximum ARR rate (per normal ACT).
    pub max_arr_rate: f64,
    /// Extra ACTs per (false-positive or real) ARR.
    pub acts_per_arr: u32,
    /// Whether the table update fits within tRFC.
    pub update_fits: bool,
    /// Rendered table.
    pub table: Table,
}

/// Computes B3 for `params`.
pub fn arr_overhead(params: &TwiceParams) -> ArrOverheadResult {
    let model = TwiceCostModel::table3_45nm();
    let max_rate = 1.0 / params.th_rh as f64;
    let update_fits = model.update_hides_under_trfc(&params.timings);
    let mut table = Table::new(
        "B3: ARR protocol overhead (paper 5.2 / 7.1)",
        &["claim", "value"],
    );
    table.row(&[
        "max ARR rate (1 per thRH ACTs)".into(),
        format!("{} (= 1/{})", percent(max_rate), params.th_rh),
    ]);
    table.row(&["extra ACTs per ARR (<= 2 victims)".into(), "2".into()]);
    table.row(&["worst-case overhead".into(), percent(2.0 * max_rate)]);
    table.row(&[
        "bank blocked per ARR (2*tRC + tRP)".into(),
        format!("{}", params.timings.t_rc * 2 + params.timings.t_rp),
    ]);
    table.row(&[
        "table update fits in tRFC".into(),
        format!(
            "{} ({} <= {})",
            update_fits, model.fa_update.latency, params.timings.t_rfc
        ),
    ]);
    ArrOverheadResult {
        max_arr_rate: max_rate,
        acts_per_arr: 2,
        update_fits,
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    #[test]
    fn a1_benign_traffic_stays_in_preferred_sets() {
        let cfg = SimConfig::fast_test();
        let r = pa_vs_fa(&cfg, WorkloadKind::S1, 20_000);
        let total = r.preferred_only + r.extended;
        assert!(total > 0);
        // §7.1: "the counters for all rows remained in their preferred
        // sets" on real workloads; random traffic should behave too.
        assert!(
            r.preferred_only as f64 / total as f64 > 0.99,
            "extended lookups: {} of {total}",
            r.extended
        );
        assert!(r.pa_energy_pj < r.fa_energy_pj, "pa must be cheaper");
    }

    #[test]
    fn a2_sweep_shows_capacity_overhead_tradeoff() {
        let base = TwiceParams::paper_default();
        let t = th_rh_sweep(&base, &[8_192, 16_384, 32_768, 65_536]);
        let s = t.to_string();
        // 65,536 violates thRH <= N_th/4 and must be flagged invalid.
        assert!(s.contains("no"));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn a3_maxact_is_timing_insensitive() {
        let t = timing_sweep(&TwiceParams::paper_default());
        assert!(t.len() >= 6);
        let s = t.to_string();
        assert!(s.contains("165"), "baseline maxact missing:\n{s}");
    }

    #[test]
    fn b3_claims_hold() {
        let r = arr_overhead(&TwiceParams::paper_default());
        assert!(r.update_fits);
        assert!((r.max_arr_rate - 1.0 / 32_768.0).abs() < 1e-12);
        // 2 / 32768 = 0.006% — the headline S3 number.
        let s = r.table.to_string();
        assert!(s.contains("0.0061%"), "{s}");
    }
}
