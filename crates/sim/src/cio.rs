//! Campaign storage I/O: the [`CampaignIo`] trait, its durable real
//! implementation, and a fault-injecting wrapper.
//!
//! Every byte the campaign runner persists — journal lines, epoch
//! checkpoints, salvage sidecars — flows through a [`CampaignIo`]
//! object instead of raw `std::fs` calls. That indirection buys two
//! things:
//!
//! * **Durability in one place.** [`RealIo`] implements atomic writes
//!   as write-temp → fsync(temp) → rename → fsync(parent dir), so a
//!   power loss can no longer persist the rename without the data, and
//!   journal appends are fsynced line by line.
//! * **Injectable storage faults.** [`FaultyIo`] wraps the real
//!   implementation and drives the `Storage*` kinds of the existing
//!   [`FaultPlan`] machinery: ENOSPC, silently torn writes, partial
//!   reads, failed renames (orphaning `*.tmp` files), and read-side
//!   bit-rot. The chaos campaign's self-healing ladder — per-line
//!   journal CRCs with salvage, checksum-rejected checkpoints falling
//!   back to recomputation, bounded per-cell retry with quarantine —
//!   is exercised end to end by `crates/sim/tests/storage_torture.rs`
//!   under exactly these faults.
//!
//! [`StorageEvents`] is the shared, thread-safe tally of every recovery
//! action the campaign took; its [`StorageSummary`] snapshot rides on
//! the campaign report so callers (and the `twice-exp` CLI) can tell a
//! pristine run from a degraded one.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use twice_common::fault::{FaultInjector, FaultKind, FaultPlan};

/// The storage operations the campaign runner is allowed to perform.
///
/// Implementations must be safe to share across the worker pool; all
/// methods take `&self`.
pub trait CampaignIo: Send + Sync + std::fmt::Debug {
    /// Creates `dir` and any missing parents.
    ///
    /// # Errors
    ///
    /// Filesystem errors (never injected: a campaign cannot start
    /// without its directory).
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Reads the whole file at `path`.
    ///
    /// # Errors
    ///
    /// Filesystem errors; injected partial reads and bit-rot corrupt
    /// the returned bytes instead of erroring.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Writes `bytes` to `path` via temp file + fsync + rename + parent
    /// fsync, so the file is atomically either old or new — and the new
    /// version survives a power loss.
    ///
    /// # Errors
    ///
    /// Filesystem errors; injected ENOSPC and rename failures.
    fn write_atomically(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Overwrites `path` with `bytes` (non-atomic; used for sidecars
    /// like `journal.corrupt` whose loss is harmless).
    ///
    /// # Errors
    ///
    /// Filesystem errors; injected ENOSPC.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Appends `line` plus a newline to `path` (creating it if absent)
    /// and syncs the file.
    ///
    /// # Errors
    ///
    /// Filesystem errors; injected ENOSPC (torn appends persist a
    /// prefix and report success).
    fn append_line(&self, path: &Path, line: &str) -> io::Result<()>;

    /// Removes the file at `path`.
    ///
    /// # Errors
    ///
    /// Filesystem errors (including `NotFound`).
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Lists the entries of `dir` (files only, non-recursive).
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
}

/// Retries `op` up to `attempts` times, sleeping `backoff_ms * n`
/// between tries. The campaign uses this for journal appends and
/// salvage writes so one transient fault does not abort the run.
///
/// # Errors
///
/// The last error once every attempt has failed.
pub fn with_retries<T>(
    attempts: u32,
    backoff_ms: u64,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let attempts = attempts.max(1);
    let mut tried = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                tried += 1;
                twice_obs::bump(twice_obs::Ctr::SimIoRetries);
                if tried >= attempts {
                    return Err(e);
                }
                if backoff_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(
                        backoff_ms.saturating_mul(u64::from(tried)),
                    ));
                }
            }
        }
    }
}

/// The durable filesystem implementation.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

/// Syncs `path`'s parent directory so a rename into it survives a power
/// loss. Directory fsync is a Unix concept; elsewhere the rename itself
/// is the best available barrier.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        std::fs::File::open(parent)?.sync_all()?;
    }
    Ok(())
}

/// Writes `bytes` to `path` durably and atomically: temp file, fsync,
/// rename, parent-directory fsync. Crash-ordering contract: after this
/// returns, the file holds either the complete old contents or the
/// complete new contents, and the new contents cannot be lost to a
/// power cut that the rename survived.
///
/// # Errors
///
/// Filesystem errors from any step.
pub fn durable_atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::io::Write as _;
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

impl CampaignIo for RealIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_atomically(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        durable_atomic_write(path, bytes)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn append_line(&self, path: &Path, line: &str) -> io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }
}

/// A [`CampaignIo`] that injects storage faults around [`RealIo`],
/// driven by the `Storage*` kinds of a [`FaultPlan`].
///
/// Fault decisions come from one mutex-guarded [`FaultInjector`]
/// stream, so a serial campaign's fault schedule replays exactly from
/// the same plan; under a worker pool the schedule depends on thread
/// interleaving, which is precisely the hostile regime the torture test
/// wants (recovery must not depend on *which* operation a fault lands
/// on).
#[derive(Debug)]
pub struct FaultyIo {
    inner: RealIo,
    inj: Mutex<FaultInjector>,
}

/// The default storage-fault schedule for `--storage-faults SEED`:
/// every failure mode armed at rates high enough to fire several times
/// per campaign, low enough that bounded retry recovers every cell.
pub fn default_storage_plan(seed: u64) -> FaultPlan {
    FaultPlan::with_seed(seed)
        .rate(FaultKind::StorageEnospc, 0.03)
        .rate(FaultKind::StorageTornWrite, 0.03)
        .rate(FaultKind::StoragePartialRead, 0.08)
        .rate(FaultKind::StorageRenameFail, 0.03)
        .rate(FaultKind::StorageBitRot, 0.08)
}

impl FaultyIo {
    /// Wraps the real filesystem with the given fault plan. Only the
    /// `Storage*` kinds are consulted; hardware kinds in the same plan
    /// are ignored here.
    pub fn new(plan: FaultPlan) -> FaultyIo {
        FaultyIo {
            inner: RealIo,
            inj: Mutex::new(plan.injector(0x510_F417)),
        }
    }

    /// A `FaultyIo` armed with [`default_storage_plan`].
    pub fn with_default_plan(seed: u64) -> FaultyIo {
        FaultyIo::new(default_storage_plan(seed))
    }

    /// Total storage faults injected so far.
    pub fn injected_total(&self) -> u64 {
        self.lock().injected_total()
    }

    /// Faults of `kind` injected so far.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.lock().injected(kind)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultInjector> {
        // A worker that panicked mid-injection must not wedge every
        // other worker's I/O: recover the guard, the injector state is
        // a plain counter set that cannot be torn.
        self.inj.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fire(&self, kind: FaultKind) -> bool {
        self.lock().fire(kind)
    }

    fn draw(&self, bound: u64) -> u64 {
        self.lock().draw(bound)
    }

    fn enospc() -> io::Error {
        io::Error::new(io::ErrorKind::StorageFull, "injected ENOSPC")
    }
}

impl CampaignIo for FaultyIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = self.inner.read(path)?;
        if !bytes.is_empty() && self.fire(FaultKind::StoragePartialRead) {
            bytes.truncate(self.draw(bytes.len() as u64) as usize);
        }
        if !bytes.is_empty() && self.fire(FaultKind::StorageBitRot) {
            let at = self.draw(bytes.len() as u64) as usize;
            bytes[at] ^= 1 << self.draw(8);
        }
        Ok(bytes)
    }

    fn write_atomically(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.fire(FaultKind::StorageEnospc) {
            return Err(FaultyIo::enospc());
        }
        if self.fire(FaultKind::StorageRenameFail) {
            // The temp file is written (and orphaned), the rename never
            // happens: the caller sees the error, the directory keeps a
            // stray `*.tmp` for the start-of-campaign sweep to collect.
            let _ = self.inner.write_file(&path.with_extension("tmp"), bytes);
            return Err(io::Error::other("injected rename failure"));
        }
        if self.fire(FaultKind::StorageTornWrite) {
            // A silent tear: a prefix lands at the final path and the
            // writer is told everything went fine — the outcome of a
            // power loss whose rename outlived its data. Readers must
            // catch this via checksums, never via this return value.
            let keep = self.draw(bytes.len().max(1) as u64) as usize;
            return self.inner.write_file(path, &bytes[..keep]);
        }
        self.inner.write_atomically(path, bytes)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.fire(FaultKind::StorageEnospc) {
            return Err(FaultyIo::enospc());
        }
        self.inner.write_file(path, bytes)
    }

    fn append_line(&self, path: &Path, line: &str) -> io::Result<()> {
        if self.fire(FaultKind::StorageEnospc) {
            return Err(FaultyIo::enospc());
        }
        if self.fire(FaultKind::StorageTornWrite) {
            // Append a prefix of the line, no newline, report success:
            // the next load finds an unparseable tail and salvages.
            use std::io::Write as _;
            let keep = self.draw(line.len().max(1) as u64) as usize;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            f.write_all(&line.as_bytes()[..keep])?;
            return f.sync_all();
        }
        self.inner.append_line(path, line)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list_dir(dir)
    }
}

/// Thread-safe tallies of every self-healing action a campaign took.
#[derive(Debug, Default)]
pub struct StorageEvents {
    /// Orphaned `*.tmp` / stale `*.ckpt` files removed at campaign start.
    pub swept_orphans: AtomicU64,
    /// Times the journal was truncated to its last parseable line.
    pub journal_salvages: AtomicU64,
    /// Journal lines dropped (moved to `journal.corrupt`) by salvage.
    pub salvaged_lines_dropped: AtomicU64,
    /// Checkpoint blobs rejected (checksum/shape/digest) and recomputed
    /// from scratch instead of aborting the cell.
    pub corrupt_checkpoints: AtomicU64,
    /// Cells that failed at least once on I/O and were retried.
    pub retried_cells: AtomicU64,
    /// Cells quarantined after exhausting their retry budget.
    pub quarantined_cells: AtomicU64,
    /// Journal lines lost to write failures after retries (the cell
    /// simply reruns on the next `--resume`).
    pub journal_write_failures: AtomicU64,
}

impl StorageEvents {
    /// Adds one to `counter`.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to `counter`.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A plain-value snapshot for the campaign report.
    pub fn summary(&self) -> StorageSummary {
        StorageSummary {
            swept_orphans: self.swept_orphans.load(Ordering::Relaxed),
            journal_salvages: self.journal_salvages.load(Ordering::Relaxed),
            salvaged_lines_dropped: self.salvaged_lines_dropped.load(Ordering::Relaxed),
            corrupt_checkpoints: self.corrupt_checkpoints.load(Ordering::Relaxed),
            retried_cells: self.retried_cells.load(Ordering::Relaxed),
            quarantined_cells: self.quarantined_cells.load(Ordering::Relaxed),
            journal_write_failures: self.journal_write_failures.load(Ordering::Relaxed),
        }
    }
}

/// The recovery ledger of one campaign run (see [`StorageEvents`] for
/// per-field meaning). All-zero means the storage layer behaved and
/// nothing needed healing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageSummary {
    /// Orphaned files swept at start.
    pub swept_orphans: u64,
    /// Journal salvage operations.
    pub journal_salvages: u64,
    /// Journal lines dropped by salvage.
    pub salvaged_lines_dropped: u64,
    /// Corrupt checkpoints recomputed from scratch.
    pub corrupt_checkpoints: u64,
    /// Cells retried after an I/O failure.
    pub retried_cells: u64,
    /// Cells quarantined after exhausting retries.
    pub quarantined_cells: u64,
    /// Journal lines lost to write failures.
    pub journal_write_failures: u64,
}

impl StorageSummary {
    /// Whether any self-healing action was taken.
    pub fn is_degraded(&self) -> bool {
        *self != StorageSummary::default()
    }
}

impl std::fmt::Display for StorageSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "swept={} journal_salvages={} lines_dropped={} corrupt_checkpoints={} \
             retried={} quarantined={} journal_write_failures={}",
            self.swept_orphans,
            self.journal_salvages,
            self.salvaged_lines_dropped,
            self.corrupt_checkpoints,
            self.retried_cells,
            self.quarantined_cells,
            self.journal_write_failures
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("twice-cio-{tag}-{}", std::process::id()))
    }

    #[test]
    fn real_io_round_trips_and_leaves_no_tmp() {
        let path = temp_path("atomic");
        let io = RealIo;
        io.write_atomically(&path, b"first").expect("write");
        io.write_atomically(&path, b"second").expect("overwrite");
        assert_eq!(io.read(&path).expect("read"), b"second");
        assert!(
            !path.with_extension("tmp").exists(),
            "the temp file must be consumed by the rename"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn real_io_appends_lines_in_order() {
        let path = temp_path("append");
        let _ = std::fs::remove_file(&path);
        let io = RealIo;
        io.append_line(&path, "one").expect("append");
        io.append_line(&path, "two").expect("append");
        assert_eq!(io.read(&path).expect("read"), b"one\ntwo\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn enospc_fails_the_write_and_leaves_the_old_contents() {
        let path = temp_path("enospc");
        RealIo.write_atomically(&path, b"old").expect("seed");
        let io = FaultyIo::new(FaultPlan::with_seed(1).rate(FaultKind::StorageEnospc, 1.0));
        let err = io.write_atomically(&path, b"new").expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(std::fs::read(&path).expect("read"), b"old");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_write_persists_a_prefix_and_reports_success() {
        let path = temp_path("torn");
        let io = FaultyIo::new(FaultPlan::with_seed(2).rate(FaultKind::StorageTornWrite, 1.0));
        io.write_atomically(&path, b"0123456789")
            .expect("silent tear");
        let on_disk = std::fs::read(&path).expect("read");
        assert!(
            on_disk.len() < 10,
            "a torn write must persist a strict prefix, got {} bytes",
            on_disk.len()
        );
        assert_eq!(&b"0123456789"[..on_disk.len()], &on_disk[..]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rename_failure_orphans_the_tmp_file() {
        let path = temp_path("rename");
        let _ = std::fs::remove_file(&path);
        let io = FaultyIo::new(FaultPlan::with_seed(3).rate(FaultKind::StorageRenameFail, 1.0));
        io.write_atomically(&path, b"payload")
            .expect_err("must fail");
        assert!(!path.exists(), "the final file must not appear");
        assert!(
            path.with_extension("tmp").exists(),
            "the orphaned tmp must be left for the sweep"
        );
        let _ = std::fs::remove_file(path.with_extension("tmp"));
    }

    #[test]
    fn bit_rot_flips_exactly_one_bit_per_fired_read() {
        let path = temp_path("bitrot");
        RealIo.write_atomically(&path, b"payload").expect("seed");
        let io = FaultyIo::new(FaultPlan::with_seed(4).rate(FaultKind::StorageBitRot, 1.0));
        let rotten = io.read(&path).expect("read");
        let clean = b"payload";
        let flipped: u32 = rotten
            .iter()
            .zip(clean)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(rotten.len(), clean.len());
        assert_eq!(flipped, 1, "exactly one bit must differ");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn partial_read_truncates_without_touching_the_file() {
        let path = temp_path("partial");
        RealIo
            .write_atomically(&path, b"full contents")
            .expect("seed");
        let io = FaultyIo::new(FaultPlan::with_seed(5).rate(FaultKind::StoragePartialRead, 1.0));
        let partial = io.read(&path).expect("read");
        assert!(partial.len() < b"full contents".len());
        assert_eq!(std::fs::read(&path).expect("read"), b"full contents");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn with_retries_survives_transient_failures() {
        let mut failures_left = 2;
        let out = with_retries(3, 0, || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(io::Error::other("transient"))
            } else {
                Ok(42)
            }
        })
        .expect("third attempt succeeds");
        assert_eq!(out, 42);
        assert!(with_retries(2, 0, || io::Result::<()>::Err(io::Error::other("always"))).is_err());
    }

    #[test]
    fn storage_summary_reports_degradation() {
        let events = StorageEvents::default();
        assert!(!events.summary().is_degraded());
        StorageEvents::bump(&events.retried_cells);
        StorageEvents::add(&events.salvaged_lines_dropped, 3);
        let s = events.summary();
        assert!(s.is_degraded());
        assert_eq!(s.retried_cells, 1);
        assert_eq!(s.salvaged_lines_dropped, 3);
    }
}
