//! Campaign plumbing for binary (`twice-trace v2`) traces.
//!
//! Everything here goes through the [`CampaignIo`] seam, so the same
//! storage-fault injection that tortures journals and checkpoints
//! (`FaultyIo`) applies to trace record/replay: ENOSPC and failed
//! renames surface as typed I/O errors retried by the
//! [`with_retries`] ladder, while torn writes, partial reads, and
//! bit-rot flow into the salvage decoder and come back as a
//! [`SalvageSummary`] instead of a crash.
//!
//! The replay side is digest-faithful: [`ReplaySource`] implements
//! [`AccessSource`] with snapshot hooks, so a replayed trace drives
//! the same [`System`] machinery as a live generator — including
//! kill+resume checkpoints — and reproduces the live run's
//! `StateDigest` byte for byte.

use crate::cio::{with_retries, CampaignIo, RealIo};
use crate::config::SimConfig;
use crate::metrics::RunMetrics;
use crate::outcome::CellError;
use crate::runner::{try_build_source, WorkloadKind};
use crate::system::System;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::Arc;
use twice_common::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, StateDigest};
use twice_memctrl::request::AccessKind;
use twice_mitigations::DefenseKind;
use twice_workloads::trace::{AccessSource, TraceItem};
use twice_workloads::tracev2::{
    decode_salvage, encode_trace, v1_encoded_len, SalvagedTrace, TraceHeaderError,
};

/// The storage stack a trace operation runs against: an injectable
/// [`CampaignIo`] plus the retry budget for *erroring* operations
/// (corrupting faults don't error — they are the salvage reader's
/// problem).
#[derive(Debug, Clone)]
pub struct TraceIo {
    /// The storage backend (real or fault-injecting).
    pub io: Arc<dyn CampaignIo>,
    /// Attempts per failing storage op (≥ 1).
    pub attempts: u32,
    /// Linear backoff between attempts, in milliseconds.
    pub backoff_ms: u64,
}

impl TraceIo {
    /// Durable local-filesystem I/O, no retries.
    pub fn real() -> TraceIo {
        TraceIo {
            io: Arc::new(RealIo),
            attempts: 1,
            backoff_ms: 0,
        }
    }

    /// A stack over `io` with a retry budget.
    pub fn new(io: Arc<dyn CampaignIo>, attempts: u32, backoff_ms: u64) -> TraceIo {
        TraceIo {
            io,
            attempts: attempts.max(1),
            backoff_ms,
        }
    }
}

impl Default for TraceIo {
    fn default() -> TraceIo {
        TraceIo::real()
    }
}

/// A failure on the trace record/load path.
#[derive(Debug)]
pub enum TraceCliError {
    /// Storage failed after exhausting the retry budget.
    Io(io::Error),
    /// The trace header is unusable (corrupt, foreign version, or
    /// recorded against a different topology).
    Header(TraceHeaderError),
    /// The workload to record could not be built.
    Workload(CellError),
}

impl fmt::Display for TraceCliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceCliError::Io(e) => write!(f, "trace storage I/O failed: {e}"),
            TraceCliError::Header(e) => write!(f, "{e}"),
            TraceCliError::Workload(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TraceCliError {}

/// What `record` produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordOutcome {
    /// Accesses encoded.
    pub records: u64,
    /// Bytes written (header + frames).
    pub bytes: u64,
}

/// Records `requests` accesses of `kind` into a v2 trace at `path`.
///
/// The write goes through [`CampaignIo::write_atomically`] — temp file,
/// fsync, rename — so a killed or fault-injected record never leaves a
/// torn, header-valid trace behind; it either fully lands or the old
/// bytes survive.
///
/// # Errors
///
/// [`TraceCliError::Workload`] for an unknown SPEC app,
/// [`TraceCliError::Io`] once the retry budget is exhausted.
pub fn record_trace(
    tio: &TraceIo,
    cfg: &SimConfig,
    kind: &WorkloadKind,
    requests: u64,
    path: &Path,
) -> Result<RecordOutcome, TraceCliError> {
    let source = try_build_source(cfg, kind).map_err(TraceCliError::Workload)?;
    let (bytes, records) = encode_trace(&cfg.topology, source.take_requests(requests));
    with_retries(tio.attempts, tio.backoff_ms, || {
        tio.io.write_atomically(path, &bytes)
    })
    .map_err(TraceCliError::Io)?;
    Ok(RecordOutcome {
        records,
        bytes: bytes.len() as u64,
    })
}

/// A trace read back from storage, salvage already applied.
#[derive(Debug, Clone)]
pub struct LoadedTrace {
    /// Size of the file as read (post any injected truncation).
    pub file_bytes: u64,
    /// The decoded accesses plus the salvage summary.
    pub salvaged: SalvagedTrace,
}

impl LoadedTrace {
    /// One-pass characterization for `trace stat`.
    pub fn stats(&self) -> TraceStats {
        let s = &self.salvaged.summary;
        let mut reads = 0;
        let mut writes = 0;
        let mut v1_bytes = 0;
        for item in &self.salvaged.items {
            match item.0.kind {
                AccessKind::Read => reads += 1,
                AccessKind::Write => writes += 1,
            }
            v1_bytes += v1_encoded_len(item);
        }
        TraceStats {
            v2_bytes: self.file_bytes,
            v1_bytes,
            records: s.records,
            frames_kept: s.frames_kept,
            frames_dropped: s.frames_dropped,
            bytes_quarantined: s.bytes_quarantined,
            reads,
            writes,
        }
    }
}

/// Reads and salvage-decodes the v2 trace at `path`.
///
/// Injected partial reads and bit-rot reach the decoder as corrupt
/// bytes and are reported in the salvage summary; the obs counters
/// `sim.trace_frames_read` / `sim.trace_frames_dropped` /
/// `sim.trace_bytes_quarantined` record what happened.
///
/// # Errors
///
/// [`TraceCliError::Io`] once reads exhaust the retry budget;
/// [`TraceCliError::Header`] for an unusable header.
pub fn load_trace(
    tio: &TraceIo,
    cfg: &SimConfig,
    path: &Path,
) -> Result<LoadedTrace, TraceCliError> {
    let bytes = with_retries(tio.attempts, tio.backoff_ms, || tio.io.read(path))
        .map_err(TraceCliError::Io)?;
    let salvaged = decode_salvage(&bytes, &cfg.topology).map_err(TraceCliError::Header)?;
    twice_obs::add(
        twice_obs::Ctr::SimTraceFramesRead,
        salvaged.summary.frames_kept,
    );
    twice_obs::add(
        twice_obs::Ctr::SimTraceFramesDropped,
        salvaged.summary.frames_dropped,
    );
    twice_obs::add(
        twice_obs::Ctr::SimTraceBytesQuarantined,
        salvaged.summary.bytes_quarantined,
    );
    Ok(LoadedTrace {
        file_bytes: bytes.len() as u64,
        salvaged,
    })
}

/// Replays a decoded trace as an [`AccessSource`].
///
/// The cursor is part of the snapshot state, so a checkpointed replay
/// resumes from the exact access an uninterrupted replay would have
/// produced next — the same contract every live generator honors.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    items: Arc<Vec<TraceItem>>,
    cursor: u64,
}

impl ReplaySource {
    /// A source over `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty — an empty trace has nothing to
    /// replay (the CLI classifies it unusable before getting here).
    pub fn new(items: Arc<Vec<TraceItem>>) -> ReplaySource {
        assert!(!items.is_empty(), "cannot replay an empty trace");
        ReplaySource { items, cursor: 0 }
    }

    /// How many accesses have been produced.
    pub fn position(&self) -> u64 {
        self.cursor
    }

    /// The number of recorded accesses.
    pub fn len(&self) -> u64 {
        self.items.len() as u64
    }

    /// Whether the trace is empty (never true — see [`ReplaySource::new`]).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl AccessSource for ReplaySource {
    /// Produces the next recorded access, wrapping around at the end
    /// (the `AccessSource` contract is an endless stream; bound a
    /// replay with `take_requests(len)` for one pass).
    fn next_access(&mut self) -> TraceItem {
        let i = (self.cursor % self.items.len() as u64) as usize;
        self.cursor += 1;
        self.items[i]
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.cursor);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.cursor = r.take_u64()?;
        Ok(())
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.write_u64(self.cursor);
    }
}

/// A completed replay: the run's metrics and its state digest.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The metric record, labeled with `label`.
    pub metrics: RunMetrics,
    /// The post-drain [`System`] digest; equal to the live run's for a
    /// faithfully recorded trace.
    pub digest: u64,
}

/// Replays `items` (one full pass) under `defense` and reports the
/// metrics plus the system digest.
///
/// # Errors
///
/// The controller error message if the memory system rejects the
/// stream.
pub fn replay_trace(
    cfg: &SimConfig,
    defense: DefenseKind,
    items: Arc<Vec<TraceItem>>,
    label: &str,
) -> Result<ReplayOutcome, String> {
    let passes = items.len() as u64;
    let source = ReplaySource::new(items);
    let mut system = System::new(cfg, defense);
    system
        .run(source.take_requests(passes))
        .map_err(|e| e.to_string())?;
    Ok(ReplayOutcome {
        digest: system.digest(),
        metrics: system.metrics(label.to_string()),
    })
}

/// `trace stat` numbers: sizes, composition, and salvage health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// On-disk v2 size in bytes.
    pub v2_bytes: u64,
    /// What the same records would occupy in the v1 text format.
    pub v1_bytes: u64,
    /// Records recovered.
    pub records: u64,
    /// Frames decoded cleanly.
    pub frames_kept: u64,
    /// Corrupt regions skipped.
    pub frames_dropped: u64,
    /// Bytes that contributed no records.
    pub bytes_quarantined: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
}

impl TraceStats {
    /// v1-text-to-v2-binary size ratio (how many times smaller v2 is).
    pub fn ratio(&self) -> f64 {
        self.v1_bytes as f64 / (self.v2_bytes as f64).max(1.0)
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "records        {} ({} reads, {} writes)",
            self.records, self.reads, self.writes
        )?;
        writeln!(
            f,
            "frames         {} kept, {} corrupt region(s), {} byte(s) quarantined",
            self.frames_kept, self.frames_dropped, self.bytes_quarantined
        )?;
        writeln!(f, "v2 bytes       {}", self.v2_bytes)?;
        writeln!(f, "v1 equivalent  {}", self.v1_bytes)?;
        write!(f, "compression    {:.2}x", self.ratio())
    }
}

/// Where two defenses' observable behavior first diverged on a shared
/// ACT stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivergencePoint {
    /// 1-based access count at which the divergence was observed.
    pub access: u64,
    /// Which cumulative counter differed first (`additional_acts`,
    /// `detections`, `bit_flips`, or `nacks`).
    pub field: &'static str,
    /// Defense A's value at that point.
    pub a: u64,
    /// Defense B's value at that point.
    pub b: u64,
}

/// `trace diff` result: the same captured stream fed access-by-access
/// into two defenses, with the first observable divergence pinpointed
/// and both full metric records for delta reporting.
#[derive(Debug, Clone)]
pub struct TraceDiff {
    /// First divergence, if the defenses ever disagreed.
    pub divergence: Option<DivergencePoint>,
    /// Defense A's completed metrics.
    pub a: RunMetrics,
    /// Defense B's completed metrics.
    pub b: RunMetrics,
    /// Defense A's final system digest.
    pub digest_a: u64,
    /// Defense B's final system digest.
    pub digest_b: u64,
}

fn observables(sys: &System) -> [(&'static str, u64); 4] {
    let m = sys
        .controllers()
        .iter()
        .fold((0u64, 0u64, 0u64), |(aa, det, nk), c| {
            (
                aa + c.additional_acts(),
                det + c.detections().len() as u64,
                nk + c.nacks(),
            )
        });
    [
        ("additional_acts", m.0),
        ("detections", m.1),
        ("bit_flips", sys.bit_flip_count() as u64),
        ("nacks", m.2),
    ]
}

/// Feeds one captured stream into two defenses, ACT by ACT, and reports
/// where their observable behavior (additional ACTs, detections, bit
/// flips, nacks) first diverges plus both final metric records.
///
/// # Errors
///
/// The controller error message if either system rejects the stream.
pub fn diff_trace(
    cfg: &SimConfig,
    kind_a: DefenseKind,
    kind_b: DefenseKind,
    items: Arc<Vec<TraceItem>>,
    label: &str,
) -> Result<TraceDiff, String> {
    let mut sys_a = System::new(cfg, kind_a);
    let mut sys_b = System::new(cfg, kind_b);
    let mut divergence = None;
    for (i, item) in items.iter().enumerate() {
        sys_a.feed(*item).map_err(|e| format!("{kind_a}: {e}"))?;
        sys_b.feed(*item).map_err(|e| format!("{kind_b}: {e}"))?;
        if divergence.is_none() {
            let oa = observables(&sys_a);
            let ob = observables(&sys_b);
            if let Some(((field, a), (_, b))) = oa.iter().zip(ob.iter()).find(|(x, y)| x.1 != y.1) {
                divergence = Some(DivergencePoint {
                    access: i as u64 + 1,
                    field,
                    a: *a,
                    b: *b,
                });
            }
        }
    }
    sys_a.drain().map_err(|e| format!("{kind_a}: {e}"))?;
    sys_b.drain().map_err(|e| format!("{kind_b}: {e}"))?;
    if divergence.is_none() {
        let oa = observables(&sys_a);
        let ob = observables(&sys_b);
        if let Some(((field, a), (_, b))) = oa.iter().zip(ob.iter()).find(|(x, y)| x.1 != y.1) {
            divergence = Some(DivergencePoint {
                access: items.len() as u64,
                field,
                a: *a,
                b: *b,
            });
        }
    }
    Ok(TraceDiff {
        divergence,
        a: sys_a.metrics(label.to_string()),
        b: sys_b.metrics(label.to_string()),
        digest_a: sys_a.digest(),
        digest_b: sys_b.digest(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cio::FaultyIo;
    use crate::runner::build_trace;
    use twice_workloads::tracev2::TraceHealth;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("twice-tracecli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn record_load_replay_matches_live_digest() {
        let cfg = SimConfig::fast_test();
        let dir = tmpdir("rt");
        let path = dir.join("s2.twt2");
        let tio = TraceIo::real();
        let outcome = record_trace(&tio, &cfg, &WorkloadKind::S2, 3_000, &path).unwrap();
        assert_eq!(outcome.records, 3_000);

        let loaded = load_trace(&tio, &cfg, &path).unwrap();
        assert_eq!(loaded.salvaged.health(), TraceHealth::Clean);
        let live: Vec<TraceItem> = build_trace(&cfg, &WorkloadKind::S2, 3_000).collect();
        assert_eq!(loaded.salvaged.items, live);

        let mut system = System::new(&cfg, DefenseKind::None);
        system.run(live).unwrap();
        let replayed = replay_trace(
            &cfg,
            DefenseKind::None,
            Arc::new(loaded.salvaged.items),
            "replay",
        )
        .unwrap();
        assert_eq!(replayed.digest, system.digest());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diff_pinpoints_first_defense_divergence() {
        let cfg = SimConfig::fast_test();
        // S3 hammers a single row: the oracle mitigates, `none` never
        // does, so additional_acts must diverge — and a self-diff must
        // never diverge at all.
        let items: Vec<TraceItem> = build_trace(&cfg, &WorkloadKind::S3, 4_000).collect();
        let items = Arc::new(items);
        let same = diff_trace(
            &cfg,
            DefenseKind::None,
            DefenseKind::None,
            items.clone(),
            "self",
        )
        .unwrap();
        assert_eq!(
            same.divergence, None,
            "a defense cannot diverge from itself"
        );
        assert_eq!(same.digest_a, same.digest_b);

        let diff = diff_trace(&cfg, DefenseKind::None, DefenseKind::Oracle, items, "s3").unwrap();
        let d = diff.divergence.expect("oracle must act on a hammer");
        assert!(d.access > 0 && d.access <= 4_000);
        assert!(d.a != d.b, "recorded values must actually differ");
        assert!(
            diff.b.additional_acts > diff.a.additional_acts,
            "oracle issues ARRs, none does not"
        );
    }

    #[test]
    fn record_survives_storage_faults_with_retries() {
        let cfg = SimConfig::fast_test();
        let dir = tmpdir("faulty");
        let path = dir.join("s1.twt2");
        // A hostile storage layer: ENOSPC and rename failures error (and
        // are retried); torn atomic writes are silently swallowed by the
        // injector, which is exactly what the salvage reader is for.
        let faulty: Arc<dyn CampaignIo> = Arc::new(FaultyIo::with_default_plan(0xBAD5EED));
        let tio = TraceIo::new(faulty, 16, 0);
        let mut clean = 0;
        for i in 0..12u64 {
            let p = dir.join(format!("t{i}.twt2"));
            record_trace(&tio, &cfg, &WorkloadKind::S1, 600, &p).unwrap();
            let loaded = load_trace(&tio, &cfg, &p);
            // Reads can come back truncated/bit-rotted (injected), so
            // anything from Clean to Unusable is legal — but never a
            // panic and never a silent wrong decode.
            if let Ok(l) = &loaded {
                if l.salvaged.health() == TraceHealth::Clean {
                    clean += 1;
                    let live: Vec<TraceItem> = build_trace(&cfg, &WorkloadKind::S1, 600).collect();
                    assert_eq!(l.salvaged.items, live);
                }
            }
        }
        assert!(clean > 0, "some records must land clean");
        let _ = path;
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_source_snapshot_round_trips() {
        let cfg = SimConfig::fast_test();
        let items: Arc<Vec<TraceItem>> =
            Arc::new(build_trace(&cfg, &WorkloadKind::S1, 64).collect());
        let mut a = ReplaySource::new(items.clone());
        for _ in 0..17 {
            a.next_access();
        }
        let mut w = SnapshotWriter::new();
        AccessSource::save_state(&a, &mut w);
        let blob = w.finish();
        let mut b = ReplaySource::new(items);
        let mut r = SnapshotReader::new(&blob).unwrap();
        AccessSource::load_state(&mut b, &mut r).unwrap();
        assert_eq!(b.position(), 17);
        for _ in 0..10 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn stats_report_compression_and_mix() {
        let cfg = SimConfig::fast_test();
        let dir = tmpdir("stats");
        let path = dir.join("mica.twt2");
        let tio = TraceIo::real();
        record_trace(&tio, &cfg, &WorkloadKind::Mica, 5_000, &path).unwrap();
        let stats = load_trace(&tio, &cfg, &path).unwrap().stats();
        assert_eq!(stats.records, 5_000);
        assert_eq!(stats.reads + stats.writes, 5_000);
        assert!(stats.writes > 0, "MICA SETs must appear");
        assert!(stats.ratio() > 1.0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
