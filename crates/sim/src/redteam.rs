//! Red-team harness: supervised adversarial attack synthesis.
//!
//! A seeded, fitness-guided evolutionary search over hammer-pattern
//! genomes ([`twice_workloads::genome`]) whose fitness is the damage a
//! candidate inflicts on a victim row *without* the target defense
//! mitigating it: bit flips dominate, then the disturbance watermark
//! reached while the defense was still silent, then how close the
//! defense's hottest internal counter came to firing. The search is the
//! attacker the paper's §4.3 argues TWiCe survives — refresh-window
//! straddles, many-sided rotations past tracker capacity, decoy floods
//! that churn capacity-bound tables.
//!
//! Every candidate runs under the same supervision ladder as the fleet
//! (degrade, don't die): the body is wrapped in [`Supervisor`] so a
//! panicking or budget-blowing genome is **quarantined** (fitness 0)
//! instead of aborting the generation. Every evaluation is journaled as
//! a CRC-sealed line through [`OrderedJournalWriter`], so a killed
//! search resumes mid-generation, re-runs only the missing slots, and —
//! enforced, not hoped — reproduces the uninterrupted run's per-
//! generation digests. Evaluation fans out through
//! [`parallel_map`](crate::parallel::parallel_map), whose `jobs <= 1`
//! path is the literal serial loop, so `--jobs N` cannot change results.
//!
//! The best genomes are distilled into fixed v2 traces (a `corpus/`
//! directory plus a sealed `MANIFEST.jsonl`) and [`verify_corpus`]
//! replays that corpus against **every** [`DefenseKind`], exiting
//! nonzero when a defense that held at distillation time now lets a
//! victim cross `N_th` unmitigated — a security regression gate.

use crate::cio::{with_retries, CampaignIo};
use crate::config::SimConfig;
use crate::journal::{
    emit_line, parse_line, seal_line, unseal_line, JsonValue, OrderedJournalWriter,
};
use crate::parallel::parallel_map;
use crate::supervisor::{ShardError, Supervisor};
use crate::system::System;
use crate::tracecli::replay_trace;
use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use twice_common::rng::SplitMix64;
use twice_mitigations::DefenseKind;
use twice_workloads::genome::{GenomeSpace, PatternGenome};
use twice_workloads::tracev2::{decode_salvage, encode_trace};
use twice_workloads::{AccessSource, TraceItem};

/// The search journal's file name inside the campaign directory.
pub const REDTEAM_JOURNAL: &str = "redteam.jsonl";
/// The corpus manifest's file name inside the corpus directory.
pub const CORPUS_MANIFEST: &str = "MANIFEST.jsonl";
/// Journal/manifest format version.
pub const REDTEAM_VERSION: u64 = 1;

/// Defenses the security gate requires to hold no matter what the
/// manifest recorded: a corpus trace that defeats one of these
/// contradicts the paper's §4.3 analysis (TWiCe) or the exact-counting
/// baselines, and must fail loudly rather than be re-pinned silently.
pub const MUST_HOLD: [&str; 5] = ["twice-fa", "twice-pa", "twice-split", "graphene", "oracle"];

/// Configuration for one red-team search campaign.
#[derive(Debug, Clone)]
pub struct RedteamConfig {
    /// Base simulation config; `cfg.seed` is the search master seed.
    pub cfg: SimConfig,
    /// The defense the search attacks.
    pub defense: DefenseKind,
    /// Genomes per generation.
    pub population: usize,
    /// Generations to evolve.
    pub generations: u32,
    /// Requests fed per evaluation.
    pub requests: u64,
    /// Requests between supervision checks (budgets, stealth sampling).
    pub epoch: u64,
    /// Per-evaluation wall-clock budget in milliseconds (0 = unlimited).
    /// Leave at 0 when digest reproducibility matters: wall-clock
    /// quarantine depends on the host machine.
    pub wall_budget_ms: u64,
    /// Per-evaluation simulated-time budget in picoseconds (0 = unlimited).
    pub sim_budget_ps: u64,
    /// Worker threads for evaluation (`<= 1` is the exact serial path).
    pub jobs: usize,
    /// Campaign directory (journal lives here).
    pub dir: PathBuf,
    /// Per-operation I/O retry attempts.
    pub retries: u32,
    /// Linear backoff between I/O retries, in milliseconds.
    pub backoff_ms: u64,
    /// Poison the last `sabotage` slots of generation 0 (alternating
    /// injected panic / 1 ps sim budget) to prove the quarantine path.
    pub sabotage: usize,
    /// Stop after this many *live* evaluations (kill+resume testing);
    /// the search reports [`RedteamOutcome::Halted`].
    pub halt_after: Option<u64>,
    /// Storage backend (real or fault-injecting).
    pub io: Arc<dyn CampaignIo>,
}

impl RedteamConfig {
    /// A search over `defense` rooted at `dir` with the default scale
    /// (population 16, 8 generations, 24 000 requests per evaluation).
    pub fn new(cfg: SimConfig, defense: DefenseKind, dir: PathBuf) -> RedteamConfig {
        RedteamConfig {
            cfg,
            defense,
            population: 16,
            generations: 8,
            requests: 24_000,
            epoch: 2_048,
            wall_budget_ms: 0,
            sim_budget_ps: 0,
            jobs: 1,
            dir,
            retries: 3,
            backoff_ms: 0,
            sabotage: 0,
            halt_after: None,
            io: Arc::new(crate::cio::RealIo),
        }
    }
}

/// What one supervised evaluation produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOutcome {
    /// Ranking key (see [`fitness_of`]); 0 for quarantined genomes.
    pub fitness: u64,
    /// Victims that crossed `N_th` without a timely mitigation.
    pub bit_flips: u64,
    /// Highest disturbance any row ever reached (monotone watermark).
    pub peak: u64,
    /// Peak disturbance reached while the defense had done *nothing*
    /// (no additional ACTs, no detections) — the stealth score.
    pub stealth_peak: u64,
    /// Times the defense fired (ARRs, detections, group refreshes).
    pub triggers: u64,
    /// Hottest internal counter over its threshold, in permille.
    pub near_miss_permille: u32,
    /// Final system state digest (the conformance anchor).
    pub digest: u64,
    /// Why the genome was quarantined, if it was.
    pub quarantined: Option<String>,
}

/// The ranking key: bit flips dominate (a broken defense beats any
/// near-miss), then stealth disturbance, then trigger proximity.
pub fn fitness_of(bit_flips: u64, stealth_peak: u64, near_miss_permille: u32) -> u64 {
    bit_flips
        .saturating_mul(1_000_000)
        .saturating_add(stealth_peak.saturating_mul(1_000))
        .saturating_add(u64::from(near_miss_permille))
}

/// Deterministic sabotage modes (see [`RedteamConfig::sabotage`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poison {
    /// The evaluation body panics after system construction.
    Panic,
    /// The sim-time budget is forced to 1 ps (instant blowout).
    SimBudget,
}

/// Runs one genome under the supervision ladder. Never panics and never
/// aborts the caller: a panicking or budget-exceeding genome comes back
/// as a quarantined outcome with fitness 0.
#[allow(clippy::too_many_arguments)] // mirrors the journal's eval-line schema
pub fn eval_genome(
    cfg: &SimConfig,
    defense: DefenseKind,
    genome: &PatternGenome,
    requests: u64,
    epoch: u64,
    wall_budget_ms: u64,
    sim_budget_ps: u64,
    poison: Option<Poison>,
) -> EvalOutcome {
    let body = |_attempt: u32| -> Result<EvalOutcome, ShardError> {
        let start = Instant::now();
        let mut sys = System::new(cfg, defense);
        if poison == Some(Poison::Panic) {
            panic!("sabotage: injected genome panic");
        }
        let sim_budget = if poison == Some(Poison::SimBudget) {
            1
        } else {
            sim_budget_ps
        };
        let mut src = genome.source(&cfg.topology);
        let step = epoch.max(1);
        let mut done = 0u64;
        let mut stealth_peak = 0u64;
        while done < requests {
            let n = step.min(requests - done);
            for _ in 0..n {
                sys.feed(src.next_access())
                    .map_err(|e| ShardError::Invalid(e.to_string()))?;
            }
            done += n;
            if sys.mitigation_activity() == 0 {
                stealth_peak = sys.peak_disturbance();
            }
            if wall_budget_ms > 0 && start.elapsed().as_millis() as u64 > wall_budget_ms {
                return Err(ShardError::WallClockExceeded {
                    budget_ms: wall_budget_ms,
                    done,
                });
            }
            if sim_budget > 0 && sys.sim_time().as_ps() > sim_budget {
                return Err(ShardError::SimTimeExceeded {
                    budget_ps: sim_budget,
                    done,
                });
            }
        }
        sys.drain()
            .map_err(|e| ShardError::Invalid(e.to_string()))?;
        if sys.mitigation_activity() == 0 {
            stealth_peak = sys.peak_disturbance();
        }
        let pressure = sys.defense_pressure();
        let bit_flips = sys.bit_flip_count() as u64;
        Ok(EvalOutcome {
            fitness: fitness_of(bit_flips, stealth_peak, pressure.near_miss_permille),
            bit_flips,
            peak: sys.peak_disturbance(),
            stealth_peak,
            triggers: pressure.triggers,
            near_miss_permille: pressure.near_miss_permille,
            digest: sys.digest(),
            quarantined: None,
        })
    };
    // One attempt: evaluations are deterministic and do no I/O, so a
    // failure re-fails; the ladder's value here is catch → quarantine.
    match Supervisor::new(1, 0).supervise(body, |_, _| {}) {
        Ok(outcome) => {
            twice_obs::bump(twice_obs::Ctr::SimRedteamEvals);
            outcome
        }
        Err(err) => {
            twice_obs::bump(twice_obs::Ctr::SimRedteamEvals);
            twice_obs::bump(twice_obs::Ctr::SimRedteamQuarantined);
            EvalOutcome {
                fitness: 0,
                bit_flips: 0,
                peak: 0,
                stealth_peak: 0,
                triggers: 0,
                near_miss_permille: 0,
                digest: 0,
                quarantined: Some(err.to_string()),
            }
        }
    }
}

/// Generation 0: the classic openers (single/double/many-sided, decoy
/// flood, straddle) truncated or padded with seeded randoms.
pub fn seed_population(space: &GenomeSpace, seed: u64, n: usize) -> Vec<PatternGenome> {
    let mut pop = PatternGenome::classics(space);
    pop.truncate(n);
    let mut rng = SplitMix64::new(seed ^ 0x05EE_D0F9_E00D);
    while pop.len() < n {
        pop.push(PatternGenome::random(space, &mut rng));
    }
    pop
}

/// Breeds the next generation from ranked outcomes: the fittest quarter
/// (at least two) survive unchanged, the rest are crossover+mutate
/// children of elite pairs, with a 15 % fresh-random immigration rate.
/// Fully determined by `(seed, gen)` and the fitness ranking.
fn breed(
    space: &GenomeSpace,
    population: &[PatternGenome],
    outcomes: &[EvalOutcome],
    seed: u64,
    gen: u32,
) -> Vec<PatternGenome> {
    let n = population.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(outcomes[i].fitness), i));
    let elites = (n / 4).max(2).min(n);
    let mut next: Vec<PatternGenome> = order[..elites]
        .iter()
        .map(|&i| population[i].clone())
        .collect();
    let mut rng = SplitMix64::new(
        seed ^ 0xBED_7EA4 ^ (u64::from(gen) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    while next.len() < n {
        if rng.chance(0.15) {
            next.push(PatternGenome::random(space, &mut rng));
            continue;
        }
        let a = &population[order[rng.next_below(elites as u64) as usize]];
        let b = &population[order[rng.next_below(elites as u64) as usize]];
        let child = PatternGenome::crossover(a, b, space, &mut rng).mutate(space, &mut rng);
        next.push(child);
    }
    next
}

/// FNV-1a fold step for generation digests.
fn fnv_fold(acc: u64, v: u64) -> u64 {
    let mut h = acc;
    for b in v.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Digest of a completed generation: every slot's outcome, in slot
/// order. Equal digests mean the resumed and uninterrupted searches saw
/// byte-identical evaluation results.
pub fn generation_digest(outcomes: &[EvalOutcome]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for o in outcomes {
        h = fnv_fold(h, o.fitness);
        h = fnv_fold(h, o.bit_flips);
        h = fnv_fold(h, o.digest);
        h = fnv_fold(h, u64::from(o.quarantined.is_some()));
    }
    h
}

/// Summary of one completed generation.
#[derive(Debug, Clone)]
pub struct GenSummary {
    /// Generation number (0-based).
    pub gen: u32,
    /// Best fitness this generation.
    pub best_fitness: u64,
    /// Human summary of the best genome.
    pub best_summary: String,
    /// Slots quarantined this generation.
    pub quarantined: u64,
    /// The generation digest (see [`generation_digest`]).
    pub digest: u64,
}

/// A completed search.
#[derive(Debug, Clone)]
pub struct RedteamReport {
    /// Per-generation summaries, in order.
    pub generations: Vec<GenSummary>,
    /// Global best genomes (deduplicated, fitness-descending).
    pub best: Vec<(PatternGenome, EvalOutcome)>,
    /// Evaluations run live this invocation.
    pub evals_live: u64,
    /// Evaluations adopted from the journal.
    pub evals_cached: u64,
    /// Total quarantined slots across all generations.
    pub quarantined: u64,
    /// Journal lines lost to storage faults (the affected slots rerun
    /// on resume).
    pub journal_dropped: u64,
    /// Prior-journal lines skipped for failing their CRC seal or
    /// parsing (their slots were re-evaluated).
    pub journal_corrupt: u64,
}

/// How a search invocation ended.
#[derive(Debug, Clone)]
pub enum RedteamOutcome {
    /// All generations evaluated and bred.
    Completed(RedteamReport),
    /// `halt_after` live evaluations were spent mid-search; resume with
    /// the same directory to continue.
    Halted {
        /// Live evaluations run before halting.
        evals_live: u64,
    },
}

/// Everything the journal remembers about a prior (partial) run.
#[derive(Debug, Default)]
struct JournalState {
    meta_seen: bool,
    evals: BTreeMap<(u32, usize), EvalOutcome>,
    gens: BTreeMap<u32, (u64, Vec<PatternGenome>)>,
    corrupt_lines: u64,
}

fn get_u64(fields: &BTreeMap<String, JsonValue>, key: &str) -> Option<u64> {
    fields.get(key).and_then(JsonValue::as_u64)
}

fn get_str<'a>(fields: &'a BTreeMap<String, JsonValue>, key: &str) -> Option<&'a str> {
    fields.get(key).and_then(JsonValue::as_str)
}

fn meta_line(rc: &RedteamConfig) -> String {
    seal_line(&emit_line(&[
        ("kind", JsonValue::Str("meta".to_string())),
        ("version", JsonValue::U64(REDTEAM_VERSION)),
        ("seed", JsonValue::U64(rc.cfg.seed)),
        ("defense", JsonValue::Str(rc.defense.to_string())),
        ("population", JsonValue::U64(rc.population as u64)),
        ("generations", JsonValue::U64(u64::from(rc.generations))),
        ("requests", JsonValue::U64(rc.requests)),
        ("epoch", JsonValue::U64(rc.epoch)),
    ]))
}

fn eval_line(gen: u32, slot: usize, genome: &PatternGenome, o: &EvalOutcome) -> String {
    let mut fields = vec![
        ("kind", JsonValue::Str("eval".to_string())),
        ("gen", JsonValue::U64(u64::from(gen))),
        ("slot", JsonValue::U64(slot as u64)),
        ("genome", JsonValue::Str(genome.hex())),
        ("fit", JsonValue::U64(o.fitness)),
        ("flips", JsonValue::U64(o.bit_flips)),
        ("peak", JsonValue::U64(o.peak)),
        ("stealth", JsonValue::U64(o.stealth_peak)),
        ("trig", JsonValue::U64(o.triggers)),
        ("near", JsonValue::U64(u64::from(o.near_miss_permille))),
        ("digest", JsonValue::U64(o.digest)),
        ("q", JsonValue::Bool(o.quarantined.is_some())),
    ];
    if let Some(cause) = &o.quarantined {
        fields.push(("cause", JsonValue::Str(cause.clone())));
    }
    seal_line(&emit_line(&fields))
}

fn gen_line(gen: u32, digest: u64, next: &[PatternGenome]) -> String {
    let hexes: Vec<String> = next.iter().map(PatternGenome::hex).collect();
    seal_line(&emit_line(&[
        ("kind", JsonValue::Str("gen".to_string())),
        ("gen", JsonValue::U64(u64::from(gen))),
        ("gen_digest", JsonValue::U64(digest)),
        ("next", JsonValue::Str(hexes.join(","))),
    ]))
}

/// Loads and validates the journal. Corrupt or unsealable lines are
/// skipped (their slots simply rerun); a meta line from a *different*
/// campaign is a hard error — resuming someone else's search would
/// silently corrupt both.
fn load_journal(rc: &RedteamConfig) -> Result<JournalState, String> {
    let mut st = JournalState::default();
    let path = rc.dir.join(REDTEAM_JOURNAL);
    let bytes = match rc.io.read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(st),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    for raw in String::from_utf8_lossy(&bytes).lines() {
        if raw.trim().is_empty() {
            continue;
        }
        let Some(line) = unseal_line(raw) else {
            st.corrupt_lines += 1;
            continue;
        };
        let Ok(fields) = parse_line(&line) else {
            st.corrupt_lines += 1;
            continue;
        };
        match get_str(&fields, "kind") {
            Some("meta") => {
                let same = get_u64(&fields, "version") == Some(REDTEAM_VERSION)
                    && get_u64(&fields, "seed") == Some(rc.cfg.seed)
                    && get_str(&fields, "defense") == Some(rc.defense.to_string().as_str())
                    && get_u64(&fields, "population") == Some(rc.population as u64)
                    && get_u64(&fields, "generations") == Some(u64::from(rc.generations))
                    && get_u64(&fields, "requests") == Some(rc.requests)
                    && get_u64(&fields, "epoch") == Some(rc.epoch);
                if !same {
                    return Err(format!(
                        "journal {} belongs to a different campaign (seed/defense/scale mismatch); \
                         use a fresh --dir or matching flags",
                        path.display()
                    ));
                }
                st.meta_seen = true;
            }
            Some("eval") => {
                let (Some(gen), Some(slot)) = (get_u64(&fields, "gen"), get_u64(&fields, "slot"))
                else {
                    st.corrupt_lines += 1;
                    continue;
                };
                let outcome = EvalOutcome {
                    fitness: get_u64(&fields, "fit").unwrap_or(0),
                    bit_flips: get_u64(&fields, "flips").unwrap_or(0),
                    peak: get_u64(&fields, "peak").unwrap_or(0),
                    stealth_peak: get_u64(&fields, "stealth").unwrap_or(0),
                    triggers: get_u64(&fields, "trig").unwrap_or(0),
                    near_miss_permille: get_u64(&fields, "near").unwrap_or(0) as u32,
                    digest: get_u64(&fields, "digest").unwrap_or(0),
                    quarantined: match fields.get("q").and_then(JsonValue::as_bool) {
                        Some(true) => Some(
                            get_str(&fields, "cause")
                                .unwrap_or("quarantined (cause lost)")
                                .to_string(),
                        ),
                        _ => None,
                    },
                };
                st.evals.insert((gen as u32, slot as usize), outcome);
            }
            Some("gen") => {
                let Some(gen) = get_u64(&fields, "gen") else {
                    st.corrupt_lines += 1;
                    continue;
                };
                let digest = get_u64(&fields, "gen_digest").unwrap_or(0);
                let next_raw = get_str(&fields, "next").unwrap_or("");
                let mut next = Vec::new();
                let mut bad = false;
                for hex in next_raw.split(',').filter(|s| !s.is_empty()) {
                    match PatternGenome::from_hex(hex) {
                        Ok(g) => next.push(g),
                        Err(_) => bad = true,
                    }
                }
                if bad {
                    st.corrupt_lines += 1;
                    continue;
                }
                st.gens.insert(gen as u32, (digest, next));
            }
            _ => st.corrupt_lines += 1,
        }
    }
    Ok(st)
}

/// Runs (or resumes) the evolutionary search.
///
/// # Errors
///
/// Unreadable campaign directory, a journal from a different campaign,
/// or a resumed generation whose recomputed digest contradicts the
/// journaled one (a determinism violation — never expected).
pub fn redteam_search(rc: &RedteamConfig) -> Result<RedteamOutcome, String> {
    assert!(rc.population >= 2, "population must be at least 2");
    assert!(rc.generations >= 1, "need at least one generation");
    rc.io
        .create_dir_all(&rc.dir)
        .map_err(|e| format!("cannot create {}: {e}", rc.dir.display()))?;
    let prior = load_journal(rc)?;
    let journal_path = rc.dir.join(REDTEAM_JOURNAL);
    if !prior.meta_seen {
        with_retries(rc.retries, rc.backoff_ms, || {
            rc.io.append_line(&journal_path, &meta_line(rc))
        })
        .map_err(|e| format!("cannot write journal meta: {e}"))?;
    }
    let writer = OrderedJournalWriter::new(
        rc.io.clone(),
        journal_path.clone(),
        rc.retries,
        rc.backoff_ms,
    );
    let space = GenomeSpace::for_topology(&rc.cfg.topology);
    let live = AtomicU64::new(0);
    let mut cached = 0u64;
    let mut quarantined_total = 0u64;
    let mut summaries = Vec::new();
    let mut best: Vec<(PatternGenome, EvalOutcome)> = Vec::new();

    let mut population = seed_population(&space, rc.cfg.seed, rc.population);
    for gen in 0..rc.generations {
        let slots: Vec<usize> = (0..rc.population).collect();
        let results: Vec<Option<EvalOutcome>> = parallel_map(rc.jobs, &slots, |_, &slot| {
            let index = gen as usize * rc.population + slot;
            if let Some(outcome) = prior.evals.get(&(gen, slot)) {
                writer.submit(index, None);
                return Some(outcome.clone());
            }
            if let Some(budget) = rc.halt_after {
                if live.fetch_add(1, Ordering::SeqCst) >= budget {
                    live.fetch_sub(1, Ordering::SeqCst);
                    return None;
                }
            } else {
                live.fetch_add(1, Ordering::SeqCst);
            }
            let poison = if gen == 0
                && rc.sabotage > 0
                && slot >= rc.population - rc.sabotage.min(rc.population)
            {
                Some(if slot % 2 == 0 {
                    Poison::Panic
                } else {
                    Poison::SimBudget
                })
            } else {
                None
            };
            let outcome = eval_genome(
                &rc.cfg,
                rc.defense,
                &population[slot],
                rc.requests,
                rc.epoch,
                rc.wall_budget_ms,
                rc.sim_budget_ps,
                poison,
            );
            writer.submit(
                index,
                Some(eval_line(gen, slot, &population[slot], &outcome)),
            );
            Some(outcome)
        });
        cached += slots
            .iter()
            .filter(|&&s| prior.evals.contains_key(&(gen, s)))
            .count() as u64;
        if results.iter().any(Option::is_none) {
            writer.flush_stragglers();
            return Ok(RedteamOutcome::Halted {
                evals_live: live.load(Ordering::SeqCst),
            });
        }
        let outcomes: Vec<EvalOutcome> = results.into_iter().map(Option::unwrap).collect();
        let digest = generation_digest(&outcomes);
        let gen_quarantined = outcomes.iter().filter(|o| o.quarantined.is_some()).count() as u64;
        quarantined_total += gen_quarantined;
        let best_slot = (0..rc.population)
            .max_by_key(|&i| (outcomes[i].fitness, std::cmp::Reverse(i)))
            .expect("population is non-empty");
        summaries.push(GenSummary {
            gen,
            best_fitness: outcomes[best_slot].fitness,
            best_summary: population[best_slot].summary(),
            quarantined: gen_quarantined,
            digest,
        });
        for (slot, o) in outcomes.iter().enumerate() {
            if o.quarantined.is_none() {
                best.push((population[slot].clone(), o.clone()));
            }
        }
        let next = if let Some((recorded_digest, recorded_next)) = prior.gens.get(&gen) {
            if *recorded_digest != digest {
                return Err(format!(
                    "generation {gen} digest {digest:#018x} contradicts journaled \
                     {recorded_digest:#018x}: determinism violation"
                ));
            }
            recorded_next.clone()
        } else {
            let next = if gen + 1 < rc.generations {
                breed(&space, &population, &outcomes, rc.cfg.seed, gen)
            } else {
                Vec::new()
            };
            with_retries(rc.retries, rc.backoff_ms, || {
                rc.io
                    .append_line(&journal_path, &gen_line(gen, digest, &next))
            })
            .map_err(|e| format!("cannot journal generation {gen}: {e}"))?;
            next
        };
        if gen + 1 < rc.generations {
            if next.len() != rc.population {
                // A journaled final-gen line (empty next) from a run with
                // fewer generations would land here; meta matching rules
                // that out, so this is belt-and-braces.
                return Err(format!(
                    "journaled generation {gen} population has {} genomes, expected {}",
                    next.len(),
                    rc.population
                ));
            }
            population = next;
        }
    }
    writer.flush_stragglers();
    // Global ranking: fitness-descending, deduplicated by genome bytes.
    best.sort_by(|a, b| {
        b.1.fitness
            .cmp(&a.1.fitness)
            .then(a.0.hex().cmp(&b.0.hex()))
    });
    let mut seen = std::collections::BTreeSet::new();
    best.retain(|(g, _)| seen.insert(g.encode()));
    Ok(RedteamOutcome::Completed(RedteamReport {
        generations: summaries,
        best,
        evals_live: live.load(Ordering::SeqCst),
        evals_cached: cached,
        quarantined: quarantined_total,
        journal_dropped: writer.dropped(),
        journal_corrupt: prior.corrupt_lines,
    }))
}

/// One distilled corpus trace and its recorded expectations.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// File name inside the corpus directory.
    pub file: String,
    /// The genome the trace expresses.
    pub genome: PatternGenome,
    /// Fitness against the search's target defense.
    pub fitness: u64,
    /// Content digest of the encoded trace.
    pub trace_digest: u64,
    /// Defenses that mitigated the trace (no bit flips) at distillation.
    pub holds: Vec<String>,
    /// Defenses a victim crossed `N_th` under, unmitigated.
    pub breaks: Vec<String>,
}

fn defense_name(kind: DefenseKind) -> String {
    kind.cli_name()
        .map(str::to_string)
        .unwrap_or_else(|| kind.to_string())
}

/// Distills the top genomes into fixed v2 traces plus a sealed
/// manifest, replaying each against the full defense lineup to record
/// which hold and which fall. Returns the manifest entries.
///
/// # Errors
///
/// Corpus I/O failures (after retries) or a replay rejected by the
/// memory system.
pub fn distill_corpus(
    rc: &RedteamConfig,
    best: &[(PatternGenome, EvalOutcome)],
    corpus_dir: &Path,
    top: usize,
) -> Result<Vec<CorpusEntry>, String> {
    rc.io
        .create_dir_all(corpus_dir)
        .map_err(|e| format!("cannot create {}: {e}", corpus_dir.display()))?;
    let target = defense_name(rc.defense);
    let mut entries = Vec::new();
    for (rank, (genome, outcome)) in best.iter().take(top).enumerate() {
        let items: Vec<TraceItem> = genome
            .source(&rc.cfg.topology)
            .take_requests(rc.requests)
            .collect();
        let (bytes, trace_digest) = encode_trace(&rc.cfg.topology, items.iter().copied());
        let file = format!("rt{rank:02}-{target}.twt2");
        let path = corpus_dir.join(&file);
        with_retries(rc.retries, rc.backoff_ms, || {
            rc.io.write_atomically(&path, &bytes)
        })
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        let shared = Arc::new(items);
        let mut holds = Vec::new();
        let mut breaks = Vec::new();
        for kind in DefenseKind::verify_lineup() {
            let name = defense_name(kind);
            let replay = replay_trace(&rc.cfg, kind, shared.clone(), &file)?;
            if replay.metrics.bit_flips > 0 {
                if kind != DefenseKind::None {
                    twice_obs::bump(twice_obs::Ctr::SimRedteamBreaks);
                }
                breaks.push(name);
            } else {
                holds.push(name);
            }
        }
        entries.push(CorpusEntry {
            file,
            genome: genome.clone(),
            fitness: outcome.fitness,
            trace_digest,
            holds,
            breaks,
        });
    }
    let mut manifest = String::new();
    manifest.push_str(&seal_line(&emit_line(&[
        ("kind", JsonValue::Str("meta".to_string())),
        ("version", JsonValue::U64(REDTEAM_VERSION)),
        ("seed", JsonValue::U64(rc.cfg.seed)),
        ("requests", JsonValue::U64(rc.requests)),
        ("target", JsonValue::Str(target)),
        ("traces", JsonValue::U64(entries.len() as u64)),
    ])));
    manifest.push('\n');
    for e in &entries {
        manifest.push_str(&seal_line(&emit_line(&[
            ("kind", JsonValue::Str("trace".to_string())),
            ("file", JsonValue::Str(e.file.clone())),
            ("genome", JsonValue::Str(e.genome.hex())),
            ("summary", JsonValue::Str(e.genome.summary())),
            ("fit", JsonValue::U64(e.fitness)),
            ("trace_digest", JsonValue::U64(e.trace_digest)),
            ("holds", JsonValue::Str(e.holds.join(","))),
            ("breaks", JsonValue::Str(e.breaks.join(","))),
        ])));
        manifest.push('\n');
    }
    let manifest_path = corpus_dir.join(CORPUS_MANIFEST);
    with_retries(rc.retries, rc.backoff_ms, || {
        rc.io.write_atomically(&manifest_path, manifest.as_bytes())
    })
    .map_err(|e| format!("cannot write {}: {e}", manifest_path.display()))?;
    Ok(entries)
}

/// The security-regression verdict for one corpus.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Traces replayed.
    pub traces: u64,
    /// (trace, defense) replays executed.
    pub replays: u64,
    /// Human-readable observations (which defenses fell to which trace).
    pub findings: Vec<String>,
    /// Contract violations: a defense that held now breaks, a recorded
    /// break now holds, a [`MUST_HOLD`] defense falling, or an
    /// unreadable / digest-mismatched trace. Non-empty ⇒ exit 4.
    pub regressions: Vec<String>,
}

/// Replays every manifest trace against every [`DefenseKind`] and
/// diffs the observed hold/break outcomes against the manifest's
/// recorded expectations.
///
/// # Errors
///
/// A missing or wholly unreadable manifest (per-trace trouble is a
/// regression, not an error — the gate must report all traces).
pub fn verify_corpus(
    cfg: &SimConfig,
    io: &Arc<dyn CampaignIo>,
    corpus_dir: &Path,
    retries: u32,
    backoff_ms: u64,
) -> Result<VerifyReport, String> {
    let manifest_path = corpus_dir.join(CORPUS_MANIFEST);
    let bytes = with_retries(retries, backoff_ms, || io.read(&manifest_path))
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    let mut report = VerifyReport::default();
    // Replays must run under the seed the corpus was distilled with:
    // probabilistic defenses (PARA, PRoHIT) flip different coins under a
    // different seed and would produce phantom hold/break mismatches.
    let mut cfg = cfg.clone();
    for raw in String::from_utf8_lossy(&bytes).lines() {
        if raw.trim().is_empty() {
            continue;
        }
        let Some(line) = unseal_line(raw) else {
            report
                .regressions
                .push("manifest line failed its CRC seal".to_string());
            continue;
        };
        let Ok(fields) = parse_line(&line) else {
            report
                .regressions
                .push("manifest line is not parseable".to_string());
            continue;
        };
        if get_str(&fields, "kind") == Some("meta") {
            if let Some(seed) = get_u64(&fields, "seed") {
                cfg.seed = seed;
            }
            continue;
        }
        if get_str(&fields, "kind") != Some("trace") {
            continue;
        }
        let Some(file) = get_str(&fields, "file") else {
            report
                .regressions
                .push("manifest trace line lacks a file".to_string());
            continue;
        };
        report.traces += 1;
        let expected_breaks: std::collections::BTreeSet<String> = get_str(&fields, "breaks")
            .unwrap_or("")
            .split(',')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        let expected_digest = get_u64(&fields, "trace_digest");
        let path = corpus_dir.join(file);
        let trace_bytes = match with_retries(retries, backoff_ms, || io.read(&path)) {
            Ok(b) => b,
            Err(e) => {
                report.regressions.push(format!("{file}: unreadable ({e})"));
                continue;
            }
        };
        let salvaged = match decode_salvage(&trace_bytes, &cfg.topology) {
            Ok(s) => s,
            Err(e) => {
                report
                    .regressions
                    .push(format!("{file}: undecodable ({e})"));
                continue;
            }
        };
        if salvaged.items.is_empty() {
            report
                .regressions
                .push(format!("{file}: decodes to zero accesses"));
            continue;
        }
        let (_, recomputed) = encode_trace(&cfg.topology, salvaged.items.iter().copied());
        if let Some(expected) = expected_digest {
            if expected != recomputed {
                report.regressions.push(format!(
                    "{file}: trace digest {recomputed:#018x} != manifest {expected:#018x}"
                ));
                continue;
            }
        }
        let items = Arc::new(salvaged.items);
        for kind in DefenseKind::verify_lineup() {
            let name = defense_name(kind);
            report.replays += 1;
            let broke = match replay_trace(&cfg, kind, items.clone(), file) {
                Ok(replay) => replay.metrics.bit_flips > 0,
                Err(e) => {
                    report
                        .regressions
                        .push(format!("{file} vs {name}: replay failed ({e})"));
                    continue;
                }
            };
            if broke {
                report.findings.push(format!(
                    "{file}: victim crossed N_th unmitigated under {name}"
                ));
            }
            if broke && MUST_HOLD.contains(&name.as_str()) {
                twice_obs::bump(twice_obs::Ctr::SimRedteamBreaks);
                report.regressions.push(format!(
                    "{file}: {name} MUST hold but a victim crossed N_th unmitigated"
                ));
            } else if broke != expected_breaks.contains(&name) {
                report.regressions.push(format!(
                    "{file} vs {name}: manifest recorded {}, observed {}",
                    if expected_breaks.contains(&name) {
                        "break"
                    } else {
                        "hold"
                    },
                    if broke { "break" } else { "hold" },
                ));
            }
        }
    }
    if report.traces == 0 {
        report
            .regressions
            .push("manifest contains no trace entries".to_string());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(dir: &Path) -> RedteamConfig {
        let mut rc = RedteamConfig::new(
            SimConfig::fast_test(),
            DefenseKind::Trr { entries: 4 },
            dir.to_path_buf(),
        );
        rc.population = 6;
        rc.generations = 2;
        rc.requests = 3_000;
        rc.epoch = 512;
        rc
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("twice-redteam-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn eval_is_deterministic_and_scores_hammering() {
        let cfg = SimConfig::fast_test();
        let space = GenomeSpace::for_topology(&cfg.topology);
        let genome = &PatternGenome::classics(&space)[0];
        let a = eval_genome(&cfg, DefenseKind::None, genome, 4_000, 512, 0, 0, None);
        let b = eval_genome(&cfg, DefenseKind::None, genome, 4_000, 512, 0, 0, None);
        assert_eq!(a, b, "same genome, same outcome");
        assert!(a.quarantined.is_none());
        assert!(a.peak > 0, "a hammer must disturb someone");
        assert_eq!(a.stealth_peak, a.peak, "none never mitigates");
    }

    #[test]
    fn poisoned_genomes_are_quarantined_not_fatal() {
        let cfg = SimConfig::fast_test();
        let space = GenomeSpace::for_topology(&cfg.topology);
        let genome = &PatternGenome::classics(&space)[0];
        let p = eval_genome(
            &cfg,
            DefenseKind::None,
            genome,
            1_000,
            128,
            0,
            0,
            Some(Poison::Panic),
        );
        assert!(p.quarantined.as_deref().unwrap().contains("sabotage"));
        assert_eq!(p.fitness, 0);
        let s = eval_genome(
            &cfg,
            DefenseKind::None,
            genome,
            1_000,
            128,
            0,
            0,
            Some(Poison::SimBudget),
        );
        assert!(s.quarantined.as_deref().unwrap().contains("sim-time"));
    }

    #[test]
    fn search_completes_and_jobs_do_not_change_digests() {
        let d1 = tmp("serial");
        let d4 = tmp("par");
        let a = tiny_config(&d1);
        let mut b = tiny_config(&d4);
        b.jobs = 4;
        let ra = match redteam_search(&a).unwrap() {
            RedteamOutcome::Completed(r) => r,
            other => panic!("unexpected {other:?}"),
        };
        let rb = match redteam_search(&b).unwrap() {
            RedteamOutcome::Completed(r) => r,
            other => panic!("unexpected {other:?}"),
        };
        let da: Vec<u64> = ra.generations.iter().map(|g| g.digest).collect();
        let db: Vec<u64> = rb.generations.iter().map(|g| g.digest).collect();
        assert_eq!(da, db, "--jobs must not change generation digests");
        assert!(!ra.best.is_empty());
        let _ = std::fs::remove_dir_all(&d1);
        let _ = std::fs::remove_dir_all(&d4);
    }

    #[test]
    fn halt_and_resume_reproduces_uninterrupted_digests() {
        let base = tmp("resume-base");
        let cut = tmp("resume-cut");
        let mut uninterrupted = tiny_config(&base);
        uninterrupted.sabotage = 2;
        let full = match redteam_search(&uninterrupted).unwrap() {
            RedteamOutcome::Completed(r) => r,
            other => panic!("unexpected {other:?}"),
        };
        assert!(full.quarantined >= 2, "sabotage must quarantine");

        let mut halted = tiny_config(&cut);
        halted.sabotage = 2;
        halted.halt_after = Some(4);
        match redteam_search(&halted).unwrap() {
            RedteamOutcome::Halted { evals_live } => assert_eq!(evals_live, 4),
            other => panic!("expected halt, got {other:?}"),
        }
        let mut resumed = tiny_config(&cut);
        resumed.sabotage = 2;
        let done = match redteam_search(&resumed).unwrap() {
            RedteamOutcome::Completed(r) => r,
            other => panic!("expected completion, got {other:?}"),
        };
        assert!(done.evals_cached >= 4, "resume must adopt journaled evals");
        let a: Vec<u64> = full.generations.iter().map(|g| g.digest).collect();
        let b: Vec<u64> = done.generations.iter().map(|g| g.digest).collect();
        assert_eq!(a, b, "resumed digests must match uninterrupted run");
        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cut);
    }

    #[test]
    fn journal_from_other_campaign_is_rejected() {
        let dir = tmp("mismatch");
        let rc = tiny_config(&dir);
        match redteam_search(&rc).unwrap() {
            RedteamOutcome::Completed(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        let mut other = tiny_config(&dir);
        other.cfg.seed ^= 1;
        let err = redteam_search(&other).unwrap_err();
        assert!(err.contains("different campaign"), "got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distill_and_verify_round_trip() {
        let dir = tmp("distill");
        let corpus = dir.join("corpus");
        let mut rc = tiny_config(&dir);
        rc.generations = 1;
        rc.requests = 2_000;
        let report = match redteam_search(&rc).unwrap() {
            RedteamOutcome::Completed(r) => r,
            other => panic!("unexpected {other:?}"),
        };
        let entries = distill_corpus(&rc, &report.best, &corpus, 2).unwrap();
        assert_eq!(entries.len(), 2);
        // At this tiny request count no defense (not even `none`) can be
        // broken, so the manifest must record 12 holds per trace; the
        // real-scale corpus pins its `none` break the same way.
        for e in &entries {
            assert_eq!(e.holds.len() + e.breaks.len(), 12, "{e:?}");
        }
        let verdict = verify_corpus(&rc.cfg, &rc.io, &corpus, 1, 0).unwrap();
        assert_eq!(verdict.traces, 2);
        assert!(
            verdict.regressions.is_empty(),
            "fresh corpus must verify clean: {:?}",
            verdict.regressions
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_flags_tampered_corpus() {
        let dir = tmp("tamper");
        let corpus = dir.join("corpus");
        let mut rc = tiny_config(&dir);
        rc.generations = 1;
        rc.requests = 2_000;
        let report = match redteam_search(&rc).unwrap() {
            RedteamOutcome::Completed(r) => r,
            other => panic!("unexpected {other:?}"),
        };
        let entries = distill_corpus(&rc, &report.best, &corpus, 1).unwrap();
        let victim = corpus.join(&entries[0].file);
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&victim, bytes).unwrap();
        let verdict = verify_corpus(&rc.cfg, &rc.io, &corpus, 1, 0).unwrap();
        assert!(
            !verdict.regressions.is_empty(),
            "a tampered trace must be a regression"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
