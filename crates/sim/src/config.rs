//! Simulated-system configuration.

use twice::TwiceParams;
use twice_common::fault::FaultPlan;
use twice_common::{ConfigError, Topology};
use twice_memctrl::controller::ControllerConfig;
use twice_memctrl::controller::RefreshMode;
use twice_memctrl::pagepolicy::PagePolicy;
use twice_memctrl::resilience::RetryPolicy;
use twice_memctrl::scheduler::SchedulerKind;

/// Everything needed to build a [`crate::system::System`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Memory topology (channels/ranks/banks/rows).
    pub topology: Topology,
    /// TWiCe parameters (also carries the DDR timing set used by the
    /// whole memory system).
    pub params: TwiceParams,
    /// Disturbance threshold for the *fault model* (may be set lower than
    /// `params.n_th` in protection tests to stress the defense; equal by
    /// default).
    pub fault_n_th: u64,
    /// Remapped (spared) rows per bank.
    pub faults_per_bank: u32,
    /// Overdrive fault model: extra bit flips per this much disturbance
    /// beyond `fault_n_th` (None = classic single-flip model).
    pub overshoot_interval: Option<u64>,
    /// Half-Double coupling: every `k`-th ACT also disturbs distance-2
    /// rows (None = classic distance-1 model).
    pub far_coupling: Option<u64>,
    /// ARR blast radius (1 = the paper's design; 2 = widened "TWiCe+").
    pub arr_radius: u32,
    /// Auto-refresh mode (per-bank or all-bank).
    pub refresh_mode: RefreshMode,
    /// Scheduler for every channel.
    pub scheduler: SchedulerKind,
    /// Page policy for every channel.
    pub page_policy: PagePolicy,
    /// Request-queue capacity per channel.
    pub queue_capacity: usize,
    /// Move real bytes through the data model on every column access
    /// (integrity experiments; off by default).
    pub move_data: bool,
    /// Master seed (defenses, remap tables, workloads derive from it).
    pub seed: u64,
    /// Chaos fault plan applied to every channel (engine SEUs, RCD bus
    /// faults, MC refresh/jitter faults). [`FaultPlan::none`] by default.
    pub fault_plan: FaultPlan,
    /// Nack-retry bounds for every channel controller.
    pub retry: RetryPolicy,
    /// Whether TWiCe engines get the parity/scrub hardening (`false`
    /// models the paper's original, fault-oblivious design).
    pub twice_scrubbing: bool,
    /// Probability for the MC-side PARA fallback installed on every
    /// channel whose primary defense is RCD-resident: while that defense
    /// reports corruption, PARA covers the channel. `None` = no fallback.
    pub para_fallback: Option<f64>,
}

impl SimConfig {
    /// The Table 4 system: 2 channels × 2 ranks × 16 banks of DDR4-2400,
    /// PAR-BS, minimalist-open, 64-entry queues.
    pub fn paper_default() -> SimConfig {
        SimConfig {
            topology: Topology::paper_default(),
            params: TwiceParams::paper_default(),
            fault_n_th: 139_000,
            faults_per_bank: 0,
            overshoot_interval: None,
            far_coupling: None,
            arr_radius: 1,
            refresh_mode: RefreshMode::PerBank,
            scheduler: SchedulerKind::ParBs,
            page_policy: PagePolicy::paper_default(),
            queue_capacity: 64,
            move_data: false,
            seed: 0x71CE,
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::paper_default(),
            twice_scrubbing: true,
            para_fallback: None,
        }
    }

    /// A scaled-down system for unit tests: one channel, small banks,
    /// compressed refresh window, low thresholds — attacks complete in
    /// tens of thousands of requests instead of millions.
    pub fn fast_test() -> SimConfig {
        let params = TwiceParams::fast_test(); // thRH=256, window 64us
        SimConfig {
            topology: Topology {
                channels: 1,
                ranks_per_channel: 1,
                banks_per_rank: 2,
                rows_per_bank: params.rows_per_bank,
                cols_per_row: 128,
                row_bytes: 8_192,
                devices_per_rank: 8,
            },
            fault_n_th: params.n_th,
            params,
            faults_per_bank: 0,
            overshoot_interval: None,
            far_coupling: None,
            arr_radius: 1,
            refresh_mode: RefreshMode::PerBank,
            scheduler: SchedulerKind::ParBs,
            page_policy: PagePolicy::paper_default(),
            queue_capacity: 64,
            move_data: false,
            seed: 42,
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::paper_default(),
            twice_scrubbing: true,
            para_fallback: None,
        }
    }

    /// Banks per channel (defense instances are per channel).
    pub fn banks_per_channel(&self) -> u32 {
        self.topology.banks_per_channel()
    }

    /// The per-channel controller configuration.
    pub fn controller_config(&self, channel: u8) -> ControllerConfig {
        ControllerConfig {
            timings: self.params.timings.clone(),
            ranks: self.topology.ranks_per_channel,
            banks_per_rank: self.topology.banks_per_rank,
            rows_per_bank: self.topology.rows_per_bank,
            n_th: self.fault_n_th,
            faults_per_bank: self.faults_per_bank,
            overshoot_interval: self.overshoot_interval,
            far_coupling: self.far_coupling,
            arr_radius: self.arr_radius,
            refresh_mode: self.refresh_mode,
            scheduler: self.scheduler,
            page_policy: self.page_policy,
            queue_capacity: self.queue_capacity,
            move_data: self.move_data,
            bank_base: 0, // defenses are instantiated per channel
            remap_seed: self.seed ^ (u64::from(channel) << 48),
            retry: self.retry,
            fault_plan: {
                // Give each channel a decorrelated copy of the plan.
                let mut plan = self.fault_plan.clone();
                plan.seed ^= u64::from(channel) << 32;
                plan
            },
        }
    }

    /// Validates the composite configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violation among topology, timing, and TWiCe
    /// parameter validation, or a mismatch between the topology's rows
    /// per bank and `params.rows_per_bank`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.topology.validate()?;
        self.params.validate()?;
        if self.topology.rows_per_bank != self.params.rows_per_bank {
            return Err(ConfigError::new(format!(
                "topology rows_per_bank ({}) != params.rows_per_bank ({})",
                self.topology.rows_per_bank, self.params.rows_per_bank
            )));
        }
        if self.fault_n_th == 0 {
            return Err(ConfigError::new("fault_n_th must be non-zero"));
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        SimConfig::paper_default().validate().unwrap();
    }

    #[test]
    fn fast_test_validates() {
        SimConfig::fast_test().validate().unwrap();
    }

    #[test]
    fn mismatched_rows_rejected() {
        let mut cfg = SimConfig::fast_test();
        cfg.topology.rows_per_bank += 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn controller_configs_differ_per_channel_seed() {
        let cfg = SimConfig::paper_default();
        let a = cfg.controller_config(0);
        let b = cfg.controller_config(1);
        assert_ne!(a.remap_seed, b.remap_seed);
        assert_eq!(a.banks_per_rank, 16);
    }
}
