//! Workload × defense runners.

use crate::config::SimConfig;
use crate::metrics::RunMetrics;
use crate::outcome::CellError;
use crate::system::System;
use std::fmt;
use twice_common::RowId;
use twice_mitigations::DefenseKind;
use twice_workloads::attack::{HammerAttack, HammerShape};
use twice_workloads::fft::FftSource;
use twice_workloads::mica::MicaSource;
use twice_workloads::mix::{mix_blend, mix_high, spec_rate, tenant_blend};
use twice_workloads::pagerank::PageRankSource;
use twice_workloads::radix::RadixSource;
use twice_workloads::spec::app;
use twice_workloads::synth::{S1Random, S2CbtAdversarial, S3SingleRowHammer};
use twice_workloads::{AccessSource, TraceItem};

/// The workloads of §7.2.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadKind {
    /// 16-copy SPECrate of one application.
    SpecRate(&'static str),
    /// The memory-intensive 16-app mix.
    MixHigh,
    /// The blended 16-app mix.
    MixBlend,
    /// SPLASH-2X FFT.
    Fft,
    /// SPLASH-2X RADIX.
    Radix,
    /// MICA key-value store.
    Mica,
    /// GAP PageRank.
    PageRank,
    /// Synthetic: uniform random.
    S1,
    /// Synthetic: CBT-adversarial.
    S2,
    /// Synthetic: single-row hammer.
    S3,
    /// A configurable hammer attack on bank 0.
    Attack(HammerShape),
    /// A 16-tenant fleet blend: `attackers` hammer sources (shapes
    /// rotating over single-, double-, many-sided, and decoy) mixed
    /// with MAPKI-weighted SPEC tenants; `salt` decorrelates shards
    /// sharing one base seed.
    FleetMix {
        /// How many of the 16 tenants are attackers (capped at 8).
        attackers: u16,
        /// Per-shard seed salt, folded into `cfg.seed`.
        salt: u64,
    },
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadKind::SpecRate(name) => write!(f, "{name}"),
            WorkloadKind::MixHigh => write!(f, "mix-high"),
            WorkloadKind::MixBlend => write!(f, "mix-blend"),
            WorkloadKind::Fft => write!(f, "FFT"),
            WorkloadKind::Radix => write!(f, "RADIX"),
            WorkloadKind::Mica => write!(f, "MICA"),
            WorkloadKind::PageRank => write!(f, "PageRank"),
            WorkloadKind::S1 => write!(f, "S1"),
            WorkloadKind::S2 => write!(f, "S2"),
            WorkloadKind::S3 => write!(f, "S3"),
            WorkloadKind::Attack(shape) => write!(f, "attack({shape:?})"),
            WorkloadKind::FleetMix { attackers, salt } => {
                write!(f, "fleet-mix(a{attackers},s{salt:x})")
            }
        }
    }
}

impl WorkloadKind {
    /// The Figure 7(a) workload list (SPECrate average is computed from
    /// the individual SpecRate runs by the experiment module).
    pub fn figure7a() -> Vec<WorkloadKind> {
        vec![
            WorkloadKind::MixHigh,
            WorkloadKind::MixBlend,
            WorkloadKind::Fft,
            WorkloadKind::Mica,
            WorkloadKind::PageRank,
            WorkloadKind::Radix,
        ]
    }

    /// The Figure 7(b) synthetic list.
    pub fn figure7b() -> Vec<WorkloadKind> {
        vec![WorkloadKind::S1, WorkloadKind::S2, WorkloadKind::S3]
    }

    /// Resolves a CLI workload name: the named kinds (`s1`, `mix-high`,
    /// `pagerank`, …) plus every SPEC CPU2006 application model
    /// (`mcf`, `libquantum`, …) as a 16-copy SPECrate run.
    pub fn parse(name: &str) -> Option<WorkloadKind> {
        Some(match name {
            "s1" => WorkloadKind::S1,
            "s2" => WorkloadKind::S2,
            "s3" => WorkloadKind::S3,
            "mix-high" => WorkloadKind::MixHigh,
            "mix-blend" => WorkloadKind::MixBlend,
            "fft" => WorkloadKind::Fft,
            "radix" => WorkloadKind::Radix,
            "mica" => WorkloadKind::Mica,
            "pagerank" => WorkloadKind::PageRank,
            other => WorkloadKind::SpecRate(app(other)?.name),
        })
    }
}

/// Builds the (unbounded, snapshot-capable) generator for `kind`.
///
/// The boxed source keeps its [`AccessSource`] snapshot hooks, so a
/// checkpointed run can save and restore the generator cursor alongside
/// the system state (see [`crate::checkpoint::ResumableRun`]).
///
/// # Errors
///
/// [`CellError::UnknownApp`] if a `SpecRate` name has no model.
pub fn try_build_source(
    cfg: &SimConfig,
    kind: &WorkloadKind,
) -> Result<Box<dyn AccessSource + Send>, CellError> {
    let topo = &cfg.topology;
    let seed = cfg.seed;
    Ok(match kind {
        WorkloadKind::SpecRate(name) => {
            let model = app(name).ok_or_else(|| CellError::UnknownApp((*name).to_string()))?;
            Box::new(spec_rate(topo, &model, seed))
        }
        WorkloadKind::MixHigh => Box::new(mix_high(topo, seed)),
        WorkloadKind::MixBlend => Box::new(mix_blend(topo, seed)),
        WorkloadKind::Fft => Box::new(FftSource::new(topo, 1 << 22, 16)),
        WorkloadKind::Radix => Box::new(RadixSource::new(topo, 1 << 22, 256, 16, seed)),
        WorkloadKind::Mica => Box::new(MicaSource::standard(topo, seed)),
        WorkloadKind::PageRank => Box::new(PageRankSource::standard(topo, seed)),
        WorkloadKind::S1 => Box::new(S1Random::new(topo, seed)),
        WorkloadKind::S2 => Box::new(S2CbtAdversarial::standard(topo, seed)),
        WorkloadKind::S3 => Box::new(S3SingleRowHammer::new(topo, seed)),
        WorkloadKind::Attack(shape) => Box::new(HammerAttack::new(topo, 0, shape.clone())),
        WorkloadKind::FleetMix { attackers, salt } => {
            Box::new(tenant_blend(topo, seed ^ salt, *attackers))
        }
    })
}

/// Builds the generator for `kind`, panicking on unknown SPEC names.
pub fn build_source(cfg: &SimConfig, kind: &WorkloadKind) -> Box<dyn AccessSource + Send> {
    try_build_source(cfg, kind).unwrap_or_else(|e| panic!("{e}"))
}

/// Builds the bounded trace for `kind` with `requests` accesses.
///
/// # Panics
///
/// Panics if a `SpecRate` name is unknown.
pub fn build_trace(
    cfg: &SimConfig,
    kind: &WorkloadKind,
    requests: u64,
) -> Box<dyn Iterator<Item = TraceItem>> {
    Box::new(build_source(cfg, kind).take_requests(requests))
}

/// Runs `workload` under `defense` for `requests` accesses and collects
/// the metrics, reporting failures as typed per-cell errors instead of
/// unwinding.
///
/// # Errors
///
/// [`CellError::InvalidConfig`], [`CellError::UnknownApp`], or
/// [`CellError::RetryExhausted`].
pub fn try_run(
    cfg: &SimConfig,
    workload: WorkloadKind,
    defense: DefenseKind,
    requests: u64,
) -> Result<RunMetrics, CellError> {
    cfg.validate()
        .map_err(|e| CellError::InvalidConfig(e.to_string()))?;
    let source = try_build_source(cfg, &workload)?;
    let mut system = System::new(cfg, defense);
    system
        .run(source.take_requests(requests))
        .map_err(|e| CellError::RetryExhausted(e.to_string()))?;
    Ok(system.metrics(workload.to_string()))
}

/// One independent cell of an experiment grid: workload × defense ×
/// request budget.
pub type RunSpec = (WorkloadKind, DefenseKind, u64);

/// Runs every spec against `cfg` across a pool of `jobs` workers (see
/// [`crate::parallel::parallel_map`]), returning results in spec order.
///
/// Each run is fully self-contained — own generator, own [`System`] —
/// and seeded by `cfg` alone, so results are identical for every `jobs`
/// value; the pool only changes wall-clock time.
pub fn try_run_batch(
    cfg: &SimConfig,
    specs: &[RunSpec],
    jobs: usize,
) -> Vec<Result<RunMetrics, CellError>> {
    crate::parallel::parallel_map(jobs, specs, |_, (workload, defense, requests)| {
        try_run(cfg, workload.clone(), *defense, *requests)
    })
}

/// Runs `workload` under `defense` for `requests` accesses and collects
/// the metrics.
pub fn run(
    cfg: &SimConfig,
    workload: WorkloadKind,
    defense: DefenseKind,
    requests: u64,
) -> RunMetrics {
    try_run(cfg, workload, defense, requests)
        .unwrap_or_else(|e| panic!("{e}; use try_run for fallible cells"))
}

/// Convenience: a double-sided attack around `victim`.
pub fn double_sided(victim: u32) -> WorkloadKind {
    WorkloadKind::Attack(HammerShape::DoubleSided {
        victim: RowId(victim),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twice::TableOrganization;

    #[test]
    fn every_workload_builds_and_runs_briefly() {
        let cfg = SimConfig::fast_test();
        let workloads = [
            WorkloadKind::SpecRate("mcf"),
            WorkloadKind::MixHigh,
            WorkloadKind::MixBlend,
            WorkloadKind::Fft,
            WorkloadKind::Radix,
            WorkloadKind::Mica,
            WorkloadKind::PageRank,
            WorkloadKind::S1,
            WorkloadKind::S2,
            WorkloadKind::S3,
            double_sided(100),
            WorkloadKind::FleetMix {
                attackers: 4,
                salt: 0x42,
            },
        ];
        for w in workloads {
            let label = w.to_string();
            let m = run(&cfg, w, DefenseKind::None, 500);
            assert_eq!(m.requests, 500, "{label}");
            assert!(m.normal_acts > 0, "{label}");
        }
    }

    #[test]
    fn s3_under_twice_detects_and_stays_cheap() {
        let cfg = SimConfig::fast_test(); // thRH = 256
        let m = run(
            &cfg,
            WorkloadKind::S3,
            DefenseKind::Twice(TableOrganization::FullyAssociative),
            20_000,
        );
        assert!(m.detections > 0, "the hammer must be detected");
        assert_eq!(m.bit_flips, 0);
        // Up to 2 additional ACTs per thRH normal ACTs.
        let bound = (m.normal_acts / cfg.params.th_rh + 1) * 2;
        assert!(m.additional_acts <= bound + 2);
        assert!(m.nacks > 0, "ARRs must have nacked some commands");
    }

    #[test]
    fn parse_covers_named_kinds_and_spec_apps() {
        assert_eq!(WorkloadKind::parse("s3"), Some(WorkloadKind::S3));
        assert_eq!(WorkloadKind::parse("mix-high"), Some(WorkloadKind::MixHigh));
        assert_eq!(
            WorkloadKind::parse("pagerank"),
            Some(WorkloadKind::PageRank)
        );
        assert_eq!(
            WorkloadKind::parse("mcf"),
            Some(WorkloadKind::SpecRate("mcf"))
        );
        assert_eq!(WorkloadKind::parse("nope"), None);
    }

    #[test]
    fn unknown_spec_app_panics() {
        let cfg = SimConfig::fast_test();
        let result =
            std::panic::catch_unwind(|| build_trace(&cfg, &WorkloadKind::SpecRate("nope"), 1));
        assert!(result.is_err());
    }
}
