//! Workload × defense runners.

use crate::config::SimConfig;
use crate::metrics::RunMetrics;
use crate::system::System;
use std::fmt;
use twice_common::RowId;
use twice_mitigations::DefenseKind;
use twice_workloads::attack::{HammerAttack, HammerShape};
use twice_workloads::fft::FftSource;
use twice_workloads::mica::MicaSource;
use twice_workloads::mix::{mix_blend, mix_high, spec_rate};
use twice_workloads::pagerank::PageRankSource;
use twice_workloads::radix::RadixSource;
use twice_workloads::spec::app;
use twice_workloads::synth::{S1Random, S2CbtAdversarial, S3SingleRowHammer};
use twice_workloads::{AccessSource, TraceItem};

/// The workloads of §7.2.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadKind {
    /// 16-copy SPECrate of one application.
    SpecRate(&'static str),
    /// The memory-intensive 16-app mix.
    MixHigh,
    /// The blended 16-app mix.
    MixBlend,
    /// SPLASH-2X FFT.
    Fft,
    /// SPLASH-2X RADIX.
    Radix,
    /// MICA key-value store.
    Mica,
    /// GAP PageRank.
    PageRank,
    /// Synthetic: uniform random.
    S1,
    /// Synthetic: CBT-adversarial.
    S2,
    /// Synthetic: single-row hammer.
    S3,
    /// A configurable hammer attack on bank 0.
    Attack(HammerShape),
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadKind::SpecRate(name) => write!(f, "{name}"),
            WorkloadKind::MixHigh => write!(f, "mix-high"),
            WorkloadKind::MixBlend => write!(f, "mix-blend"),
            WorkloadKind::Fft => write!(f, "FFT"),
            WorkloadKind::Radix => write!(f, "RADIX"),
            WorkloadKind::Mica => write!(f, "MICA"),
            WorkloadKind::PageRank => write!(f, "PageRank"),
            WorkloadKind::S1 => write!(f, "S1"),
            WorkloadKind::S2 => write!(f, "S2"),
            WorkloadKind::S3 => write!(f, "S3"),
            WorkloadKind::Attack(shape) => write!(f, "attack({shape:?})"),
        }
    }
}

impl WorkloadKind {
    /// The Figure 7(a) workload list (SPECrate average is computed from
    /// the individual SpecRate runs by the experiment module).
    pub fn figure7a() -> Vec<WorkloadKind> {
        vec![
            WorkloadKind::MixHigh,
            WorkloadKind::MixBlend,
            WorkloadKind::Fft,
            WorkloadKind::Mica,
            WorkloadKind::PageRank,
            WorkloadKind::Radix,
        ]
    }

    /// The Figure 7(b) synthetic list.
    pub fn figure7b() -> Vec<WorkloadKind> {
        vec![WorkloadKind::S1, WorkloadKind::S2, WorkloadKind::S3]
    }
}

/// Builds the bounded trace for `kind` with `requests` accesses.
///
/// # Panics
///
/// Panics if a `SpecRate` name is unknown.
pub fn build_trace(
    cfg: &SimConfig,
    kind: &WorkloadKind,
    requests: u64,
) -> Box<dyn Iterator<Item = TraceItem>> {
    let topo = &cfg.topology;
    let seed = cfg.seed;
    match kind {
        WorkloadKind::SpecRate(name) => {
            let model = app(name).unwrap_or_else(|| panic!("unknown SPEC app {name}"));
            Box::new(spec_rate(topo, &model, seed).take_requests(requests))
        }
        WorkloadKind::MixHigh => Box::new(mix_high(topo, seed).take_requests(requests)),
        WorkloadKind::MixBlend => Box::new(mix_blend(topo, seed).take_requests(requests)),
        WorkloadKind::Fft => Box::new(FftSource::new(topo, 1 << 22, 16).take_requests(requests)),
        WorkloadKind::Radix => {
            Box::new(RadixSource::new(topo, 1 << 22, 256, 16, seed).take_requests(requests))
        }
        WorkloadKind::Mica => Box::new(MicaSource::standard(topo, seed).take_requests(requests)),
        WorkloadKind::PageRank => {
            Box::new(PageRankSource::standard(topo, seed).take_requests(requests))
        }
        WorkloadKind::S1 => Box::new(S1Random::new(topo, seed).take_requests(requests)),
        WorkloadKind::S2 => {
            Box::new(S2CbtAdversarial::standard(topo, seed).take_requests(requests))
        }
        WorkloadKind::S3 => Box::new(S3SingleRowHammer::new(topo, seed).take_requests(requests)),
        WorkloadKind::Attack(shape) => {
            Box::new(HammerAttack::new(topo, 0, shape.clone()).take_requests(requests))
        }
    }
}

/// Runs `workload` under `defense` for `requests` accesses and collects
/// the metrics.
pub fn run(
    cfg: &SimConfig,
    workload: WorkloadKind,
    defense: DefenseKind,
    requests: u64,
) -> RunMetrics {
    let mut system = System::new(cfg, defense);
    let trace = build_trace(cfg, &workload, requests);
    system
        .run(trace)
        .expect("retry budget exhausted; drive System::run directly for fault campaigns");
    system.metrics(workload.to_string())
}

/// Convenience: a double-sided attack around `victim`.
pub fn double_sided(victim: u32) -> WorkloadKind {
    WorkloadKind::Attack(HammerShape::DoubleSided {
        victim: RowId(victim),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twice::TableOrganization;

    #[test]
    fn every_workload_builds_and_runs_briefly() {
        let cfg = SimConfig::fast_test();
        let workloads = [
            WorkloadKind::SpecRate("mcf"),
            WorkloadKind::MixHigh,
            WorkloadKind::MixBlend,
            WorkloadKind::Fft,
            WorkloadKind::Radix,
            WorkloadKind::Mica,
            WorkloadKind::PageRank,
            WorkloadKind::S1,
            WorkloadKind::S2,
            WorkloadKind::S3,
            double_sided(100),
        ];
        for w in workloads {
            let label = w.to_string();
            let m = run(&cfg, w, DefenseKind::None, 500);
            assert_eq!(m.requests, 500, "{label}");
            assert!(m.normal_acts > 0, "{label}");
        }
    }

    #[test]
    fn s3_under_twice_detects_and_stays_cheap() {
        let cfg = SimConfig::fast_test(); // thRH = 256
        let m = run(
            &cfg,
            WorkloadKind::S3,
            DefenseKind::Twice(TableOrganization::FullyAssociative),
            20_000,
        );
        assert!(m.detections > 0, "the hammer must be detected");
        assert_eq!(m.bit_flips, 0);
        // Up to 2 additional ACTs per thRH normal ACTs.
        let bound = (m.normal_acts / cfg.params.th_rh + 1) * 2;
        assert!(m.additional_acts <= bound + 2);
        assert!(m.nacks > 0, "ARRs must have nacked some commands");
    }

    #[test]
    fn unknown_spec_app_panics() {
        let cfg = SimConfig::fast_test();
        let result =
            std::panic::catch_unwind(|| build_trace(&cfg, &WorkloadKind::SpecRate("nope"), 1));
        assert!(result.is_err());
    }
}
