//! Per-run metric records.

use twice_common::{Span, Time};

/// Everything measured from one workload × defense run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Workload label.
    pub workload: String,
    /// Defense label.
    pub defense: String,
    /// Requests serviced.
    pub requests: u64,
    /// Normal (MC-issued) row activations.
    pub normal_acts: u64,
    /// Additional activations caused by the defense (ARR victims,
    /// explicit refreshes, metadata traffic).
    pub additional_acts: u64,
    /// Attack detections raised.
    pub detections: u64,
    /// Row-hammer bit flips recorded by the fault model.
    pub bit_flips: usize,
    /// Commands nacked by the RCDs.
    pub nacks: u64,
    /// Total DRAM energy in picojoules.
    pub energy_pj: u64,
    /// Final simulated time.
    pub sim_time: Time,
    /// Mean queue-to-completion request latency.
    pub latency_mean: Span,
    /// 99th-percentile request latency (upper bucket edge).
    pub latency_p99: Span,
    /// Worst-case request latency (exact).
    pub latency_max: Span,
}

impl RunMetrics {
    /// Figure 7's y-axis: additional ACTs relative to normal ACTs.
    pub fn additional_act_ratio(&self) -> f64 {
        if self.normal_acts == 0 {
            0.0
        } else {
            self.additional_acts as f64 / self.normal_acts as f64
        }
    }

    /// The ratio formatted as Figure 7 prints it (percent).
    pub fn ratio_percent(&self) -> String {
        format!("{:.4}%", self.additional_act_ratio() * 100.0)
    }

    /// Average simulated inter-activation time (sanity metric: must not
    /// beat `tRC` on a single bank).
    pub fn mean_act_interval(&self) -> Span {
        match self.sim_time.as_ps().checked_div(self.normal_acts) {
            Some(ps) => Span::from_ps(ps),
            None => Span::ZERO,
        }
    }
}

/// Campaign-level aggregates, accumulated **per cell** and merged at
/// collection time.
///
/// Once grid cells run concurrently, a shared mutable `u64` accumulator
/// would race (or demand atomics and an ordering argument). Instead each
/// worker sums only the cells it owns into a private `CampaignTotals`,
/// and the campaign merges the per-cell/per-worker totals after the pool
/// joins — addition is associative and commutative, so any merge order
/// yields the serial sum, which `merges_lose_no_counts_under_concurrency`
/// checks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignTotals {
    /// Completed cells absorbed.
    pub cells: u64,
    /// Requests serviced across those cells.
    pub requests: u64,
    /// Normal (MC-issued) row activations.
    pub normal_acts: u64,
    /// Defense-driven extra activations.
    pub additional_acts: u64,
    /// Attack detections raised.
    pub detections: u64,
    /// Row-hammer bit flips recorded by the fault model.
    pub bit_flips: u64,
    /// Commands nacked by the RCDs (protocol + injected).
    pub nacks: u64,
    /// Total DRAM energy in picojoules.
    pub energy_pj: u64,
}

impl CampaignTotals {
    /// Adds one completed run's metrics to this accumulator.
    pub fn absorb(&mut self, m: &RunMetrics) {
        self.cells += 1;
        self.requests += m.requests;
        self.normal_acts += m.normal_acts;
        self.additional_acts += m.additional_acts;
        self.detections += m.detections;
        self.bit_flips += m.bit_flips as u64;
        self.nacks += m.nacks;
        self.energy_pj += m.energy_pj;
    }

    /// Folds another accumulator (e.g. one worker's share of the grid)
    /// into this one.
    pub fn merge(&mut self, other: &CampaignTotals) {
        self.cells += other.cells;
        self.requests += other.requests;
        self.normal_acts += other.normal_acts;
        self.additional_acts += other.additional_acts;
        self.detections += other.detections;
        self.bit_flips += other.bit_flips;
        self.nacks += other.nacks;
        self.energy_pj += other.energy_pj;
    }

    /// Figure 7's y-axis over the whole campaign.
    pub fn additional_act_ratio(&self) -> f64 {
        if self.normal_acts == 0 {
            0.0
        } else {
            self.additional_acts as f64 / self.normal_acts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(normal: u64, additional: u64) -> RunMetrics {
        RunMetrics {
            workload: "w".into(),
            defense: "d".into(),
            requests: 0,
            normal_acts: normal,
            additional_acts: additional,
            detections: 0,
            bit_flips: 0,
            nacks: 0,
            energy_pj: 0,
            sim_time: Time::from_ps(1_000),
            latency_mean: Span::ZERO,
            latency_p99: Span::ZERO,
            latency_max: Span::ZERO,
        }
    }

    #[test]
    fn ratio_math() {
        assert_eq!(metrics(0, 5).additional_act_ratio(), 0.0);
        assert!((metrics(32_768, 2).additional_act_ratio() - 6.1e-5).abs() < 1e-6);
        assert_eq!(metrics(1000, 1).ratio_percent(), "0.1000%");
    }

    #[test]
    fn act_interval() {
        assert_eq!(metrics(10, 0).mean_act_interval(), Span::from_ps(100));
        assert_eq!(metrics(0, 0).mean_act_interval(), Span::ZERO);
    }

    #[test]
    fn absorb_sums_every_field() {
        let mut t = CampaignTotals::default();
        let mut m = metrics(100, 7);
        m.requests = 50;
        m.detections = 3;
        m.bit_flips = 2;
        m.nacks = 9;
        m.energy_pj = 1_000;
        t.absorb(&m);
        t.absorb(&m);
        assert_eq!(
            t,
            CampaignTotals {
                cells: 2,
                requests: 100,
                normal_acts: 200,
                additional_acts: 14,
                detections: 6,
                bit_flips: 4,
                nacks: 18,
                energy_pj: 2_000,
            }
        );
        assert!((t.additional_act_ratio() - 0.07).abs() < 1e-12);
    }

    #[test]
    fn merges_lose_no_counts_under_concurrency() {
        // 64 cells of synthetic metrics, absorbed serially as the
        // reference, then absorbed by an 8-worker pool into per-worker
        // private accumulators merged at collection. The parallel total
        // must equal the serial total exactly — no shared counters, no
        // lost updates.
        let cells: Vec<RunMetrics> = (0..64u64)
            .map(|i| {
                let mut m = metrics(1_000 + i * 17, i * 3);
                m.requests = 100 + i;
                m.detections = i % 5;
                m.bit_flips = (i % 3) as usize;
                m.nacks = i * 2;
                m.energy_pj = i * 1_000;
                m
            })
            .collect();
        let mut serial = CampaignTotals::default();
        for m in &cells {
            serial.absorb(m);
        }
        // One totals value per cell, produced concurrently...
        let per_cell = crate::parallel::parallel_map(8, &cells, |_, m| {
            let mut t = CampaignTotals::default();
            t.absorb(m);
            t
        });
        // ...then merged single-threaded at collection time.
        let mut merged = CampaignTotals::default();
        for t in &per_cell {
            merged.merge(t);
        }
        assert_eq!(merged, serial);
    }
}
