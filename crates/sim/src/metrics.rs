//! Per-run metric records.

use twice_common::{Span, Time};

/// Everything measured from one workload × defense run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Workload label.
    pub workload: String,
    /// Defense label.
    pub defense: String,
    /// Requests serviced.
    pub requests: u64,
    /// Normal (MC-issued) row activations.
    pub normal_acts: u64,
    /// Additional activations caused by the defense (ARR victims,
    /// explicit refreshes, metadata traffic).
    pub additional_acts: u64,
    /// Attack detections raised.
    pub detections: u64,
    /// Row-hammer bit flips recorded by the fault model.
    pub bit_flips: usize,
    /// Commands nacked by the RCDs.
    pub nacks: u64,
    /// Total DRAM energy in picojoules.
    pub energy_pj: u64,
    /// Final simulated time.
    pub sim_time: Time,
    /// Mean queue-to-completion request latency.
    pub latency_mean: Span,
    /// 99th-percentile request latency (upper bucket edge).
    pub latency_p99: Span,
    /// Worst-case request latency (exact).
    pub latency_max: Span,
}

impl RunMetrics {
    /// Figure 7's y-axis: additional ACTs relative to normal ACTs.
    pub fn additional_act_ratio(&self) -> f64 {
        if self.normal_acts == 0 {
            0.0
        } else {
            self.additional_acts as f64 / self.normal_acts as f64
        }
    }

    /// The ratio formatted as Figure 7 prints it (percent).
    pub fn ratio_percent(&self) -> String {
        format!("{:.4}%", self.additional_act_ratio() * 100.0)
    }

    /// Average simulated inter-activation time (sanity metric: must not
    /// beat `tRC` on a single bank).
    pub fn mean_act_interval(&self) -> Span {
        match self.sim_time.as_ps().checked_div(self.normal_acts) {
            Some(ps) => Span::from_ps(ps),
            None => Span::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(normal: u64, additional: u64) -> RunMetrics {
        RunMetrics {
            workload: "w".into(),
            defense: "d".into(),
            requests: 0,
            normal_acts: normal,
            additional_acts: additional,
            detections: 0,
            bit_flips: 0,
            nacks: 0,
            energy_pj: 0,
            sim_time: Time::from_ps(1_000),
            latency_mean: Span::ZERO,
            latency_p99: Span::ZERO,
            latency_max: Span::ZERO,
        }
    }

    #[test]
    fn ratio_math() {
        assert_eq!(metrics(0, 5).additional_act_ratio(), 0.0);
        assert!((metrics(32_768, 2).additional_act_ratio() - 6.1e-5).abs() < 1e-6);
        assert_eq!(metrics(1000, 1).ratio_percent(), "0.1000%");
    }

    #[test]
    fn act_interval() {
        assert_eq!(metrics(10, 0).mean_act_interval(), Span::from_ps(100));
        assert_eq!(metrics(0, 0).mean_act_interval(), Span::ZERO);
    }
}
