//! End-to-end protection verification (DESIGN.md experiment V1).
//!
//! The §4.3 proof says: with `thRH ≤ N_th/4`, TWiCe refreshes every
//! victim before its neighbors accumulate `N_th` activations. The fault
//! model in `twice-dram` lets us *test* that end to end: run a real
//! attack through the full MC → RCD → DRAM pipeline and count flips.

use crate::config::SimConfig;
use crate::metrics::RunMetrics;
use crate::runner::{run, WorkloadKind};
use twice_mitigations::DefenseKind;

/// The outcome of an attack/defense confrontation.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectionOutcome {
    /// Metrics of the unprotected run.
    pub unprotected: RunMetrics,
    /// Metrics of the defended run.
    pub defended: RunMetrics,
}

impl ProtectionOutcome {
    /// Whether the experiment is meaningful (the attack actually works
    /// when undefended) and the defense holds (zero flips defended).
    pub fn defense_holds(&self) -> bool {
        self.unprotected.bit_flips > 0 && self.defended.bit_flips == 0
    }
}

/// Runs `attack` for `requests` accesses twice — undefended and under
/// `defense` — on identical systems, and reports both.
pub fn confront(
    cfg: &SimConfig,
    attack: WorkloadKind,
    defense: DefenseKind,
    requests: u64,
) -> ProtectionOutcome {
    let unprotected = run(cfg, attack.clone(), DefenseKind::None, requests);
    let defended = run(cfg, attack, defense, requests);
    ProtectionOutcome {
        unprotected,
        defended,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::double_sided;
    use twice::TableOrganization;

    /// Enough requests that the undefended fault model flips: the
    /// fast-test N_th is 1024 neighbor ACTs; with 4-hit coalescing we
    /// need > 4 * 1024 * 2 requests.
    const REQUESTS: u64 = 60_000;

    fn cfg() -> SimConfig {
        SimConfig::fast_test()
    }

    #[test]
    fn twice_defeats_single_sided_hammer() {
        for org in [
            TableOrganization::FullyAssociative,
            TableOrganization::PseudoAssociative,
            TableOrganization::Split,
        ] {
            let out = confront(&cfg(), WorkloadKind::S3, DefenseKind::Twice(org), REQUESTS);
            assert!(
                out.unprotected.bit_flips > 0,
                "{org:?}: attack must flip without defense"
            );
            assert_eq!(out.defended.bit_flips, 0, "{org:?}: TWiCe must protect");
            assert!(out.defense_holds());
        }
    }

    #[test]
    fn twice_defeats_double_sided_hammer() {
        let out = confront(
            &cfg(),
            double_sided(100),
            DefenseKind::Twice(TableOrganization::FullyAssociative),
            REQUESTS,
        );
        assert!(
            out.defense_holds(),
            "flips: {} / {}",
            out.unprotected.bit_flips,
            out.defended.bit_flips
        );
    }

    #[test]
    fn oracle_matches_twice_protection() {
        let out = confront(&cfg(), WorkloadKind::S3, DefenseKind::Oracle, REQUESTS);
        assert!(out.defense_holds());
    }

    #[test]
    fn cbt_also_protects_but_with_group_refreshes() {
        let out = confront(
            &cfg(),
            WorkloadKind::S3,
            DefenseKind::Cbt { counters: 64 },
            REQUESTS,
        );
        assert!(out.defense_holds());
        assert!(
            out.defended.additional_acts > 2,
            "CBT refreshes whole groups"
        );
    }
}
