//! Typed per-cell results for experiment grids.
//!
//! Long campaigns are grids of independent cells (workload × defense ×
//! fault configuration). A malformed configuration, an exhausted retry
//! budget, or a panic inside one cell must degrade *that cell*, not the
//! whole process — so every experiment records a [`Cell`] per grid
//! position and renders failures as table rows instead of unwinding.

use std::fmt;

/// Why a grid cell failed to produce its metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellError {
    /// A SPEC application name had no model.
    UnknownApp(String),
    /// The simulation configuration failed validation.
    InvalidConfig(String),
    /// The controller's nack-retry budget ran out where the experiment
    /// did not expect faults.
    RetryExhausted(String),
    /// A checkpoint blob was rejected (checksum, shape, or digest).
    BadCheckpoint(String),
    /// An expected row was missing from a result set.
    MissingResult(String),
    /// The cell's body panicked; the payload message is salvaged.
    Panicked(String),
    /// The cell exceeded its host wall-clock budget.
    WallClockExceeded {
        /// The configured budget, in milliseconds.
        budget_ms: u64,
        /// Requests fed before the watchdog fired.
        done: u64,
    },
    /// The cell exceeded its simulated-time budget.
    SimTimeExceeded {
        /// The configured budget, in picoseconds of simulated time.
        budget_ps: u64,
        /// Requests fed before the watchdog fired.
        done: u64,
    },
    /// Journal or checkpoint I/O failed.
    Io(String),
    /// The cell kept failing on I/O and was quarantined after
    /// exhausting its retry budget; the campaign completed in degraded
    /// mode without it.
    Quarantined {
        /// How many whole-cell attempts were made before giving up.
        attempts: u32,
        /// The final attempt's I/O failure.
        cause: String,
    },
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::UnknownApp(name) => write!(f, "unknown SPEC app {name}"),
            CellError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            CellError::RetryExhausted(why) => write!(f, "retry budget exhausted: {why}"),
            CellError::BadCheckpoint(why) => write!(f, "checkpoint rejected: {why}"),
            CellError::MissingResult(what) => write!(f, "missing result: {what}"),
            CellError::Panicked(msg) => write!(f, "panicked: {msg}"),
            CellError::WallClockExceeded { budget_ms, done } => {
                write!(
                    f,
                    "wall-clock budget {budget_ms} ms exceeded after {done} requests"
                )
            }
            CellError::SimTimeExceeded { budget_ps, done } => {
                write!(
                    f,
                    "sim-time budget {budget_ps} ps exceeded after {done} requests"
                )
            }
            CellError::Io(why) => write!(f, "journal I/O failed: {why}"),
            CellError::Quarantined { attempts, cause } => {
                write!(f, "quarantined after {attempts} attempts: {cause}")
            }
        }
    }
}

impl std::error::Error for CellError {}

/// One grid cell's outcome: which experiment, which cell, and either the
/// measured value or the typed failure.
#[derive(Debug, Clone)]
pub struct Cell<T> {
    /// The experiment this cell belongs to (e.g. `"table1"`).
    pub experiment: &'static str,
    /// The cell's position in the grid (e.g. `"S3/CBT-256"`).
    pub cell: String,
    /// The measurement, or why it could not be taken.
    pub result: Result<T, CellError>,
}

impl<T> Cell<T> {
    /// Wraps a successful measurement.
    pub fn ok(experiment: &'static str, cell: impl Into<String>, value: T) -> Cell<T> {
        Cell {
            experiment,
            cell: cell.into(),
            result: Ok(value),
        }
    }

    /// Wraps a typed failure.
    pub fn err(experiment: &'static str, cell: impl Into<String>, error: CellError) -> Cell<T> {
        Cell {
            experiment,
            cell: cell.into(),
            result: Err(error),
        }
    }

    /// The measurement, if the cell completed.
    pub fn value(&self) -> Option<&T> {
        self.result.as_ref().ok()
    }

    /// A one-line `experiment=… cell=… cause=…` description of a failed
    /// cell (None for completed cells).
    pub fn error_line(&self) -> Option<String> {
        self.result.as_ref().err().map(|e| {
            format!(
                "experiment={} cell={} cause=\"{e}\"",
                self.experiment, self.cell
            )
        })
    }
}

/// Iterates the completed values of a cell slice.
pub fn completed<T>(cells: &[Cell<T>]) -> impl Iterator<Item = &T> {
    cells.iter().filter_map(|c| c.result.as_ref().ok())
}

/// Finds the completed cell whose value satisfies `pred`, or returns a
/// typed [`CellError::MissingResult`] describing `what`.
pub fn require<'a, T>(
    cells: &'a [Cell<T>],
    what: &str,
    mut pred: impl FnMut(&T) -> bool,
) -> Result<&'a T, CellError> {
    completed(cells)
        .find(|v| pred(v))
        .ok_or_else(|| CellError::MissingResult(what.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_line_is_structured() {
        let c: Cell<u32> = Cell::err("table1", "S3/CBT", CellError::UnknownApp("nope".into()));
        assert_eq!(
            c.error_line().unwrap(),
            "experiment=table1 cell=S3/CBT cause=\"unknown SPEC app nope\""
        );
        assert!(Cell::ok("table1", "S3/CBT", 1u32).error_line().is_none());
    }

    #[test]
    fn require_reports_missing_rows() {
        let cells = vec![
            Cell::ok("t", "a", 1u32),
            Cell::err("t", "b", CellError::Panicked("boom".into())),
        ];
        assert_eq!(*require(&cells, "a", |v| *v == 1).unwrap(), 1);
        let err = require(&cells, "value 2", |v| *v == 2).unwrap_err();
        assert!(matches!(err, CellError::MissingResult(_)), "{err:?}");
    }
}
